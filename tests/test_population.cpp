// Population-scale streaming runner tests: the differential oracle against
// the materialized runner, wave-boundary edge cases, retirement /
// rehydration round-trips, the bounded-memory guarantee, the
// instance-label O(N) regression guard, and the arena allocator itself.
//
// Small configurations keep the suite fast; the full 1k..100k sweep runs
// in bench_deployment_study's population_sweep block.
#include "study/deployment.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "core/persistence.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/process.hpp"
#include "util/arena.hpp"

namespace pmware::study {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

StudyConfig small_config(RunnerMode runner) {
  StudyConfig config;
  config.participants = 4;
  config.days = 3;
  config.threads = 2;
  config.shards = 4;
  config.runner = runner;
  return config;
}

/// Byte-identical comparison of a streaming run against the materialized
/// oracle: per-participant detail, the place map, the cloud stats, and the
/// order-independent content digest.
void expect_matches_oracle(const StudyResult& oracle, const StudyResult& run,
                           const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(oracle.participants.size(), run.participants.size());
  for (std::size_t i = 0; i < oracle.participants.size(); ++i) {
    const ParticipantResult& a = oracle.participants[i];
    const ParticipantResult& b = run.participants[i];
    EXPECT_EQ(a.profile.id, b.profile.id);
    EXPECT_EQ(a.profile.home, b.profile.home);
    EXPECT_EQ(a.places_discovered, b.places_discovered);
    EXPECT_EQ(a.places_tagged, b.places_tagged);
    EXPECT_EQ(a.places_evaluable, b.places_evaluable);
    EXPECT_EQ(a.eval.outcomes, b.eval.outcomes);
    EXPECT_EQ(a.ad_likes, b.ad_likes);
    EXPECT_EQ(a.ad_dislikes, b.ad_dislikes);
    EXPECT_EQ(a.sensing_joules, b.sensing_joules);  // bitwise, not approx
    EXPECT_EQ(a.implied_battery_hours, b.implied_battery_hours);
  }
  ASSERT_EQ(oracle.place_map.size(), run.place_map.size());
  for (std::size_t i = 0; i < oracle.place_map.size(); ++i) {
    EXPECT_EQ(oracle.place_map[i].participant, run.place_map[i].participant);
    EXPECT_EQ(oracle.place_map[i].uid, run.place_map[i].uid);
    EXPECT_EQ(oracle.place_map[i].label, run.place_map[i].label);
    EXPECT_EQ(oracle.place_map[i].location, run.place_map[i].location);
  }
  EXPECT_EQ(oracle.totals.participants, run.totals.participants);
  EXPECT_EQ(oracle.totals.places_discovered, run.totals.places_discovered);
  EXPECT_EQ(oracle.totals.places_tagged, run.totals.places_tagged);
  EXPECT_EQ(oracle.totals.ad_likes, run.totals.ad_likes);
  EXPECT_EQ(oracle.totals.sensing_joules, run.totals.sensing_joules);
  EXPECT_EQ(oracle.cohorts.size(), run.cohorts.size());
  // Cloud-side truth: the retire/archive path must not change what the
  // study stored, only when the per-user record was folded away.
  EXPECT_EQ(oracle.storage_stats, run.storage_stats);
  EXPECT_EQ(oracle.storage_digest, run.storage_digest);
}

// The tentpole differential oracle: the streaming runner (which constructs,
// runs, syncs, and retires each participant inside a wave) is byte-identical
// to the materialize-everything reference — same science table, same place
// map, same cloud content digest.
TEST(Population, StreamingMatchesMaterializedOracle) {
  const StudyResult oracle =
      DeploymentStudy(small_config(RunnerMode::Materialized)).run();
  EXPECT_NE(oracle.storage_digest, 0u);
  const StudyResult streaming =
      DeploymentStudy(small_config(RunnerMode::Streaming)).run();
  expect_matches_oracle(oracle, streaming, "streaming vs materialized");
  const StudyResult automatic =
      DeploymentStudy(small_config(RunnerMode::Auto)).run();
  expect_matches_oracle(oracle, automatic, "auto vs materialized");
}

// Wave boundaries must never shift results: populations that don't divide
// the wave size, fewer participants than worker threads, and the N=1
// degenerate wave all reproduce the oracle digest.
TEST(Population, WaveBoundariesNeverChangeResults) {
  const struct {
    int participants, days, threads, wave;
  } kCases[] = {
      {5, 2, 2, 2},   // N % wave != 0 — last wave is short
      {7, 2, 3, 4},   // N % wave != 0, odd thread count
      {2, 2, 8, 0},   // N < threads — most workers idle
      {1, 2, 1, 0},   // single participant, single wave
  };
  for (const auto& c : kCases) {
    StudyConfig config;
    config.participants = c.participants;
    config.days = c.days;
    config.threads = c.threads;
    config.wave_size = c.wave;
    config.runner = RunnerMode::Materialized;
    const StudyResult oracle = DeploymentStudy(config).run();
    config.runner = RunnerMode::Streaming;
    const StudyResult streaming = DeploymentStudy(config).run();
    expect_matches_oracle(
        oracle, streaming,
        "N=" + std::to_string(c.participants) +
            " threads=" + std::to_string(c.threads) +
            " wave=" + std::to_string(c.wave));
  }
}

// Wave size is a pure memory knob: any admission granularity produces the
// same digest.
TEST(Population, WaveSizeIsAPureMemoryKnob) {
  StudyConfig config;
  config.participants = 6;
  config.days = 2;
  config.threads = 2;
  config.runner = RunnerMode::Streaming;
  std::uint64_t first_digest = 0;
  for (const int wave : {1, 2, 5, 64}) {
    config.wave_size = wave;
    const StudyResult run = DeploymentStudy(config).run();
    if (first_digest == 0)
      first_digest = run.storage_digest;
    else
      EXPECT_EQ(run.storage_digest, first_digest) << "wave=" << wave;
  }
  EXPECT_NE(first_digest, 0u);
}

// Above the detail threshold the streaming runner keeps aggregates only:
// no per-participant vector, no place map, but the totals and cohort
// tables still carry the whole study.
TEST(Population, AggregateModeDropsDetailButKeepsTotals) {
  StudyConfig config;
  config.participants = DeploymentStudy::kDetailThreshold + 4;
  config.days = 1;
  config.threads = 2;
  config.runner = RunnerMode::Auto;
  const StudyResult run = DeploymentStudy(config).run();
  EXPECT_TRUE(run.participants.empty());
  EXPECT_TRUE(run.place_map.empty());
  EXPECT_EQ(run.totals.participants,
            static_cast<std::uint64_t>(config.participants));
  EXPECT_GT(run.totals.places_discovered, 0u);
  std::uint64_t cohort_sum = 0;
  for (const auto& [arch, stats] : run.cohorts) cohort_sum += stats.participants;
  EXPECT_EQ(cohort_sum, run.totals.participants);
  EXPECT_EQ(run.storage_stats.users,
            static_cast<std::size_t>(config.participants));
  EXPECT_NE(run.storage_digest, 0u);
}

// --- Retirement / rehydration ---
//
// A retired participant's PMS data products round-trip through the JSONL
// persistence layer: the rehydrated GSM log carries the same movement
// digest (so the cloud-side archived digest can be recomputed from cold
// storage), and a from-scratch GCA pass over it reproduces the original
// clustering exactly.

std::vector<algorithms::CellObservation> synthetic_gsm_log() {
  std::vector<algorithms::CellObservation> log;
  Rng rng(42);
  // Two "places" (tight cell bounces) joined by commute segments.
  const auto emit_stay = [&](std::uint32_t base_cid, SimTime from, SimTime to) {
    for (SimTime t = from; t < to; t += minutes(1)) {
      world::CellId cell;
      cell.mcc = 404;
      cell.lac = 7;
      cell.cid = base_cid + static_cast<std::uint32_t>(rng.uniform_int(0, 2));
      log.push_back({t, cell});
    }
  };
  const auto emit_trip = [&](std::uint32_t from_cid, std::uint32_t to_cid,
                             SimTime from, SimTime to) {
    const SimTime span = to - from;
    for (SimTime t = from; t < to; t += minutes(1)) {
      world::CellId cell;
      cell.mcc = 404;
      cell.lac = 7;
      const double frac = static_cast<double>(t - from) /
                          static_cast<double>(span > 0 ? span : 1);
      cell.cid = from_cid +
                 static_cast<std::uint32_t>(frac *
                                            static_cast<double>(to_cid - from_cid));
      log.push_back({t, cell});
    }
  };
  emit_stay(100, 0, hours(8));
  emit_trip(100, 200, hours(8), hours(9));
  emit_stay(200, hours(9), hours(17));
  emit_trip(200, 100, hours(17), hours(18));
  emit_stay(100, hours(18), hours(24));
  return log;
}

TEST(Population, RetiredGsmLogRoundTripsWithIdenticalDigest) {
  const auto original = synthetic_gsm_log();
  const std::uint64_t digest = core::movement_digest(original);

  std::stringstream io;
  core::write_gsm_log(io, original);
  const auto rehydrated = core::read_gsm_log(io);

  ASSERT_EQ(rehydrated.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rehydrated[i].t, original[i].t);
    EXPECT_EQ(rehydrated[i].cell, original[i].cell);
  }
  EXPECT_EQ(core::movement_digest(rehydrated), digest);
}

TEST(Population, RehydratedLogReclustersIdentically) {
  const auto original = synthetic_gsm_log();
  std::stringstream io;
  core::write_gsm_log(io, original);
  const auto rehydrated = core::read_gsm_log(io);

  algorithms::GcaState warm;
  algorithms::GcaState cold;
  const algorithms::GcaResult a = warm.run(original);
  const algorithms::GcaResult b = cold.run(rehydrated);
  EXPECT_EQ(a.places.size(), b.places.size());
  EXPECT_EQ(a.cell_to_place, b.cell_to_place);
  ASSERT_EQ(a.visits.size(), b.visits.size());
  for (std::size_t i = 0; i < a.visits.size(); ++i) {
    EXPECT_EQ(a.visits[i].place_index, b.visits[i].place_index);
    EXPECT_EQ(a.visits[i].window, b.visits[i].window);
  }
}

// Arena-backed engine logs serialize through the same span-based writers as
// heap-backed ones — retirement does not depend on where the log lived.
TEST(Population, ArenaBackedVisitLogRoundTrips) {
  util::Arena arena;
  core::VisitLog log{util::ArenaAllocator<core::LoggedVisit>(&arena)};
  log.push_back({3, TimeWindow{minutes(10), minutes(70)}});
  log.push_back({7, TimeWindow{hours(2), hours(5)}});

  std::stringstream io;
  core::write_visit_log(io, log);
  const auto back = core::read_visit_log(io);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(back[i].uid, log[i].uid);
    EXPECT_EQ(back[i].window, log[i].window);
  }
}

// --- Bounded memory ---
//
// The point of the streaming runner: peak RSS must not grow linearly with
// N. An aggregate-mode run well above the detail threshold may only add a
// bounded increment on top of the process's prior high-water mark —
// materializing 320 participants' logs and results would blow through it.
TEST(Population, StreamingPeakRssIsBounded) {
  // Warm up allocators, telemetry, and the world generator so the measured
  // delta is the streaming run itself, not one-time setup.
  StudyConfig warm;
  warm.participants = 8;
  warm.days = 1;
  warm.runner = RunnerMode::Streaming;
  (void)DeploymentStudy(warm).run();

  const std::uint64_t before = telemetry::read_process_stats().peak_rss_bytes;
  ASSERT_GT(before, 0u) << "/proc/self/status not readable";

  StudyConfig config;
  config.participants = 320;  // 20x the warm-up, far above detail threshold
  config.days = 1;
  config.threads = 2;
  config.runner = RunnerMode::Streaming;
  const StudyResult run = DeploymentStudy(config).run();
  EXPECT_EQ(run.totals.participants, 320u);

  const std::uint64_t after = telemetry::read_process_stats().peak_rss_bytes;
  const std::uint64_t delta = after - before;
  // Generous absolute ceiling (sanitizers inflate every allocation): a
  // materialized 320-participant run keeps every engine log, result, and
  // cloud record live and lands far above this.
  const std::uint64_t budget =
      (kSanitized ? 768ull : 192ull) * 1024 * 1024;
  EXPECT_LT(delta, budget)
      << "streaming run of 320 participants grew peak RSS by " << delta
      << " bytes";
}

// --- O(N) global-scan regression guard ---
//
// Per-participant PMS instances label their metrics with a fresh
// "instance" value; at N=100k that used to grow every counter family to
// 100k series, making each registry lookup and each recorder sampling walk
// O(N). Inside an InstanceLabelScope the label is the worker slot, so the
// registry's series population stays O(threads), not O(participants).
TEST(Population, InstanceLabelScopeKeepsRegistryBounded) {
  auto& reg = telemetry::registry();
  const std::size_t before = reg.series_count();
  {
    telemetry::InstanceLabelScope scope("popslot");
    for (int i = 0; i < 1000; ++i) {
      reg.counter("population_scan_probe_total",
                  {{"instance", reg.next_instance_label("pms")}},
                  "series-growth probe")
          .inc();
    }
  }
  const std::size_t with_scope = reg.series_count() - before;
  EXPECT_EQ(with_scope, 1u)
      << "1000 scoped participants must share one series";

  // Without the scope every participant mints a fresh series — the O(N)
  // growth the scope exists to prevent.
  const std::size_t unscoped_before = reg.series_count();
  for (int i = 0; i < 10; ++i) {
    reg.counter("population_scan_probe_total",
                {{"instance", reg.next_instance_label("pms")}},
                "series-growth probe")
        .inc();
  }
  EXPECT_EQ(reg.series_count() - unscoped_before, 10u);
}

// An aggregate-mode streaming study must leave the registry O(threads):
// the per-family series count after a 300-participant run stays far below
// the participant count.
TEST(Population, AggregateStudyKeepsSeriesCountSubLinear) {
  const std::size_t before = telemetry::registry().series_count();
  StudyConfig config;
  config.participants = 300;
  config.days = 1;
  config.threads = 2;
  config.runner = RunnerMode::Streaming;
  (void)DeploymentStudy(config).run();
  const std::size_t grown = telemetry::registry().series_count() - before;
  EXPECT_LT(grown, 200u)
      << "300 participants may not mint per-participant series";
}

// --- Arena allocator ---

TEST(Arena, RespectsAlignment) {
  util::Arena arena(128);
  for (const std::size_t align : {1ull, 2ull, 8ull, 16ull, 64ull}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, ResetReusesBlocksWithoutGrowing) {
  util::Arena arena(1024);
  void* first = arena.allocate(256, 8);
  const std::size_t grown = arena.growths();
  EXPECT_EQ(grown, 1u);
  arena.reset();
  void* again = arena.allocate(256, 8);
  EXPECT_EQ(again, first);  // same block, same cursor
  EXPECT_EQ(arena.growths(), grown);
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(Arena, GrowsByDoublingAndReusesWholeChainAfterReset) {
  util::Arena arena(64);
  // Force several growths.
  for (int i = 0; i < 6; ++i) (void)arena.allocate(60, 8);
  const std::size_t grown = arena.growths();
  const std::size_t capacity = arena.capacity();
  EXPECT_GE(grown, 2u);
  arena.reset();
  // The same allocation pattern must fit in the retained chain.
  for (int i = 0; i < 6; ++i) (void)arena.allocate(60, 8);
  EXPECT_EQ(arena.growths(), grown);
  EXPECT_EQ(arena.capacity(), capacity);
}

TEST(Arena, AllocatorDegradesToHeapWithoutArena) {
  std::vector<int, util::ArenaAllocator<int>> v;  // null arena
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
}

TEST(Arena, VectorWorkloadReachesZeroGrowthSteadyState) {
  util::Arena arena(1 << 16);
  // Simulate the streaming runner's per-participant engine logs: identical
  // allocation shapes, arena reset between participants.
  std::size_t after_warmup = 0;
  for (int participant = 0; participant < 8; ++participant) {
    core::ObsLog obs{util::ArenaAllocator<algorithms::CellObservation>(&arena)};
    core::VisitLog visits{util::ArenaAllocator<core::LoggedVisit>(&arena)};
    for (int i = 0; i < 2000; ++i) {
      world::CellId cell;
      cell.cid = static_cast<std::uint32_t>(i);
      obs.push_back({minutes(i), cell});
      if (i % 50 == 0)
        visits.push_back(
            {static_cast<core::PlaceUid>(i / 50),
             TimeWindow{minutes(i), minutes(i + 40)}});
    }
    arena.reset();
    if (participant == 0) after_warmup = arena.growths();
  }
  // After the first participant warmed the block chain up, later identical
  // participants must be served without touching the heap.
  EXPECT_EQ(arena.growths(), after_warmup);
  EXPECT_EQ(arena.resets(), 8u);
}

}  // namespace
}  // namespace pmware::study
