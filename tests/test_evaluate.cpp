#include "algorithms/evaluate.hpp"

#include <gtest/gtest.h>

namespace pmware::algorithms {
namespace {

TruthVisit tv(world::PlaceId place, SimTime begin, SimTime end) {
  return {place, TimeWindow{begin, end}};
}

ReportedVisit rv(std::size_t place, SimTime begin, SimTime end) {
  return {place, TimeWindow{begin, end}};
}

TEST(Evaluate, PerfectMatchIsCorrect) {
  const std::vector<TruthVisit> truth{tv(1, 0, hours(2)), tv(2, hours(3), hours(5))};
  const std::vector<ReportedVisit> reported{rv(10, 0, hours(2)),
                                            rv(11, hours(3), hours(5))};
  const PlaceEvaluation eval = evaluate_places(truth, reported);
  EXPECT_EQ(eval.evaluable(), 2u);
  EXPECT_EQ(eval.count(PlaceOutcome::Correct), 2u);
  const DiscoveredEvaluation disc = evaluate_discovered(truth, reported);
  EXPECT_EQ(disc.count(DiscoveredOutcome::Correct), 2u);
}

TEST(Evaluate, OneDiscoveredCoveringTwoTruthsIsMerged) {
  const std::vector<TruthVisit> truth{tv(1, 0, hours(2)), tv(2, hours(3), hours(5))};
  const std::vector<ReportedVisit> reported{rv(10, 0, hours(5))};
  const PlaceEvaluation eval = evaluate_places(truth, reported);
  EXPECT_EQ(eval.count(PlaceOutcome::Merged), 2u);
  const DiscoveredEvaluation disc = evaluate_discovered(truth, reported);
  EXPECT_EQ(disc.count(DiscoveredOutcome::Merged), 1u);
  EXPECT_EQ(disc.outcomes.at(10), DiscoveredOutcome::Merged);
}

TEST(Evaluate, TwoDiscoveredCoveringOneTruthIsDivided) {
  const std::vector<TruthVisit> truth{tv(1, 0, hours(4))};
  const std::vector<ReportedVisit> reported{rv(10, 0, hours(2)),
                                            rv(11, hours(2), hours(4))};
  const PlaceEvaluation eval = evaluate_places(truth, reported);
  EXPECT_EQ(eval.count(PlaceOutcome::Divided), 1u);
  const DiscoveredEvaluation disc = evaluate_discovered(truth, reported);
  EXPECT_EQ(disc.count(DiscoveredOutcome::Divided), 2u);
}

TEST(Evaluate, UndetectedTruthIsMissed) {
  const std::vector<TruthVisit> truth{tv(1, 0, hours(2)), tv(2, hours(3), hours(5))};
  const std::vector<ReportedVisit> reported{rv(10, 0, hours(2))};
  const PlaceEvaluation eval = evaluate_places(truth, reported);
  EXPECT_EQ(eval.count(PlaceOutcome::Missed), 1u);
  EXPECT_EQ(eval.outcomes.at(2), PlaceOutcome::Missed);
}

TEST(Evaluate, DiscoveredWithoutTruthIsSpurious) {
  const std::vector<TruthVisit> truth{tv(1, 0, hours(2))};
  const std::vector<ReportedVisit> reported{rv(10, 0, hours(2)),
                                            rv(99, hours(10), hours(12))};
  const DiscoveredEvaluation disc = evaluate_discovered(truth, reported);
  EXPECT_EQ(disc.outcomes.at(99), DiscoveredOutcome::Spurious);
  EXPECT_EQ(disc.count(DiscoveredOutcome::Spurious), 1u);
  // Spurious places are excluded from the reported fractions.
  EXPECT_DOUBLE_EQ(disc.fraction(DiscoveredOutcome::Correct), 1.0);
}

TEST(Evaluate, ShortTruthVisitsAreNotEvaluable) {
  EvalConfig config;
  config.min_truth_dwell = minutes(10);
  const std::vector<TruthVisit> truth{tv(1, 0, minutes(5))};
  const std::vector<ReportedVisit> reported{rv(10, 0, minutes(5))};
  const PlaceEvaluation eval = evaluate_places(truth, reported, config);
  EXPECT_EQ(eval.evaluable(), 0u);
}

TEST(Evaluate, LinkRequiresMinimumSingleVisitOverlap) {
  EvalConfig config;
  config.min_link_overlap = minutes(15);
  // 10-minute boundary sliver every day for 14 days: never links.
  std::vector<TruthVisit> truth;
  std::vector<ReportedVisit> reported;
  for (int day = 0; day < 14; ++day) {
    truth.push_back(tv(1, start_of_day(day), start_of_day(day) + hours(8)));
    reported.push_back(rv(10, start_of_day(day), start_of_day(day) + hours(8)));
    // Sliver place overlapping the tail by 10 minutes each day.
    reported.push_back(rv(11, start_of_day(day) + hours(8) - minutes(10),
                          start_of_day(day) + hours(9)));
  }
  const PlaceEvaluation eval = evaluate_places(truth, reported, config);
  EXPECT_EQ(eval.outcomes.at(1), PlaceOutcome::Correct);
  const DiscoveredEvaluation disc = evaluate_discovered(truth, reported, config);
  EXPECT_EQ(disc.outcomes.at(10), DiscoveredOutcome::Correct);
  EXPECT_EQ(disc.outcomes.at(11), DiscoveredOutcome::Spurious);
}

TEST(Evaluate, RepeatVisitsAccumulateIntoOneOutcome) {
  std::vector<TruthVisit> truth;
  std::vector<ReportedVisit> reported;
  for (int day = 0; day < 5; ++day) {
    truth.push_back(tv(1, start_of_day(day), start_of_day(day) + hours(8)));
    reported.push_back(rv(10, start_of_day(day) + minutes(5),
                          start_of_day(day) + hours(8) - minutes(5)));
  }
  const PlaceEvaluation eval = evaluate_places(truth, reported);
  EXPECT_EQ(eval.evaluable(), 1u);
  EXPECT_EQ(eval.outcomes.at(1), PlaceOutcome::Correct);
  const DiscoveredEvaluation disc = evaluate_discovered(truth, reported);
  EXPECT_EQ(disc.outcomes.size(), 1u);
}

TEST(Evaluate, FractionsOfDetected) {
  const std::vector<TruthVisit> truth{
      tv(1, 0, hours(2)),                 // correct
      tv(2, hours(3), hours(5)),          // merged (with 3)
      tv(3, hours(5), hours(7)),          // merged
      tv(4, hours(10), hours(12)),        // missed
  };
  const std::vector<ReportedVisit> reported{
      rv(10, 0, hours(2)),
      rv(11, hours(3), hours(7)),
  };
  const PlaceEvaluation eval = evaluate_places(truth, reported);
  EXPECT_EQ(eval.evaluable(), 4u);
  EXPECT_EQ(eval.count(PlaceOutcome::Correct), 1u);
  EXPECT_EQ(eval.count(PlaceOutcome::Merged), 2u);
  EXPECT_EQ(eval.count(PlaceOutcome::Missed), 1u);
  EXPECT_DOUBLE_EQ(eval.fraction_of_detected(PlaceOutcome::Correct), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(eval.fraction_of_evaluable(PlaceOutcome::Correct), 0.25);
  EXPECT_DOUBLE_EQ(eval.fraction_of_detected(PlaceOutcome::Missed), 0.0);
}

TEST(Evaluate, SummaryStringsMentionCounts) {
  const std::vector<TruthVisit> truth{tv(1, 0, hours(2))};
  const std::vector<ReportedVisit> reported{rv(10, 0, hours(2))};
  EXPECT_NE(evaluate_places(truth, reported).summary().find("correct 1"),
            std::string::npos);
  EXPECT_NE(evaluate_discovered(truth, reported).summary().find("correct 1"),
            std::string::npos);
}

TEST(Evaluate, EmptyInputs) {
  const PlaceEvaluation eval = evaluate_places({}, {});
  EXPECT_EQ(eval.evaluable(), 0u);
  EXPECT_DOUBLE_EQ(eval.fraction_of_detected(PlaceOutcome::Correct), 0.0);
  const DiscoveredEvaluation disc = evaluate_discovered({}, {});
  EXPECT_TRUE(disc.outcomes.empty());
  EXPECT_DOUBLE_EQ(disc.fraction(DiscoveredOutcome::Correct), 0.0);
}

TEST(Evaluate, OutcomeNames) {
  EXPECT_STREQ(to_string(PlaceOutcome::Correct), "correct");
  EXPECT_STREQ(to_string(PlaceOutcome::Merged), "merged");
  EXPECT_STREQ(to_string(PlaceOutcome::Divided), "divided");
  EXPECT_STREQ(to_string(PlaceOutcome::Missed), "missed");
  EXPECT_STREQ(to_string(DiscoveredOutcome::Spurious), "spurious");
}

struct ThresholdCase {
  SimDuration overlap;
  bool linked;
};

class LinkThresholdSweep : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(LinkThresholdSweep, LinkExactlyAtThreshold) {
  EvalConfig config;
  config.min_link_overlap = minutes(15);
  const auto& c = GetParam();
  const std::vector<TruthVisit> truth{tv(1, 0, hours(4))};
  const std::vector<ReportedVisit> reported{rv(10, 0, c.overlap)};
  const PlaceEvaluation eval = evaluate_places(truth, reported, config);
  EXPECT_EQ(eval.outcomes.at(1) == PlaceOutcome::Correct, c.linked);
}

INSTANTIATE_TEST_SUITE_P(
    Overlaps, LinkThresholdSweep,
    ::testing::Values(ThresholdCase{minutes(14), false},
                      ThresholdCase{minutes(15), true},
                      ThresholdCase{minutes(16), true},
                      ThresholdCase{minutes(1), false},
                      ThresholdCase{hours(4), true}));

}  // namespace
}  // namespace pmware::algorithms
