#include "util/simtime.hpp"

#include <gtest/gtest.h>

namespace pmware {
namespace {

TEST(SimTime, UnitHelpers) {
  EXPECT_EQ(seconds(5), 5);
  EXPECT_EQ(minutes(2), 120);
  EXPECT_EQ(hours(3), 10800);
  EXPECT_EQ(days(1), 86400);
  EXPECT_EQ(kSecondsPerWeek, 7 * 86400);
}

TEST(SimTime, DayOf) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(86399), 0);
  EXPECT_EQ(day_of(86400), 1);
  EXPECT_EQ(day_of(days(10) + hours(13)), 10);
}

TEST(SimTime, TimeOfDay) {
  EXPECT_EQ(time_of_day(0), 0);
  EXPECT_EQ(time_of_day(hours(9) + minutes(30)), hours(9) + minutes(30));
  EXPECT_EQ(time_of_day(days(3) + hours(23)), hours(23));
}

TEST(SimTime, WeekdayStartsMonday) {
  EXPECT_EQ(weekday_of(0), 0);                    // Monday
  EXPECT_EQ(weekday_of(days(4)), 4);              // Friday
  EXPECT_EQ(weekday_of(days(5)), 5);              // Saturday
  EXPECT_EQ(weekday_of(days(7) + hours(12)), 0);  // next Monday
}

TEST(SimTime, IsWeekend) {
  EXPECT_FALSE(is_weekend(days(0)));
  EXPECT_FALSE(is_weekend(days(4) + hours(23)));
  EXPECT_TRUE(is_weekend(days(5)));
  EXPECT_TRUE(is_weekend(days(6) + hours(23)));
  EXPECT_FALSE(is_weekend(days(7)));
}

TEST(SimTime, StartOfDay) {
  EXPECT_EQ(start_of_day(0), 0);
  EXPECT_EQ(start_of_day(2), 2 * 86400);
}

TEST(SimTime, FormatTime) {
  EXPECT_EQ(format_time(0), "d0 00:00:00");
  EXPECT_EQ(format_time(days(3) + hours(14) + minutes(5) + 9), "d3 14:05:09");
}

TEST(SimTime, FormatDuration) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(hours(2) + minutes(30)), "02:30:00");
  EXPECT_EQ(format_duration(days(1) + hours(2)), "1d 02:00:00");
  EXPECT_EQ(format_duration(-minutes(5)), "-00:05:00");
}

TEST(TimeWindow, RejectsInvertedWindow) {
  EXPECT_THROW(TimeWindow(10, 5), std::invalid_argument);
  EXPECT_NO_THROW(TimeWindow(5, 5));
}

TEST(TimeWindow, ContainsIsClosedOpen) {
  const TimeWindow w{10, 20};
  EXPECT_FALSE(w.contains(9));
  EXPECT_TRUE(w.contains(10));
  EXPECT_TRUE(w.contains(19));
  EXPECT_FALSE(w.contains(20));
}

TEST(TimeWindow, Length) {
  EXPECT_EQ((TimeWindow{10, 25}).length(), 15);
  EXPECT_EQ((TimeWindow{10, 10}).length(), 0);
}

struct OverlapCase {
  TimeWindow a;
  TimeWindow b;
  bool overlaps;
  SimDuration overlap_len;
};

class TimeWindowOverlap : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(TimeWindowOverlap, OverlapSymmetry) {
  const auto& c = GetParam();
  EXPECT_EQ(c.a.overlaps(c.b), c.overlaps);
  EXPECT_EQ(c.b.overlaps(c.a), c.overlaps);
  EXPECT_EQ(c.a.overlap_length(c.b), c.overlap_len);
  EXPECT_EQ(c.b.overlap_length(c.a), c.overlap_len);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TimeWindowOverlap,
    ::testing::Values(OverlapCase{{0, 10}, {5, 15}, true, 5},
                      OverlapCase{{0, 10}, {10, 20}, false, 0},
                      OverlapCase{{0, 10}, {20, 30}, false, 0},
                      OverlapCase{{0, 30}, {10, 20}, true, 10},
                      OverlapCase{{5, 6}, {5, 6}, true, 1},
                      OverlapCase{{0, 0}, {0, 10}, false, 0}));

TEST(DailyWindow, SimpleWindow) {
  const DailyWindow w{hours(9), hours(18)};
  EXPECT_TRUE(w.contains(days(2) + hours(9)));
  EXPECT_TRUE(w.contains(days(2) + hours(17) + minutes(59)));
  EXPECT_FALSE(w.contains(days(2) + hours(18)));
  EXPECT_FALSE(w.contains(days(2) + hours(8) + minutes(59)));
}

TEST(DailyWindow, WrapsMidnight) {
  const DailyWindow w{hours(22), hours(6)};
  EXPECT_TRUE(w.contains(hours(23)));
  EXPECT_TRUE(w.contains(days(1) + hours(2)));
  EXPECT_FALSE(w.contains(hours(12)));
  EXPECT_TRUE(w.contains(days(4) + hours(5) + minutes(59)));
  EXPECT_FALSE(w.contains(days(4) + hours(6)));
}

TEST(DailyWindow, AllDayContainsEverything) {
  const DailyWindow w = DailyWindow::all_day();
  for (SimTime t : {SimTime{0}, hours(5), days(3) + hours(23), days(100)})
    EXPECT_TRUE(w.contains(t));
}

}  // namespace
}  // namespace pmware
