// Failure-injection and noise-sweep tests: the middleware must degrade
// gracefully, not collapse, as the environment gets hostile.
#include <gtest/gtest.h>

#include "algorithms/evaluate.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware {
namespace {

struct RunOutcome {
  std::size_t visits = 0;
  std::size_t places = 0;
  std::size_t profile_syncs = 0;
  std::size_t gca_offloads = 0;
  std::size_t gca_local = 0;
  double correct_fraction = 0;
};

RunOutcome run_once(net::NetworkConditions network,
                    sensing::DeviceConfig device_config, int days_n = 3,
                    std::uint64_t seed = 1) {
  Rng rng(seed);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  auto participants = mobility::make_participants(*world, 1, prng);
  Rng trng = rng.fork(3);
  mobility::ScheduleConfig sc;
  sc.days = days_n;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], sc, trng);

  cloud::CloudInstance cloud(cloud::CloudConfig{},
                             cloud::GeoLocationService(world->cell_location_db()),
                             rng.fork(4));
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), device_config, rng.fork(5));
  auto client = std::make_unique<net::RestClient>(&cloud.router(), network,
                                                  rng.fork(6));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(7));
  core::PlaceAlertRequest request;
  request.app = "robustness";
  request.granularity = core::Granularity::Building;
  pms.apps().register_place_alerts(request);
  pms.register_with_cloud(0);
  pms.run(TimeWindow{0, days(days_n)});
  pms.shutdown(days(days_n));

  std::vector<algorithms::TruthVisit> truth;
  for (const auto& v : trace.significant_visits(minutes(10)))
    truth.push_back({v.place, v.window});
  std::vector<algorithms::ReportedVisit> reported;
  std::set<core::PlaceUid> distinct;
  for (const auto& v : pms.inference().visit_log()) {
    reported.push_back({static_cast<std::size_t>(v.uid), v.window});
    distinct.insert(v.uid);
  }
  const auto eval = algorithms::evaluate_discovered(truth, reported);

  RunOutcome outcome;
  outcome.visits = reported.size();
  outcome.places = distinct.size();
  outcome.profile_syncs = pms.stats().profile_syncs;
  outcome.gca_offloads = pms.stats().gca_offloads;
  outcome.gca_local = pms.stats().gca_local_runs;
  outcome.correct_fraction =
      eval.fraction(algorithms::DiscoveredOutcome::Correct);
  return outcome;
}

class NetworkLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(NetworkLossSweep, DiscoveryUnaffectedByNetworkLoss) {
  // The network only carries offloading and sync; place discovery itself
  // must keep working at any loss rate (local GCA fallback).
  const RunOutcome outcome =
      run_once(net::NetworkConditions{GetParam(), 1}, sensing::DeviceConfig{});
  EXPECT_GE(outcome.places, 2u);
  EXPECT_GE(outcome.visits, 4u);
  EXPECT_GT(outcome.correct_fraction, 0.4);
  EXPECT_GE(outcome.gca_offloads + outcome.gca_local, 3u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, NetworkLossSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6, 1.0));

TEST(NetworkLoss, TotalLossMeansLocalOnly) {
  const RunOutcome outcome =
      run_once(net::NetworkConditions{1.0, 0}, sensing::DeviceConfig{});
  EXPECT_EQ(outcome.gca_offloads, 0u);
  EXPECT_GE(outcome.gca_local, 3u);
  EXPECT_EQ(outcome.profile_syncs, 0u);
}

TEST(NetworkLoss, ModerateLossStillSyncsEventually) {
  // With retries, 30% loss should still land most profile syncs.
  const RunOutcome outcome =
      run_once(net::NetworkConditions{0.3, 1}, sensing::DeviceConfig{});
  EXPECT_GE(outcome.profile_syncs, 3u);
}

class FadingSweep : public ::testing::TestWithParam<double> {};

TEST_P(FadingSweep, DiscoverySurvivesRssiNoise) {
  sensing::DeviceConfig config;
  config.fading_sigma_db = GetParam();
  const RunOutcome outcome = run_once(net::NetworkConditions{}, config);
  EXPECT_GE(outcome.places, 2u);
  EXPECT_GT(outcome.correct_fraction, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, FadingSweep,
                         ::testing::Values(1.0, 3.0, 5.0, 8.0));

class WifiMissSweep : public ::testing::TestWithParam<double> {};

TEST_P(WifiMissSweep, DiscoverySurvivesBeaconLoss) {
  sensing::DeviceConfig config;
  config.wifi_miss_prob = GetParam();
  const RunOutcome outcome = run_once(net::NetworkConditions{}, config);
  EXPECT_GE(outcome.places, 2u);
  EXPECT_GE(outcome.visits, 4u);
}

INSTANTIATE_TEST_SUITE_P(MissRates, WifiMissSweep,
                         ::testing::Values(0.0, 0.2, 0.4));

class ActivityErrorSweep : public ::testing::TestWithParam<double> {};

TEST_P(ActivityErrorSweep, TriggersSurviveAccelMisclassification) {
  sensing::DeviceConfig config;
  config.activity_error_prob = GetParam();
  const RunOutcome outcome = run_once(net::NetworkConditions{}, config);
  // Misclassified activity wastes some scans but must not kill discovery.
  EXPECT_GE(outcome.places, 2u);
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, ActivityErrorSweep,
                         ::testing::Values(0.0, 0.1, 0.25));

class EndToEndSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndSeedSweep, InvariantsHoldForAnySeed) {
  const RunOutcome outcome = run_once(net::NetworkConditions{0.05, 1},
                                      sensing::DeviceConfig{}, 3, GetParam());
  // Structural invariants that must hold regardless of randomness:
  EXPECT_GE(outcome.places, 1u);
  EXPECT_GE(outcome.visits, outcome.places);
  EXPECT_GE(outcome.gca_offloads + outcome.gca_local, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndSeedSweep,
                         ::testing::Values(2ULL, 3ULL, 5ULL, 8ULL, 13ULL));

TEST(Robustness, VisitLogNeverOverlapsUnderStress) {
  sensing::DeviceConfig noisy;
  noisy.fading_sigma_db = 6;
  noisy.wifi_miss_prob = 0.3;
  noisy.activity_error_prob = 0.15;
  Rng rng(77);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  auto participants = mobility::make_participants(*world, 1, prng);
  Rng trng = rng.fork(3);
  mobility::ScheduleConfig sc;
  sc.days = 4;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], sc, trng);
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), noisy, rng.fork(4));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{}, nullptr,
                                rng.fork(5));
  core::PlaceAlertRequest request;
  request.app = "x";
  pms.apps().register_place_alerts(request);
  pms.run(TimeWindow{0, days(4)});
  pms.shutdown(days(4));
  const auto& log = pms.inference().visit_log();
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LE(log[i - 1].window.end, log[i].window.begin + 1);
  for (const auto& v : log) EXPECT_GE(v.window.length(), minutes(10));
}

}  // namespace
}  // namespace pmware
