#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pmware {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.fork(3);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(child1.uniform(0, 1), child2.uniform(0, 1));
}

TEST(Rng, ForkSaltsAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, NormalZeroSigmaIsMean) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0, -1), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, PoissonMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(29);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(items);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInBoundsAndVaries) {
  Rng rng(GetParam());
  std::set<std::int64_t> distinct;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 100);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, 100);
    distinct.insert(static_cast<std::int64_t>(x * 1e6));
  }
  EXPECT_GT(distinct.size(), 150u);
}

TEST_P(RngSeedSweep, ForkDoesNotEqualParentStream) {
  Rng parent(GetParam());
  Rng child = parent.fork(99);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) ++same;
  EXPECT_LT(same, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 20141208ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace pmware
