#include "core/persistence.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

namespace pmware::core {
namespace {

using algorithms::CellObservation;
using world::CellId;

CellId cell(std::uint32_t cid) {
  return CellId{404, 10, 1, cid, world::Radio::Gsm2G};
}

TEST(Persistence, GsmLogRoundTrip) {
  std::vector<CellObservation> log;
  for (int i = 0; i < 50; ++i) log.push_back({i * 60, cell(100 + i % 3)});
  std::stringstream stream;
  write_gsm_log(stream, log);
  const auto loaded = read_gsm_log(stream);
  ASSERT_EQ(loaded.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(loaded[i].t, log[i].t);
    EXPECT_EQ(loaded[i].cell, log[i].cell);
  }
}

TEST(Persistence, GsmLogIsOneJsonPerLine) {
  std::vector<CellObservation> log{{0, cell(1)}, {60, cell(2)}};
  std::stringstream stream;
  write_gsm_log(stream, log);
  std::string line;
  int lines = 0;
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_NO_THROW(Json::parse(line));
  }
  EXPECT_EQ(lines, 2);
}

TEST(Persistence, VisitLogRoundTrip) {
  std::vector<LoggedVisit> log{{1, TimeWindow{0, hours(8)}},
                               {2, TimeWindow{hours(9), hours(17)}}};
  std::stringstream stream;
  write_visit_log(stream, log);
  const auto loaded = read_visit_log(stream);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].uid, 1u);
  EXPECT_EQ(loaded[1].window, (TimeWindow{hours(9), hours(17)}));
}

TEST(Persistence, PlaceRecordsRoundTrip) {
  PlaceStore store;
  const auto [uid1, c1] =
      store.intern(algorithms::WifiSignature{{1, 2}}, Granularity::Building);
  store.set_label(uid1, "home");
  store.record_visit(uid1, hours(8));
  const auto [uid2, c2] = store.intern(
      algorithms::CellSignature{{cell(1), cell(2)}}, Granularity::Building);
  (void)c1;
  (void)c2;

  std::stringstream stream;
  write_place_records(stream, store);
  const auto loaded = read_place_records(stream);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].uid, uid1);
  EXPECT_EQ(loaded[0].label, "home");
  EXPECT_EQ(loaded[0].visit_count, 1u);
  EXPECT_EQ(loaded[1].uid, uid2);
  EXPECT_TRUE(std::holds_alternative<algorithms::CellSignature>(
      loaded[1].signature));
}

TEST(Persistence, ProfilesRoundTrip) {
  std::vector<MobilityProfile> profiles(2);
  profiles[0].user = 1;
  profiles[0].day = 0;
  profiles[0].places = {{5, hours(9), hours(17)}};
  profiles[1].user = 1;
  profiles[1].day = 1;
  profiles[1].routes = {{3, hours(8), hours(9)}};
  std::stringstream stream;
  write_profiles(stream, profiles);
  const auto loaded = read_profiles(stream);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].places.size(), 1u);
  EXPECT_EQ(loaded[1].routes.size(), 1u);
  EXPECT_EQ(loaded[1].day, 1);
}

TEST(Persistence, EmptyStreamsYieldEmptyVectors) {
  std::stringstream empty;
  EXPECT_TRUE(read_gsm_log(empty).empty());
  std::stringstream empty2;
  EXPECT_TRUE(read_visit_log(empty2).empty());
  std::stringstream empty3;
  EXPECT_TRUE(read_profiles(empty3).empty());
}

TEST(Persistence, BlankLinesAreSkipped) {
  std::stringstream stream;
  stream << "\n" << R"({"t": 60, "cell": {"mcc":404,"mnc":10,"lac":1,"cid":9,"radio":"2g"}})"
         << "\n\n";
  const auto log = read_gsm_log(stream);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].cell.cid, 9u);
}

TEST(Persistence, MalformedLineReportsLineNumber) {
  std::stringstream stream;
  stream << R"({"t": 0, "cell": {"mcc":404,"mnc":10,"lac":1,"cid":9,"radio":"2g"}})"
         << "\n"
         << "{not json}\n";
  try {
    read_gsm_log(stream);
    FAIL() << "expected PersistenceError";
  } catch (const PersistenceError& error) {
    EXPECT_EQ(error.line(), 2u);
  }
}

TEST(Persistence, MissingFieldReportsLineNumber) {
  std::stringstream stream;
  stream << R"({"t": 0})" << "\n";
  EXPECT_THROW(read_gsm_log(stream), PersistenceError);
}

TEST(Persistence, AppendedLogsConcatenate) {
  // Append-friendly format: writing twice and reading once yields the union.
  std::stringstream stream;
  std::vector<CellObservation> first{{0, cell(1)}};
  std::vector<CellObservation> second{{60, cell(2)}};
  write_gsm_log(stream, first);
  write_gsm_log(stream, second);
  EXPECT_EQ(read_gsm_log(stream).size(), 2u);
}

// --- Corruption fuzzing over all four JSONL products. The contract under
// attack: a truncation is always a torn tail (the reader heals it and
// returns the intact prefix, never throws), while an interior bit flip
// either still parses, or throws PersistenceError with a line number —
// never anything else, never a crash or hang.

/// A representative serialized stream per product, plus a replayable reader.
struct FuzzProduct {
  const char* name;
  std::string bytes;
  std::function<std::size_t(std::istream&)> read;  ///< returns record count
};

std::vector<FuzzProduct> fuzz_products() {
  std::vector<FuzzProduct> products;
  {
    std::vector<CellObservation> log;
    for (int i = 0; i < 12; ++i) log.push_back({i * 60, cell(100 + i % 3)});
    std::stringstream s;
    write_gsm_log(s, log);
    products.push_back({"gsm_log", s.str(), [](std::istream& in) {
                          return read_gsm_log(in).size();
                        }});
  }
  {
    std::vector<LoggedVisit> log;
    for (int i = 0; i < 8; ++i)
      log.push_back({static_cast<PlaceUid>(i + 1),
                     TimeWindow{hours(i), hours(i + 1)}});
    std::stringstream s;
    write_visit_log(s, log);
    products.push_back({"visit_log", s.str(), [](std::istream& in) {
                          return read_visit_log(in).size();
                        }});
  }
  {
    PlaceStore store;
    const auto [uid1, c1] =
        store.intern(algorithms::WifiSignature{{1, 2}}, Granularity::Building);
    store.set_label(uid1, "home");
    const auto [uid2, c2] = store.intern(
        algorithms::CellSignature{{cell(1), cell(2)}}, Granularity::Area);
    (void)c1;
    (void)c2;
    std::stringstream s;
    write_place_records(s, store);
    products.push_back({"place_records", s.str(), [](std::istream& in) {
                          return read_place_records(in).size();
                        }});
  }
  {
    std::vector<MobilityProfile> profiles(3);
    for (int d = 0; d < 3; ++d) {
      profiles[d].user = 1;
      profiles[d].day = d;
      profiles[d].places = {{5, hours(9), hours(17)}};
    }
    std::stringstream s;
    write_profiles(s, profiles);
    products.push_back({"profiles", s.str(), [](std::istream& in) {
                          return read_profiles(in).size();
                        }});
  }
  return products;
}

TEST(Persistence, EveryTruncationHealsAsTornTail) {
  for (const auto& product : fuzz_products()) {
    SCOPED_TRACE(product.name);
    std::istringstream whole(product.bytes);
    const std::size_t full_count = product.read(whole);
    ASSERT_GT(full_count, 0u);
    for (std::size_t cut = 0; cut < product.bytes.size(); ++cut) {
      std::istringstream in(product.bytes.substr(0, cut));
      std::size_t count = ~std::size_t{0};
      EXPECT_NO_THROW(count = product.read(in)) << "cut at byte " << cut;
      EXPECT_LT(count, full_count + 1) << "cut at byte " << cut;
    }
  }
}

TEST(Persistence, BitFlipsEitherParseOrThrowPersistenceError) {
  for (const auto& product : fuzz_products()) {
    SCOPED_TRACE(product.name);
    for (std::size_t pos = 0; pos < product.bytes.size(); ++pos) {
      for (const unsigned char mask : {0x01, 0x20, 0x80}) {
        std::string corrupt = product.bytes;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ mask);
        std::istringstream in(corrupt);
        try {
          const std::size_t count = product.read(in);
          EXPECT_LE(count, product.bytes.size());  // sane, no wild growth
        } catch (const PersistenceError& error) {
          EXPECT_GE(error.line(), 1u);  // detected, with a line number
        }
        // Any other exception type escapes and fails the test.
      }
    }
  }
}

}  // namespace
}  // namespace pmware::core
