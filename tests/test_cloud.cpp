#include "cloud/cloud_instance.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/codec.hpp"
#include "net/client.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::cloud {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::Method;

class CloudFixture : public ::testing::Test {
 protected:
  CloudFixture()
      : cloud_(CloudConfig{}, GeoLocationService({}), Rng(1)) {}

  HttpRequest request(Method method, std::string path, SimTime now = 0) {
    HttpRequest req;
    req.method = method;
    req.path = std::move(path);
    req.headers[CloudInstance::kSimTimeHeader] = std::to_string(now);
    if (!token_.empty()) req.headers["Authorization"] = "Bearer " + token_;
    return req;
  }

  /// Registers a device; stores the token for subsequent requests.
  world::DeviceId register_device(const std::string& imei = "111",
                                  const std::string& email = "a@b.c",
                                  SimTime now = 0) {
    HttpRequest req = request(Method::Post, "/api/register", now);
    req.headers.erase("Authorization");
    req.body = Json::object();
    req.body.set("imei", imei);
    req.body.set("email", email);
    const HttpResponse res = cloud_.router().handle(req);
    EXPECT_EQ(res.status, net::kStatusCreated);
    token_ = res.body.at("token").as_string();
    return static_cast<world::DeviceId>(res.body.at("user").as_int());
  }

  CloudInstance cloud_;
  std::string token_;
};

TEST_F(CloudFixture, RegistrationIssuesToken) {
  const world::DeviceId user = register_device();
  EXPECT_GE(user, 1u);
  EXPECT_FALSE(token_.empty());
  EXPECT_EQ(cloud_.tokens().registered_devices(), 1u);
}

TEST_F(CloudFixture, RegistrationRequiresImeiAndEmail) {
  HttpRequest req = request(Method::Post, "/api/register");
  req.body = Json::object();
  req.body.set("imei", "111");
  EXPECT_EQ(cloud_.router().handle(req).status, net::kStatusBadRequest);
}

TEST_F(CloudFixture, ReRegistrationIsIdempotentOnIdentity) {
  const world::DeviceId first = register_device("imei-x", "x@y.z");
  const world::DeviceId again = register_device("imei-x", "x@y.z");
  EXPECT_EQ(first, again);
  const world::DeviceId other = register_device("imei-y", "x@y.z");
  EXPECT_NE(first, other);
}

TEST_F(CloudFixture, EndpointsRejectMissingToken) {
  register_device();
  token_.clear();
  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/api/users/1/places"));
  EXPECT_EQ(res.status, net::kStatusUnauthorized);
}

TEST_F(CloudFixture, EndpointsRejectForeignUser) {
  register_device();  // user 1 with our token
  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/api/users/2/places"));
  EXPECT_EQ(res.status, net::kStatusUnauthorized);
}

TEST_F(CloudFixture, MetricsEndpointRequiresAuth) {
  register_device();
  token_.clear();
  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/metrics"));
  EXPECT_EQ(res.status, net::kStatusUnauthorized);
}

TEST_F(CloudFixture, MetricsEndpointServesPrometheusText) {
  register_device();
  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/metrics"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.body.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string& text = res.body.at("text").as_string();
  // The register request itself went through the observer, so the cloud's
  // own families are present in the scrape.
  EXPECT_NE(text.find("# TYPE cloud_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cloud_handler_wall_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("route=\"/api/register\""), std::string::npos);
}

TEST_F(CloudFixture, MetricsEndpointServesJsonFormat) {
  register_device();
  HttpRequest req = request(Method::Get, "/metrics");
  req.query["format"] = "json";
  const HttpResponse res = cloud_.router().handle(req);
  ASSERT_TRUE(res.ok());
  const Json& metrics = res.body.at("metrics");
  ASSERT_TRUE(metrics.contains("cloud_requests_total"));
  EXPECT_EQ(metrics.at("cloud_requests_total").at("kind").as_string(),
            "counter");
  EXPECT_GE(metrics.at("cloud_requests_total").at("series").size(), 1u);
}

TEST_F(CloudFixture, TokenExpiresAfterTtl) {
  register_device();
  const SimTime later = hours(29);  // past the 28h default TTL
  const HttpResponse res = cloud_.router().handle(
      request(Method::Get, "/api/users/1/places", later));
  EXPECT_EQ(res.status, net::kStatusUnauthorized);
}

TEST_F(CloudFixture, RefreshExtendsValidity) {
  register_device();
  HttpRequest refresh = request(Method::Post, "/api/token/refresh", hours(20));
  const HttpResponse res = cloud_.router().handle(refresh);
  ASSERT_TRUE(res.ok());
  token_ = res.body.at("token").as_string();
  const HttpResponse later = cloud_.router().handle(
      request(Method::Get, "/api/users/1/places", hours(30)));
  EXPECT_TRUE(later.ok());
}

TEST_F(CloudFixture, RefreshOfExpiredTokenFails) {
  register_device();
  const HttpResponse res = cloud_.router().handle(
      request(Method::Post, "/api/token/refresh", hours(48)));
  EXPECT_EQ(res.status, net::kStatusUnauthorized);
}

TEST_F(CloudFixture, OldTokenDiesAfterRefresh) {
  register_device();
  const std::string old_token = token_;
  const HttpResponse res = cloud_.router().handle(
      request(Method::Post, "/api/token/refresh", hours(1)));
  ASSERT_TRUE(res.ok());
  token_ = old_token;
  EXPECT_EQ(cloud_.router()
                .handle(request(Method::Get, "/api/users/1/places", hours(2)))
                .status,
            net::kStatusUnauthorized);
}

TEST_F(CloudFixture, PlaceSyncAndList) {
  const world::DeviceId user = register_device();
  core::PlaceRecord record;
  record.uid = 7;
  record.signature = algorithms::WifiSignature{{1, 2}};
  record.label = "home";
  HttpRequest put = request(Method::Put, "/api/users/1/places/7");
  put.body = core::to_json(record);
  ASSERT_EQ(cloud_.router().handle(put).status, net::kStatusCreated);

  const HttpResponse list =
      cloud_.router().handle(request(Method::Get, "/api/users/1/places"));
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.body.at("places").size(), 1u);
  EXPECT_EQ(list.body.at("places")[0].at("label").as_string(), "home");
  EXPECT_EQ(cloud_.storage().user(user).places.at(7).label, "home");
}

TEST_F(CloudFixture, PlaceLabelEndpoint) {
  register_device();
  core::PlaceRecord record;
  record.uid = 7;
  record.signature = algorithms::WifiSignature{{1}};
  HttpRequest put = request(Method::Put, "/api/users/1/places/7");
  put.body = core::to_json(record);
  cloud_.router().handle(put);

  HttpRequest label = request(Method::Post, "/api/users/1/places/7/label");
  label.body = Json::object();
  label.body.set("label", "workplace");
  EXPECT_TRUE(cloud_.router().handle(label).ok());
  EXPECT_EQ(cloud_.storage().user(1).places.at(7).label, "workplace");

  HttpRequest missing = request(Method::Post, "/api/users/1/places/99/label");
  missing.body = label.body;
  EXPECT_EQ(cloud_.router().handle(missing).status, net::kStatusNotFound);
}

TEST_F(CloudFixture, ProfileSyncRoundTrip) {
  register_device();
  core::MobilityProfile profile;
  profile.user = 1;
  profile.day = 3;
  profile.places = {{7, days(3) + hours(9), days(3) + hours(17)}};
  HttpRequest put = request(Method::Put, "/api/users/1/profiles/3");
  put.body = core::to_json(profile);
  ASSERT_EQ(cloud_.router().handle(put).status, net::kStatusCreated);

  const HttpResponse get =
      cloud_.router().handle(request(Method::Get, "/api/users/1/profiles/3"));
  ASSERT_TRUE(get.ok());
  const core::MobilityProfile decoded = core::profile_from_json(get.body);
  ASSERT_EQ(decoded.places.size(), 1u);
  EXPECT_EQ(decoded.places[0].place, 7u);

  EXPECT_EQ(cloud_.router()
                .handle(request(Method::Get, "/api/users/1/profiles/9"))
                .status,
            net::kStatusNotFound);
}

TEST_F(CloudFixture, GcaDiscoveryEndpoint) {
  register_device();
  HttpRequest discover = request(Method::Post, "/api/places/discover");
  Json observations = Json::array();
  // Oscillate between two cells for 2 hours.
  for (int i = 0; i < 120; ++i) {
    Json o = Json::object();
    o.set("t", i * 60);
    o.set("cell", core::to_json(world::CellId{
                      404, 10, 1, static_cast<std::uint32_t>(100 + i % 2),
                      world::Radio::Gsm2G}));
    observations.push_back(std::move(o));
  }
  discover.body = Json::object();
  discover.body.set("observations", std::move(observations));
  const HttpResponse res = cloud_.router().handle(discover);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.body.at("places").size(), 1u);
  EXPECT_GE(res.body.at("visits").size(), 1u);
  const auto sig = core::signature_from_json(
      res.body.at("places")[0].at("signature"));
  EXPECT_EQ(std::get<algorithms::CellSignature>(sig).cells.size(), 2u);
}

TEST_F(CloudFixture, RouteStoreEndpoints) {
  register_device();
  auto post_route = [this]() {
    HttpRequest post = request(Method::Post, "/api/users/1/routes");
    post.body = Json::object();
    post.body.set("from", 1);
    post.body.set("to", 2);
    post.body.set("start", hours(9));
    post.body.set("end", hours(9) + minutes(30));
    Json cells = Json::array();
    for (int i = 0; i < 5; ++i) {
      Json c = Json::object();
      c.set("t", hours(9) + i * 300);
      c.set("cell", core::to_json(world::CellId{
                        404, 10, 1, static_cast<std::uint32_t>(200 + i),
                        world::Radio::Gsm2G}));
      cells.push_back(std::move(c));
    }
    post.body.set("cells", std::move(cells));
    return cloud_.router().handle(post);
  };
  const HttpResponse first = post_route();
  ASSERT_EQ(first.status, net::kStatusCreated);
  const HttpResponse second = post_route();
  // Identical route deduplicates to the same uid.
  EXPECT_EQ(first.body.at("route_uid").as_int(),
            second.body.at("route_uid").as_int());

  HttpRequest get = request(Method::Get, "/api/users/1/routes");
  get.query["from"] = "1";
  get.query["to"] = "2";
  const HttpResponse routes = cloud_.router().handle(get);
  ASSERT_TRUE(routes.ok());
  ASSERT_EQ(routes.body.at("routes").size(), 1u);
  EXPECT_EQ(routes.body.at("routes")[0].at("use_count").as_int(), 2);
}

TEST_F(CloudFixture, ContactsEndpoints) {
  register_device();
  HttpRequest post = request(Method::Post, "/api/users/1/contacts");
  post.body = Json::object();
  Json encounters = Json::array();
  Json e = Json::object();
  e.set("contact", 5);
  e.set("place", 7);
  e.set("start", hours(9));
  e.set("end", hours(10));
  encounters.push_back(std::move(e));
  Json e2 = Json::object();
  e2.set("contact", 6);
  e2.set("place", 8);
  e2.set("start", hours(11));
  e2.set("end", hours(12));
  encounters.push_back(std::move(e2));
  post.body.set("encounters", std::move(encounters));
  ASSERT_EQ(cloud_.router().handle(post).status, net::kStatusCreated);

  HttpRequest get = request(Method::Get, "/api/users/1/contacts");
  get.query["place"] = "7";
  const HttpResponse res = cloud_.router().handle(get);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.body.at("encounters").size(), 1u);
  EXPECT_EQ(res.body.at("encounters")[0].at("contact").as_int(), 5);
}

TEST(CloudGeo, CellLookupEndpoint) {
  std::map<world::CellId, geo::LatLng> db;
  const world::CellId known{404, 10, 101, 1000, world::Radio::Gsm2G};
  db[known] = geo::LatLng{28.61, 77.21};
  CloudInstance cloud(CloudConfig{}, GeoLocationService(std::move(db)), Rng(2));

  HttpRequest reg;
  reg.method = Method::Post;
  reg.path = "/api/register";
  reg.headers[CloudInstance::kSimTimeHeader] = "0";
  reg.body = Json::object();
  reg.body.set("imei", "1");
  reg.body.set("email", "a@b");
  const std::string token =
      cloud.router().handle(reg).body.at("token").as_string();

  HttpRequest get;
  get.method = Method::Get;
  get.path = "/api/geo/cell/404/10/101/1000";
  get.headers[CloudInstance::kSimTimeHeader] = "0";
  get.headers["Authorization"] = "Bearer " + token;
  const HttpResponse res = cloud.router().handle(get);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res.body.at("lat").as_double(), 28.61, 1e-9);

  get.path = "/api/geo/cell/404/10/101/9999";
  EXPECT_EQ(cloud.router().handle(get).status, net::kStatusNotFound);
}

TEST_F(CloudFixture, AnalyticsEndpoints) {
  register_device();
  // Store 10 days of evening home arrivals at ~19:00 on weekdays.
  for (int day = 0; day < 10; ++day) {
    core::MobilityProfile profile;
    profile.user = 1;
    profile.day = day;
    profile.places.push_back(
        {7, start_of_day(day) + hours(19) + minutes(day % 3),
         start_of_day(day + 1) + hours(8)});
    HttpRequest put = request(
        Method::Put, "/api/users/1/profiles/" + std::to_string(day));
    put.body = core::to_json(profile);
    cloud_.router().handle(put);
  }
  core::PlaceRecord record;
  record.uid = 7;
  record.signature = algorithms::WifiSignature{{1}};
  record.label = "home";
  HttpRequest put = request(Method::Put, "/api/users/1/places/7");
  put.body = core::to_json(record);
  cloud_.router().handle(put);

  // Q1: typical evening arrival.
  const HttpResponse arrival = cloud_.router().handle(
      request(Method::Get, "/api/users/1/analytics/arrival/7"));
  ASSERT_TRUE(arrival.ok());
  EXPECT_NEAR(static_cast<double>(arrival.body.at("typical_arrival_tod").as_int()),
              static_cast<double>(hours(19) + minutes(1)), minutes(3));

  // Q2: next visit prediction. The query is days in the future, past the
  // token TTL — re-register (idempotent on identity) for a fresh token.
  register_device("111", "a@b.c", start_of_day(10) + hours(12));
  HttpRequest next = request(Method::Get, "/api/users/1/analytics/next_visit/7",
                             start_of_day(10) + hours(12));
  const HttpResponse next_res = cloud_.router().handle(next);
  ASSERT_TRUE(next_res.ok());
  const SimTime predicted = next_res.body.at("predicted_at").as_int();
  EXPECT_GT(predicted, start_of_day(10) + hours(12));
  EXPECT_NEAR(static_cast<double>(time_of_day(predicted)),
              static_cast<double>(hours(19)), minutes(10));

  // Q3: visit frequency by label.
  HttpRequest freq = request(Method::Get, "/api/users/1/analytics/frequency");
  freq.query["label"] = "home";
  const HttpResponse freq_res = cloud_.router().handle(freq);
  ASSERT_TRUE(freq_res.ok());
  EXPECT_NEAR(freq_res.body.at("visits_per_week").as_double(), 7.0, 0.5);

  // Unknown place: 404.
  EXPECT_EQ(cloud_.router()
                .handle(request(Method::Get, "/api/users/1/analytics/arrival/99"))
                .status,
            net::kStatusNotFound);
}

TEST(Analytics, PredictNextVisitSkipsNonVisitDays) {
  CloudStorage storage;
  // Visits only on weekdays 0-4 (Mon-Fri) for two weeks.
  for (int day = 0; day < 14; ++day) {
    if (day % 7 >= 5) continue;
    core::MobilityProfile profile;
    profile.user = 1;
    profile.day = day;
    profile.places.push_back({5, start_of_day(day) + hours(9),
                              start_of_day(day) + hours(17)});
    storage.user(1).profiles[day] = profile;
  }
  const AnalyticsEngine analytics(&storage);
  // Asking on Friday evening: next predicted visit is Monday, not Saturday.
  const auto predicted = analytics.predict_next_visit(
      1, 5, start_of_day(11) + hours(20));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(day_of(*predicted) % 7, 0);
  EXPECT_NEAR(static_cast<double>(time_of_day(*predicted)),
              static_cast<double>(hours(9)), minutes(5));
}

TEST(Analytics, NoDataMeansNoAnswer) {
  CloudStorage storage;
  const AnalyticsEngine analytics(&storage);
  EXPECT_FALSE(analytics.typical_arrival_tod(1, 5).has_value());
  EXPECT_FALSE(analytics.predict_next_visit(1, 5, 0).has_value());
  const std::vector<core::PlaceUid> places{5};
  EXPECT_DOUBLE_EQ(analytics.visit_frequency_per_week(1, places), 0.0);
}

TEST(TokenServiceUnit, ValidateExpiryBoundary) {
  TokenService tokens(Rng(1), hours(24));
  const TokenGrant grant = tokens.register_device("i", "e", 0);
  EXPECT_TRUE(tokens.validate(grant.token, hours(23)).has_value());
  EXPECT_FALSE(tokens.validate(grant.token, hours(24)).has_value());
  EXPECT_FALSE(tokens.validate("garbage", 0).has_value());
}


// ------------------------------------------------- diagnostics endpoints

TEST_F(CloudFixture, DiagnosticsEndpointsRequireAuth) {
  // Unlike /metrics, the diagnostics pages expose per-user storage counts
  // and trace trees — bearer-token territory.
  EXPECT_EQ(cloud_.router().handle(request(Method::Get, "/healthz")).status,
            net::kStatusUnauthorized);
  EXPECT_EQ(cloud_.router().handle(request(Method::Get, "/tracez")).status,
            net::kStatusUnauthorized);
  register_device();
  EXPECT_EQ(cloud_.router().handle(request(Method::Get, "/healthz")).status,
            net::kStatusOk);
  EXPECT_EQ(cloud_.router().handle(request(Method::Get, "/tracez")).status,
            net::kStatusOk);
}

TEST_F(CloudFixture, HealthzReportsStorageAndErrorCounts) {
  const world::DeviceId user = register_device();
  cloud_.storage().user(user).places[7] = core::PlaceRecord{};
  // A foreign-user probe: 401, which must show up in errors_by_route.
  EXPECT_EQ(cloud_.router()
                .handle(request(Method::Get, "/api/users/999/places"))
                .status,
            net::kStatusUnauthorized);

  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/healthz", hours(5)));
  ASSERT_EQ(res.status, net::kStatusOk);
  EXPECT_EQ(res.body.at("status").as_string(), "ok");
  EXPECT_EQ(res.body.at("sim_time").as_int(), hours(5));
  EXPECT_GE(res.body.at("uptime_wall_s").as_double(), 0.0);
  EXPECT_GE(res.body.at("routes").as_int(), 20);

  const Json& storage = res.body.at("storage");
  EXPECT_EQ(storage.at("users").as_int(), 1);
  EXPECT_EQ(storage.at("places").as_int(), 1);
  EXPECT_EQ(storage.at("profiles").as_int(), 0);

  // The registry is process-wide, so other routes may have errors from
  // earlier tests; the probe's route must be present with at least one.
  const Json& errors = res.body.at("errors_by_route");
  ASSERT_TRUE(errors.contains("/api/users/:id/places"));
  EXPECT_GE(errors.at("/api/users/:id/places").as_int(), 1);

  EXPECT_TRUE(res.body.at("tracing").contains("spans"));
  EXPECT_TRUE(res.body.at("tracing").contains("dropped"));
  EXPECT_TRUE(res.body.at("logs").contains("total"));
  EXPECT_TRUE(res.body.at("logs").contains("retained"));
}

TEST_F(CloudFixture, TracezServesSlowestTracesWithSloCounters) {
  register_device();
  telemetry::tracer().reset();

  // Drive two traced requests through the REST client so /tracez has trace
  // trees to rank (direct router calls carry no trace context).
  net::RestClient client(&cloud_.router(), net::NetworkConditions{0.0, 1},
                         Rng(9));
  for (int i = 0; i < 2; ++i) {
    HttpRequest traced = request(Method::Get, "/api/users/1/places");
    ASSERT_TRUE(client.send(traced).ok());
  }

  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/tracez"));
  ASSERT_EQ(res.status, net::kStatusOk);
  EXPECT_DOUBLE_EQ(res.body.at("slo_threshold_us").as_double(), 1000.0);
  EXPECT_TRUE(res.body.at("slo_violations_by_route").is_object());

  const Json& traces = res.body.at("slowest_traces");
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].at("root").as_string(),
            "net.send GET /api/users/:n/places");
  EXPECT_EQ(traces[0].at("span_count").as_int(), 2);
  EXPECT_GE(traces[0].at("wall_us").as_double(),
            traces[1].at("wall_us").as_double());
  // Each embedded tree carries the cloud handler span under the client span.
  EXPECT_EQ(traces[0].at("spans")[1].at("name").as_string(),
            "cloud./api/users/:id/places");

  // ?n caps the list.
  HttpRequest capped = request(Method::Get, "/tracez");
  capped.query["n"] = "1";
  EXPECT_EQ(cloud_.router().handle(capped).body.at("slowest_traces").size(),
            1u);
}

// --- Sharded storage -------------------------------------------------------

/// Deterministic multi-user content: `users` users, each with a couple of
/// places, profiles, one route, and encounters, written through the
/// unsynchronized accessor (single-threaded seeding).
void seed_storage(CloudStorage& storage, world::DeviceId users) {
  for (world::DeviceId id = 1; id <= users; ++id) {
    UserStore& store = storage.user(id);
    for (core::PlaceUid uid = 1; uid <= 1 + id % 3; ++uid) {
      core::PlaceRecord record;
      record.uid = uid;
      record.label = "place-" + std::to_string(uid);
      record.visit_count = static_cast<std::size_t>(id);
      store.places[uid] = record;
    }
    for (std::int64_t day = 0; day < 1 + static_cast<std::int64_t>(id % 2);
         ++day) {
      core::MobilityProfile profile;
      profile.user = id;
      profile.day = day;
      profile.places.push_back({1, start_of_day(day) + hours(8),
                                start_of_day(day) + hours(17)});
      store.profiles[day] = profile;
    }
    algorithms::RouteObservation obs;
    obs.from_place = 1;
    obs.to_place = 2;
    obs.window = TimeWindow{hours(8), hours(9)};
    store.routes.add(std::move(obs));
    store.encounters.push_back({id + 1000, 1, hours(9), hours(10)});
  }
}

TEST(ShardedStorage, StatsEqualSumOfPerUserTruth) {
  CloudStorage storage(16);
  const world::DeviceId users = 40;
  seed_storage(storage, users);

  CloudStorage::Stats expected;
  for (world::DeviceId id = 1; id <= users; ++id) {
    const UserStore* store = storage.find_user(id);
    ASSERT_NE(store, nullptr);
    ++expected.users;
    expected.places += store->places.size();
    expected.profiles += store->profiles.size();
    expected.routes += store->routes.routes().size();
    expected.encounters += store->encounters.size();
  }
  EXPECT_EQ(storage.stats(), expected);
  EXPECT_EQ(storage.user_count(), users);
}

TEST(ShardedStorage, ShardPlacementIsStableAndCoversAllShards) {
  CloudStorage storage(16);
  std::set<std::size_t> seen;
  for (world::DeviceId id = 1; id <= 200; ++id) {
    const std::size_t s = storage.shard_of(id);
    EXPECT_LT(s, storage.shard_count());
    EXPECT_EQ(s, storage.shard_of(id));  // stable
    seen.insert(s);
  }
  // splitmix64 spreads 200 sequential ids across all 16 shards.
  EXPECT_EQ(seen.size(), storage.shard_count());
}

TEST(ShardedStorage, EraseUserLeavesOtherShardsUntouched) {
  CloudStorage storage(8);
  seed_storage(storage, 24);
  const world::DeviceId victim = 7;

  // Per-user digests of everyone else, plus a same-shard neighbor check:
  // at 24 users over 8 shards, some user shares the victim's shard.
  std::map<world::DeviceId, CloudStorage::Stats> before;
  for (world::DeviceId id = 1; id <= 24; ++id) {
    if (id == victim) continue;
    const UserStore* store = storage.find_user(id);
    CloudStorage::Stats s;
    s.places = store->places.size();
    s.profiles = store->profiles.size();
    s.routes = store->routes.routes().size();
    s.encounters = store->encounters.size();
    before[id] = s;
  }

  EXPECT_TRUE(storage.erase_user(victim));
  EXPECT_FALSE(storage.erase_user(victim));  // already gone
  EXPECT_EQ(storage.find_user(victim), nullptr);
  EXPECT_EQ(storage.user_count(), 23u);

  for (const auto& [id, expected] : before) {
    const UserStore* store = storage.find_user(id);
    ASSERT_NE(store, nullptr) << "user " << id << " lost by erase";
    EXPECT_EQ(store->places.size(), expected.places);
    EXPECT_EQ(store->profiles.size(), expected.profiles);
    EXPECT_EQ(store->routes.routes().size(), expected.routes);
    EXPECT_EQ(store->encounters.size(), expected.encounters);
  }
}

TEST(ShardedStorage, DigestAndStatsInvariantUnderShardCount) {
  CloudStorage one(1), four(4), sixteen(16);
  seed_storage(one, 30);
  seed_storage(four, 30);
  seed_storage(sixteen, 30);
  EXPECT_EQ(one.content_digest(), sixteen.content_digest());
  EXPECT_EQ(four.content_digest(), sixteen.content_digest());
  EXPECT_EQ(one.stats(), sixteen.stats());
  EXPECT_EQ(four.stats(), sixteen.stats());
  EXPECT_NE(one.content_digest(), 0u);
}

TEST(ShardedStorage, CopyAssignRedistributesAcrossLayouts) {
  CloudStorage source(1);
  seed_storage(source, 20);
  CloudStorage dest(16);
  dest = source;  // the fixture-injection path used by analytics tests
  EXPECT_EQ(dest.shard_count(), 16u);
  EXPECT_EQ(dest.stats(), source.stats());
  EXPECT_EQ(dest.content_digest(), source.content_digest());
  // Copies are independent.
  dest.erase_user(3);
  EXPECT_NE(dest.stats(), source.stats());
  EXPECT_NE(source.find_user(3), nullptr);
}

TEST_F(CloudFixture, MetricsExposeShardTelemetry) {
  register_device();
  // A per-user write routes through the owning shard's lock, which records
  // the per-shard counter and the lock-wait histogram.
  HttpRequest put = request(Method::Put, "/api/users/1/places/5");
  core::PlaceRecord record;
  record.uid = 5;
  put.body = core::to_json(record);
  ASSERT_EQ(cloud_.router().handle(put).status, net::kStatusCreated);

  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/metrics"));
  ASSERT_TRUE(res.ok());
  const std::string& text = res.body.at("text").as_string();
  EXPECT_NE(text.find("# TYPE cloud_shard_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("cloud_shard_requests_total{shard="), std::string::npos);
  EXPECT_NE(text.find("# TYPE cloud_shard_lock_wait_us histogram"),
            std::string::npos);
}

TEST_F(CloudFixture, HealthzReportsShardCount) {
  register_device();
  const HttpResponse res =
      cloud_.router().handle(request(Method::Get, "/healthz"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.body.at("storage").at("shards").as_int(),
            static_cast<std::int64_t>(CloudStorage::kDefaultShards));
}

TEST_F(CloudFixture, RegistrationCountsSessionsPerDevice) {
  HttpRequest req = request(Method::Post, "/api/register");
  req.headers.erase("Authorization");
  req.body = Json::object();
  req.body.set("imei", "imei-s");
  req.body.set("email", "s@x.y");
  const HttpResponse first = cloud_.router().handle(req);
  ASSERT_EQ(first.status, net::kStatusCreated);
  EXPECT_EQ(first.body.at("session").as_int(), 1);
  const HttpResponse again = cloud_.router().handle(req);
  ASSERT_EQ(again.status, net::kStatusCreated);
  EXPECT_EQ(again.body.at("session").as_int(), 2);
  // A different device has its own session sequence.
  req.body.set("imei", "imei-t");
  EXPECT_EQ(cloud_.router().handle(req).body.at("session").as_int(), 1);
}

// The wipe-tombstone invariant: after a privacy wipe, a replayed write
// carrying the wiped incarnation's session can never resurrect pre-wipe
// data, while the re-registered incarnation (strictly newer session)
// writes freely. Sharding-labeled because the tombstone map lives on the
// per-user shard and must survive the erase that empties the shard.
TEST_F(CloudFixture, WipeTombstoneRejectsOldSessionReplay) {
  const world::DeviceId user = register_device("imei-w", "w@x.y");
  const std::string base = "/api/users/" + std::to_string(user);

  HttpRequest put = request(Method::Put, base + "/places/7");
  core::PlaceRecord record;
  record.uid = 7;
  put.body = core::to_json(record);
  put.headers[net::kSessionHeader] = "1";
  ASSERT_EQ(cloud_.router().handle(put).status, net::kStatusCreated);

  // Session-qualified privacy wipe raises the tombstone at session 1.
  HttpRequest wipe = request(Method::Delete, base);
  wipe.headers[net::kSessionHeader] = "1";
  ASSERT_TRUE(cloud_.router().handle(wipe).ok());
  EXPECT_EQ(cloud_.storage().find_user(user), nullptr);

  // The device re-registers: session 2.
  const world::DeviceId again = register_device("imei-w", "w@x.y");
  ASSERT_EQ(again, user);

  // A replayed outbox write from the wiped incarnation is refused 410...
  HttpRequest replay = request(Method::Put, base + "/places/7");
  replay.body = core::to_json(record);
  replay.headers[net::kSessionHeader] = "1";
  EXPECT_EQ(cloud_.router().handle(replay).status, net::kStatusGone);
  // ...as is a write carrying no session at all (pre-session client)...
  HttpRequest sessionless = request(Method::Put, base + "/places/7");
  sessionless.body = core::to_json(record);
  EXPECT_EQ(cloud_.router().handle(sessionless).status, net::kStatusGone);
  // ...while the new incarnation writes through.
  HttpRequest fresh = request(Method::Put, base + "/places/8");
  core::PlaceRecord fresh_record;
  fresh_record.uid = 8;
  fresh.body = core::to_json(fresh_record);
  fresh.headers[net::kSessionHeader] = "2";
  EXPECT_EQ(cloud_.router().handle(fresh).status, net::kStatusCreated);

  // The resurrected write never landed.
  const auto* store = cloud_.storage().find_user(user);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->places.count(7), 0u);
  EXPECT_EQ(store->places.count(8), 1u);
  EXPECT_GE(telemetry::registry().family_total(
                "cloud_tombstone_rejections_total"),
            2u);
}

TEST_F(CloudFixture, SessionlessWipeErasesWithoutFencing) {
  const world::DeviceId user = register_device("imei-v", "v@x.y");
  const std::string base = "/api/users/" + std::to_string(user);
  // A wipe with no session header (legacy admin path) erases the account
  // but raises no tombstone: later writes are not fenced.
  ASSERT_TRUE(cloud_.router().handle(request(Method::Delete, base)).ok());
  EXPECT_EQ(cloud_.storage().find_user(user), nullptr);
  HttpRequest put = request(Method::Put, base + "/places/3");
  core::PlaceRecord record;
  record.uid = 3;
  put.body = core::to_json(record);
  EXPECT_EQ(cloud_.router().handle(put).status, net::kStatusCreated);
}

}  // namespace
}  // namespace pmware::cloud
