#include "geo/latlng.hpp"
#include "geo/polyline.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pmware::geo {
namespace {

constexpr LatLng kDelhi{28.6139, 77.2090};

TEST(LatLng, DistanceToSelfIsZero) {
  EXPECT_DOUBLE_EQ(distance_m(kDelhi, kDelhi), 0.0);
}

TEST(LatLng, DistanceSymmetry) {
  const LatLng a{28.6, 77.2};
  const LatLng b{28.7, 77.3};
  EXPECT_DOUBLE_EQ(distance_m(a, b), distance_m(b, a));
}

TEST(LatLng, KnownDistanceOneDegreeLatitude) {
  const LatLng a{28.0, 77.0};
  const LatLng b{29.0, 77.0};
  // One degree of latitude is ~111.2 km on the spherical model.
  EXPECT_NEAR(distance_m(a, b), 111195, 100);
}

TEST(LatLng, BearingCardinalDirections) {
  EXPECT_NEAR(bearing_deg(kDelhi, destination(kDelhi, 0, 1000)), 0, 0.5);
  EXPECT_NEAR(bearing_deg(kDelhi, destination(kDelhi, 90, 1000)), 90, 0.5);
  EXPECT_NEAR(bearing_deg(kDelhi, destination(kDelhi, 180, 1000)), 180, 0.5);
  EXPECT_NEAR(bearing_deg(kDelhi, destination(kDelhi, 270, 1000)), 270, 0.5);
}

TEST(LatLng, DestinationDistanceRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double bearing = rng.uniform(0, 360);
    const double dist = rng.uniform(1, 20000);
    const LatLng p = destination(kDelhi, bearing, dist);
    EXPECT_NEAR(distance_m(kDelhi, p), dist, dist * 1e-6 + 0.01);
  }
}

TEST(LatLng, CentroidOfSymmetricPoints) {
  const std::vector<LatLng> points{{28.0, 77.0}, {29.0, 78.0}};
  const LatLng c = centroid(points);
  EXPECT_DOUBLE_EQ(c.lat, 28.5);
  EXPECT_DOUBLE_EQ(c.lng, 77.5);
}

TEST(LatLng, CentroidThrowsOnEmpty) {
  EXPECT_THROW(centroid({}), std::invalid_argument);
}

TEST(LatLng, Lerp) {
  const LatLng a{28.0, 77.0};
  const LatLng b{29.0, 78.0};
  const LatLng mid = lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.lat, 28.5);
  EXPECT_DOUBLE_EQ(mid.lng, 77.5);
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
}

TEST(BoundingBox, OfPoints) {
  const std::vector<LatLng> pts{{28.1, 77.5}, {28.9, 77.1}, {28.5, 77.9}};
  const BoundingBox box = BoundingBox::of(pts);
  EXPECT_DOUBLE_EQ(box.min_lat, 28.1);
  EXPECT_DOUBLE_EQ(box.max_lat, 28.9);
  EXPECT_DOUBLE_EQ(box.min_lng, 77.1);
  EXPECT_DOUBLE_EQ(box.max_lng, 77.9);
  for (const auto& p : pts) EXPECT_TRUE(box.contains(p));
  EXPECT_THROW(BoundingBox::of({}), std::invalid_argument);
}

TEST(BoundingBox, ExpandedContainsNearbyPoints) {
  const BoundingBox box = BoundingBox::of({kDelhi}).expanded(1000);
  EXPECT_TRUE(box.contains(destination(kDelhi, 45, 900)));
  EXPECT_FALSE(box.contains(destination(kDelhi, 0, 5000)));
}

TEST(Enu, RoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const EnuOffset off{rng.uniform(-5000, 5000), rng.uniform(-5000, 5000)};
    const LatLng p = from_enu(kDelhi, off);
    const EnuOffset back = to_enu(kDelhi, p);
    EXPECT_NEAR(back.east_m, off.east_m, 0.01);
    EXPECT_NEAR(back.north_m, off.north_m, 0.01);
  }
}

TEST(Enu, MatchesHaversineAtCityScale) {
  const LatLng p = destination(kDelhi, 30, 3000);
  const EnuOffset off = to_enu(kDelhi, p);
  const double enu_dist = std::hypot(off.east_m, off.north_m);
  EXPECT_NEAR(enu_dist, 3000, 3);
}

TEST(Polyline, LengthOfStraightSegments) {
  const LatLng a = kDelhi;
  const LatLng b = destination(a, 90, 1000);
  const LatLng c = destination(b, 0, 500);
  const std::vector<LatLng> line{a, b, c};
  EXPECT_NEAR(polyline_length_m(line), 1500, 1);
  EXPECT_DOUBLE_EQ(polyline_length_m({a}), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length_m({}), 0.0);
}

TEST(Polyline, PointAlong) {
  const LatLng a = kDelhi;
  const LatLng b = destination(a, 90, 1000);
  const std::vector<LatLng> line{a, b};
  EXPECT_NEAR(distance_m(point_along(line, 0), a), 0, 0.1);
  EXPECT_NEAR(distance_m(point_along(line, 500), a), 500, 1);
  EXPECT_NEAR(distance_m(point_along(line, 2000), b), 0, 0.1);  // clamped
  EXPECT_NEAR(distance_m(point_along(line, -5), a), 0, 0.1);    // clamped
  EXPECT_THROW(point_along({}, 10), std::invalid_argument);
}

TEST(Polyline, ResampleSpacing) {
  const LatLng a = kDelhi;
  const LatLng b = destination(a, 90, 1000);
  const auto pts = resample({a, b}, 100);
  EXPECT_EQ(pts.size(), 11u);  // 0,100,...,900 plus endpoint
  for (std::size_t i = 1; i + 1 < pts.size(); ++i)
    EXPECT_NEAR(distance_m(pts[i - 1], pts[i]), 100, 1);
  EXPECT_THROW(resample({a, b}, 0), std::invalid_argument);
  EXPECT_THROW(resample({}, 10), std::invalid_argument);
}

TEST(Polyline, DistanceToPolyline) {
  const LatLng a = kDelhi;
  const LatLng b = destination(a, 90, 1000);
  const std::vector<LatLng> line{a, b};
  // Point 200m north of the segment midpoint.
  const LatLng mid = destination(a, 90, 500);
  const LatLng off = destination(mid, 0, 200);
  EXPECT_NEAR(distance_to_polyline_m(off, line), 200, 2);
  // Point beyond the end: distance to the endpoint.
  const LatLng past = destination(b, 90, 300);
  EXPECT_NEAR(distance_to_polyline_m(past, line), 300, 2);
  EXPECT_THROW(distance_to_polyline_m(a, {}), std::invalid_argument);
}

struct TriangleCase {
  double bearing1;
  double dist1;
  double bearing2;
  double dist2;
};

class TriangleInequality : public ::testing::TestWithParam<TriangleCase> {};

TEST_P(TriangleInequality, Holds) {
  const auto& c = GetParam();
  const LatLng a = kDelhi;
  const LatLng b = destination(a, c.bearing1, c.dist1);
  const LatLng d = destination(b, c.bearing2, c.dist2);
  EXPECT_LE(distance_m(a, d), distance_m(a, b) + distance_m(b, d) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Cases, TriangleInequality,
                         ::testing::Values(TriangleCase{0, 1000, 90, 1000},
                                           TriangleCase{45, 5000, 225, 2500},
                                           TriangleCase{120, 300, 10, 8000},
                                           TriangleCase{300, 50, 300, 50}));

}  // namespace
}  // namespace pmware::geo
