#include "algorithms/routes.hpp"

#include <gtest/gtest.h>

namespace pmware::algorithms {
namespace {

constexpr geo::LatLng kBase{28.6139, 77.2090};

using world::CellId;

CellId cell(std::uint32_t cid) {
  return CellId{404, 10, 1, cid, world::Radio::Gsm2G};
}

GpsRoute straight_route(double bearing, double length_m, int points) {
  GpsRoute route;
  for (int i = 0; i < points; ++i) {
    route.times.push_back(i * 60);
    route.points.push_back(
        geo::destination(kBase, bearing, length_m * i / (points - 1)));
  }
  return route;
}

CellRoute cell_route(std::initializer_list<std::uint32_t> cids) {
  CellRoute route;
  SimTime t = 0;
  for (std::uint32_t cid : cids) {
    route.times.push_back(t);
    route.cells.push_back(cell(cid));
    t += 60;
  }
  return route;
}

TEST(GpsRouteSimilarity, IdenticalRoutesAreOne) {
  const GpsRoute r = straight_route(90, 2000, 20);
  EXPECT_DOUBLE_EQ(gps_route_similarity(r, r), 1.0);
}

TEST(GpsRouteSimilarity, ParallelNearbyRoutesAreSimilar) {
  const GpsRoute a = straight_route(90, 2000, 20);
  GpsRoute b = straight_route(90, 2000, 20);
  for (auto& p : b.points) p = geo::destination(p, 0, 80);  // 80 m offset
  EXPECT_GT(gps_route_similarity(a, b, 150), 0.9);
}

TEST(GpsRouteSimilarity, DistantRoutesAreDissimilar) {
  const GpsRoute a = straight_route(90, 2000, 20);
  GpsRoute b = straight_route(90, 2000, 20);
  for (auto& p : b.points) p = geo::destination(p, 0, 1000);
  EXPECT_LT(gps_route_similarity(a, b, 150), 0.1);
}

TEST(GpsRouteSimilarity, PartialOverlapIsSymmetricMin) {
  // b covers only half of a's corridor.
  const GpsRoute a = straight_route(90, 2000, 21);
  const GpsRoute b = straight_route(90, 1000, 11);
  const double sim = gps_route_similarity(a, b, 150);
  EXPECT_GT(sim, 0.3);
  EXPECT_LT(sim, 0.8);
  EXPECT_DOUBLE_EQ(sim, gps_route_similarity(b, a, 150));
}

TEST(GpsRouteSimilarity, DegenerateRoutesScoreZero) {
  GpsRoute tiny;
  tiny.times.push_back(0);
  tiny.points.push_back(kBase);
  const GpsRoute real = straight_route(90, 1000, 10);
  EXPECT_DOUBLE_EQ(gps_route_similarity(tiny, real), 0.0);
  EXPECT_DOUBLE_EQ(gps_route_similarity(GpsRoute{}, real), 0.0);
}

TEST(CellRouteSimilarity, IdenticalIsOne) {
  const CellRoute r = cell_route({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cell_route_similarity(r, r), 1.0);
}

TEST(CellRouteSimilarity, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(
      cell_route_similarity(cell_route({1, 2, 3}), cell_route({7, 8, 9})), 0.0);
}

TEST(CellRouteSimilarity, ReversedRouteScoresLowerThanSameDirection) {
  const CellRoute forward = cell_route({1, 2, 3, 4, 5});
  const CellRoute reversed = cell_route({5, 4, 3, 2, 1});
  EXPECT_LT(cell_route_similarity(forward, reversed),
            cell_route_similarity(forward, forward));
  // Same cells: Jaccard component is 1, order component small.
  EXPECT_GT(cell_route_similarity(forward, reversed), 0.4);
}

TEST(CellRouteSimilarity, OscillationDuplicatesAreCollapsed) {
  const CellRoute clean = cell_route({1, 2, 3});
  const CellRoute noisy = cell_route({1, 1, 2, 2, 2, 3});
  EXPECT_NEAR(cell_route_similarity(clean, noisy), 1.0, 1e-9);
}

TEST(CellRouteSimilarity, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(cell_route_similarity(CellRoute{}, cell_route({1})), 0.0);
}

RouteObservation gps_obs(std::size_t from, std::size_t to, double bearing,
                         double offset_m = 0) {
  RouteObservation obs;
  obs.from_place = from;
  obs.to_place = to;
  obs.window = TimeWindow{0, minutes(20)};
  obs.gps = straight_route(bearing, 2000, 20);
  if (offset_m > 0)
    for (auto& p : obs.gps.points) p = geo::destination(p, 0, offset_m);
  return obs;
}

TEST(RouteStore, DeduplicatesSimilarRoutes) {
  RouteStore store;
  const std::size_t a = store.add(gps_obs(1, 2, 90));
  const std::size_t b = store.add(gps_obs(1, 2, 90, 50));
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.routes().size(), 1u);
  EXPECT_EQ(store.routes()[0].use_count, 2u);
}

TEST(RouteStore, DifferentPathsAreDistinctRoutes) {
  RouteStore store;
  const std::size_t a = store.add(gps_obs(1, 2, 90));
  const std::size_t b = store.add(gps_obs(1, 2, 90, 2000));
  EXPECT_NE(a, b);
  EXPECT_EQ(store.routes().size(), 2u);
}

TEST(RouteStore, DifferentEndpointsNeverMerge) {
  RouteStore store;
  const std::size_t a = store.add(gps_obs(1, 2, 90));
  const std::size_t b = store.add(gps_obs(1, 3, 90));
  EXPECT_NE(a, b);
}

TEST(RouteStore, CellRoutesDeduplicate) {
  RouteStore store;
  RouteObservation obs1;
  obs1.from_place = 5;
  obs1.to_place = 6;
  obs1.window = TimeWindow{0, 600};
  obs1.cells = cell_route({1, 2, 3, 4});
  RouteObservation obs2 = obs1;
  obs2.cells = cell_route({1, 2, 2, 3, 4});
  EXPECT_EQ(store.add(obs1), store.add(obs2));
}

TEST(RouteStore, BetweenOrdersByUsage) {
  RouteStore store;
  store.add(gps_obs(1, 2, 90));           // route 0
  store.add(gps_obs(1, 2, 90, 3000));     // route 1 (alternate path)
  store.add(gps_obs(1, 2, 90, 3000));     // boost route 1
  store.add(gps_obs(1, 2, 90, 3000));
  store.add(gps_obs(3, 4, 0));            // unrelated pair
  const auto between = store.between(1, 2);
  ASSERT_EQ(between.size(), 2u);
  EXPECT_EQ(between[0], 1u);  // most used first
  EXPECT_EQ(between[1], 0u);
  EXPECT_TRUE(store.between(9, 9).empty());
}

}  // namespace
}  // namespace pmware::algorithms
