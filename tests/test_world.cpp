#include "world/world.hpp"

#include <gtest/gtest.h>

#include <set>

#include "world/spatial_index.hpp"

namespace pmware::world {
namespace {

std::shared_ptr<const World> make_world(std::uint64_t seed = 1,
                                        RegionProfile region = RegionProfile::india()) {
  WorldConfig config;
  config.region = region;
  Rng rng(seed);
  return generate_world(config, rng);
}

TEST(WorldGen, PoiCountsMatchMix) {
  const auto world = make_world();
  const PoiMix mix;
  EXPECT_EQ(world->all_of_category(PlaceCategory::Home).size(),
            static_cast<std::size_t>(mix.homes));
  EXPECT_EQ(world->all_of_category(PlaceCategory::Workplace).size(),
            static_cast<std::size_t>(mix.workplaces));
  EXPECT_EQ(world->all_of_category(PlaceCategory::Market).size(),
            static_cast<std::size_t>(mix.markets));
  // Campus cluster adds exactly one academic building and one library.
  EXPECT_EQ(world->all_of_category(PlaceCategory::AcademicBuilding).size(), 1u);
  EXPECT_EQ(world->all_of_category(PlaceCategory::Library).size(), 1u);
}

TEST(WorldGen, PlaceIdsAreSequential) {
  const auto world = make_world();
  for (std::size_t i = 0; i < world->places().size(); ++i)
    EXPECT_EQ(world->places()[i].id, static_cast<PlaceId>(i));
}

TEST(WorldGen, CampusClusterIsAdjacent) {
  const auto world = make_world();
  const auto academic = world->find_category(PlaceCategory::AcademicBuilding);
  const auto library = world->find_category(PlaceCategory::Library);
  ASSERT_TRUE(academic && library);
  const double d = geo::distance_m(world->place(*academic).center,
                                   world->place(*library).center);
  EXPECT_NEAR(d, 90, 5);
  EXPECT_TRUE(world->place(*academic).has_wifi);
  EXPECT_TRUE(world->place(*library).has_wifi);
}

TEST(WorldGen, AdjacentPairsExist) {
  const auto world = make_world();
  const auto market = world->find_category(PlaceCategory::Market);
  const auto restaurant = world->find_category(PlaceCategory::Restaurant);
  ASSERT_TRUE(market && restaurant);
  EXPECT_NEAR(geo::distance_m(world->place(*market).center,
                              world->place(*restaurant).center),
              75, 5);
}

TEST(WorldGen, WifiCoverageTracksRegionProfile) {
  // Average over several seeds to smooth the Bernoulli draw.
  int with_wifi = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto world = make_world(seed);
    for (const auto& p : world->places()) {
      ++total;
      if (p.has_wifi) ++with_wifi;
    }
  }
  const double coverage = static_cast<double>(with_wifi) / total;
  EXPECT_NEAR(coverage, RegionProfile::india().wifi_place_coverage, 0.12);
}

TEST(WorldGen, SwitzerlandHasMoreWifiAndDenserTowers) {
  const auto india = make_world(3, RegionProfile::india());
  const auto swiss = make_world(3, RegionProfile::switzerland());
  EXPECT_GT(swiss->aps().size(), india->aps().size());
  EXPECT_GT(swiss->towers().size(), india->towers().size());
}

TEST(WorldGen, TwoRadioLayersPresent) {
  const auto world = make_world();
  bool has_2g = false, has_3g = false;
  for (const auto& t : world->towers()) {
    if (t.cell.radio == Radio::Gsm2G) has_2g = true;
    if (t.cell.radio == Radio::Umts3G) has_3g = true;
  }
  EXPECT_TRUE(has_2g);
  EXPECT_TRUE(has_3g);
}

TEST(WorldGen, CellIdsAreUnique) {
  const auto world = make_world();
  std::set<CellId> ids;
  for (const auto& t : world->towers()) ids.insert(t.cell);
  EXPECT_EQ(ids.size(), world->towers().size());
}

TEST(WorldGen, BssidsAreUnique) {
  const auto world = make_world();
  std::set<Bssid> ids;
  for (const auto& ap : world->aps()) ids.insert(ap.bssid);
  EXPECT_EQ(ids.size(), world->aps().size());
}

TEST(WorldGen, PlaceApsBelongToWifiPlaces) {
  const auto world = make_world();
  for (const auto& ap : world->aps()) {
    if (ap.place == kNoPlace) continue;
    const Place& p = world->place(ap.place);
    EXPECT_TRUE(p.has_wifi);
    EXPECT_LE(geo::distance_m(ap.pos, p.center), p.radius_m + 1);
  }
}

TEST(WorldGen, DeterministicForSameSeed) {
  const auto a = make_world(7);
  const auto b = make_world(7);
  ASSERT_EQ(a->places().size(), b->places().size());
  for (std::size_t i = 0; i < a->places().size(); ++i) {
    EXPECT_EQ(a->places()[i].center.lat, b->places()[i].center.lat);
    EXPECT_EQ(a->places()[i].has_wifi, b->places()[i].has_wifi);
  }
  ASSERT_EQ(a->towers().size(), b->towers().size());
  EXPECT_EQ(a->towers()[5].cell, b->towers()[5].cell);
}

TEST(WorldQuery, HearableCellsSortedAndDetectable) {
  const auto world = make_world();
  const geo::LatLng pos = world->place(0).center;
  const auto cells = world->hearable_cells(pos, 0);
  ASSERT_FALSE(cells.empty());
  for (std::size_t i = 1; i < cells.size(); ++i)
    EXPECT_GE(cells[i - 1].rssi_dbm, cells[i].rssi_dbm);
  for (const auto& c : cells) EXPECT_GE(c.rssi_dbm, kCellDetectionDbm);
}

TEST(WorldQuery, StrongestCellIsNearby) {
  const auto world = make_world();
  const geo::LatLng pos = world->place(3).center;
  const auto cells = world->hearable_cells(pos);
  ASSERT_FALSE(cells.empty());
  const auto& tower = world->towers().at(cells.front().tower);
  EXPECT_LT(geo::distance_m(pos, tower.pos), 2500);
}

TEST(WorldQuery, VisibleApsAtWifiPlace) {
  const auto world = make_world();
  for (const auto& p : world->places()) {
    if (!p.has_wifi) continue;
    const auto aps = world->visible_aps(p.center, 0);
    // The place's own APs must be visible at its center.
    bool own_visible = false;
    for (const auto& ap : aps)
      if (ap.place == p.id) own_visible = true;
    EXPECT_TRUE(own_visible) << p.name;
  }
}

TEST(WorldQuery, PlaceAtCenterAndOutside) {
  const auto world = make_world();
  const Place& p = world->place(5);
  const auto at_center = world->place_at(p.center);
  ASSERT_TRUE(at_center.has_value());
  EXPECT_EQ(*at_center, p.id);
  // 5 km straight up from the SW corner region is open space (outside any
  // 150m-margin place footprint with high probability) — check far corner.
  const geo::LatLng outside =
      geo::destination(world->config().origin, 225, 2000);
  EXPECT_FALSE(world->place_at(outside).has_value());
}

TEST(WorldQuery, PlacesNearFindsNeighbors) {
  const auto world = make_world();
  const auto market = world->find_category(PlaceCategory::Market);
  ASSERT_TRUE(market);
  const auto near = world->places_near(world->place(*market).center, 100);
  // At least the market itself and its relocated restaurant neighbour.
  EXPECT_GE(near.size(), 2u);
}

TEST(WorldQuery, CellLocationDbCoversAllTowers) {
  const auto world = make_world();
  const auto db = world->cell_location_db();
  EXPECT_EQ(db.size(), world->towers().size());
  for (const auto& t : world->towers()) {
    ASSERT_TRUE(db.count(t.cell));
    EXPECT_NEAR(geo::distance_m(db.at(t.cell), t.pos), 0, 0.1);
  }
}

TEST(SpatialIndexTest, MatchesBruteForce) {
  Rng rng(15);
  std::vector<geo::LatLng> points;
  const geo::LatLng origin{28.6139, 77.2090};
  for (int i = 0; i < 400; ++i)
    points.push_back(geo::from_enu(
        origin, {rng.uniform(0, 6000), rng.uniform(0, 6000)}));

  SpatialIndex<std::size_t> index(origin, 300.0, [&points](const std::size_t& i) {
    return points[i];
  });
  for (std::size_t i = 0; i < points.size(); ++i) index.add(i);

  for (int trial = 0; trial < 30; ++trial) {
    const geo::LatLng q = geo::from_enu(
        origin, {rng.uniform(0, 6000), rng.uniform(0, 6000)});
    const double radius = rng.uniform(50, 1500);
    auto got = index.query(q, radius);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (geo::distance_m(q, points[i]) <= radius) expected.push_back(i);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(Radio, PathLossMonotoneInDistance) {
  const PathLossModel model = cell_path_loss();
  double prev = 1e9;
  for (double d : {1.0, 10.0, 100.0, 1000.0, 3000.0}) {
    const double rssi = model.rssi_dbm(43, d, 0);
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
}

TEST(Radio, CellDetectionEdgeNearThreeKm) {
  const PathLossModel model = cell_path_loss();
  EXPECT_GT(model.rssi_dbm(43, 2500, 0), kCellDetectionDbm);
  EXPECT_LT(model.rssi_dbm(43, 3500, 0), kCellDetectionDbm);
}

TEST(Radio, WifiDetectionEdgeNear130m) {
  const PathLossModel model = wifi_path_loss();
  EXPECT_GT(model.rssi_dbm(20, 100, 0), kWifiDetectionDbm);
  EXPECT_LT(model.rssi_dbm(20, 200, 0), kWifiDetectionDbm);
}

TEST(Ids, CellIdKeyIsInjectiveOnFields) {
  const CellId a{404, 10, 101, 1000, Radio::Gsm2G};
  CellId b = a;
  EXPECT_EQ(a.key(), b.key());
  b.cid = 1001;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.radio = Radio::Umts3G;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.lac = 102;
  EXPECT_NE(a.key(), b.key());
}

TEST(Ids, ToString) {
  const CellId c{404, 10, 101, 1000, Radio::Umts3G};
  EXPECT_EQ(c.to_string(), "404-10-101-1000/3G");
  EXPECT_EQ(bssid_to_string(0x0123456789abULL), "01:23:45:67:89:ab");
}

class WorldSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldSeedSweep, GenerationInvariantsHold) {
  const auto world = make_world(GetParam());
  EXPECT_GT(world->towers().size(), 20u);
  EXPECT_GT(world->aps().size(), 20u);
  // Every place is inside the configured extent (with margin).
  for (const auto& p : world->places()) {
    const auto off = geo::to_enu(world->config().origin, p.center);
    EXPECT_GE(off.east_m, -1);
    EXPECT_LE(off.east_m, world->config().extent_m + 200);
    EXPECT_GE(off.north_m, -1);
    EXPECT_LE(off.north_m, world->config().extent_m + 200);
    EXPECT_GT(p.radius_m, 0);
  }
  // Every place hears at least one cell (no dead POIs).
  for (const auto& p : world->places())
    EXPECT_FALSE(world->hearable_cells(p.center).empty()) << p.name;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 42ULL, 20141208ULL));

}  // namespace
}  // namespace pmware::world
