#include "energy/meter.hpp"
#include "energy/profile.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pmware::energy {
namespace {

TEST(PowerProfile, AveragePowerMath) {
  const PowerProfile profile;
  const double p = profile.average_power_w(Interface::Gsm, 60);
  EXPECT_NEAR(p, profile.base_power_w + profile.sample_energy(Interface::Gsm) / 60.0,
              1e-12);
}

TEST(PowerProfile, AveragePowerRejectsBadInterval) {
  const PowerProfile profile;
  EXPECT_THROW(profile.average_power_w(Interface::Gsm, 0), std::invalid_argument);
  EXPECT_THROW(profile.average_power_w(Interface::Gsm, -5), std::invalid_argument);
}

TEST(PowerProfile, InterfaceEnergyOrdering) {
  // The Figure 1 ordering: accelerometer < GSM < Bluetooth < WiFi < GPS.
  const PowerProfile profile;
  EXPECT_LT(profile.sample_energy(Interface::Accelerometer),
            profile.sample_energy(Interface::Gsm));
  EXPECT_LT(profile.sample_energy(Interface::Gsm),
            profile.sample_energy(Interface::Bluetooth));
  EXPECT_LT(profile.sample_energy(Interface::Bluetooth),
            profile.sample_energy(Interface::Wifi));
  EXPECT_LT(profile.sample_energy(Interface::Wifi),
            profile.sample_energy(Interface::Gps));
}

TEST(PowerProfile, HeadlineElevenTimesRatio) {
  // Paper Figure 1: battery duration with GSM sampled every minute is ~11x
  // the duration with GPS sampled every minute.
  const PowerProfile profile = PowerProfile::htc_explorer();
  const double gsm = continuous_sensing_duration_s(profile, Interface::Gsm, 60);
  const double gps = continuous_sensing_duration_s(profile, Interface::Gps, 60);
  EXPECT_NEAR(gsm / gps, 11.0, 1.0);
}

TEST(PowerProfile, DurationDecreasesWithFrequency) {
  const PowerProfile profile;
  for (Interface i : {Interface::Gsm, Interface::Wifi, Interface::Gps}) {
    const double slow = continuous_sensing_duration_s(profile, i, 600);
    const double fast = continuous_sensing_duration_s(profile, i, 10);
    EXPECT_GT(slow, fast);
  }
}

TEST(Battery, CapacityMatchesHtcExplorer) {
  const Battery battery;
  // 1230 mAh at 3.7 V.
  EXPECT_NEAR(battery.capacity_j, 1.230 * 3.7 * 3600, 1);
}

TEST(Battery, ConsumeAndDeplete) {
  Battery battery;
  battery.capacity_j = 100;
  battery.consume(30);
  EXPECT_DOUBLE_EQ(battery.remaining_j(), 70);
  EXPECT_DOUBLE_EQ(battery.remaining_fraction(), 0.7);
  EXPECT_FALSE(battery.depleted());
  battery.consume(80);
  EXPECT_TRUE(battery.depleted());
  EXPECT_THROW(battery.consume(-1), std::invalid_argument);
}

TEST(Battery, DurationMath) {
  Battery battery;
  battery.capacity_j = 3600;
  EXPECT_DOUBLE_EQ(battery_duration_s(battery, 1.0), 3600);
  EXPECT_THROW(battery_duration_s(battery, 0), std::invalid_argument);
}

TEST(EnergyMeter, ChargesSamplesPerInterface) {
  EnergyMeter meter;
  meter.charge_sample(Interface::Gsm, 0);
  meter.charge_sample(Interface::Gsm, 60);
  meter.charge_sample(Interface::Gps, 120);
  EXPECT_EQ(meter.sample_count(Interface::Gsm), 2u);
  EXPECT_EQ(meter.sample_count(Interface::Gps), 1u);
  EXPECT_EQ(meter.sample_count(Interface::Wifi), 0u);
  EXPECT_DOUBLE_EQ(meter.interface_j(Interface::Gsm),
                   2 * meter.profile().sample_energy(Interface::Gsm));
  EXPECT_DOUBLE_EQ(
      meter.sensing_j(),
      2 * meter.profile().sample_energy(Interface::Gsm) +
          meter.profile().sample_energy(Interface::Gps));
}

TEST(EnergyMeter, ChargesBaseline) {
  EnergyMeter meter;
  meter.charge_baseline(0, 1000);
  EXPECT_DOUBLE_EQ(meter.baseline_j(), meter.profile().base_power_w * 1000);
  EXPECT_THROW(meter.charge_baseline(10, 5), std::invalid_argument);
}

TEST(EnergyMeter, AveragePowerAndImpliedDuration) {
  EnergyMeter meter;
  meter.charge_baseline(0, hours(1));
  const double p = meter.average_power_w(hours(1));
  EXPECT_NEAR(p, meter.profile().base_power_w, 1e-9);
  const double duration = meter.implied_battery_duration_s(hours(1));
  EXPECT_NEAR(duration, Battery{}.capacity_j / meter.profile().base_power_w, 1);
  EXPECT_THROW(meter.average_power_w(0), std::invalid_argument);
}

TEST(EnergyMeter, SummaryMentionsCounts) {
  EnergyMeter meter;
  meter.charge_sample(Interface::Wifi, 0);
  const std::string s = meter.summary();
  EXPECT_NE(s.find("wifi 1"), std::string::npos);
}

TEST(InterfaceNames, AllDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kInterfaceCount; ++i)
    names.insert(to_string(static_cast<Interface>(i)));
  EXPECT_EQ(names.size(), kInterfaceCount);
}

struct IntervalCase {
  SimDuration interval;
};

class Fig1IntervalSweep : public ::testing::TestWithParam<SimDuration> {};

TEST_P(Fig1IntervalSweep, GsmAlwaysOutlastsGpsAtSameInterval) {
  const PowerProfile profile;
  const SimDuration interval = GetParam();
  EXPECT_GT(continuous_sensing_duration_s(profile, Interface::Gsm, interval),
            continuous_sensing_duration_s(profile, Interface::Gps, interval));
  EXPECT_GT(continuous_sensing_duration_s(profile, Interface::Wifi, interval),
            continuous_sensing_duration_s(profile, Interface::Gps, interval));
  EXPECT_GT(continuous_sensing_duration_s(profile, Interface::Gsm, interval),
            continuous_sensing_duration_s(profile, Interface::Wifi, interval));
}

INSTANTIATE_TEST_SUITE_P(Intervals, Fig1IntervalSweep,
                         ::testing::Values(10, 30, 60, 120, 300, 600));

}  // namespace
}  // namespace pmware::energy
