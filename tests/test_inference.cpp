// Engine-level tests: a real device over a real ground-truth trace, but no
// cloud — exercising the triggered-sensing policy and hybrid place identity.
#include "core/inference_engine.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware::core {
namespace {

using energy::Interface;

struct EngineHarness {
  EngineHarness(int days_n, bool wifi_enabled = true,
                std::optional<Granularity> granularity = Granularity::Building,
                RouteAccuracy route_accuracy = RouteAccuracy::Off) {
    Rng world_rng(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng(2);
    participants = mobility::make_participants(*world, 2, prng);
    Rng trng(5);
    mobility::ScheduleConfig sc;
    sc.days = days_n;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));

    device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        Rng(7));
    scheduler = std::make_unique<sensing::SamplingScheduler>(&meter);
    apps = std::make_unique<ConnectedAppsModule>(&prefs);

    if (granularity) {
      PlaceAlertRequest request;
      request.app = "test";
      request.granularity = *granularity;
      request.want_new_place = true;
      request.receiver = 0;
      apps->register_place_alerts(request);
    }
    if (route_accuracy != RouteAccuracy::Off) {
      RouteTrackingRequest request;
      request.app = "test";
      request.accuracy = route_accuracy;
      apps->register_route_tracking(request);
    }

    InferenceConfig config;
    config.wifi_enabled = wifi_enabled;
    engine = std::make_unique<InferenceEngine>(
        device.get(), scheduler.get(), &store, apps.get(), config, Rng(9));
    engine->set_place_event_sink(
        [this](const PlaceEvent& event) { events.push_back(event); });
    engine->set_route_event_sink(
        [this](const RouteEvent& event) { route_events.push_back(event); });
    engine->attach();
  }

  void run_days(int days_n) {
    for (int day = 0; day < days_n; ++day) {
      scheduler->run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
      engine->recluster(start_of_day(day + 1));
    }
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  energy::EnergyMeter meter;
  std::unique_ptr<sensing::Device> device;
  std::unique_ptr<sensing::SamplingScheduler> scheduler;
  UserPreferences prefs;
  std::unique_ptr<ConnectedAppsModule> apps;
  PlaceStore store;
  std::unique_ptr<InferenceEngine> engine;
  std::vector<PlaceEvent> events;
  std::vector<RouteEvent> route_events;
};

TEST(InferenceEngine, DiscoversHomeAndAnchor) {
  EngineHarness h(3);
  h.run_days(3);
  h.engine->flush(start_of_day(3));
  const auto& log = h.engine->visit_log();
  ASSERT_GE(log.size(), 4u);

  // The place occupied at 3 AM (home) and at 11 AM on a weekday (anchor)
  // must appear in the log with long dwells.
  std::set<PlaceUid> night_uids, noon_uids;
  for (const auto& v : log) {
    for (int day = 0; day < 3; ++day) {
      if (v.window.contains(start_of_day(day) + hours(3)))
        night_uids.insert(v.uid);
      if (v.window.contains(start_of_day(day) + hours(11)))
        noon_uids.insert(v.uid);
    }
  }
  EXPECT_GE(night_uids.size(), 1u);
  EXPECT_GE(noon_uids.size(), 1u);
  // Home and anchor resolve to different identities.
  for (PlaceUid n : night_uids) EXPECT_EQ(noon_uids.count(n), 0u);
}

TEST(InferenceEngine, VisitLogRespectsMinDwell) {
  EngineHarness h(2);
  h.run_days(2);
  InferenceConfig config;
  for (const auto& v : h.engine->visit_log())
    EXPECT_GE(v.window.length(), config.min_visit_dwell);
}

TEST(InferenceEngine, VisitLogIsSortedAndNonOverlapping) {
  EngineHarness h(3);
  h.run_days(3);
  const auto& log = h.engine->visit_log();
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_GE(log[i].window.begin, log[i - 1].window.end - 1);
}

TEST(InferenceEngine, EnterExitEventsAlternatePerPlace) {
  EngineHarness h(2);
  h.run_days(2);
  std::optional<PlaceUid> open;
  for (const auto& ev : h.events) {
    if (ev.kind == PlaceEvent::Kind::Enter) {
      EXPECT_FALSE(open.has_value());
      open = ev.uid;
    } else if (ev.kind == PlaceEvent::Kind::Exit) {
      ASSERT_TRUE(open.has_value());
      EXPECT_EQ(*open, ev.uid);
      open.reset();
    }
  }
}

TEST(InferenceEngine, NewPlaceEventsForInternedPlaces) {
  EngineHarness h(2);
  h.run_days(2);
  std::set<PlaceUid> announced;
  for (const auto& ev : h.events)
    if (ev.kind == PlaceEvent::Kind::NewPlace) announced.insert(ev.uid);
  // Every place in the store was announced exactly once.
  EXPECT_EQ(announced.size(), h.store.size());
}

TEST(InferenceEngine, NoGpsWithoutHighAccuracyRequest) {
  EngineHarness h(1, true, Granularity::Building, RouteAccuracy::Off);
  h.run_days(1);
  EXPECT_EQ(h.meter.sample_count(Interface::Gps), 0u);
}

TEST(InferenceEngine, GpsOnlyWhileMovingInHighAccuracyMode) {
  EngineHarness h(1, true, Granularity::Building, RouteAccuracy::High);
  h.run_days(1);
  EXPECT_GT(h.meter.sample_count(Interface::Gps), 0u);
  // GPS fired only during trips, which are a small part of the day:
  // far fewer samples than continuous 30s sampling would give (2880).
  EXPECT_LT(h.meter.sample_count(Interface::Gps), 900u);
}

TEST(InferenceEngine, WifiDisabledMeansNoWifiSamples) {
  EngineHarness h(2, /*wifi_enabled=*/false);
  h.run_days(2);
  EXPECT_EQ(h.meter.sample_count(Interface::Wifi), 0u);
  // GSM-only mode still discovers places.
  EXPECT_GE(h.engine->visit_log().size(), 2u);
}

TEST(InferenceEngine, AreaGranularityAvoidsWifiAndAccel) {
  EngineHarness h(1, true, Granularity::Area);
  h.run_days(1);
  EXPECT_EQ(h.meter.sample_count(Interface::Wifi), 0u);
  EXPECT_EQ(h.meter.sample_count(Interface::Accelerometer), 0u);
  EXPECT_EQ(h.meter.sample_count(Interface::Gps), 0u);
  // GSM runs continuously regardless.
  EXPECT_EQ(h.meter.sample_count(Interface::Gsm), 1440u);
}

TEST(InferenceEngine, NoAppsMeansGsmOnly) {
  EngineHarness h(1, true, std::nullopt);
  h.run_days(1);
  EXPECT_EQ(h.meter.sample_count(Interface::Wifi), 0u);
  EXPECT_EQ(h.meter.sample_count(Interface::Accelerometer), 0u);
  EXPECT_EQ(h.meter.sample_count(Interface::Gsm), 1440u);
}

TEST(InferenceEngine, TriggeredSensingUsesFarFewerWifiScansThanContinuous) {
  EngineHarness h(1);
  h.run_days(1);
  // Continuous 1-minute WiFi would be 1440 scans; triggered sensing stays
  // well under a quarter of that.
  EXPECT_GT(h.meter.sample_count(Interface::Wifi), 10u);
  EXPECT_LT(h.meter.sample_count(Interface::Wifi), 360u);
}

TEST(InferenceEngine, GsmLogGrowsContinuously) {
  EngineHarness h(2);
  h.run_days(2);
  EXPECT_NEAR(static_cast<double>(h.engine->gsm_log().size()), 2880.0, 30.0);
  for (std::size_t i = 1; i < h.engine->gsm_log().size(); ++i)
    EXPECT_LE(h.engine->gsm_log()[i - 1].t, h.engine->gsm_log()[i].t);
}

TEST(InferenceEngine, RoutesCapturedBetweenPlaces) {
  EngineHarness h(2, true, Granularity::Building, RouteAccuracy::Low);
  h.run_days(2);
  EXPECT_GE(h.route_events.size(), 2u);
  for (const auto& r : h.route_events) {
    EXPECT_GE(r.window.length(), minutes(2));
    EXPECT_FALSE(r.high_accuracy);
  }
  EXPECT_GE(h.engine->routes().routes().size(), 1u);
}

TEST(InferenceEngine, HighAccuracyRoutesCarryGps) {
  EngineHarness h(2, true, Granularity::Building, RouteAccuracy::High);
  h.run_days(2);
  bool any_gps_route = false;
  for (const auto& canonical : h.engine->routes().routes())
    if (canonical.representative.gps.points.size() >= 2) any_gps_route = true;
  EXPECT_TRUE(any_gps_route);
}

TEST(InferenceEngine, ReclusterIsStableAcrossRepeats) {
  EngineHarness h(2);
  h.run_days(2);
  const std::size_t places_before = h.store.size();
  const auto log_before = h.engine->visit_log();
  // Reclustering again with no new data must not invent places or visits.
  h.engine->recluster(start_of_day(2));
  EXPECT_EQ(h.store.size(), places_before);
  EXPECT_EQ(h.engine->visit_log().size(), log_before.size());
}

TEST(InferenceEngine, AreaOfWifiPlaceIsGsmCluster) {
  EngineHarness h(3);
  h.run_days(3);
  // At least one wifi place is associated with a GSM-cluster area.
  bool any_refined = false;
  for (const auto& [uid, record] : h.store.records()) {
    if (!std::holds_alternative<algorithms::WifiSignature>(record.signature))
      continue;
    if (h.engine->area_of(uid) != uid) any_refined = true;
  }
  EXPECT_TRUE(any_refined);
}

}  // namespace
}  // namespace pmware::core
