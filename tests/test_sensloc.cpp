#include "algorithms/sensloc.hpp"

#include <gtest/gtest.h>

namespace pmware::algorithms {
namespace {

sensing::WifiScan scan_of(SimTime t, std::initializer_list<world::Bssid> aps) {
  sensing::WifiScan scan;
  scan.t = t;
  for (world::Bssid b : aps) scan.aps.push_back({b, -60.0});
  return scan;
}

int arrivals(const std::vector<WifiPlaceDetector::Event>& events) {
  int n = 0;
  for (const auto& e : events)
    if (e.kind == WifiPlaceDetector::Event::Kind::Arrival) ++n;
  return n;
}

int departures(const std::vector<WifiPlaceDetector::Event>& events) {
  int n = 0;
  for (const auto& e : events)
    if (e.kind == WifiPlaceDetector::Event::Kind::Departure) ++n;
  return n;
}

TEST(WifiDetector, ArrivalAfterStableScans) {
  WifiPlaceDetector detector;
  SimTime t = 0;
  std::vector<WifiPlaceDetector::Event> all;
  for (int i = 0; i < 3; ++i, t += 60) {
    auto evs = detector.on_scan(scan_of(t, {1, 2, 3}));
    all.insert(all.end(), evs.begin(), evs.end());
  }
  ASSERT_EQ(arrivals(all), 1);
  EXPECT_EQ(all[0].place_index, 0u);
  EXPECT_EQ(all[0].t, 0);  // backdated to the start of the stable run
  EXPECT_TRUE(detector.current_place().has_value());
  EXPECT_EQ(detector.places().size(), 1u);
  EXPECT_EQ(detector.places()[0].aps, (std::set<world::Bssid>{1, 2, 3}));
}

TEST(WifiDetector, TwoStableScansAreNotEnough) {
  WifiPlaceDetector detector;
  auto e1 = detector.on_scan(scan_of(0, {1, 2}));
  auto e2 = detector.on_scan(scan_of(60, {1, 2}));
  EXPECT_TRUE(e1.empty());
  EXPECT_TRUE(e2.empty());
  EXPECT_FALSE(detector.current_place().has_value());
}

TEST(WifiDetector, DissimilarScansResetTheRun) {
  WifiPlaceDetector detector;
  detector.on_scan(scan_of(0, {1, 2}));
  detector.on_scan(scan_of(60, {1, 2}));
  detector.on_scan(scan_of(120, {8, 9}));  // reset
  auto evs = detector.on_scan(scan_of(180, {8, 9}));
  EXPECT_EQ(arrivals(evs), 0);
  evs = detector.on_scan(scan_of(240, {8, 9}));
  EXPECT_EQ(arrivals(evs), 1);  // new run of three
}

TEST(WifiDetector, EmptyScanWhileMovingIsIgnored) {
  WifiPlaceDetector detector;
  detector.on_scan(scan_of(0, {1, 2}));
  detector.on_scan(scan_of(60, {}));  // no info, run survives
  detector.on_scan(scan_of(120, {1, 2}));
  auto evs = detector.on_scan(scan_of(180, {1, 2}));
  EXPECT_EQ(arrivals(evs), 1);
}

TEST(WifiDetector, DepartureAfterMismatchStreak) {
  SensLocConfig config;
  WifiPlaceDetector detector(config);
  SimTime t = 0;
  for (int i = 0; i < 3; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
  ASSERT_TRUE(detector.current_place().has_value());
  const SimTime last_match = t - 60;
  std::vector<WifiPlaceDetector::Event> all;
  for (int i = 0; i < config.scans_to_exit; ++i, t += 60) {
    auto evs = detector.on_scan(scan_of(t, {70, 71}));
    all.insert(all.end(), evs.begin(), evs.end());
  }
  ASSERT_EQ(departures(all), 1);
  EXPECT_EQ(all.back().t, last_match);
  EXPECT_FALSE(detector.current_place().has_value());
}

TEST(WifiDetector, EmptyScansDoNotEvict) {
  WifiPlaceDetector detector;
  SimTime t = 0;
  for (int i = 0; i < 3; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
  // A night of empty scans must not end the stay.
  for (int i = 0; i < 30; ++i, t += minutes(2)) {
    auto evs = detector.on_scan(scan_of(t, {}));
    EXPECT_EQ(departures(evs), 0);
  }
  EXPECT_TRUE(detector.current_place().has_value());
}

TEST(WifiDetector, MaxMatchGapClosesStaleVisit) {
  SensLocConfig config;
  config.max_match_gap = hours(2);
  WifiPlaceDetector detector(config);
  SimTime t = 0;
  for (int i = 0; i < 20; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
  const SimTime last_match = t - 60;
  // Silence for 3 hours (no scans at all), then an empty scan arrives.
  t += hours(3);
  auto evs = detector.on_scan(scan_of(t, {}));
  ASSERT_EQ(departures(evs), 1);
  EXPECT_EQ(evs[0].t, last_match);
  ASSERT_EQ(detector.visits().size(), 1u);
  EXPECT_EQ(detector.visits()[0].window.end, last_match);
}

TEST(WifiDetector, RevisitMatchesExistingPlace) {
  WifiPlaceDetector detector;
  SimTime t = 0;
  // First stay at place {1,2,3}.
  for (int i = 0; i < 15; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2, 3}));
  // Leave for place {50,51}.
  for (int i = 0; i < 10; ++i, t += 60) detector.on_scan(scan_of(t, {50, 51}));
  // Come back; extra transient AP present.
  std::vector<WifiPlaceDetector::Event> all;
  for (int i = 0; i < 5; ++i, t += 60) {
    auto evs = detector.on_scan(scan_of(t, {1, 2, 3, 99}));
    all.insert(all.end(), evs.begin(), evs.end());
  }
  EXPECT_EQ(detector.places().size(), 2u);  // no third place minted
  ASSERT_GE(arrivals(all), 1);
  EXPECT_EQ(all.back().place_index, 0u);
}

TEST(WifiDetector, SubsetScanStillMatchesViaOverlap) {
  // Signature {1,2,3,4}; later scans see only {1,2} (weak corner of the
  // building) — the overlap coefficient keeps the stay alive.
  WifiPlaceDetector detector;
  SimTime t = 0;
  for (int i = 0; i < 3; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2, 3, 4}));
  ASSERT_TRUE(detector.current_place().has_value());
  for (int i = 0; i < 10; ++i, t += 60) {
    detector.on_scan(scan_of(t, {1, 2}));
    EXPECT_TRUE(detector.current_place().has_value());
  }
}

TEST(WifiDetector, VisitLogFiltersShortStays) {
  SensLocConfig config;
  config.min_visit_dwell = minutes(10);
  WifiPlaceDetector detector(config);
  SimTime t = 0;
  // 5-minute stay only.
  for (int i = 0; i < 5; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
  for (int i = 0; i < 5; ++i, t += 60) detector.on_scan(scan_of(t, {70, 71, 72}));
  EXPECT_TRUE(detector.visits().empty());
}

TEST(WifiDetector, FinishFlushesOpenVisit) {
  WifiPlaceDetector detector;
  SimTime t = 0;
  for (int i = 0; i < 20; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
  const auto evs = detector.finish(t);
  EXPECT_EQ(departures(evs), 1);
  ASSERT_EQ(detector.visits().size(), 1u);
  EXPECT_GE(detector.visits()[0].window.length(), minutes(15));
}

TEST(WifiDetector, AlternatingPlacesProduceAlternatingVisits) {
  WifiPlaceDetector detector;
  SimTime t = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
    for (int i = 0; i < 20; ++i, t += 60) detector.on_scan(scan_of(t, {50, 51}));
  }
  detector.finish(t);
  EXPECT_EQ(detector.places().size(), 2u);
  ASSERT_GE(detector.visits().size(), 5u);
  for (std::size_t i = 1; i < detector.visits().size(); ++i)
    EXPECT_NE(detector.visits()[i].place_index,
              detector.visits()[i - 1].place_index);
}

TEST(WifiDetector, FingerprintIsMajorityOfBurst) {
  WifiPlaceDetector detector;
  // AP 9 appears in only one of three scans: excluded from the fingerprint.
  detector.on_scan(scan_of(0, {1, 2, 9}));
  detector.on_scan(scan_of(60, {1, 2}));
  detector.on_scan(scan_of(120, {1, 2}));
  ASSERT_EQ(detector.places().size(), 1u);
  EXPECT_EQ(detector.places()[0].aps, (std::set<world::Bssid>{1, 2}));
}

class StreakSweep : public ::testing::TestWithParam<int> {};

TEST_P(StreakSweep, ExitNeedsExactlyConfiguredStreak) {
  SensLocConfig config;
  config.scans_to_exit = GetParam();
  WifiPlaceDetector detector(config);
  SimTime t = 0;
  for (int i = 0; i < 3; ++i, t += 60) detector.on_scan(scan_of(t, {1, 2}));
  int total_departures = 0;
  for (int i = 0; i < config.scans_to_exit - 1; ++i, t += 60)
    total_departures += departures(detector.on_scan(scan_of(t, {80, 81})));
  EXPECT_EQ(total_departures, 0);
  total_departures += departures(detector.on_scan(scan_of(t, {80, 81})));
  EXPECT_EQ(total_departures, 1);
}

INSTANTIATE_TEST_SUITE_P(Streaks, StreakSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace pmware::algorithms
