#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace pmware {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesDirectComputationOnRandomData) {
  Rng rng(3);
  RunningStats s;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10, 3);
    values.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Percentile, Basics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, UnsortedInputIsSorted) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3);
  EXPECT_DOUBLE_EQ(median_of(v), 3);
}

TEST(Percentile, Errors) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 1.1), std::invalid_argument);
}

TEST(MeanOf, Works) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 10, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 5, 4), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(0.5);   // bucket 0
  h.add(9.9);   // bucket 4
  h.add(-5);    // clamped to 0
  h.add(25);    // clamped to 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, ExactBoundariesLandInEdgeBuckets) {
  Histogram h(0, 10, 5);
  h.add(0.0);   // exactly lo -> first bucket
  h.add(10.0);  // exactly hi (outside [lo, hi)) -> clamped into last bucket
  h.add(2.0);   // exactly an interior edge -> bucket that starts there
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FarOutsideValuesClampWithoutLoss) {
  Histogram h(-5, 5, 4);
  h.add(-1e9);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Percentile, SingleElementIsThatElementForAnyQ) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(median_of(v), 42.0);
}

TEST(Percentile, EmptyInputThrowsEvenAtValidQ) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.0), std::invalid_argument);
  EXPECT_THROW(percentile(empty, 1.0), std::invalid_argument);
  EXPECT_THROW(median_of(empty), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0, 4, 2);
  h.add(1);
  h.add(1);
  h.add(3);
  const std::string render = h.render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find('\n'), std::string::npos);
}

TEST(Tally, CountsAndFractions) {
  Tally t;
  t.add("correct", 3);
  t.add("merged");
  EXPECT_EQ(t.total(), 4u);
  EXPECT_EQ(t.count("correct"), 3u);
  EXPECT_EQ(t.count("merged"), 1u);
  EXPECT_EQ(t.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(t.fraction("correct"), 0.75);
  EXPECT_DOUBLE_EQ(t.fraction("absent"), 0.0);
}

TEST(Tally, EmptyFractionIsZero) {
  Tally t;
  EXPECT_DOUBLE_EQ(t.fraction("anything"), 0.0);
  EXPECT_EQ(t.total(), 0u);
}

class PercentileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotone, NonDecreasingInQ) {
  Rng rng(99);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.uniform(-50, 50));
  const double q = GetParam();
  EXPECT_LE(percentile(v, q), percentile(v, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Qs, PercentileMonotone,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace pmware
