#include "util/json.hpp"

#include <gtest/gtest.h>

namespace pmware {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Json j(42);
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(j.as_bool(), JsonError);
  EXPECT_THROW(j.as_array(), JsonError);
  EXPECT_THROW(j.as_object(), JsonError);
  EXPECT_EQ(j.as_int(), 42);
  EXPECT_DOUBLE_EQ(j.as_double(), 42.0);
}

TEST(Json, ObjectBuildAndAccess) {
  Json j = Json::object();
  j.set("a", Json(1));
  j.set("b", Json("text"));
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("z"));
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_THROW(j.at("z"), JsonError);
  EXPECT_EQ(j.get_int("a", -1), 1);
  EXPECT_EQ(j.get_int("z", -1), -1);
  EXPECT_EQ(j.get_string("b", ""), "text");
  EXPECT_EQ(j.get_string("a", "fallback"), "fallback");  // wrong type
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, SetCoercesNullToObject) {
  Json j;
  j.set("k", Json(1));
  EXPECT_TRUE(j.is_object());
  EXPECT_THROW(Json(1).set("k", Json(2)), JsonError);
}

TEST(Json, ArrayBuildAndAccess) {
  Json j = Json::array();
  j.push_back(Json(1));
  j.push_back(Json(2));
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j[0].as_int(), 1);
  EXPECT_EQ(j[1].as_int(), 2);
  EXPECT_THROW(j[2], JsonError);
}

TEST(Json, PushBackCoercesNullToArray) {
  Json j;
  j.push_back(Json("x"));
  EXPECT_TRUE(j.is_array());
  EXPECT_THROW(Json(1).push_back(Json(2)), JsonError);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("123").as_int(), 123);
  EXPECT_DOUBLE_EQ(Json::parse("-4.75").as_double(), -4.75);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, ParseNested) {
  const Json j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_TRUE(j.at("a")[2].at("b").as_bool());
  EXPECT_TRUE(j.at("c").is_null());
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ]\r\n}  ");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, StringEscapes) {
  const Json j = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json j(std::string("line1\nline2\t\"quoted\""));
  const std::string dumped = j.dump();
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  // Round-trips.
  EXPECT_EQ(Json::parse(dumped).as_string(), j.as_string());
}

TEST(Json, UnicodeEscapeToUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(Json, RoundTripComplexDocument) {
  Json doc = Json::object();
  doc.set("name", Json("pmware"));
  doc.set("version", Json(1.25));
  doc.set("flags", Json(true));
  Json arr = Json::array();
  for (int i = 0; i < 5; ++i) {
    Json item = Json::object();
    item.set("i", Json(i));
    item.set("sq", Json(i * i));
    arr.push_back(std::move(item));
  }
  doc.set("items", std::move(arr));
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  const Json pretty_reparsed = Json::parse(doc.pretty());
  EXPECT_EQ(pretty_reparsed, doc);
}

TEST(Json, EqualityIsDeep) {
  const Json a = Json::parse(R"({"x": [1, {"y": 2}]})");
  const Json b = Json::parse(R"({"x": [1, {"y": 2}]})");
  const Json c = Json::parse(R"({"x": [1, {"y": 3}]})");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Json, IntegerPrecision) {
  // Large-ish integers common for uids survive the double representation.
  const std::int64_t uid = 9007199254740;  // < 2^53
  Json j(uid);
  EXPECT_EQ(Json::parse(j.dump()).as_int(), uid);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsStable) {
  const Json first = Json::parse(GetParam());
  const Json second = Json::parse(first.dump());
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values("null", "true", "0", "-0.5", "\"\"", "[]", "{}",
                      "[1,[2,[3,[4]]]]",
                      R"({"deep":{"deeper":{"deepest":[true,false,null]}}})",
                      R"({"lat":28.6139,"lng":77.209})",
                      R"([{"cell":{"mcc":404,"mnc":10,"lac":101,"cid":1000}}])"));

}  // namespace
}  // namespace pmware
