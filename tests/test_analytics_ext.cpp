// Tests for the extended analytics queries: typical departure time and
// first-order next-place prediction (paper §2.3.2 "advanced analytics and
// prediction operations").
#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"

namespace pmware::cloud {
namespace {

/// Storage pre-loaded with a regular week: home (1) -> work (2) -> cafe (3)
/// -> home, weekdays only; weekends at home then park (4).
CloudStorage regular_fortnight() {
  CloudStorage storage;
  for (int day = 0; day < 14; ++day) {
    core::MobilityProfile profile;
    profile.user = 1;
    profile.day = day;
    const SimTime base = start_of_day(day);
    if (day % 7 < 5) {
      profile.places.push_back({1, base, base + hours(8) + minutes(30)});
      profile.places.push_back({2, base + hours(9), base + hours(17)});
      profile.places.push_back({3, base + hours(17) + minutes(15),
                                base + hours(18) + minutes(30)});
      profile.places.push_back({1, base + hours(19), base + hours(24)});
    } else {
      profile.places.push_back({1, base, base + hours(11)});
      profile.places.push_back({4, base + hours(11) + minutes(30),
                                base + hours(14)});
      profile.places.push_back({1, base + hours(14) + minutes(30),
                                base + hours(24)});
    }
    storage.user(1).profiles[day] = std::move(profile);
  }
  return storage;
}

TEST(AnalyticsExt, TypicalDepartureFromHomeMorning) {
  const CloudStorage storage = regular_fortnight();
  const AnalyticsEngine analytics(&storage);
  const auto tod = analytics.typical_departure_tod(
      1, 1, DailyWindow{hours(5), hours(12)});
  ASSERT_TRUE(tod.has_value());
  // 10 weekday departures at 8:30 and 4 weekend at 11:00 -> mean ~9:13.
  EXPECT_NEAR(static_cast<double>(*tod),
              static_cast<double>((10 * (hours(8) + minutes(30)) +
                                   4 * hours(11)) / 14),
              60);
}

TEST(AnalyticsExt, DepartureIgnoresMidnightTruncation) {
  const CloudStorage storage = regular_fortnight();
  const AnalyticsEngine analytics(&storage);
  // Home "departures" at exactly 24:00 are day-profile truncation, not real
  // departures; an all-day window must not be polluted by them.
  const auto tod = analytics.typical_departure_tod(1, 1);
  ASSERT_TRUE(tod.has_value());
  EXPECT_GT(*tod, hours(5));
  EXPECT_LT(*tod, hours(13));
}

TEST(AnalyticsExt, DepartureWithoutDataIsNull) {
  CloudStorage storage;
  const AnalyticsEngine analytics(&storage);
  EXPECT_FALSE(analytics.typical_departure_tod(1, 99).has_value());
}

TEST(AnalyticsExt, NextPlaceFromWorkIsCafe) {
  const CloudStorage storage = regular_fortnight();
  const AnalyticsEngine analytics(&storage);
  const auto next = analytics.predict_next_place(1, 2);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->place, 3u);
  EXPECT_DOUBLE_EQ(next->probability, 1.0);
}

TEST(AnalyticsExt, NextPlaceFromHomeIsWeightedByDayMix) {
  const CloudStorage storage = regular_fortnight();
  const AnalyticsEngine analytics(&storage);
  const auto next = analytics.predict_next_place(1, 1);
  ASSERT_TRUE(next.has_value());
  // 10 weekday transitions home->work vs 4 weekend home->park.
  EXPECT_EQ(next->place, 2u);
  EXPECT_NEAR(next->probability, 10.0 / 14.0, 0.01);
}

TEST(AnalyticsExt, NextPlaceUnknownCurrentIsNull) {
  const CloudStorage storage = regular_fortnight();
  const AnalyticsEngine analytics(&storage);
  EXPECT_FALSE(analytics.predict_next_place(1, 77).has_value());
  EXPECT_FALSE(analytics.predict_next_place(9, 1).has_value());
}

TEST(AnalyticsExt, LongGapsDoNotCountAsTransitions) {
  CloudStorage storage;
  core::MobilityProfile profile;
  profile.user = 1;
  profile.day = 0;
  // At place 5 in the morning; tracking lost; place 6 twelve hours later.
  profile.places.push_back({5, hours(8), hours(9)});
  profile.places.push_back({6, hours(21), hours(22)});
  storage.user(1).profiles[0] = profile;
  const AnalyticsEngine analytics(&storage);
  EXPECT_FALSE(analytics.predict_next_place(1, 5).has_value());
}

TEST(AnalyticsExt, EndpointsServeDepartureAndNextPlace) {
  CloudInstance cloud(CloudConfig{}, GeoLocationService({}), Rng(1));
  // Register and load the storage directly.
  net::HttpRequest reg;
  reg.method = net::Method::Post;
  reg.path = "/api/register";
  reg.headers[CloudInstance::kSimTimeHeader] = "0";
  reg.body = Json::object();
  reg.body.set("imei", "1");
  reg.body.set("email", "a@b");
  const auto token = cloud.router().handle(reg).body.at("token").as_string();
  cloud.storage() = regular_fortnight();

  auto get = [&](const std::string& path) {
    net::HttpRequest req;
    req.method = net::Method::Get;
    req.path = path;
    req.headers[CloudInstance::kSimTimeHeader] = "0";
    req.headers["Authorization"] = "Bearer " + token;
    return cloud.router().handle(req);
  };

  const auto departure = get("/api/users/1/analytics/departure/2");
  ASSERT_TRUE(departure.ok());
  EXPECT_NEAR(static_cast<double>(
                  departure.body.at("typical_departure_tod").as_int()),
              static_cast<double>(hours(17)), 60);

  const auto next = get("/api/users/1/analytics/next_place/2");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.body.at("place").as_int(), 3);
  EXPECT_DOUBLE_EQ(next.body.at("probability").as_double(), 1.0);

  EXPECT_EQ(get("/api/users/1/analytics/next_place/77").status,
            net::kStatusNotFound);
}

TEST(AnalyticsExt, StitchedVisitsMergeMidnight) {
  CloudStorage storage;
  core::MobilityProfile day0;
  day0.user = 1;
  day0.day = 0;
  day0.places.push_back({1, hours(20), hours(24)});
  core::MobilityProfile day1;
  day1.user = 1;
  day1.day = 1;
  day1.places.push_back({1, hours(24), hours(32)});  // 00:00-08:00 of day 1
  storage.user(1).profiles[0] = day0;
  storage.user(1).profiles[1] = day1;

  const auto stitched = storage.stitched_visits_at(1, 1);
  ASSERT_EQ(stitched.size(), 1u);
  EXPECT_EQ(stitched[0].arrival, hours(20));
  EXPECT_EQ(stitched[0].departure, hours(32));
}

}  // namespace
}  // namespace pmware::cloud
