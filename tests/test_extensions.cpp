// Tests for the paper's §6 future-work features implemented here: activity
// tracking in mobility profiles, privacy deletion (forget-a-place, wipe),
// coordinate geofences, and the location read-back that powers them.
#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"
#include "core/codec.hpp"
#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware {
namespace {

struct Stack {
  explicit Stack(int days_n, std::uint64_t seed = 1) {
    Rng rng(seed);
    Rng world_rng = rng.fork(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng = rng.fork(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng = rng.fork(3);
    mobility::ScheduleConfig sc;
    sc.days = days_n;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));
    cloud::GeoLocationService geoloc(world->cell_location_db());
    geoloc.set_ap_db(world->ap_location_db());
    cloud.emplace(cloud::CloudConfig{}, std::move(geoloc), rng.fork(4));
    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        rng.fork(5));
    auto client = std::make_unique<net::RestClient>(
        &cloud->router(), net::NetworkConditions{0.0, 1}, rng.fork(6));
    pms.emplace(std::move(device), core::PmsConfig{}, std::move(client),
                rng.fork(7));
    core::PlaceAlertRequest request;
    request.app = "harness";
    request.granularity = core::Granularity::Building;
    pms->apps().register_place_alerts(request);
    pms->register_with_cloud(0);
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  std::optional<cloud::CloudInstance> cloud;
  std::optional<core::PmwareMobileService> pms;
};

// --- Activity tracking ---

TEST(ActivityTracking, EngineAccumulatesPlausibleDayTotals) {
  Stack stack(2);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  for (int day = 0; day < 2; ++day) {
    const core::ActivitySummary summary =
        stack.pms->inference().activity_for(day);
    // The accelerometer ran most of the day at 1-minute cadence.
    EXPECT_GT(summary.tracked(), hours(20));
    EXPECT_LE(summary.tracked(), days(1));
    // People are still most of the day and move for minutes-to-hours.
    EXPECT_GT(summary.still, hours(18));
    EXPECT_GT(summary.walking + summary.vehicle, minutes(5));
    EXPECT_LT(summary.walking + summary.vehicle, hours(4));
  }
}

TEST(ActivityTracking, ProfileCarriesActivityToCloud) {
  Stack stack(2);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  const auto* user = stack.cloud->storage().find_user(1);
  ASSERT_NE(user, nullptr);
  ASSERT_TRUE(user->profiles.count(0));
  EXPECT_FALSE(user->profiles.at(0).activity.empty());
  EXPECT_EQ(user->profiles.at(0).activity,
            stack.pms->inference().activity_for(0));
}

TEST(ActivityTracking, CodecRoundTripsActivity) {
  core::MobilityProfile profile;
  profile.user = 1;
  profile.day = 2;
  profile.activity = {hours(20), minutes(50), minutes(30)};
  const core::MobilityProfile decoded =
      core::profile_from_json(Json::parse(core::to_json(profile).dump()));
  EXPECT_EQ(decoded.activity, profile.activity);
}

TEST(ActivityTracking, ActivityEndpointServesSummary) {
  Stack stack(2);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  net::HttpRequest request;
  request.method = net::Method::Get;
  request.path = "/api/users/1/analytics/activity/0";
  request.headers[cloud::CloudInstance::kSimTimeHeader] =
      std::to_string(days(2));
  request.headers["Authorization"] =
      "Bearer " + stack.pms->client()->auth_token();
  const net::HttpResponse response = stack.cloud->router().handle(request);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response.body.at("still").as_int(), hours(15));
  // Unknown day: 404.
  request.path = "/api/users/1/analytics/activity/99";
  EXPECT_EQ(stack.cloud->router().handle(request).status,
            net::kStatusNotFound);
}

TEST(ActivityTracking, NoAccelerometerMeansNoActivity) {
  // Area-level demand never turns the accelerometer on.
  Rng rng(1);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  auto participants = mobility::make_participants(*world, 1, prng);
  Rng trng = rng.fork(3);
  mobility::ScheduleConfig sc;
  sc.days = 1;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], sc, trng);
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(4));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{}, nullptr,
                                rng.fork(5));
  core::PlaceAlertRequest request;
  request.app = "ads";
  request.granularity = core::Granularity::Area;
  pms.apps().register_place_alerts(request);
  pms.run(TimeWindow{0, days(1)});
  EXPECT_TRUE(pms.inference().activity_for(0).empty());
}

// --- Location read-back ---

TEST(LocationReadback, LocalRecordsGetCoordinatesAfterSync) {
  Stack stack(2);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  std::size_t located = 0;
  for (const auto& [uid, record] : stack.pms->places().records())
    if (record.location) ++located;
  EXPECT_GE(located, 2u);
  // The cached coordinates are inside the city.
  for (const auto& [uid, record] : stack.pms->places().records()) {
    if (!record.location) continue;
    const auto off = geo::to_enu(stack.world->config().origin, *record.location);
    EXPECT_GE(off.east_m, -3000);
    EXPECT_LE(off.east_m, stack.world->config().extent_m + 3000);
  }
}

// --- Privacy deletion ---

TEST(Privacy, ForgetPlaceErasesLocallyAndOnCloud) {
  Stack stack(2);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  ASSERT_GE(stack.pms->places().size(), 1u);
  const core::PlaceUid uid = stack.pms->places().records().begin()->first;

  ASSERT_TRUE(stack.pms->forget_place(uid, days(2)));
  EXPECT_EQ(stack.pms->places().get(uid), nullptr);
  for (const auto& visit : stack.pms->inference().visit_log())
    EXPECT_NE(visit.uid, uid);
  const auto* user = stack.cloud->storage().find_user(1);
  ASSERT_NE(user, nullptr);
  EXPECT_EQ(user->places.count(uid), 0u);
  for (const auto& [day, profile] : user->profiles)
    for (const auto& entry : profile.places) EXPECT_NE(entry.place, uid);

  // Forgetting twice fails cleanly.
  EXPECT_FALSE(stack.pms->forget_place(uid, days(2)));
}

TEST(Privacy, WipeRemovesEverythingOnCloud) {
  Stack stack(2);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  ASSERT_NE(stack.cloud->storage().find_user(1), nullptr);
  EXPECT_TRUE(stack.pms->wipe_cloud_data(days(2)));
  EXPECT_EQ(stack.cloud->storage().find_user(1), nullptr);
}

TEST(Privacy, DeleteEndpointsRequireMatchingUser) {
  Stack stack(1);
  stack.pms->run(TimeWindow{0, days(1)});
  net::HttpRequest request;
  request.method = net::Method::Delete;
  request.path = "/api/users/2";  // someone else
  request.headers[cloud::CloudInstance::kSimTimeHeader] = "0";
  request.headers["Authorization"] =
      "Bearer " + stack.pms->client()->auth_token();
  EXPECT_EQ(stack.cloud->router().handle(request).status,
            net::kStatusUnauthorized);
}

// --- Geofences ---

TEST(Geofence, FiresOnEnterAndExitWithinRadius) {
  Stack stack(3, 9);
  // Fence around the participant's true home.
  const geo::LatLng home =
      stack.world->place(stack.participants[0].home).center;
  std::vector<core::Intent> fired;
  const auto receiver = stack.pms->bus().register_receiver(
      core::IntentFilter{},
      [&fired](const core::Intent& intent) { fired.push_back(intent); });
  core::GeofenceRequest fence;
  fence.app = "reminder";
  fence.center = home;
  fence.radius_m = 400;
  fence.receiver = receiver;
  stack.pms->apps().register_geofence(fence);

  stack.pms->run(TimeWindow{0, days(3)});
  stack.pms->shutdown(days(3));

  // Locations resolve after the first sync, so day-2+ events fire.
  int enters = 0, exits = 0;
  for (const auto& intent : fired) {
    if (intent.action == core::actions::kGeofenceEnter) ++enters;
    if (intent.action == core::actions::kGeofenceExit) ++exits;
    // Every fired event is near the fence center.
    const geo::LatLng at{intent.extras.at("lat").as_double(),
                         intent.extras.at("lng").as_double()};
    EXPECT_LE(geo::distance_m(at, home), 400);
  }
  EXPECT_GE(enters, 1);
  EXPECT_GE(exits, 1);
}

TEST(Geofence, DistantFenceNeverFires) {
  Stack stack(2, 9);
  std::vector<core::Intent> fired;
  const auto receiver = stack.pms->bus().register_receiver(
      core::IntentFilter{},
      [&fired](const core::Intent& intent) { fired.push_back(intent); });
  core::GeofenceRequest fence;
  fence.app = "reminder";
  // A point far outside the city.
  fence.center = geo::destination(stack.world->config().origin, 225, 50000);
  fence.radius_m = 300;
  fence.receiver = receiver;
  stack.pms->apps().register_geofence(fence);
  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));
  EXPECT_TRUE(fired.empty());
}

TEST(Geofence, DemandsBuildingLevelSensing) {
  core::UserPreferences prefs;
  core::ConnectedAppsModule apps(&prefs);
  EXPECT_FALSE(apps.required_granularity(0).has_value());
  core::GeofenceRequest fence;
  fence.app = "reminder";
  fence.center = {28.6, 77.2};
  apps.register_geofence(fence);
  ASSERT_TRUE(apps.required_granularity(0).has_value());
  EXPECT_EQ(*apps.required_granularity(0), core::Granularity::Building);
  apps.unregister_app("reminder");
  EXPECT_FALSE(apps.required_granularity(0).has_value());
}

TEST(Geofence, RespectsDailyWindow) {
  core::UserPreferences prefs;
  core::ConnectedAppsModule apps(&prefs);
  core::PlaceStore store;
  core::IntentBus bus;
  int fired = 0;
  const auto receiver = bus.register_receiver(
      core::IntentFilter{}, [&fired](const core::Intent&) { ++fired; });

  const auto [uid, created] =
      store.intern(algorithms::WifiSignature{{1}}, core::Granularity::Building);
  store.get_mutable(uid)->location = geo::LatLng{28.6, 77.2};

  core::GeofenceRequest fence;
  fence.app = "reminder";
  fence.center = {28.6, 77.2};
  fence.radius_m = 100;
  fence.window = DailyWindow{hours(9), hours(18)};
  fence.receiver = receiver;
  apps.register_geofence(fence);

  apps.deliver_geofence({core::PlaceEvent::Kind::Enter, uid, uid, hours(10), 0},
                        store, bus);
  apps.deliver_geofence({core::PlaceEvent::Kind::Enter, uid, uid, hours(20), 0},
                        store, bus);
  EXPECT_EQ(fired, 1);
  (void)created;
}

TEST(Geofence, UnresolvedPlacesNeverFire) {
  core::UserPreferences prefs;
  core::ConnectedAppsModule apps(&prefs);
  core::PlaceStore store;
  core::IntentBus bus;
  int fired = 0;
  const auto receiver = bus.register_receiver(
      core::IntentFilter{}, [&fired](const core::Intent&) { ++fired; });
  const auto [uid, created] =
      store.intern(algorithms::WifiSignature{{1}}, core::Granularity::Building);
  // No location set.
  core::GeofenceRequest fence;
  fence.app = "reminder";
  fence.center = {28.6, 77.2};
  fence.radius_m = 1000000;  // would match anything located
  fence.receiver = receiver;
  apps.register_geofence(fence);
  apps.deliver_geofence({core::PlaceEvent::Kind::Enter, uid, uid, hours(10), 0},
                        store, bus);
  EXPECT_EQ(fired, 0);
  (void)created;
}

}  // namespace
}  // namespace pmware
