// End-to-end integration tests: the paper's §2.4 use case and the shared-
// sensing claim (§1 limitation 3) across multiple connected applications.
#include <gtest/gtest.h>

#include "apps/lifelog.hpp"
#include "apps/placeads.hpp"
#include "apps/todo_reminder.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "algorithms/evaluate.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware {
namespace {

struct Stack {
  explicit Stack(int days_n, std::uint64_t seed = 1) {
    Rng world_rng(seed);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng(5);
    mobility::ScheduleConfig sc;
    sc.days = days_n;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));
    cloud.emplace(cloud::CloudConfig{},
                  cloud::GeoLocationService(world->cell_location_db()), Rng(3));
    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        Rng(7));
    auto client = std::make_unique<net::RestClient>(
        &cloud->router(), net::NetworkConditions{0.01, 1}, Rng(11));
    pms.emplace(std::move(device), core::PmsConfig{}, std::move(client),
                Rng(13));
    pms->register_with_cloud(0);
  }

  void tag_by_truth(SimTime now) {
    for (const auto& visit : pms->inference().visit_log()) {
      const core::PlaceRecord* record = pms->places().get(visit.uid);
      if (record == nullptr || !record->label.empty()) continue;
      const SimTime mid = (visit.window.begin + visit.window.end) / 2;
      if (const auto truth = trace->place_at(mid))
        pms->tag_place(visit.uid,
                       world::to_string(world->place(*truth).category), now);
    }
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  std::optional<cloud::CloudInstance> cloud;
  std::optional<core::PmwareMobileService> pms;
};

TEST(UseCase24, TodoAppGetsWorkplaceAlerts) {
  // Paper §2.4, step by step: the To-Do app frames a request for place
  // alerts at building granularity, tracked 9 AM - 6 PM, via an intent
  // filter; PMS senses accordingly and broadcasts arrival/departure alerts.
  Stack stack(4);
  apps::TodoReminder todo("workplace", DailyWindow{hours(9), hours(18)});
  todo.add_todo({"Prepare stand-up notes", true});
  todo.connect(*stack.pms);

  for (int day = 0; day < 4; ++day) {
    stack.pms->run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
    stack.tag_by_truth(start_of_day(day + 1));
  }
  stack.pms->shutdown(days(4));

  EXPECT_GE(todo.enter_alerts() + todo.exit_alerts(), 2u);
  for (const auto& fired : todo.fired()) {
    EXPECT_EQ(fired.text, "Prepare stand-up notes");
    EXPECT_TRUE(fired.entered);
    const SimDuration tod = time_of_day(fired.t);
    EXPECT_GE(tod, hours(9));
    EXPECT_LT(tod, hours(18));
  }
}

TEST(SharedSensing, SecondAppAddsNoSensingCost) {
  // §1 limitation 3: isolated apps duplicate sensing; PMWare's single PMS
  // serves N apps at one app's cost. Run the identical day with one and
  // with three connected apps and compare sample counts.
  auto run_with_apps = [](int app_count) {
    Stack stack(2, 99);
    apps::LifeLog lifelog;
    std::optional<apps::PlaceAds> ads;
    std::optional<apps::TodoReminder> todo;
    lifelog.connect(*stack.pms);
    if (app_count >= 2) {
      ads.emplace(apps::AdInventory::default_catalogue(), Rng(21));
      ads->connect(*stack.pms);
    }
    if (app_count >= 3) {
      todo.emplace("workplace", DailyWindow{hours(9), hours(18)});
      todo->connect(*stack.pms);
    }
    stack.pms->run(TimeWindow{0, days(2)});
    stack.pms->shutdown(days(2));
    return std::array<std::size_t, 3>{
        stack.pms->meter().sample_count(energy::Interface::Gsm),
        stack.pms->meter().sample_count(energy::Interface::Wifi),
        stack.pms->meter().sample_count(energy::Interface::Accelerometer)};
  };

  const auto one = run_with_apps(1);
  const auto three = run_with_apps(3);
  // Identical requirements -> identical sensing; the scheduler runs once.
  EXPECT_EQ(one[0], three[0]);
  EXPECT_EQ(one[1], three[1]);
  EXPECT_EQ(one[2], three[2]);
}

TEST(Privacy, AreaCappedAdsAppSeesCoarserDataThanLifelog) {
  Stack stack(2);
  stack.pms->preferences().set_app_cap("placeads", core::Granularity::Area);

  std::vector<core::Intent> ads_seen, lifelog_seen;
  core::IntentFilter filter;
  filter.actions = {core::actions::kPlaceEnter};
  const auto ads_receiver = stack.pms->bus().register_receiver(
      filter, [&](const core::Intent& i) { ads_seen.push_back(i); });
  const auto lifelog_receiver = stack.pms->bus().register_receiver(
      filter, [&](const core::Intent& i) { lifelog_seen.push_back(i); });

  core::PlaceAlertRequest ads_request;
  ads_request.app = "placeads";
  ads_request.granularity = core::Granularity::Building;
  ads_request.receiver = ads_receiver;
  stack.pms->apps().register_place_alerts(ads_request);

  core::PlaceAlertRequest lifelog_request;
  lifelog_request.app = "lifelog";
  lifelog_request.granularity = core::Granularity::Building;
  lifelog_request.receiver = lifelog_receiver;
  stack.pms->apps().register_place_alerts(lifelog_request);

  stack.pms->run(TimeWindow{0, days(2)});
  stack.pms->shutdown(days(2));

  ASSERT_FALSE(ads_seen.empty());
  ASSERT_FALSE(lifelog_seen.empty());
  for (const auto& intent : ads_seen) {
    EXPECT_FALSE(intent.extras.contains("place_uid"));
    EXPECT_TRUE(intent.extras.contains("area_uid"));
  }
  bool lifelog_has_details = false;
  for (const auto& intent : lifelog_seen)
    if (intent.extras.contains("place_uid")) lifelog_has_details = true;
  EXPECT_TRUE(lifelog_has_details);
}

TEST(EndToEnd, CloudHoldsConsistentStateAfterStudyDays) {
  Stack stack(3);
  apps::LifeLog lifelog;
  lifelog.connect(*stack.pms);
  for (int day = 0; day < 3; ++day) {
    stack.pms->run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
    stack.tag_by_truth(start_of_day(day + 1));
  }
  stack.pms->shutdown(days(3));

  const auto* user = stack.cloud->storage().find_user(1);
  ASSERT_NE(user, nullptr);
  // Places synced with labels matching the local store.
  EXPECT_EQ(user->places.size(), stack.pms->places().size());
  for (const auto& [uid, local] : stack.pms->places().records()) {
    ASSERT_TRUE(user->places.count(uid));
    EXPECT_EQ(user->places.at(uid).label, local.label);
  }
  // Every synced day profile references only known places.
  for (const auto& [day, profile] : user->profiles) {
    for (const auto& entry : profile.places)
      EXPECT_TRUE(user->places.count(entry.place))
          << "day " << day << " references unknown place " << entry.place;
  }
}

TEST(EndToEnd, MetricsScrapeCoversEveryMiddlewareLayer) {
  // The acceptance bar for the telemetry subsystem: after a full-stack run,
  // GET /metrics on the cloud serves families recorded by the net transport,
  // the sampling scheduler, the inference core, the PMS, and the cloud
  // itself — one registry, every layer.
  Stack stack(2);
  for (int day = 0; day < 2; ++day)
    stack.pms->run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
  stack.pms->shutdown(days(2));

  // Scrape as a second registered device (any authenticated user may).
  net::HttpRequest reg;
  reg.method = net::Method::Post;
  reg.path = "/api/register";
  reg.headers[cloud::CloudInstance::kSimTimeHeader] = "0";
  reg.body = Json::object();
  reg.body.set("imei", "scraper-imei");
  reg.body.set("email", "scraper@ops.example");
  const net::HttpResponse registered = stack.cloud->router().handle(reg);
  ASSERT_TRUE(registered.ok());

  net::HttpRequest scrape;
  scrape.method = net::Method::Get;
  scrape.path = "/metrics";
  scrape.headers[cloud::CloudInstance::kSimTimeHeader] = "0";
  scrape.headers["Authorization"] =
      "Bearer " + registered.body.at("token").as_string();
  const net::HttpResponse res = stack.cloud->router().handle(scrape);
  ASSERT_TRUE(res.ok());

  const std::string& text = res.body.at("text").as_string();
  for (const char* family :
       {"net_requests_total", "sensing_samples_total", "core_recluster_total",
        "pms_profile_syncs_total", "cloud_requests_total"})
    EXPECT_NE(text.find(family), std::string::npos)
        << "family missing from scrape: " << family;
}

TEST(EndToEnd, DiscoveredPlacesMatchGroundTruthWell) {
  Stack stack(5);
  apps::LifeLog lifelog;
  lifelog.connect(*stack.pms);
  stack.pms->run(TimeWindow{0, days(5)});
  stack.pms->shutdown(days(5));

  std::vector<algorithms::TruthVisit> truth;
  for (const auto& v : stack.trace->significant_visits(minutes(10)))
    truth.push_back({v.place, v.window});
  std::vector<algorithms::ReportedVisit> reported;
  for (const auto& v : stack.pms->inference().visit_log())
    reported.push_back({static_cast<std::size_t>(v.uid), v.window});

  const auto eval = algorithms::evaluate_discovered(truth, reported);
  EXPECT_GE(eval.fraction(algorithms::DiscoveredOutcome::Correct), 0.5);
  EXPECT_EQ(eval.count(algorithms::DiscoveredOutcome::Spurious), 0u);
}

}  // namespace
}  // namespace pmware
