// SchedulerPerf battery: equivalence guarantees behind the run-oriented
// scheduler and the device's world-environment cache.
//
//  * Fuzz: randomized storms of set_period / request_once issued from
//    callbacks must dispatch identically on the retired heap scheduler
//    (ReferenceScheduler), the new scheduler's per-sample path, and the new
//    scheduler's batch path — same (interface, time) log, same metered
//    joules (bitwise).
//  * Device: readings with the position-keyed spatial-query cache on are
//    byte-identical to the uncached path, and the cache actually hits on
//    dwell-dominated oracles.
//  * Study: a threaded deployment study equals the sequential one — this
//    file carries the SchedulerPerf label so the ci.sh tsan leg races the
//    batched hot loop across 8 workers.
#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "sensing/device.hpp"
#include "sensing/scheduler.hpp"
#include "sensing/scheduler_reference.hpp"
#include "study/deployment.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

namespace pmware::sensing {
namespace {

using energy::Interface;

using DispatchLog = std::vector<std::pair<int, SimTime>>;

constexpr int kInterfaces = static_cast<int>(energy::kInterfaceCount);

/// One randomized schedule mutation, drawn from `rng`. Every driver below
/// calls this with the same per-dispatch RNG stream, so equivalent
/// schedulers make identical mutations; any divergence shows up as a
/// dispatch-log mismatch. Returns true if it mutated the schedule (batch
/// consumers must then truncate their run).
template <typename Sched>
bool maybe_mutate(Sched& s, Rng& rng, SimTime t,
                  std::optional<SimTime> explicit_from) {
  if (rng.index(12) != 0) return false;
  static constexpr SimDuration kPeriods[] = {30, 60, 90, 120, 300, 600};
  switch (rng.index(3)) {
    case 0: {
      // Re-arm a random non-GSM interface (GSM stays on so the storm never
      // dies out).
      const auto i = static_cast<Interface>(1 + rng.index(kInterfaces - 1));
      const SimDuration p = kPeriods[rng.index(std::size(kPeriods))];
      if constexpr (std::is_same_v<Sched, SamplingScheduler>) {
        s.set_period(i, p, explicit_from);
      } else {
        (void)explicit_from;
        s.set_period(i, p);
      }
      break;
    }
    case 1: {
      const auto i = static_cast<Interface>(1 + rng.index(kInterfaces - 1));
      if constexpr (std::is_same_v<Sched, SamplingScheduler>) {
        s.set_period(i, std::nullopt, explicit_from);
      } else {
        s.set_period(i, std::nullopt);
      }
      break;
    }
    default: {
      // One-shot at or after the current sample — including exactly at `t`
      // and colliding with future periodic fire times, which exercises the
      // equal-timestamp ordering contract.
      const auto i = static_cast<Interface>(rng.index(kInterfaces));
      s.request_once(i, t + static_cast<SimTime>(rng.index(5)) * 150);
      break;
    }
  }
  return true;
}

template <typename Sched>
void run_windows(Sched& s) {
  s.set_period(Interface::Gsm, 60);
  s.set_period(Interface::Accelerometer, 90);
  for (SimTime w = 0; w < 4; ++w)
    s.run(TimeWindow{w * hours(1), (w + 1) * hours(1)});
}

/// Storm through per-sample callbacks (works for both scheduler types).
template <typename Sched>
std::pair<DispatchLog, double> storm_single(std::uint64_t seed) {
  energy::EnergyMeter meter;
  Sched s(&meter);
  Rng rng(seed);
  DispatchLog log;
  for (int i = 0; i < kInterfaces; ++i) {
    s.set_callback(static_cast<Interface>(i), [&s, &rng, &log, i](SimTime t) {
      log.push_back({i, t});
      // Per-sample dispatch: the scheduler clock tracks t, no explicit
      // anchor needed.
      maybe_mutate(s, rng, t, std::nullopt);
    });
  }
  run_windows(s);
  return {log, meter.total_j()};
}

/// The same storm through batch consumers following the truncation
/// contract: stop consuming right after a mutating sample, anchor schedule
/// changes at the sample time.
std::pair<DispatchLog, double> storm_batched(std::uint64_t seed) {
  energy::EnergyMeter meter;
  SamplingScheduler s(&meter);
  Rng rng(seed);
  DispatchLog log;
  for (int i = 0; i < kInterfaces; ++i) {
    s.set_batch_callback(
        static_cast<Interface>(i),
        [&s, &rng, &log, i](std::span<const SimTime> run) {
          std::size_t consumed = 0;
          for (const SimTime t : run) {
            log.push_back({i, t});
            ++consumed;
            if (maybe_mutate(s, rng, t, t)) break;
          }
          return consumed;
        });
  }
  run_windows(s);
  return {log, meter.total_j()};
}

TEST(SchedulerPerf, FuzzBatchedMatchesReferenceHeap) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto reference = storm_single<ReferenceScheduler>(seed);
    const auto single = storm_single<SamplingScheduler>(seed);
    const auto batched = storm_batched(seed);
    ASSERT_EQ(reference.first, single.first);
    ASSERT_EQ(reference.first, batched.first);
    EXPECT_EQ(reference.second, single.second);  // joules, bitwise
    EXPECT_EQ(reference.second, batched.second);
  }
}

TEST(SchedulerPerf, EqualTimestampOrderIsPeriodicThenOneShots) {
  // At one tick: periodic interfaces in ascending index, then one-shots in
  // request order — on both schedulers.
  const auto drive = [](auto&& s) {
    DispatchLog log;
    for (int i = 0; i < kInterfaces; ++i)
      s.set_callback(static_cast<Interface>(i),
                     [&log, i](SimTime t) { log.push_back({i, t}); });
    // Both periodic interfaces and both one-shots collide at t=120.
    s.set_period(Interface::Bluetooth, 120);  // index 4
    s.set_period(Interface::Wifi, 60);        // index 1
    s.request_once(Interface::Gps, 120);      // index 2, requested first
    s.request_once(Interface::Accelerometer, 120);  // index 3, second
    s.run(TimeWindow{0, 121});
    return log;
  };
  energy::EnergyMeter m1, m2;
  ReferenceScheduler ref(&m1);
  SamplingScheduler batched(&m2);
  const DispatchLog expected{{1, 0},   {4, 0},   {1, 60},  {1, 120},
                             {4, 120}, {2, 120}, {3, 120}};
  EXPECT_EQ(drive(ref), expected);
  EXPECT_EQ(drive(batched), expected);
}

// --- Device world-environment cache equivalence ---

class CachedDeviceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world::WorldConfig config;
    Rng rng(1);
    world_ = world::generate_world(config, rng);
  }

  /// Dwell-trip-dwell oracle: anchored at place 0, a midday excursion to
  /// place 1 with a position that changes every sample in between.
  PositionOracle commuting_oracle() const {
    const geo::LatLng home = world_->place(0).center;
    const geo::LatLng work = world_->place(1).center;
    PositionOracle oracle;
    oracle.position = [home, work](SimTime t) {
      if (t < hours(3)) return home;
      if (t < hours(3) + minutes(30)) {  // in transit, moves every sample
        const double f = static_cast<double>(t - hours(3)) / minutes(30);
        return geo::LatLng{home.lat + (work.lat - home.lat) * f,
                           home.lng + (work.lng - home.lng) * f};
      }
      return work;
    };
    oracle.activity = [](SimTime) { return mobility::Activity::Still; };
    oracle.indoors = [](SimTime) { return true; };
    return oracle;
  }

  Device make_device(bool reuse_env, std::uint64_t seed = 42) {
    DeviceConfig config;
    config.reuse_world_env = reuse_env;
    return Device(world_, commuting_oracle(), config, Rng(seed));
  }

  std::shared_ptr<const world::World> world_;
};

TEST_F(CachedDeviceFixture, CachedReadingsAreByteIdenticalToUncached) {
  Device cached = make_device(true);
  Device uncached = make_device(false);
  for (SimTime t = 0; t < hours(6); t += 60) {
    const GsmReading a = cached.read_gsm(t);
    const GsmReading b = uncached.read_gsm(t);
    ASSERT_EQ(a.t, b.t);
    ASSERT_EQ(a.serving, b.serving);
    ASSERT_EQ(a.serving_rssi_dbm, b.serving_rssi_dbm);  // bitwise
    ASSERT_EQ(a.neighbors, b.neighbors);
    if (t % minutes(5) == 0) {
      const WifiScan sa = cached.scan_wifi(t);
      const WifiScan sb = uncached.scan_wifi(t);
      ASSERT_EQ(sa.aps.size(), sb.aps.size());
      for (std::size_t k = 0; k < sa.aps.size(); ++k) {
        ASSERT_EQ(sa.aps[k].bssid, sb.aps[k].bssid);
        ASSERT_EQ(sa.aps[k].rssi_dbm, sb.aps[k].rssi_dbm);
      }
    }
  }
}

TEST_F(CachedDeviceFixture, CacheHitsDominateOnDwellHeavyTraces) {
  Device device = make_device(true);
  for (SimTime t = 0; t < hours(6); t += 60) device.read_gsm(t);
  ASSERT_GT(device.env_queries(), 0u);
  const double hit_rate = static_cast<double>(device.env_hits()) /
                          static_cast<double>(device.env_queries());
  // 5.5 of 6 hours are dwells at a constant anchor position.
  EXPECT_GT(hit_rate, 0.85);
  // The uncached device never reports hits.
  Device honest = make_device(false);
  for (SimTime t = 0; t < hours(1); t += 60) honest.read_gsm(t);
  EXPECT_EQ(honest.env_hits(), 0u);
}

TEST_F(CachedDeviceFixture, RunReadsMatchSingleReads) {
  Device run_device = make_device(true);
  Device single_device = make_device(true);
  std::vector<SimTime> times;
  for (SimTime t = 0; t < hours(1); t += 60) times.push_back(t);

  std::vector<GsmReading> from_run;
  run_device.read_gsm_run(times, [&from_run](const GsmReading& r) {
    from_run.push_back(r);  // copy out of the scratch
    return true;
  });
  ASSERT_EQ(from_run.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const GsmReading single = single_device.read_gsm(times[i]);
    ASSERT_EQ(from_run[i].serving, single.serving);
    ASSERT_EQ(from_run[i].serving_rssi_dbm, single.serving_rssi_dbm);
    ASSERT_EQ(from_run[i].neighbors, single.neighbors);
  }
}

}  // namespace
}  // namespace pmware::sensing

namespace pmware::study {
namespace {

// Threaded batched hot loop vs sequential: same digests. Runs under tsan in
// the ci.sh SchedulerPerf leg.
TEST(SchedulerPerf, ThreadedStudyDigestMatchesSequential) {
  StudyConfig base;
  base.participants = 4;
  base.days = 3;
  StudyConfig threaded = base;
  threaded.threads = 8;
  const StudyResult rs = DeploymentStudy(base).run();
  const StudyResult rt = DeploymentStudy(threaded).run();
  EXPECT_EQ(rs.storage_digest, rt.storage_digest);
  ASSERT_EQ(rs.participants.size(), rt.participants.size());
  for (std::size_t i = 0; i < rs.participants.size(); ++i) {
    EXPECT_EQ(rs.participants[i].sensing_joules,
              rt.participants[i].sensing_joules);
    EXPECT_EQ(rs.participants[i].places_discovered,
              rt.participants[i].places_discovered);
  }
}

}  // namespace
}  // namespace pmware::study
