// Scale tests for the second-generation telemetry hot path: striped
// counters, sharded histograms, and pre-resolved metric handles hammered
// from 8 threads. Labeled Concurrency so ci.sh runs this battery under
// ThreadSanitizer — the assertions catch lost updates and torn snapshots,
// the sanitizer catches the races assertions cannot see.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"
#include "telemetry/process.hpp"

namespace pmware::telemetry {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 5000;

/// Start gate so all workers enter the hot section together instead of
/// running mostly sequentially on a loaded machine.
class StartGate {
 public:
  void wait() {
    ready_.fetch_add(1);
    while (!go_.load()) std::this_thread::yield();
  }
  void open(std::size_t expected) {
    while (ready_.load() < expected) std::this_thread::yield();
    go_.store(true);
  }

 private:
  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> go_{false};
};

TEST(TelemetryScale, StripedCounterTotalsMatchSerialReplay) {
  // Every thread adds a deterministic sequence to one shared counter; the
  // merged total must equal the serial replay of the same sequence.
  MetricsRegistry reg;
  Counter& shared = reg.counter("scale_shared_total", {}, "hammered");
  std::uint64_t expected = 0;
  for (std::size_t t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < kOpsPerThread; ++i)
      expected += 1 + (t + i) % 7;

  StartGate gate;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, &gate, t] {
      gate.wait();
      for (std::size_t i = 0; i < kOpsPerThread; ++i)
        shared.inc(1 + (t + i) % 7);
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();
  EXPECT_EQ(shared.value(), expected);
}

TEST(TelemetryScale, CounterReadableWhileHammered) {
  // value() is called concurrently with writers (exporters, alert engine):
  // it must stay tear-free and monotone.
  MetricsRegistry reg;
  Counter& shared = reg.counter("scale_live_total", {}, "hammered");
  StartGate gate;
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, &gate] {
      gate.wait();
      for (std::size_t i = 0; i < kOpsPerThread; ++i) shared.inc();
    });
  }
  std::thread reader([&shared, &gate, &done] {
    gate.wait();
    std::uint64_t last = 0;
    while (!done.load()) {
      const std::uint64_t now = shared.value();
      ASSERT_GE(now, last);
      last = now;
    }
  });
  gate.open(kThreads + 1);
  for (auto& w : workers) w.join();
  done.store(true);
  reader.join();
  EXPECT_EQ(shared.value(), kThreads * kOpsPerThread);
}

TEST(TelemetryScale, HistogramSnapshotNeverTornWhileObserving) {
  // The satellite regression: 8 threads observe a constant while the main
  // thread snapshots. Every observation lands atomically in exactly one
  // shard, so a snapshot must never report sum/count torn across buckets:
  // bucket total == stats count and sum == v * count, at every instant.
  MetricsRegistry reg;
  constexpr double kValue = 10.0;
  HistogramMetric& h =
      reg.histogram("scale_observe", {}, 0, 100, 10, "hammered");
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, &gate] {
      gate.wait();
      for (std::size_t i = 0; i < kOpsPerThread; ++i) h.observe(kValue);
    });
  }
  gate.open(kThreads);
  for (int probe = 0; probe < 200; ++probe) {
    const HistogramMetric::Snapshot snap = h.snapshot();
    const auto count = static_cast<std::uint64_t>(snap.stats.count());
    ASSERT_EQ(snap.buckets.total(), count) << "buckets torn vs stats";
    ASSERT_DOUBLE_EQ(snap.stats.sum(), kValue * static_cast<double>(count))
        << "sum torn vs count";
  }
  for (auto& w : workers) w.join();
  const HistogramMetric::Snapshot final_snap = h.snapshot();
  EXPECT_EQ(final_snap.buckets.total(), kThreads * kOpsPerThread);
  EXPECT_DOUBLE_EQ(final_snap.stats.mean(), kValue);
}

TEST(TelemetryScale, PerThreadHandlesShareOneFamilySeries) {
  // The study idiom: each worker owns its own pre-resolved handle to the
  // same (name, labels) series. Registration races on first use; totals
  // must still be exact.
  registry().reset();
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gate] {
      CounterHandle mine("scale_handle_total", {}, "per-thread handles");
      gate.wait();
      for (std::size_t i = 0; i < kOpsPerThread; ++i) mine.inc();
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry().counter_value("scale_handle_total", {}),
            kThreads * kOpsPerThread);
}

TEST(TelemetryScale, HandlesRevalidateAfterRegistryReset) {
  registry().reset();
  CounterHandle counter("scale_reval_total", {}, "handle");
  GaugeHandle gauge("scale_reval_gauge", {}, "handle");
  HistogramHandle hist("scale_reval_hist", {}, 0, 100, 10, "handle");
  counter.inc(3);
  gauge.set(7);
  hist.observe(50);
  EXPECT_EQ(registry().counter_value("scale_reval_total", {}), 3u);

  registry().reset();
  // The cached instrument pointers are now dangling; the epoch check must
  // re-resolve instead of writing through them.
  counter.inc(2);
  gauge.set(9);
  hist.observe(60);
  EXPECT_EQ(registry().counter_value("scale_reval_total", {}), 2u);
  const Gauge* g = registry().find_gauge("scale_reval_gauge", {});
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), 9.0);
  const HistogramMetric* h = registry().find_histogram("scale_reval_hist", {});
  ASSERT_NE(h, nullptr);
  // The handle re-registered with its original bounds.
  EXPECT_DOUBLE_EQ(h->hi(), 100.0);
  EXPECT_EQ(h->snapshot().buckets.total(), 1u);
}

TEST(TelemetryScale, ThreadStripeIdsAreStableAndDistinct) {
  const unsigned mine = thread_stripe_id();
  EXPECT_EQ(thread_stripe_id(), mine);  // stable within a thread
  std::vector<unsigned> seen(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back(
        [&seen, t] { seen[t] = thread_stripe_id(); });
  for (auto& w : workers) w.join();
  for (std::size_t a = 0; a < kThreads; ++a) {
    EXPECT_NE(seen[a], mine);
    for (std::size_t b = a + 1; b < kThreads; ++b)
      EXPECT_NE(seen[a], seen[b]);
  }
}

TEST(TelemetryScale, ProcessStatsReadSanely) {
  const ProcessStats stats = read_process_stats();
#if defined(__linux__)
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GE(stats.peak_rss_bytes, stats.rss_bytes);
  EXPECT_GE(stats.cpu_seconds, 0.0);
#else
  EXPECT_GE(stats.peak_rss_bytes, stats.rss_bytes);
#endif

  MetricsRegistry reg;
  sample_process_stats(reg);
  const Gauge* peak = reg.find_gauge("process_peak_rss_bytes", {});
  ASSERT_NE(peak, nullptr);
#if defined(__linux__)
  EXPECT_GT(peak->value(), 0.0);
#endif
  ASSERT_NE(reg.find_gauge("process_rss_bytes", {}), nullptr);
  ASSERT_NE(reg.find_gauge("process_cpu_seconds", {}), nullptr);
}

}  // namespace
}  // namespace pmware::telemetry
