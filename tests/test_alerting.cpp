// Sim-time series recorder + SLO alert engine tests, including the cloud's
// GET /timeseries and GET /alertz surfaces and the determinism guard: a
// study with telemetry fully enabled must produce a byte-identical cloud
// content digest to a study with it all off. Labeled Alerting so ci.sh runs
// the battery in both the tsan and chaos legs.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"
#include "study/deployment.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace pmware::telemetry {
namespace {

/// Every test starts from a clean process-wide registry/recorder/engine —
/// they are shared state, and prior tests (or studies) leave residue.
struct TelemetryReset : ::testing::Test {
  TelemetryReset() {
    registry().reset();
    timeseries().configure({/*enabled=*/true, /*interval=*/100,
                            /*capacity=*/8});
    alerts().clear();
  }
};

using RecorderTest = TelemetryReset;
using AlertTest = TelemetryReset;

TEST_F(RecorderTest, SamplesAtMostOncePerIntervalSlot) {
  timeseries().track_counter("rec_events_total");
  Counter& events = registry().counter("rec_events_total", {}, "t");

  events.inc(5);
  EXPECT_FALSE(timeseries().advance(50));   // slot 0: not yet
  EXPECT_TRUE(timeseries().advance(100));   // slot 1 crossed
  EXPECT_FALSE(timeseries().advance(150));  // still slot 1
  events.inc(3);
  EXPECT_TRUE(timeseries().advance(250));   // slot 2 crossed
  EXPECT_FALSE(timeseries().advance(250));

  const auto points = timeseries().points();
  ASSERT_EQ(points.size(), 2u);
  // Stamps snap to the slot boundary; values are per-window deltas.
  EXPECT_EQ(points[0].sim_time, 100);
  EXPECT_EQ(points[1].sim_time, 200);
  ASSERT_EQ(points[0].values.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].values[0], 5.0);
  EXPECT_DOUBLE_EQ(points[1].values[0], 3.0);
}

TEST_F(RecorderTest, TracksGaugeValuesAndCounterDeltasSideBySide) {
  timeseries().track_counter("rec_ops_total");
  timeseries().track_gauge("rec_depth");
  registry().counter("rec_ops_total", {}, "t").inc(7);
  registry().gauge("rec_depth", {{"q", "a"}}, "t").set(2);
  registry().gauge("rec_depth", {{"q", "b"}}, "t").set(3);
  ASSERT_TRUE(timeseries().advance(100));
  const auto points = timeseries().points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].values[0], 7.0);  // delta
  EXPECT_DOUBLE_EQ(points[0].values[1], 5.0);  // family sum across series
}

TEST_F(RecorderTest, BoundedRingEvictsOldestAndCountsDrops) {
  timeseries().configure({true, 100, /*capacity=*/2});
  timeseries().track_counter("rec_ring_total");
  for (int slot = 1; slot <= 5; ++slot)
    ASSERT_TRUE(timeseries().advance(slot * 100));
  const auto points = timeseries().points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].sim_time, 400);
  EXPECT_EQ(points[1].sim_time, 500);
  EXPECT_EQ(timeseries().dropped(), 3u);
}

TEST_F(RecorderTest, DisabledRecorderNeverSamples) {
  timeseries().configure({/*enabled=*/false, 100, 8});
  timeseries().track_counter("rec_off_total");
  EXPECT_FALSE(timeseries().advance(1000));
  EXPECT_TRUE(timeseries().points().empty());
}

TEST_F(RecorderTest, ToJsonCarriesSeriesNamesAndPoints) {
  timeseries().track_counter("rec_json_total");
  registry().counter("rec_json_total", {}, "t").inc(4);
  ASSERT_TRUE(timeseries().advance(100));
  const Json doc = timeseries().to_json();
  EXPECT_EQ(doc.at("interval_s").as_int(), 100);
  ASSERT_EQ(doc.at("series").size(), 1u);
  EXPECT_EQ(doc.at("series")[0].as_string(), "rec_json_total");
  ASSERT_EQ(doc.at("points").size(), 1u);
  EXPECT_EQ(doc.at("points")[0].at("t").as_int(), 100);
  EXPECT_DOUBLE_EQ(doc.at("points")[0].at("values")[0].as_double(), 4.0);
}

TEST_F(AlertTest, ThresholdRuleFollowsGaugeFamilySum) {
  alerts().add_rule({"depth", AlertKind::Threshold, "al_depth", 10.0,
                     kSecondsPerDay, "queue too deep"});
  Gauge& depth = registry().gauge("al_depth", {}, "t");
  depth.set(9);
  alerts().evaluate(100);
  EXPECT_EQ(alerts().firing_count(), 0u);
  depth.set(12);
  alerts().evaluate(200);
  EXPECT_EQ(alerts().firing_count(), 1u);
  depth.set(2);
  alerts().evaluate(300);
  EXPECT_EQ(alerts().firing_count(), 0u);
  const auto snap = alerts().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second.fire_count, 1u);
  EXPECT_EQ(snap[0].second.since, 200);
}

TEST_F(AlertTest, BurnRateWindowsDeltaOverSimTime) {
  // 100 increments over a 100 s window = 1.0/s, over the 0.5/s threshold.
  alerts().add_rule({"burn", AlertKind::BurnRate, "al_burn_total", 0.5,
                     /*window=*/100, "too fast"});
  Counter& c = registry().counter("al_burn_total", {}, "t");
  c.inc(100);
  alerts().evaluate(100);
  EXPECT_EQ(alerts().firing_count(), 1u);
  // No further increments: the trailing window empties out and it resolves.
  alerts().evaluate(200);
  alerts().evaluate(300);
  EXPECT_EQ(alerts().firing_count(), 0u);
  // A second burst is a second rising edge.
  c.inc(100);
  alerts().evaluate(400);
  EXPECT_EQ(alerts().firing_count(), 1u);
  const auto snap = alerts().snapshot();
  EXPECT_EQ(snap[0].second.fire_count, 2u);
  // Rising edges landed in the alerts_fired_total{rule} counter.
  EXPECT_EQ(registry().counter_value("alerts_fired_total", {{"rule", "burn"}}),
            2u);
}

TEST_F(AlertTest, BurnRateCountsIncrementsBeforeFirstEvaluation) {
  // Increments between rule install and the first evaluation must count
  // toward the first window instead of vanishing into the baseline.
  alerts().add_rule({"early", AlertKind::BurnRate, "al_early_total", 0.0,
                     /*window=*/100, "any increase"});
  registry().counter("al_early_total", {}, "t").inc();
  alerts().evaluate(100);
  EXPECT_EQ(alerts().firing_count(), 1u);
}

TEST_F(AlertTest, StalenessFiresWhenProgressStops) {
  alerts().add_rule({"stale", AlertKind::Staleness, "al_progress_total", 0.0,
                     /*window=*/100, "no progress"});
  Counter& c = registry().counter("al_progress_total", {}, "t");
  c.inc();
  alerts().evaluate(0);  // first sight: progress marker set
  c.inc();
  alerts().evaluate(50);  // still moving
  EXPECT_EQ(alerts().firing_count(), 0u);
  alerts().evaluate(120);  // quiet for 70 s — under the window
  EXPECT_EQ(alerts().firing_count(), 0u);
  alerts().evaluate(160);  // quiet for 110 s — stale
  EXPECT_EQ(alerts().firing_count(), 1u);
  c.inc();
  alerts().evaluate(200);  // progress resumed
  EXPECT_EQ(alerts().firing_count(), 0u);
}

TEST_F(AlertTest, DefaultRuleSetCoversTheMiddlewareSlos) {
  alerts().install_default_rules();
  const auto snap = alerts().snapshot();
  std::vector<std::string> names;
  for (const auto& [rule, state] : snap) names.push_back(rule.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "breaker-open", "outbox-overflow", "slo-burn",
                       "shard-lock-wait", "study-progress"}));
  // A healthy registry fires nothing.
  Counter& progress =
      registry().counter("study_participant_days_total", {}, "t");
  progress.inc();
  alerts().evaluate(kSecondsPerDay);
  EXPECT_EQ(alerts().firing_count(), 0u);
  // Data loss pages immediately (progress keeps moving, so only the
  // outbox-overflow rule fires).
  registry().counter("pms_outbox_evicted_total", {}, "t").inc();
  progress.inc();
  alerts().evaluate(2 * kSecondsPerDay);
  EXPECT_EQ(alerts().firing_count(), 1u);
  for (const auto& [rule, state] : alerts().snapshot())
    EXPECT_EQ(state.firing, rule.name == "outbox-overflow") << rule.name;
}

TEST_F(AlertTest, ToJsonListsRulesWithLiveState) {
  alerts().add_rule({"one", AlertKind::Threshold, "al_json", 1.0,
                     kSecondsPerDay, "help text"});
  registry().gauge("al_json", {}, "t").set(5);
  alerts().evaluate(100);
  const Json doc = alerts().to_json();
  EXPECT_EQ(doc.at("firing").as_int(), 1);
  ASSERT_EQ(doc.at("rules").size(), 1u);
  const Json& rule = doc.at("rules")[0];
  EXPECT_EQ(rule.at("name").as_string(), "one");
  EXPECT_EQ(rule.at("kind").as_string(), "threshold");
  EXPECT_TRUE(rule.at("firing").as_bool());
  EXPECT_EQ(rule.at("fire_count").as_int(), 1);
}

// ------------------------------------------------- cloud observability API

class EndpointTest : public TelemetryReset {
 protected:
  EndpointTest()
      : cloud_(cloud::CloudConfig{}, cloud::GeoLocationService({}), Rng(1)) {}

  net::HttpRequest request(std::string path) {
    net::HttpRequest req;
    req.method = net::Method::Get;
    req.path = std::move(path);
    req.headers[cloud::CloudInstance::kSimTimeHeader] = "0";
    if (!token_.empty()) req.headers["Authorization"] = "Bearer " + token_;
    return req;
  }

  void register_device() {
    net::HttpRequest req;
    req.method = net::Method::Post;
    req.path = "/api/register";
    req.headers[cloud::CloudInstance::kSimTimeHeader] = "0";
    req.body = Json::object();
    req.body.set("imei", "111");
    req.body.set("email", "a@b.c");
    const net::HttpResponse res = cloud_.router().handle(req);
    ASSERT_EQ(res.status, net::kStatusCreated);
    token_ = res.body.at("token").as_string();
  }

  cloud::CloudInstance cloud_;
  std::string token_;
};

TEST_F(EndpointTest, TimeseriesEndpointIsAuthedAndServesTheRing) {
  timeseries().track_counter("ep_ts_total");
  registry().counter("ep_ts_total", {}, "t").inc(6);
  ASSERT_TRUE(timeseries().advance(100));

  EXPECT_EQ(cloud_.router().handle(request("/timeseries")).status,
            net::kStatusUnauthorized);
  register_device();
  const net::HttpResponse res = cloud_.router().handle(request("/timeseries"));
  ASSERT_EQ(res.status, net::kStatusOk);
  ASSERT_EQ(res.body.at("points").size(), 1u);
  EXPECT_EQ(res.body.at("series")[0].as_string(), "ep_ts_total");
}

TEST_F(EndpointTest, AlertzEndpointIsAuthedAndServesRuleStates) {
  alerts().install_default_rules();
  alerts().evaluate(100);

  EXPECT_EQ(cloud_.router().handle(request("/alertz")).status,
            net::kStatusUnauthorized);
  register_device();
  const net::HttpResponse res = cloud_.router().handle(request("/alertz"));
  ASSERT_EQ(res.status, net::kStatusOk);
  EXPECT_EQ(res.body.at("rules").size(), 5u);
  EXPECT_EQ(res.body.at("firing").as_int(), 0);
}

TEST_F(EndpointTest, MetricsScrapeCarriesBuildInfo) {
  register_device();
  const net::HttpResponse res = cloud_.router().handle(request("/metrics"));
  ASSERT_EQ(res.status, net::kStatusOk);
  const std::string text = res.body.at("text").as_string();
  EXPECT_NE(text.find("pmware_build_info"), std::string::npos);
  EXPECT_NE(text.find("git_describe=\""), std::string::npos);
  EXPECT_NE(text.find("sanitizer=\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\""), std::string::npos);
}

// ------------------------------------------------------ determinism guard

TEST(TelemetryDeterminism, StudyDigestIdenticalWithTelemetryOnAndOff) {
  study::StudyConfig config;
  config.participants = 3;
  config.days = 2;
  config.threads = 2;
  config.shards = 2;

  config.timeseries.enabled = true;
  config.alerts = true;
  study::DeploymentStudy telemetry_on(config);
  const std::uint64_t digest_on = telemetry_on.run().storage_digest;
  // The recorder sampled once per sim-day of fleet progress.
  EXPECT_EQ(timeseries().points().size(),
            static_cast<std::size_t>(config.days));
  EXPECT_FALSE(alerts().snapshot().empty());

  config.timeseries.enabled = false;
  config.alerts = false;
  study::DeploymentStudy telemetry_off(config);
  const std::uint64_t digest_off = telemetry_off.run().storage_digest;
  EXPECT_TRUE(timeseries().points().empty());
  EXPECT_TRUE(alerts().snapshot().empty());

  EXPECT_EQ(digest_on, digest_off)
      << "telemetry must never perturb study results";
}

}  // namespace
}  // namespace pmware::telemetry
