#include "algorithms/signature.hpp"

#include <gtest/gtest.h>

namespace pmware::algorithms {
namespace {

using world::CellId;

CellId cell(std::uint32_t cid) { return CellId{404, 10, 1, cid, world::Radio::Gsm2G}; }

TEST(Tanimoto, Identity) {
  const std::set<int> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(tanimoto(a, a), 1.0);
}

TEST(Tanimoto, Disjoint) {
  const std::set<int> a{1, 2};
  const std::set<int> b{3, 4};
  EXPECT_DOUBLE_EQ(tanimoto(a, b), 0.0);
}

TEST(Tanimoto, PartialOverlap) {
  const std::set<int> a{1, 2, 3};
  const std::set<int> b{2, 3, 4};
  EXPECT_DOUBLE_EQ(tanimoto(a, b), 2.0 / 4.0);
}

TEST(Tanimoto, EmptySets) {
  const std::set<int> empty;
  const std::set<int> a{1};
  EXPECT_DOUBLE_EQ(tanimoto(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(tanimoto(empty, a), 0.0);
}

TEST(Tanimoto, Symmetry) {
  const std::set<int> a{1, 2, 3, 7};
  const std::set<int> b{2, 5};
  EXPECT_DOUBLE_EQ(tanimoto(a, b), tanimoto(b, a));
}

TEST(OverlapCoefficient, SubsetIsOne) {
  const std::set<int> small{1};
  const std::set<int> big{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(overlap_coefficient(small, big), 1.0);
  EXPECT_DOUBLE_EQ(overlap_coefficient(big, small), 1.0);
}

TEST(OverlapCoefficient, DominatesTanimoto) {
  const std::set<int> a{1, 2, 3};
  const std::set<int> b{2, 3, 4, 5, 6};
  EXPECT_GE(overlap_coefficient(a, b), tanimoto(a, b));
}

TEST(OverlapCoefficient, EmptyIsZero) {
  const std::set<int> empty;
  const std::set<int> a{1};
  EXPECT_DOUBLE_EQ(overlap_coefficient(empty, a), 0.0);
}

TEST(SignaturesMatch, DifferentKindsNeverMatch) {
  const PlaceSignature cells = CellSignature{{cell(1), cell(2)}};
  const PlaceSignature wifi = WifiSignature{{1, 2}};
  const PlaceSignature gps = GpsSignature{{28.6, 77.2}, 75};
  EXPECT_FALSE(signatures_match(cells, wifi));
  EXPECT_FALSE(signatures_match(wifi, gps));
  EXPECT_FALSE(signatures_match(gps, cells));
}

TEST(SignaturesMatch, CellSimilarityThreshold) {
  const PlaceSignature a = CellSignature{{cell(1), cell(2), cell(3)}};
  const PlaceSignature same = CellSignature{{cell(1), cell(2), cell(3)}};
  const PlaceSignature near = CellSignature{{cell(1), cell(2), cell(4)}};
  const PlaceSignature far = CellSignature{{cell(7), cell(8), cell(9)}};
  EXPECT_TRUE(signatures_match(a, same));
  EXPECT_TRUE(signatures_match(a, near, 0.45));  // 2/4 = 0.5
  EXPECT_FALSE(signatures_match(a, far));
  EXPECT_FALSE(signatures_match(a, near, 0.6));
}

TEST(SignaturesMatch, WifiSimilarityThreshold) {
  const PlaceSignature a = WifiSignature{{10, 20}};
  const PlaceSignature overlap = WifiSignature{{10, 20, 30}};  // 2/3
  const PlaceSignature disjoint = WifiSignature{{40, 50}};
  EXPECT_TRUE(signatures_match(a, overlap));
  EXPECT_FALSE(signatures_match(a, disjoint));
}

TEST(SignaturesMatch, GpsDistanceRule) {
  const PlaceSignature a = GpsSignature{{28.6139, 77.2090}, 100};
  const PlaceSignature close =
      GpsSignature{geo::destination({28.6139, 77.2090}, 0, 80), 50};
  const PlaceSignature far =
      GpsSignature{geo::destination({28.6139, 77.2090}, 0, 300), 50};
  EXPECT_TRUE(signatures_match(a, close));
  EXPECT_FALSE(signatures_match(a, far));
}

TEST(Describe, MentionsKind) {
  EXPECT_NE(describe(CellSignature{{cell(1)}}).find("cells"), std::string::npos);
  EXPECT_NE(describe(WifiSignature{{1}}).find("aps"), std::string::npos);
  EXPECT_NE(describe(GpsSignature{{28.6, 77.2}, 75}).find("gps"),
            std::string::npos);
}

struct SimilarityCase {
  int shared;
  int only_a;
  int only_b;
};

class TanimotoSweep : public ::testing::TestWithParam<SimilarityCase> {};

TEST_P(TanimotoSweep, MatchesFormula) {
  const auto& c = GetParam();
  std::set<int> a, b;
  int next = 0;
  for (int i = 0; i < c.shared; ++i) {
    a.insert(next);
    b.insert(next);
    ++next;
  }
  for (int i = 0; i < c.only_a; ++i) a.insert(next++);
  for (int i = 0; i < c.only_b; ++i) b.insert(next++);
  const double expected =
      (c.shared + c.only_a + c.only_b) == 0
          ? 0.0
          : static_cast<double>(c.shared) / (c.shared + c.only_a + c.only_b);
  EXPECT_DOUBLE_EQ(tanimoto(a, b), expected);
}

INSTANTIATE_TEST_SUITE_P(Cases, TanimotoSweep,
                         ::testing::Values(SimilarityCase{0, 0, 0},
                                           SimilarityCase{5, 0, 0},
                                           SimilarityCase{1, 1, 1},
                                           SimilarityCase{3, 2, 0},
                                           SimilarityCase{0, 4, 4},
                                           SimilarityCase{10, 30, 5}));

}  // namespace
}  // namespace pmware::algorithms
