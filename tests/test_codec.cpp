#include "core/codec.hpp"

#include <gtest/gtest.h>

namespace pmware::core {
namespace {

using algorithms::CellSignature;
using algorithms::GpsSignature;
using algorithms::PlaceSignature;
using algorithms::WifiSignature;
using world::CellId;

CellId cell(std::uint32_t cid, world::Radio radio = world::Radio::Gsm2G) {
  return CellId{404, 10, 101, cid, radio};
}

TEST(Codec, CellIdRoundTrip) {
  const CellId original = cell(12345, world::Radio::Umts3G);
  const CellId decoded = cell_from_json(to_json(original));
  EXPECT_EQ(decoded, original);
}

TEST(Codec, CellIdSurvivesSerializedText) {
  const CellId original = cell(999);
  const Json reparsed = Json::parse(to_json(original).dump());
  EXPECT_EQ(cell_from_json(reparsed), original);
}

TEST(Codec, LatLngRoundTrip) {
  const geo::LatLng original{28.613912, 77.209021};
  const geo::LatLng decoded =
      latlng_from_json(Json::parse(to_json(original).dump()));
  EXPECT_NEAR(decoded.lat, original.lat, 1e-9);
  EXPECT_NEAR(decoded.lng, original.lng, 1e-9);
}

TEST(Codec, CellSignatureRoundTrip) {
  CellSignature sig;
  sig.cells = {cell(1), cell(2, world::Radio::Umts3G), cell(3)};
  const PlaceSignature decoded =
      signature_from_json(Json::parse(to_json(PlaceSignature(sig)).dump()));
  ASSERT_TRUE(std::holds_alternative<CellSignature>(decoded));
  EXPECT_EQ(std::get<CellSignature>(decoded), sig);
}

TEST(Codec, WifiSignatureRoundTrip) {
  WifiSignature sig;
  sig.aps = {0x001122334455ULL, 0xa0b1c2d3e4f5ULL};
  const PlaceSignature decoded =
      signature_from_json(Json::parse(to_json(PlaceSignature(sig)).dump()));
  ASSERT_TRUE(std::holds_alternative<WifiSignature>(decoded));
  EXPECT_EQ(std::get<WifiSignature>(decoded), sig);
}

TEST(Codec, GpsSignatureRoundTrip) {
  const GpsSignature sig{{28.61, 77.21}, 120.5};
  const PlaceSignature decoded =
      signature_from_json(Json::parse(to_json(PlaceSignature(sig)).dump()));
  ASSERT_TRUE(std::holds_alternative<GpsSignature>(decoded));
  EXPECT_EQ(std::get<GpsSignature>(decoded), sig);
}

TEST(Codec, UnknownSignatureKindThrows) {
  Json j = Json::object();
  j.set("kind", "sonar");
  EXPECT_THROW(signature_from_json(j), JsonError);
}

TEST(Codec, PlaceRecordRoundTrip) {
  PlaceRecord record;
  record.uid = 42;
  WifiSignature sig;
  sig.aps = {1, 2, 3};
  record.signature = sig;
  record.label = "workplace";
  record.location = geo::LatLng{28.6, 77.2};
  record.granularity = Granularity::Room;
  record.visit_count = 17;
  record.total_dwell = hours(40);

  const PlaceRecord decoded =
      place_record_from_json(Json::parse(to_json(record).dump()));
  EXPECT_EQ(decoded.uid, record.uid);
  EXPECT_EQ(std::get<WifiSignature>(decoded.signature), sig);
  EXPECT_EQ(decoded.label, "workplace");
  ASSERT_TRUE(decoded.location.has_value());
  EXPECT_NEAR(decoded.location->lat, 28.6, 1e-9);
  EXPECT_EQ(decoded.granularity, Granularity::Room);
  EXPECT_EQ(decoded.visit_count, 17u);
  EXPECT_EQ(decoded.total_dwell, hours(40));
}

TEST(Codec, PlaceRecordWithoutLocation) {
  PlaceRecord record;
  record.uid = 1;
  record.signature = GpsSignature{{28.0, 77.0}, 75};
  const PlaceRecord decoded = place_record_from_json(to_json(record));
  EXPECT_FALSE(decoded.location.has_value());
  EXPECT_EQ(decoded.label, "");
}

TEST(Codec, MobilityProfileRoundTrip) {
  MobilityProfile profile;
  profile.user = 3;
  profile.day = 5;
  profile.places = {{10, hours(8), hours(12)}, {11, hours(13), hours(20)}};
  profile.routes = {{100, hours(12), hours(13)}};
  profile.encounters = {{7, 10, hours(9), hours(10)}};

  const MobilityProfile decoded =
      profile_from_json(Json::parse(to_json(profile).dump()));
  EXPECT_EQ(decoded.user, 3u);
  EXPECT_EQ(decoded.day, 5);
  ASSERT_EQ(decoded.places.size(), 2u);
  EXPECT_EQ(decoded.places[0].place, 10u);
  EXPECT_EQ(decoded.places[0].arrival, hours(8));
  EXPECT_EQ(decoded.places[1].departure, hours(20));
  ASSERT_EQ(decoded.routes.size(), 1u);
  EXPECT_EQ(decoded.routes[0].route_uid, 100u);
  ASSERT_EQ(decoded.encounters.size(), 1u);
  EXPECT_EQ(decoded.encounters[0].contact, 7u);
  EXPECT_EQ(decoded.encounters[0].place, 10u);
}

TEST(Codec, EmptyProfileRoundTrip) {
  MobilityProfile profile;
  profile.user = 1;
  profile.day = 0;
  const MobilityProfile decoded = profile_from_json(to_json(profile));
  EXPECT_TRUE(decoded.empty());
}

TEST(Codec, GranularityNames) {
  EXPECT_STREQ(to_string(Granularity::Area), "area");
  EXPECT_STREQ(to_string(Granularity::Building), "building");
  EXPECT_STREQ(to_string(Granularity::Room), "room");
}

class SignatureKindSweep
    : public ::testing::TestWithParam<algorithms::PlaceSignature> {};

TEST_P(SignatureKindSweep, RoundTripPreservesKindAndEquality) {
  const PlaceSignature original = GetParam();
  const PlaceSignature decoded =
      signature_from_json(Json::parse(to_json(original).dump()));
  EXPECT_EQ(decoded.index(), original.index());
  EXPECT_TRUE(algorithms::signatures_match(original, decoded, 0.99) ||
              std::holds_alternative<GpsSignature>(original));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SignatureKindSweep,
    ::testing::Values(PlaceSignature(CellSignature{{cell(1), cell(2)}}),
                      PlaceSignature(WifiSignature{{11, 22, 33}}),
                      PlaceSignature(GpsSignature{{28.61, 77.21}, 90})));

}  // namespace
}  // namespace pmware::core
