#include "core/connected_apps.hpp"

#include <gtest/gtest.h>

namespace pmware::core {
namespace {

class ConnectedAppsFixture : public ::testing::Test {
 protected:
  ConnectedAppsFixture() : apps_(&prefs_) {}

  ReceiverId capture_receiver(std::vector<Intent>& sink) {
    IntentFilter filter;  // directed sends ignore the filter
    return bus_.register_receiver(filter, [&sink](const Intent& intent) {
      sink.push_back(intent);
    });
  }

  UserPreferences prefs_;
  ConnectedAppsModule apps_;
  IntentBus bus_;
  PlaceStore store_;
};

TEST_F(ConnectedAppsFixture, NoRequestsMeansNoGranularity) {
  EXPECT_FALSE(apps_.required_granularity(hours(10)).has_value());
  EXPECT_EQ(apps_.required_route_accuracy(0), RouteAccuracy::Off);
  EXPECT_FALSE(apps_.social_required(0, std::nullopt));
}

TEST_F(ConnectedAppsFixture, GranularityIsFinestActiveRequest) {
  PlaceAlertRequest area;
  area.app = "a";
  area.granularity = Granularity::Area;
  apps_.register_place_alerts(area);
  EXPECT_EQ(apps_.required_granularity(0), Granularity::Area);

  PlaceAlertRequest room;
  room.app = "b";
  room.granularity = Granularity::Room;
  const RequestId room_id = apps_.register_place_alerts(room);
  EXPECT_EQ(apps_.required_granularity(0), Granularity::Room);

  apps_.unregister(room_id);
  EXPECT_EQ(apps_.required_granularity(0), Granularity::Area);
}

TEST_F(ConnectedAppsFixture, TimeWindowLimitsDemand) {
  PlaceAlertRequest request;
  request.app = "todo";
  request.granularity = Granularity::Building;
  request.window = DailyWindow{hours(9), hours(18)};
  apps_.register_place_alerts(request);
  EXPECT_EQ(apps_.required_granularity(hours(10)), Granularity::Building);
  EXPECT_FALSE(apps_.required_granularity(hours(20)).has_value());
  EXPECT_EQ(apps_.required_granularity(days(3) + hours(9)),
            Granularity::Building);
}

TEST_F(ConnectedAppsFixture, UserCapLimitsSensingDemand) {
  prefs_.set_app_cap("ads", Granularity::Area);
  PlaceAlertRequest request;
  request.app = "ads";
  request.granularity = Granularity::Room;
  apps_.register_place_alerts(request);
  // Sensing must not work harder than the cap allows.
  EXPECT_EQ(apps_.required_granularity(0), Granularity::Area);
}

TEST_F(ConnectedAppsFixture, MasterSwitchKillsDemand) {
  PlaceAlertRequest request;
  request.app = "x";
  apps_.register_place_alerts(request);
  RouteTrackingRequest route;
  route.app = "x";
  route.accuracy = RouteAccuracy::High;
  apps_.register_route_tracking(route);
  prefs_.set_sharing_enabled(false);
  EXPECT_FALSE(apps_.required_granularity(0).has_value());
  EXPECT_EQ(apps_.required_route_accuracy(0), RouteAccuracy::Off);
  EXPECT_FALSE(apps_.social_required(0, 5));
}

TEST_F(ConnectedAppsFixture, RouteAccuracyIsHighestRequested) {
  RouteTrackingRequest low;
  low.app = "a";
  low.accuracy = RouteAccuracy::Low;
  apps_.register_route_tracking(low);
  EXPECT_EQ(apps_.required_route_accuracy(0), RouteAccuracy::Low);
  RouteTrackingRequest high;
  high.app = "b";
  high.accuracy = RouteAccuracy::High;
  apps_.register_route_tracking(high);
  EXPECT_EQ(apps_.required_route_accuracy(0), RouteAccuracy::High);
}

TEST_F(ConnectedAppsFixture, SocialTargeting) {
  SocialRequest request;
  request.app = "meet";
  request.only_at_place = 42;
  apps_.register_social(request);
  EXPECT_TRUE(apps_.social_required(0, 42));
  EXPECT_FALSE(apps_.social_required(0, 43));
  EXPECT_FALSE(apps_.social_required(0, std::nullopt));

  SocialRequest everywhere;
  everywhere.app = "meet2";
  apps_.register_social(everywhere);
  EXPECT_TRUE(apps_.social_required(0, std::nullopt));
}

TEST_F(ConnectedAppsFixture, DeliverPlaceEventRespectsKindFlags) {
  std::vector<Intent> seen;
  PlaceAlertRequest request;
  request.app = "x";
  request.want_enter = true;
  request.want_exit = false;
  request.want_new_place = false;
  request.receiver = capture_receiver(seen);
  apps_.register_place_alerts(request);

  const auto [uid, created] = store_.intern(
      algorithms::WifiSignature{{1}}, Granularity::Building);
  apps_.deliver_place_event({PlaceEvent::Kind::Enter, uid, uid, hours(10), 0},
                            store_, bus_);
  apps_.deliver_place_event(
      {PlaceEvent::Kind::Exit, uid, uid, hours(11), hours(1)}, store_, bus_);
  apps_.deliver_place_event({PlaceEvent::Kind::NewPlace, uid, uid, hours(12), 0},
                            store_, bus_);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].action, actions::kPlaceEnter);
  (void)created;
}

TEST_F(ConnectedAppsFixture, AreaCappedAppSeesOnlyAreaUid) {
  prefs_.set_app_cap("ads", Granularity::Area);
  std::vector<Intent> seen;
  PlaceAlertRequest request;
  request.app = "ads";
  request.granularity = Granularity::Building;
  request.receiver = capture_receiver(seen);
  apps_.register_place_alerts(request);

  const auto [uid, created] = store_.intern(
      algorithms::WifiSignature{{1}}, Granularity::Building);
  store_.set_label(uid, "home");
  apps_.deliver_place_event({PlaceEvent::Kind::Enter, uid, 99, hours(1), 0},
                            store_, bus_);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].extras.get_int("area_uid", 0), 99);
  EXPECT_FALSE(seen[0].extras.contains("place_uid"));
  EXPECT_FALSE(seen[0].extras.contains("label"));
  (void)created;
}

TEST_F(ConnectedAppsFixture, BuildingAppSeesDetails) {
  std::vector<Intent> seen;
  PlaceAlertRequest request;
  request.app = "lifelog";
  request.granularity = Granularity::Building;
  request.receiver = capture_receiver(seen);
  apps_.register_place_alerts(request);

  const auto [uid, created] = store_.intern(
      algorithms::WifiSignature{{1}}, Granularity::Building);
  store_.set_label(uid, "cafe");
  store_.record_visit(uid, hours(1));
  apps_.deliver_place_event(
      {PlaceEvent::Kind::Exit, uid, uid, hours(2), minutes(45)}, store_, bus_);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(static_cast<PlaceUid>(seen[0].extras.get_int("place_uid", 0)), uid);
  EXPECT_EQ(seen[0].extras.get_string("label", ""), "cafe");
  EXPECT_EQ(seen[0].extras.get_int("dwell", 0), minutes(45));
  EXPECT_EQ(seen[0].extras.get_int("visit_count", 0), 1);
  (void)created;
}

TEST_F(ConnectedAppsFixture, DeliveryHonoursDailyWindow) {
  std::vector<Intent> seen;
  PlaceAlertRequest request;
  request.app = "todo";
  request.window = DailyWindow{hours(9), hours(18)};
  request.receiver = capture_receiver(seen);
  apps_.register_place_alerts(request);
  const auto [uid, created] = store_.intern(
      algorithms::WifiSignature{{1}}, Granularity::Building);
  apps_.deliver_place_event({PlaceEvent::Kind::Enter, uid, uid, hours(8), 0},
                            store_, bus_);
  apps_.deliver_place_event({PlaceEvent::Kind::Enter, uid, uid, hours(10), 0},
                            store_, bus_);
  apps_.deliver_place_event({PlaceEvent::Kind::Enter, uid, uid, hours(19), 0},
                            store_, bus_);
  EXPECT_EQ(seen.size(), 1u);
  (void)created;
}

TEST_F(ConnectedAppsFixture, MasterSwitchBlocksDelivery) {
  std::vector<Intent> seen;
  PlaceAlertRequest request;
  request.app = "x";
  request.receiver = capture_receiver(seen);
  apps_.register_place_alerts(request);
  prefs_.set_sharing_enabled(false);
  const auto [uid, created] = store_.intern(
      algorithms::WifiSignature{{1}}, Granularity::Building);
  EXPECT_EQ(apps_.deliver_place_event(
                {PlaceEvent::Kind::Enter, uid, uid, hours(1), 0}, store_, bus_),
            0u);
  EXPECT_TRUE(seen.empty());
  (void)created;
}

TEST_F(ConnectedAppsFixture, RouteAndEncounterDelivery) {
  std::vector<Intent> seen;
  RouteTrackingRequest route;
  route.app = "health";
  route.accuracy = RouteAccuracy::High;
  route.receiver = capture_receiver(seen);
  apps_.register_route_tracking(route);
  SocialRequest social;
  social.app = "meet";
  social.only_at_place = 7;
  social.receiver = capture_receiver(seen);
  apps_.register_social(social);

  apps_.deliver_route_event(
      {3, 1, 2, TimeWindow{hours(9), hours(9) + minutes(25)}, true}, bus_);
  apps_.deliver_encounter({12, 7, TimeWindow{hours(10), hours(11)}}, bus_);
  apps_.deliver_encounter({12, 8, TimeWindow{hours(12), hours(13)}}, bus_);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].action, actions::kRouteCompleted);
  EXPECT_EQ(seen[0].extras.get_int("route_uid", -1), 3);
  EXPECT_TRUE(seen[0].extras.get_bool("high_accuracy", false));
  EXPECT_EQ(seen[1].action, actions::kEncounter);
  EXPECT_EQ(seen[1].extras.get_int("contact", -1), 12);
}

TEST_F(ConnectedAppsFixture, UnregisterAppRemovesEverything) {
  PlaceAlertRequest place;
  place.app = "x";
  apps_.register_place_alerts(place);
  RouteTrackingRequest route;
  route.app = "x";
  apps_.register_route_tracking(route);
  SocialRequest social;
  social.app = "x";
  apps_.register_social(social);
  EXPECT_EQ(apps_.registration_count(), 3u);
  apps_.unregister_app("x");
  EXPECT_EQ(apps_.registration_count(), 0u);
}

}  // namespace
}  // namespace pmware::core
