#include "sensing/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "telemetry/metrics.hpp"

namespace pmware::sensing {
namespace {

using energy::Interface;

TEST(Scheduler, PeriodicCadence) {
  energy::EnergyMeter meter;
  SamplingScheduler scheduler(&meter);
  std::vector<SimTime> fired;
  scheduler.set_callback(Interface::Gsm,
                         [&fired](SimTime t) { fired.push_back(t); });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, minutes(10)});
  // Fires at 0, 60, ..., 540 (not at the exclusive end).
  ASSERT_EQ(fired.size(), 10u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<SimTime>(i) * 60);
}

TEST(Scheduler, MeterChargedPerSampleAndBaseline) {
  energy::EnergyMeter meter;
  SamplingScheduler scheduler(&meter);
  scheduler.set_callback(Interface::Wifi, [](SimTime) {});
  scheduler.set_period(Interface::Wifi, 120);
  scheduler.run(TimeWindow{0, minutes(10)});
  EXPECT_EQ(meter.sample_count(Interface::Wifi), 5u);
  EXPECT_DOUBLE_EQ(meter.baseline_j(),
                   meter.profile().base_power_w * minutes(10));
}

TEST(Scheduler, NullMeterIsAllowed) {
  SamplingScheduler scheduler(nullptr);
  int fired = 0;
  scheduler.set_callback(Interface::Gsm, [&fired](SimTime) { ++fired; });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, minutes(5)});
  EXPECT_EQ(fired, 5);
}

TEST(Scheduler, DisabledInterfaceNeverFires) {
  SamplingScheduler scheduler(nullptr);
  int fired = 0;
  scheduler.set_callback(Interface::Gps, [&fired](SimTime) { ++fired; });
  scheduler.run(TimeWindow{0, hours(1)});
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, PolicyGaugesAreScopedPerDeviceInstance) {
  // Two devices with different policies must not clobber each other's
  // sensing_period_seconds / sensing_duty_cycle series (the old unlabeled
  // gauges raced last-writer-wins across the fleet).
  SamplingScheduler a(nullptr);
  SamplingScheduler b(nullptr);
  a.set_period(Interface::Gsm, 60);
  b.set_period(Interface::Gsm, 300);
  auto& reg = telemetry::registry();
  const telemetry::LabelSet la{{"instance", a.instance_label()},
                               {"interface", "gsm"}};
  const telemetry::LabelSet lb{{"instance", b.instance_label()},
                               {"interface", "gsm"}};
  const telemetry::Gauge* ga = reg.find_gauge("sensing_period_seconds", la);
  const telemetry::Gauge* gb = reg.find_gauge("sensing_period_seconds", lb);
  ASSERT_NE(ga, nullptr);
  ASSERT_NE(gb, nullptr);
  EXPECT_DOUBLE_EQ(ga->value(), 60.0);
  EXPECT_DOUBLE_EQ(gb->value(), 300.0);
  const telemetry::Gauge* da = reg.find_gauge("sensing_duty_cycle", la);
  ASSERT_NE(da, nullptr);
  EXPECT_DOUBLE_EQ(da->value(), 1.0 / 60.0);
}

TEST(Scheduler, SetPeriodRejectsNonPositive) {
  SamplingScheduler scheduler(nullptr);
  EXPECT_THROW(scheduler.set_period(Interface::Gsm, 0), std::invalid_argument);
  EXPECT_THROW(scheduler.set_period(Interface::Gsm, -5), std::invalid_argument);
  EXPECT_NO_THROW(scheduler.set_period(Interface::Gsm, std::nullopt));
}

TEST(Scheduler, CallbackCanChangePeriodMidRun) {
  SamplingScheduler scheduler(nullptr);
  std::vector<SimTime> fired;
  scheduler.set_callback(Interface::Gsm, [&](SimTime t) {
    fired.push_back(t);
    if (t == 120) scheduler.set_period(Interface::Gsm, 300);
  });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, minutes(20)});
  // 0,60,120 at 1-minute cadence, then every 5 minutes: 420, 720, 1020.
  const std::vector<SimTime> expected{0, 60, 120, 420, 720, 1020};
  EXPECT_EQ(fired, expected);
}

TEST(Scheduler, CallbackCanDisableItself) {
  SamplingScheduler scheduler(nullptr);
  int fired = 0;
  scheduler.set_callback(Interface::Accelerometer, [&](SimTime) {
    if (++fired == 3) scheduler.set_period(Interface::Accelerometer, std::nullopt);
  });
  scheduler.set_period(Interface::Accelerometer, 60);
  scheduler.run(TimeWindow{0, hours(1)});
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, OneShotFiresOnce) {
  energy::EnergyMeter meter;
  SamplingScheduler scheduler(&meter);
  std::vector<SimTime> fired;
  scheduler.set_callback(Interface::Wifi,
                         [&fired](SimTime t) { fired.push_back(t); });
  scheduler.request_once(Interface::Wifi, 90);
  scheduler.run(TimeWindow{0, minutes(10)});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 90);
  EXPECT_EQ(meter.sample_count(Interface::Wifi), 1u);
}

TEST(Scheduler, OneShotsFromCallbacksDispatch) {
  SamplingScheduler scheduler(nullptr);
  std::vector<SimTime> wifi_fired;
  scheduler.set_callback(Interface::Wifi,
                         [&wifi_fired](SimTime t) { wifi_fired.push_back(t); });
  scheduler.set_callback(Interface::Gsm, [&scheduler](SimTime t) {
    if (t == 120) {
      // Trigger a burst: now and +60s.
      scheduler.request_once(Interface::Wifi, t);
      scheduler.request_once(Interface::Wifi, t + 60);
    }
  });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, minutes(10)});
  const std::vector<SimTime> expected{120, 180};
  EXPECT_EQ(wifi_fired, expected);
}

TEST(Scheduler, OneShotBeyondWindowDoesNotFire) {
  SamplingScheduler scheduler(nullptr);
  int fired = 0;
  scheduler.set_callback(Interface::Gps, [&fired](SimTime) { ++fired; });
  scheduler.request_once(Interface::Gps, hours(2));
  scheduler.run(TimeWindow{0, hours(1)});
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, OneShotInPastFiresImmediately) {
  SamplingScheduler scheduler(nullptr);
  std::vector<SimTime> fired;
  scheduler.set_callback(Interface::Gps,
                         [&fired](SimTime t) { fired.push_back(t); });
  scheduler.set_callback(Interface::Gsm, [&scheduler](SimTime t) {
    if (t == 300) scheduler.request_once(Interface::Gps, 100);  // in the past
  });
  scheduler.set_period(Interface::Gsm, 300);
  scheduler.run(TimeWindow{0, minutes(11)});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 300);  // clamped to "now"
}

TEST(Scheduler, MultipleInterfacesInterleaveInTimeOrder) {
  SamplingScheduler scheduler(nullptr);
  std::vector<std::pair<int, SimTime>> events;
  scheduler.set_callback(Interface::Gsm,
                         [&](SimTime t) { events.push_back({0, t}); });
  scheduler.set_callback(Interface::Accelerometer,
                         [&](SimTime t) { events.push_back({1, t}); });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.set_period(Interface::Accelerometer, 90);
  scheduler.run(TimeWindow{0, minutes(6)});
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].second, events[i].second);
  // GSM fires 6 times (0..300), accel 4 times (0, 90, 180, 270).
  int gsm = 0, accel = 0;
  for (const auto& [kind, t] : events) (kind == 0 ? gsm : accel)++;
  EXPECT_EQ(gsm, 6);
  EXPECT_EQ(accel, 4);
}

TEST(Scheduler, RunAdvancesNow) {
  SamplingScheduler scheduler(nullptr);
  scheduler.run(TimeWindow{0, 100});
  EXPECT_EQ(scheduler.now(), 100);
  scheduler.run(TimeWindow{100, 200});
  EXPECT_EQ(scheduler.now(), 200);
}

TEST(Scheduler, ConsecutiveWindowsKeepCadence) {
  SamplingScheduler scheduler(nullptr);
  std::vector<SimTime> fired;
  scheduler.set_callback(Interface::Gsm,
                         [&fired](SimTime t) { fired.push_back(t); });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, 150});
  scheduler.run(TimeWindow{150, 300});
  // Window restarts re-arm at the window start: 0,60,120 then 150,210,270.
  const std::vector<SimTime> expected{0, 60, 120, 150, 210, 270};
  EXPECT_EQ(fired, expected);
}

TEST(Scheduler, OneShotCarriesOverToNextWindow) {
  // A one-shot requested at/after the current window's end stays queued and
  // fires in the next run() window (the study runs day-sized windows).
  SamplingScheduler scheduler(nullptr);
  std::vector<SimTime> fired;
  scheduler.set_callback(Interface::Wifi,
                         [&fired](SimTime t) { fired.push_back(t); });
  scheduler.set_callback(Interface::Gsm, [&scheduler](SimTime t) {
    if (t == 60) {
      scheduler.request_once(Interface::Wifi, 300);  // == window.end
      scheduler.request_once(Interface::Wifi, 410);  // beyond window.end
    }
  });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, 300});
  EXPECT_TRUE(fired.empty());
  scheduler.set_period(Interface::Gsm, std::nullopt);
  scheduler.run(TimeWindow{300, 600});
  const std::vector<SimTime> expected{300, 410};
  EXPECT_EQ(fired, expected);
}

TEST(Scheduler, BatchCallbackReceivesRuns) {
  // With no competing interfaces or one-shots, a periodic interface's whole
  // window arrives as one run of consecutive fire times.
  energy::EnergyMeter meter;
  SamplingScheduler scheduler(&meter);
  std::vector<std::vector<SimTime>> runs;
  scheduler.set_batch_callback(
      Interface::Gsm, [&runs](std::span<const SimTime> run) {
        runs.emplace_back(run.begin(), run.end());
        return run.size();
      });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, minutes(10)});
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_EQ(runs[0].size(), 10u);
  for (std::size_t i = 0; i < runs[0].size(); ++i)
    EXPECT_EQ(runs[0][i], static_cast<SimTime>(i) * 60);
  EXPECT_EQ(meter.sample_count(Interface::Gsm), 10u);
}

TEST(Scheduler, BatchConsumerTruncationMatchesPerSampleSemantics) {
  // The batch consumer changes its own period mid-run: it stops consuming
  // after the triggering sample and passes the explicit time, and the fire
  // times match the per-sample callback exactly (see
  // Scheduler.CallbackCanChangePeriodMidRun).
  SamplingScheduler scheduler(nullptr);
  std::vector<SimTime> fired;
  scheduler.set_batch_callback(
      Interface::Gsm, [&](std::span<const SimTime> run) {
        std::size_t consumed = 0;
        for (const SimTime t : run) {
          fired.push_back(t);
          ++consumed;
          if (t == 120) {
            scheduler.set_period(Interface::Gsm, 300, /*from=*/t);
            break;
          }
        }
        return consumed;
      });
  scheduler.set_period(Interface::Gsm, 60);
  scheduler.run(TimeWindow{0, minutes(20)});
  const std::vector<SimTime> expected{0, 60, 120, 420, 720, 1020};
  EXPECT_EQ(fired, expected);
}

TEST(Scheduler, BatchAndSingleCallbacksAgree) {
  // Same policy storm driven through the per-sample and the batch interface
  // produces identical dispatch logs and identical metered energy.
  const auto drive = [](auto&& install) {
    energy::EnergyMeter meter;
    SamplingScheduler scheduler(&meter);
    std::vector<std::pair<int, SimTime>> log;
    install(scheduler, log);
    scheduler.set_period(Interface::Gsm, 60);
    scheduler.set_period(Interface::Accelerometer, 90);
    scheduler.run(TimeWindow{0, hours(1)});
    scheduler.run(TimeWindow{hours(1), hours(2)});
    return std::pair(log, meter.total_j());
  };

  const auto single = drive([](SamplingScheduler& s,
                               std::vector<std::pair<int, SimTime>>& log) {
    s.set_callback(Interface::Gsm, [&s, &log](SimTime t) {
      log.push_back({0, t});
      if (t == 300) s.request_once(Interface::Wifi, t + 30);
    });
    s.set_callback(Interface::Accelerometer,
                   [&log](SimTime t) { log.push_back({1, t}); });
    s.set_callback(Interface::Wifi,
                   [&log](SimTime t) { log.push_back({2, t}); });
  });
  const auto batched = drive([](SamplingScheduler& s,
                                std::vector<std::pair<int, SimTime>>& log) {
    const auto consume = [&s](int kind, auto& log_ref) {
      return [&s, kind, &log_ref](std::span<const SimTime> run) {
        std::size_t consumed = 0;
        for (const SimTime t : run) {
          log_ref.push_back({kind, t});
          ++consumed;
          if (kind == 0 && t == 300) {
            s.request_once(Interface::Wifi, t + 30);
            break;
          }
        }
        return consumed;
      };
    };
    s.set_batch_callback(Interface::Gsm, consume(0, log));
    s.set_batch_callback(Interface::Accelerometer, consume(1, log));
    s.set_batch_callback(Interface::Wifi, consume(2, log));
  });

  EXPECT_EQ(single.first, batched.first);
  EXPECT_EQ(single.second, batched.second);
}

}  // namespace
}  // namespace pmware::sensing
