#include "net/client.hpp"
#include "net/http.hpp"
#include "net/router.hpp"

#include <gtest/gtest.h>

namespace pmware::net {
namespace {

void fill_echo_router(Router& router) {
  router.add_route(Method::Get, "/ping",
                   [](const HttpRequest&, const PathParams&) {
                     Json body = Json::object();
                     body.set("pong", true);
                     return HttpResponse::json(std::move(body));
                   });
  router.add_route(Method::Get, "/users/:id/places/:uid",
                   [](const HttpRequest&, const PathParams& params) {
                     Json body = Json::object();
                     body.set("id", params.at("id"));
                     body.set("uid", params.at("uid"));
                     return HttpResponse::json(std::move(body));
                   });
  router.add_route(Method::Post, "/echo",
                   [](const HttpRequest& req, const PathParams&) {
                     return HttpResponse::json(req.body);
                   });
}

TEST(Router, ExactMatch) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Get, "/ping", {}, {}, {}};
  const HttpResponse response = router.handle(request);
  EXPECT_TRUE(response.ok());
  EXPECT_TRUE(response.body.at("pong").as_bool());
}

TEST(Router, PathParamsCaptured) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Get, "/users/7/places/1234", {}, {}, {}};
  const HttpResponse response = router.handle(request);
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.body.at("id").as_string(), "7");
  EXPECT_EQ(response.body.at("uid").as_string(), "1234");
}

TEST(Router, MethodMismatchIs404) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Post, "/ping", {}, {}, {}};
  EXPECT_EQ(router.handle(request).status, kStatusNotFound);
}

TEST(Router, UnknownPathIs404) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Get, "/nope", {}, {}, {}};
  const HttpResponse response = router.handle(request);
  EXPECT_EQ(response.status, kStatusNotFound);
  EXPECT_FALSE(response.ok());
}

TEST(Router, SegmentCountMustMatch) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Get, "/users/7/places", {}, {}, {}};
  EXPECT_EQ(router.handle(request).status, kStatusNotFound);
  HttpRequest longer{Method::Get, "/users/7/places/1/extra", {}, {}, {}};
  EXPECT_EQ(router.handle(longer).status, kStatusNotFound);
}

TEST(Router, TrailingSlashIsTolerated) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Get, "/ping/", {}, {}, {}};
  EXPECT_TRUE(router.handle(request).ok());
}

TEST(Router, OnlyOneTrailingSlashIsTolerated) {
  Router router;
  fill_echo_router(router);
  // "/ping//" has an interior empty segment after the first slash is
  // trimmed; it must not collapse into "/ping".
  HttpRequest request{Method::Get, "/ping//", {}, {}, {}};
  EXPECT_EQ(router.handle(request).status, kStatusNotFound);
}

TEST(Router, EmptySegmentNeverBindsParam) {
  Router router;
  fill_echo_router(router);
  // Historically split() dropped empty segments, so "/users//places/9"
  // collapsed to three segments and could never hit the 4-segment route —
  // but "/users/7/places/" bound uid="" via the trailing-slash trim. Both
  // must 404: a ":param" capture is never empty.
  HttpRequest interior{Method::Get, "/users//places/9", {}, {}, {}};
  EXPECT_EQ(router.handle(interior).status, kStatusNotFound);
  HttpRequest double_interior{Method::Get, "/users///9", {}, {}, {}};
  EXPECT_EQ(router.handle(double_interior).status, kStatusNotFound);
  // With the trailing slash trimmed this is 3 segments, not a 4-segment
  // path with uid="".
  HttpRequest trailing{Method::Get, "/users/7/places/", {}, {}, {}};
  EXPECT_EQ(router.handle(trailing).status, kStatusNotFound);
}

TEST(Router, OverlappingPatternsPreferLiteral) {
  Router router;
  int id_hits = 0, literal_hits = 0;
  // Param route registered FIRST: specificity, not registration order,
  // must pick the literal route for "/api/users/all".
  router.add_route(Method::Get, "/api/users/:id",
                   [&id_hits](const HttpRequest&, const PathParams&) {
                     ++id_hits;
                     return HttpResponse::json(Json::object());
                   });
  router.add_route(Method::Get, "/api/users/all",
                   [&literal_hits](const HttpRequest&, const PathParams&) {
                     ++literal_hits;
                     return HttpResponse::json(Json::object());
                   });
  EXPECT_TRUE(router.handle({Method::Get, "/api/users/all", {}, {}, {}}).ok());
  EXPECT_EQ(literal_hits, 1);
  EXPECT_EQ(id_hits, 0);
  EXPECT_TRUE(router.handle({Method::Get, "/api/users/7", {}, {}, {}}).ok());
  EXPECT_EQ(id_hits, 1);
}

TEST(Router, OverlappingPatternsDifferentArity) {
  Router router;
  fill_echo_router(router);
  std::string seen;
  router.add_route(Method::Get, "/users/:id",
                   [&seen](const HttpRequest&, const PathParams& params) {
                     seen = params.at("id");
                     return HttpResponse::json(Json::object());
                   });
  // "/users/:id" and "/users/:id/places/:uid" overlap by prefix only;
  // segment count keeps them apart.
  EXPECT_TRUE(router.handle({Method::Get, "/users/42", {}, {}, {}}).ok());
  EXPECT_EQ(seen, "42");
  const auto deep = router.handle({Method::Get, "/users/42/places/7", {}, {}, {}});
  EXPECT_TRUE(deep.ok());
  EXPECT_EQ(deep.body.at("uid").as_string(), "7");
}

TEST(Router, TieBreaksByRegistrationOrder) {
  Router router;
  std::string winner;
  router.add_route(Method::Get, "/a/:x/b",
                   [&winner](const HttpRequest&, const PathParams&) {
                     winner = "first";
                     return HttpResponse::json(Json::object());
                   });
  router.add_route(Method::Get, "/a/:y/b",
                   [&winner](const HttpRequest&, const PathParams&) {
                     winner = "second";
                     return HttpResponse::json(Json::object());
                   });
  EXPECT_TRUE(router.handle({Method::Get, "/a/1/b", {}, {}, {}}).ok());
  EXPECT_EQ(winner, "first");  // equal specificity: first registered wins
}

TEST(Router, PostBodyRoundTrips) {
  Router router;
  fill_echo_router(router);
  HttpRequest request{Method::Post, "/echo", {}, {}, {}};
  request.body = Json::parse(R"({"x": 5, "y": [1,2]})");
  const HttpResponse response = router.handle(request);
  EXPECT_EQ(response.body, request.body);
}

TEST(Router, MiddlewareShortCircuits) {
  Router router;
  fill_echo_router(router);
  router.add_middleware([](const HttpRequest& req) -> std::optional<HttpResponse> {
    if (req.headers.count("Authorization")) return std::nullopt;
    return HttpResponse::error(kStatusUnauthorized, "no token");
  });
  HttpRequest request{Method::Get, "/ping", {}, {}, {}};
  EXPECT_EQ(router.handle(request).status, kStatusUnauthorized);
  request.with_header("Authorization", "Bearer x");
  EXPECT_TRUE(router.handle(request).ok());
}

TEST(Router, MiddlewareExemptPrefixes) {
  Router router;
  fill_echo_router(router);
  router.add_middleware(
      [](const HttpRequest&) -> std::optional<HttpResponse> {
        return HttpResponse::error(kStatusUnauthorized, "always deny");
      },
      {"/ping"});
  HttpRequest ping{Method::Get, "/ping", {}, {}, {}};
  EXPECT_TRUE(router.handle(ping).ok());
  HttpRequest other{Method::Get, "/users/1/places/2", {}, {}, {}};
  EXPECT_EQ(router.handle(other).status, kStatusUnauthorized);
}

TEST(Client, DeliversAndCountsRequests) {
  Router router;
  fill_echo_router(router);
  RestClient client(&router, NetworkConditions{0.0, 2}, Rng(1));
  HttpRequest request{Method::Get, "/ping", {}, {}, {}};
  const HttpResponse response = client.send(request);
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(client.stats().requests, 1u);
  EXPECT_EQ(client.stats().failures, 0u);
  EXPECT_EQ(client.stats().total_latency, 2);
}

TEST(Client, AttachesAuthToken) {
  Router router;
  router.add_route(Method::Get, "/whoami",
                   [](const HttpRequest& req, const PathParams&) {
                     Json body = Json::object();
                     const auto it = req.headers.find("Authorization");
                     body.set("auth", it == req.headers.end() ? "" : it->second);
                     return HttpResponse::json(std::move(body));
                   });
  RestClient client(&router, NetworkConditions{}, Rng(1));
  client.set_auth_token("tok-123");
  HttpRequest request{Method::Get, "/whoami", {}, {}, {}};
  const HttpResponse response = client.send(request);
  EXPECT_EQ(response.body.at("auth").as_string(), "Bearer tok-123");
}

TEST(Client, ExplicitAuthHeaderWins) {
  Router router;
  router.add_route(Method::Get, "/whoami",
                   [](const HttpRequest& req, const PathParams&) {
                     Json body = Json::object();
                     body.set("auth", req.headers.at("Authorization"));
                     return HttpResponse::json(std::move(body));
                   });
  RestClient client(&router, NetworkConditions{}, Rng(1));
  client.set_auth_token("tok-default");
  HttpRequest request{Method::Get, "/whoami", {}, {}, {}};
  request.with_header("Authorization", "Bearer tok-explicit");
  EXPECT_EQ(client.send(request).body.at("auth").as_string(),
            "Bearer tok-explicit");
}

TEST(Client, RetriesTransientFailures) {
  Router router;
  fill_echo_router(router);
  // 50% loss: with 2 retries most requests eventually succeed.
  RestClient client(&router, NetworkConditions{0.5, 0}, Rng(3));
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    HttpRequest request{Method::Get, "/ping", {}, {}, {}};
    if (client.send(request, 2).ok()) ++ok;
  }
  EXPECT_GT(ok, 160);  // 1 - 0.5^3 = 87.5% expected
  EXPECT_GT(client.stats().retries, 50u);
  EXPECT_GT(client.stats().failures, 50u);
}

TEST(Client, TotalLossReturns503) {
  Router router;
  fill_echo_router(router);
  RestClient client(&router, NetworkConditions{1.0, 0}, Rng(3));
  HttpRequest request{Method::Get, "/ping", {}, {}, {}};
  const HttpResponse response = client.send(request, 2);
  EXPECT_EQ(response.status, kStatusServiceUnavailable);
  EXPECT_EQ(client.stats().requests, 3u);  // initial + 2 retries
}

TEST(Client, CountsBytesSent) {
  Router router;
  fill_echo_router(router);
  RestClient client(&router, NetworkConditions{}, Rng(1));
  HttpRequest request{Method::Post, "/echo", {}, {}, {}};
  request.body = Json::parse(R"({"payload": "0123456789"})");
  client.send(request);
  EXPECT_GE(client.stats().bytes_sent, 10u);
}

TEST(Http, StatusHelpers) {
  EXPECT_TRUE(HttpResponse::json(Json::object()).ok());
  EXPECT_TRUE(HttpResponse::json(Json::object(), kStatusCreated).ok());
  const HttpResponse err = HttpResponse::error(kStatusBadRequest, "nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.body.at("error").as_string(), "nope");
}

TEST(Http, MethodNames) {
  EXPECT_STREQ(to_string(Method::Get), "GET");
  EXPECT_STREQ(to_string(Method::Post), "POST");
  EXPECT_STREQ(to_string(Method::Put), "PUT");
  EXPECT_STREQ(to_string(Method::Delete), "DELETE");
}

}  // namespace
}  // namespace pmware::net
