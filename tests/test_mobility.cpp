#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "mobility/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pmware::mobility {
namespace {

std::shared_ptr<const world::World> make_world(std::uint64_t seed = 1) {
  world::WorldConfig config;
  Rng rng(seed);
  return world::generate_world(config, rng);
}

TEST(Participants, UniqueHomes) {
  const auto world = make_world();
  Rng rng(2);
  const auto participants = make_participants(*world, 16, rng);
  std::set<world::PlaceId> homes;
  for (const auto& p : participants) homes.insert(p.home);
  EXPECT_EQ(homes.size(), participants.size());
}

TEST(Participants, HomesWrapWhenPopulationExceedsHousing) {
  const auto world = make_world();
  const std::size_t housing =
      world->all_of_category(world::PlaceCategory::Home).size();
  Rng rng(2);
  const auto participants = make_participants(*world, 1000, rng);
  ASSERT_EQ(participants.size(), 1000u);
  // The shuffled home deck repeats round-robin past the housing stock:
  // participant i and participant i + housing share a home.
  for (std::size_t i = 0; i + housing < participants.size(); ++i)
    EXPECT_EQ(participants[i].home, participants[i + housing].home);
  std::set<world::PlaceId> homes;
  for (const auto& p : participants) homes.insert(p.home);
  EXPECT_EQ(homes.size(), housing);
}

TEST(Participants, ArchetypeMixIncludesStudents) {
  const auto world = make_world();
  Rng rng(2);
  const auto participants = make_participants(*world, 16, rng);
  int students = 0, office = 0, homemakers = 0;
  for (const auto& p : participants) {
    switch (p.archetype) {
      case Archetype::Student: ++students; break;
      case Archetype::OfficeWorker: ++office; break;
      case Archetype::Homemaker: ++homemakers; break;
    }
  }
  EXPECT_GE(students, 2);
  EXPECT_GE(office, 8);
  EXPECT_GE(homemakers, 1);
}

TEST(Participants, StudentsAnchorAtCampusWithLibraryAdjunct) {
  const auto world = make_world();
  Rng rng(2);
  const auto participants = make_participants(*world, 16, rng);
  const auto academic = world->find_category(world::PlaceCategory::AcademicBuilding);
  const auto library = world->find_category(world::PlaceCategory::Library);
  for (const auto& p : participants) {
    if (p.archetype != Archetype::Student) continue;
    EXPECT_EQ(p.anchor, *academic);
    EXPECT_EQ(p.anchor_adjunct, *library);
  }
}

TEST(Participants, LeisurePoolNonEmptyAndValid) {
  const auto world = make_world();
  Rng rng(2);
  const auto participants = make_participants(*world, 16, rng);
  for (const auto& p : participants) {
    EXPECT_GE(p.leisure.size(), 3u);
    for (world::PlaceId id : p.leisure) {
      ASSERT_LT(id, world->places().size());
      EXPECT_NE(world->place(id).category, world::PlaceCategory::Home);
      EXPECT_NE(world->place(id).category, world::PlaceCategory::Workplace);
    }
  }
}

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = make_world();
    Rng rng(2);
    participants_ = make_participants(*world_, 8, rng);
  }

  Trace build(int participant, int days_n, std::uint64_t seed = 5) {
    Rng rng(seed);
    ScheduleConfig config;
    config.days = days_n;
    return build_trace(*world_, participants_[static_cast<std::size_t>(participant)],
                       config, rng);
  }

  std::shared_ptr<const world::World> world_;
  std::vector<Participant> participants_;
};

TEST_F(TraceFixture, VisitsAndTripsAlternateAndTile) {
  const Trace trace = build(0, 3);
  EXPECT_EQ(trace.period().begin, 0);
  EXPECT_EQ(trace.period().end, days(3));
  EXPECT_EQ(trace.visits().size(), trace.trips().size() + 1);
  SimDuration total = 0;
  for (const auto& v : trace.visits()) total += v.window.length();
  for (const auto& t : trace.trips()) total += t.window.length();
  EXPECT_EQ(total, days(3));
}

TEST_F(TraceFixture, StartsAndEndsAtHome) {
  const Trace trace = build(0, 3);
  EXPECT_EQ(trace.visits().front().place, participants_[0].home);
  EXPECT_EQ(trace.visits().back().place, participants_[0].home);
}

TEST_F(TraceFixture, PositionDuringVisitIsInsidePlace) {
  const Trace trace = build(1, 3);
  for (const auto& v : trace.visits()) {
    const SimTime mid = (v.window.begin + v.window.end) / 2;
    const auto& place = world_->place(v.place);
    EXPECT_LE(geo::distance_m(trace.position_at(mid), place.center),
              place.radius_m + 1)
        << place.name;
    EXPECT_EQ(trace.place_at(mid), v.place);
    EXPECT_EQ(trace.activity_at(mid), Activity::Still);
  }
}

TEST_F(TraceFixture, TripsConnectVisitPlaces) {
  const Trace trace = build(2, 3);
  for (std::size_t i = 0; i < trace.trips().size(); ++i) {
    const Trip& trip = trace.trips()[i];
    EXPECT_EQ(trip.from, trace.visits()[i].place);
    EXPECT_EQ(trip.to, trace.visits()[i + 1].place);
    EXPECT_GE(trip.path.size(), 2u);
    const SimTime mid = (trip.window.begin + trip.window.end) / 2;
    EXPECT_FALSE(trace.place_at(mid).has_value());
    EXPECT_NE(trace.activity_at(mid), Activity::Still);
  }
}

TEST_F(TraceFixture, PositionIsContinuousAcrossBoundaries) {
  const Trace trace = build(0, 2);
  for (const auto& trip : trace.trips()) {
    const geo::LatLng before = trace.position_at(trip.window.begin - 1);
    const geo::LatLng at_start = trace.position_at(trip.window.begin);
    EXPECT_LT(geo::distance_m(before, at_start), 60);
    const geo::LatLng at_end = trace.position_at(trip.window.end - 1);
    const geo::LatLng after = trace.position_at(trip.window.end);
    EXPECT_LT(geo::distance_m(at_end, after), 120);
  }
}

TEST_F(TraceFixture, OfficeWorkerReachesAnchorOnWeekdays) {
  ASSERT_EQ(participants_[0].archetype, Archetype::OfficeWorker);
  const Trace trace = build(0, 5);
  int anchor_days = 0;
  for (int day = 0; day < 5; ++day) {
    if (trace.place_at(start_of_day(day) + hours(11)) == participants_[0].anchor)
      ++anchor_days;
  }
  EXPECT_GE(anchor_days, 4);
}

TEST_F(TraceFixture, EveryoneIsHomeAtNight) {
  for (int participant = 0; participant < 4; ++participant) {
    const Trace trace = build(participant, 4);
    for (int day = 1; day < 4; ++day) {
      EXPECT_EQ(trace.place_at(start_of_day(day) + hours(3)),
                participants_[static_cast<std::size_t>(participant)].home)
          << "participant " << participant << " day " << day;
    }
  }
}

TEST_F(TraceFixture, SignificantVisitsFiltersShortStays) {
  const Trace trace = build(0, 5);
  const auto significant = trace.significant_visits(minutes(10));
  EXPECT_LE(significant.size(), trace.visits().size());
  for (const auto& v : significant)
    EXPECT_GE(v.window.length(), minutes(10));
}

TEST_F(TraceFixture, TraceIsDeterministicForSeed) {
  const Trace a = build(0, 3, 9);
  const Trace b = build(0, 3, 9);
  ASSERT_EQ(a.visits().size(), b.visits().size());
  for (std::size_t i = 0; i < a.visits().size(); ++i) {
    EXPECT_EQ(a.visits()[i].place, b.visits()[i].place);
    EXPECT_EQ(a.visits()[i].window, b.visits()[i].window);
  }
}

TEST_F(TraceFixture, DifferentSeedsDifferentTimings) {
  const Trace a = build(0, 5, 1);
  const Trace b = build(0, 5, 2);
  bool any_difference = a.visits().size() != b.visits().size();
  for (std::size_t i = 0; !any_difference && i < a.visits().size(); ++i)
    any_difference = !(a.visits()[i].window == b.visits()[i].window);
  EXPECT_TRUE(any_difference);
}

TEST(TraceInvariants, ConstructorRejectsGaps) {
  std::vector<Visit> visits{{0, TimeWindow{0, 100}}, {1, TimeWindow{200, 300}}};
  std::vector<Trip> trips;  // missing trip between 100 and 200
  std::vector<geo::LatLng> anchors{{28.6, 77.2}, {28.7, 77.3}};
  EXPECT_THROW(Trace(visits, trips, anchors, TimeWindow{0, 300}),
               std::invalid_argument);
}

TEST(TraceInvariants, ConstructorRejectsAnchorMismatch) {
  std::vector<Visit> visits{{0, TimeWindow{0, 300}}};
  EXPECT_THROW(Trace(visits, {}, {}, TimeWindow{0, 300}),
               std::invalid_argument);
}

TEST(TraceInvariants, ConstructorRejectsWrongSpan) {
  std::vector<Visit> visits{{0, TimeWindow{0, 200}}};
  std::vector<geo::LatLng> anchors{{28.6, 77.2}};
  EXPECT_THROW(Trace(visits, {}, anchors, TimeWindow{0, 300}),
               std::invalid_argument);
}

TEST(BuildTrace, RejectsNonPositiveDays) {
  world::WorldConfig config;
  Rng rng(1);
  const auto world = world::generate_world(config, rng);
  auto participants = make_participants(*world, 1, rng);
  ScheduleConfig schedule;
  schedule.days = 0;
  EXPECT_THROW(build_trace(*world, participants[0], schedule, rng),
               std::invalid_argument);
}

class TraceDaySweep : public ::testing::TestWithParam<int> {};

TEST_P(TraceDaySweep, WindowsArePositive) {
  world::WorldConfig config;
  Rng rng(1);
  const auto world = world::generate_world(config, rng);
  Rng prng(2);
  auto participants = make_participants(*world, 4, prng);
  ScheduleConfig schedule;
  schedule.days = GetParam();
  for (const auto& p : participants) {
    Rng trng(77);
    const Trace trace = build_trace(*world, p, schedule, trng);
    for (const auto& v : trace.visits()) EXPECT_GE(v.window.length(), 1);
    for (const auto& t : trace.trips()) EXPECT_GE(t.window.length(), 60);
  }
}

INSTANTIATE_TEST_SUITE_P(Days, TraceDaySweep, ::testing::Values(1, 2, 7, 14));

}  // namespace
}  // namespace pmware::mobility
