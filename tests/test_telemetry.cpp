#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cloud/cloud_instance.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/router.hpp"
#include "util/json.hpp"

namespace pmware::telemetry {
namespace {

// ---------------------------------------------------------------- counters

TEST(MetricsRegistry, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.counter("requests_total").value(), 5u);
}

TEST(MetricsRegistry, SameNameAndLabelsIsTheSameSeries) {
  MetricsRegistry reg;
  reg.counter("hits_total", {{"route", "/a"}}).inc();
  reg.counter("hits_total", {{"route", "/a"}}).inc();
  EXPECT_EQ(reg.counter_value("hits_total", {{"route", "/a"}}), 2u);
}

TEST(MetricsRegistry, DifferentLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  reg.counter("hits_total", {{"route", "/a"}}).inc(1);
  reg.counter("hits_total", {{"route", "/b"}}).inc(10);
  reg.counter("hits_total").inc(100);
  EXPECT_EQ(reg.counter_value("hits_total", {{"route", "/a"}}), 1u);
  EXPECT_EQ(reg.counter_value("hits_total", {{"route", "/b"}}), 10u);
  EXPECT_EQ(reg.counter_value("hits_total"), 100u);
  EXPECT_EQ(reg.family_total("hits_total"), 111u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  // LabelSet is a sorted map, so insertion order cannot create duplicates.
  MetricsRegistry reg;
  reg.counter("x_total", {{"a", "1"}, {"b", "2"}}).inc();
  reg.counter("x_total", {{"b", "2"}, {"a", "1"}}).inc();
  EXPECT_EQ(reg.counter_value("x_total", {{"b", "2"}, {"a", "1"}}), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("thing");
  EXPECT_THROW(reg.gauge("thing"), TelemetryError);
  EXPECT_THROW(reg.histogram("thing", {}, 0, 1, 4), TelemetryError);
  reg.gauge("level");
  EXPECT_THROW(reg.counter("level"), TelemetryError);
}

TEST(MetricsRegistry, FindersReturnNullForMissingSeries) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope", {}), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  reg.counter("present", {{"k", "v"}});
  EXPECT_EQ(reg.find_counter("present", {}), nullptr);
  EXPECT_NE(reg.find_counter("present", {{"k", "v"}}), nullptr);
}

// ------------------------------------------------------------------ gauges

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("battery_pct", {{"device", "d0"}});
  g.set(80);
  g.add(-12.5);
  EXPECT_DOUBLE_EQ(reg.gauge("battery_pct", {{"device", "d0"}}).value(), 67.5);
}

// -------------------------------------------------------------- histograms

TEST(MetricsRegistry, HistogramObservationsLandInBuckets) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("latency_s", {}, 0, 10, 5);
  h.observe(1);    // bucket 0 ([0,2))
  h.observe(3);    // bucket 1
  h.observe(9.5);  // bucket 4
  h.observe(42);   // clamped into bucket 4
  EXPECT_EQ(h.buckets().total(), 4u);
  EXPECT_EQ(h.buckets().count(0), 1u);
  EXPECT_EQ(h.buckets().count(1), 1u);
  EXPECT_EQ(h.buckets().count(4), 2u);
  EXPECT_DOUBLE_EQ(h.stats().sum(), 55.5);
  EXPECT_DOUBLE_EQ(h.stats().max(), 42.0);
}

TEST(MetricsRegistry, HistogramRedeclarationWithNewBoundsThrows) {
  MetricsRegistry reg;
  reg.histogram("h", {{"i", "a"}}, 0, 10, 5);
  // Same bounds, new labels: fine.
  reg.histogram("h", {{"i", "b"}}, 0, 10, 5);
  EXPECT_THROW(reg.histogram("h", {{"i", "c"}}, 0, 20, 5), TelemetryError);
  EXPECT_THROW(reg.histogram("h", {{"i", "d"}}, 0, 10, 8), TelemetryError);
}

// ------------------------------------------------------------------- reset

TEST(MetricsRegistry, ResetClearsFamiliesAndKeepsInstanceLabelsFresh) {
  MetricsRegistry reg;
  reg.counter("a_total").inc(3);
  const std::string first = reg.next_instance_label("c");
  reg.reset();
  EXPECT_EQ(reg.family_count(), 0u);
  EXPECT_EQ(reg.counter_value("a_total"), 0u);
  // Instance ids survive reset, so pre-reset instances never collide with
  // post-reset ones.
  EXPECT_NE(reg.next_instance_label("c"), first);
}

TEST(MetricsRegistry, GlobalRegistryResetIsolatesTests) {
  registry().reset();
  registry().counter("isolation_probe_total").inc();
  EXPECT_EQ(registry().counter_value("isolation_probe_total"), 1u);
  registry().reset();
  EXPECT_EQ(registry().counter_value("isolation_probe_total"), 0u);
}

// ------------------------------------------------------------------- spans

TEST(Tracer, SpansNestParentChild) {
  Tracer tracer;
  {
    Span outer(tracer, "housekeeping", 100);
    {
      Span inner(tracer, "gca_offload", 100);
      inner.finish(100);
    }
    outer.finish(100);
  }
  ASSERT_EQ(tracer.records().size(), 2u);
  const SpanRecord& outer = tracer.records()[0];
  const SpanRecord& inner = tracer.records()[1];
  EXPECT_EQ(outer.name, "housekeeping");
  EXPECT_EQ(outer.parent, SpanRecord::kNoParent);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.name, "gca_offload");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_TRUE(outer.finished);
  EXPECT_TRUE(inner.finished);
  // The parent's wall clock ran strictly longer than (or as long as) the
  // child's: it opened earlier and closed later.
  EXPECT_GE(outer.wall_ns, inner.wall_ns);
}

TEST(Tracer, SimAndWallClocksAreAccountedSeparately) {
  Tracer tracer;
  {
    Span span(tracer, "pms.run", hours(9));
    span.finish(hours(18));
  }
  const SpanRecord& record = tracer.records()[0];
  EXPECT_EQ(record.sim_begin, hours(9));
  EXPECT_EQ(record.sim_end, hours(18));
  EXPECT_EQ(record.sim_duration(), hours(9));
  // Wall time is real elapsed time — nanoseconds, not nine hours.
  EXPECT_GE(record.wall_ns, 0);
  EXPECT_LT(record.wall_ns, 1'000'000'000);
}

TEST(Tracer, UnfinishedSpanClosesAtItsOwnSimBegin) {
  Tracer tracer;
  { Span span(tracer, "zero_sim_work", 500); }
  const SpanRecord& record = tracer.records()[0];
  EXPECT_TRUE(record.finished);
  EXPECT_EQ(record.sim_begin, 500);
  EXPECT_EQ(record.sim_end, 500);
}

TEST(Tracer, ScopedTimerReadsTheSimClockAtBothEnds) {
  Tracer tracer;
  SimTime now = minutes(5);
  {
    ScopedTimer timer(tracer, "scheduler.run", [&now] { return now; });
    now = minutes(30);  // sim time advances while the scope runs
  }
  const SpanRecord& record = tracer.records()[0];
  EXPECT_EQ(record.sim_begin, minutes(5));
  EXPECT_EQ(record.sim_end, minutes(30));
  EXPECT_EQ(record.sim_duration(), minutes(25));
}

TEST(Tracer, CapDropsSpansInsteadOfGrowing) {
  Tracer tracer(/*max_records=*/2);
  { Span a(tracer, "a", 0); }
  { Span b(tracer, "b", 0); }
  { Span c(tracer, "c", 0); }
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

// --------------------------------------------------------------- exporters

void fill_exporter_fixture(MetricsRegistry& reg) {
  reg.counter("net_requests_total", {{"instance", "c0"}},
              "requests attempted")
      .inc(7);
  reg.gauge("sensing_duty_cycle", {{"interface", "gsm"}}).set(1.0 / 60.0);
  reg.histogram("cloud_handler_wall_us", {{"route", "/metrics"}}, 0, 100, 4)
      .observe(25);
}

TEST(Exporters, PrometheusTextShape) {
  MetricsRegistry reg;
  fill_exporter_fixture(reg);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE net_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP net_requests_total requests attempted"),
            std::string::npos);
  EXPECT_NE(text.find("net_requests_total{instance=\"c0\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sensing_duty_cycle gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cloud_handler_wall_us histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("cloud_handler_wall_us_bucket{route=\"/metrics\",le=\"50\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("cloud_handler_wall_us_bucket{route=\"/metrics\",le=\"+Inf\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("cloud_handler_wall_us_count{route=\"/metrics\"} 1"),
            std::string::npos);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("odd_total", {{"k", "a\"b\\c\nd"}}).inc();
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("odd_total{k=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(Exporters, JsonRoundTripsThroughTheParser) {
  MetricsRegistry reg;
  fill_exporter_fixture(reg);
  const Json exported = to_json(reg);
  const Json reparsed = Json::parse(exported.dump());
  EXPECT_EQ(reparsed, exported);

  const Json& metrics = reparsed.at("metrics");
  EXPECT_EQ(metrics.at("net_requests_total").at("kind").as_string(),
            "counter");
  const Json& series =
      metrics.at("net_requests_total").at("series")[0];
  EXPECT_EQ(series.at("labels").at("instance").as_string(), "c0");
  EXPECT_EQ(series.at("value").as_int(), 7);

  const Json& hist = metrics.at("cloud_handler_wall_us").at("series")[0];
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 25.0);
  // Buckets are sparse: only the [25, 50) bucket saw the observation.
  ASSERT_EQ(hist.at("buckets").size(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("buckets")[0].at("lo").as_double(), 25.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets")[0].at("hi").as_double(), 50.0);
  EXPECT_EQ(hist.at("buckets")[0].at("count").as_int(), 1);
}

TEST(Exporters, ZeroCountHistogramEmitsNoBucketSeries) {
  MetricsRegistry reg;
  reg.histogram("cloud_handler_wall_us", {{"route", "/cold"}}, 0, 5000, 20);
  const std::string text = to_prometheus(reg);
  // Lazily materialized: no per-bucket lines for an untouched series, just
  // the mandatory +Inf / _sum / _count.
  EXPECT_EQ(text.find("route=\"/cold\",le=\"250\""), std::string::npos);
  EXPECT_NE(
      text.find("cloud_handler_wall_us_bucket{route=\"/cold\",le=\"+Inf\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("cloud_handler_wall_us_count{route=\"/cold\"} 0"),
            std::string::npos);

  const Json exported = to_json(reg);
  const Json& hist =
      exported.at("metrics").at("cloud_handler_wall_us").at("series")[0];
  EXPECT_EQ(hist.at("buckets").size(), 0u);
}

TEST(Exporters, SpansExportParentLinks) {
  Tracer tracer;
  {
    Span outer(tracer, "outer", 10);
    Span inner(tracer, "inner", 20);
    inner.finish(30);
    outer.finish(40);
  }
  const Json spans = Json::parse(spans_to_json(tracer).dump());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at("name").as_string(), "outer");
  EXPECT_FALSE(spans[0].contains("parent"));
  EXPECT_EQ(spans[1].at("name").as_string(), "inner");
  EXPECT_EQ(spans[1].at("parent").as_int(), spans[0].at("id").as_int());
  EXPECT_EQ(spans[1].at("sim_begin").as_int(), 20);
  EXPECT_EQ(spans[1].at("sim_end").as_int(), 30);
}

// ------------------------------------------------- middleware-facing views

TEST(TelemetryViews, ClientStatsIsAViewOverTheRegistry) {
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/ping",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  net::RestClient client(&router, net::NetworkConditions{0.0, 3}, Rng(1));
  net::HttpRequest request;
  request.path = "/ping";
  client.send(request);
  client.send(request);

  EXPECT_EQ(client.stats().requests, 2u);
  EXPECT_EQ(client.stats().total_latency, 6);
  EXPECT_EQ(registry().counter_value(
                "net_requests_total", {{"instance", client.instance_label()}}),
            2u);
  // Reset wipes the series; the view reads zeros rather than dangling.
  registry().reset();
  EXPECT_EQ(client.stats().requests, 0u);
}

TEST(TelemetryViews, TwoClientsKeepSeparateSeries) {
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/ping",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  net::RestClient a(&router, net::NetworkConditions{}, Rng(1));
  net::RestClient b(&router, net::NetworkConditions{}, Rng(2));
  net::HttpRequest request;
  request.path = "/ping";
  a.send(request);
  a.send(request);
  b.send(request);
  EXPECT_EQ(a.stats().requests, 2u);
  EXPECT_EQ(b.stats().requests, 1u);
  EXPECT_EQ(registry().family_total("net_requests_total"), 3u);
}

TEST(TelemetryViews, RouterObserverSeesPatternsNotConcretePaths) {
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/users/:id/places",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  std::vector<std::string> seen;
  router.set_observer([&seen](net::Method, const std::string& pattern,
                              int status, double wall_us) {
    seen.push_back(pattern);
    EXPECT_EQ(status, 200);
    EXPECT_GE(wall_us, 0.0);
  });
  net::HttpRequest request;
  request.path = "/users/7/places";
  router.handle(request);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "/users/:id/places");
}


// ------------------------------------------------------------ trace context

TEST(TraceContext, RootsAllocateFreshIdsAndChildrenInherit) {
  Tracer tracer;
  {
    Span a(tracer, "a", 0);
    {
      Span child(tracer, "a.child", 0);
      child.finish(0);
    }
    a.finish(0);
  }
  {
    Span b(tracer, "b", 0);
    b.finish(0);
  }
  ASSERT_EQ(tracer.records().size(), 3u);
  const SpanRecord& a = tracer.records()[0];
  const SpanRecord& child = tracer.records()[1];
  const SpanRecord& b = tracer.records()[2];
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_EQ(child.trace_id, a.trace_id);
  EXPECT_NE(b.trace_id, 0u);
  EXPECT_NE(b.trace_id, a.trace_id);
}

TEST(TraceContext, CurrentContextTracksTheInnermostOpenSpan) {
  Tracer tracer;
  EXPECT_FALSE(tracer.current_context().valid());
  Span a(tracer, "a", 0);
  const TraceContext outer = tracer.current_context();
  ASSERT_TRUE(outer.valid());
  EXPECT_EQ(outer.span_id, tracer.records()[0].id);
  {
    Span b(tracer, "b", 0);
    const TraceContext inner = tracer.current_context();
    EXPECT_EQ(inner.span_id, tracer.records()[1].id);
    EXPECT_EQ(inner.trace_id, outer.trace_id);
    b.finish(0);
  }
  EXPECT_EQ(tracer.current_context().span_id, outer.span_id);
  a.finish(0);
  EXPECT_FALSE(tracer.current_context().valid());
}

TEST(TraceContext, RemoteParentJoinsTheCarriedTrace) {
  // The simulated request boundary: the "client" span closes before the
  // "handler" span opens (no shared stack), yet the carried context parents
  // the handler under the client.
  Tracer tracer;
  TraceContext carried;
  {
    Span client(tracer, "net.send", 0);
    carried = tracer.current_context();
    client.finish(5);
  }
  {
    Span handler(tracer, "cloud.handler", 5, carried);
    handler.finish(5);
  }
  ASSERT_EQ(tracer.records().size(), 2u);
  const SpanRecord& client = tracer.records()[0];
  const SpanRecord& handler = tracer.records()[1];
  EXPECT_EQ(handler.parent, client.id);
  EXPECT_EQ(handler.trace_id, client.trace_id);
  EXPECT_EQ(handler.depth, client.depth + 1);
}

TEST(TraceContext, InvalidRemoteParentFallsBackToTheLocalStack) {
  Tracer tracer;
  {
    Span handler(tracer, "cloud.handler", 0, TraceContext{});
    handler.finish(0);
  }
  EXPECT_EQ(tracer.records()[0].parent, SpanRecord::kNoParent);
  EXPECT_EQ(tracer.records()[0].depth, 0u);
  EXPECT_NE(tracer.records()[0].trace_id, 0u);
}

TEST(Tracer, TraceIdsStayMonotonicAcrossReset) {
  Tracer tracer;
  {
    Span a(tracer, "a", 0);
    a.finish(0);
  }
  const std::uint64_t first = tracer.records()[0].trace_id;
  tracer.reset();
  {
    Span b(tracer, "b", 0);
    b.finish(0);
  }
  EXPECT_GT(tracer.records()[0].trace_id, first);
}

TEST(Tracer, OverflowDropsSpansButKeepsNestingConsistent) {
  Tracer tracer(/*max_records=*/2);
  Span outer(tracer, "outer", 0);  // record 0
  const TraceContext outer_ctx = tracer.current_context();
  {
    Span a(tracer, "a", 0);  // record 1
    a.finish(0);
  }
  {
    Span b(tracer, "b", 0);  // dropped: never recorded, never on the stack
    // current_context degrades to the enclosing recorded span, so anything
    // propagated from inside a dropped span still joins the right trace.
    EXPECT_EQ(tracer.current_context().span_id, outer_ctx.span_id);
    b.finish(0);  // harmless no-op: there is no record to close
  }
  {
    Span c(tracer, "c", 0);  // also dropped
    c.finish(0);
  }
  outer.finish(10);
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_TRUE(tracer.records()[0].finished);
  EXPECT_EQ(tracer.records()[0].sim_end, 10);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

// -------------------------------------------------- cross-boundary tracing

TEST(TracePropagation, ClientAndHandlerSpansFormOneTrace) {
  tracer().reset();
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/api/users/:id/places",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  net::RestClient client(&router, net::NetworkConditions{0.0, 2}, Rng(1));
  net::HttpRequest request;
  request.path = "/api/users/7/places";
  request.headers[net::kSimTimeHeader] = "100";
  ASSERT_TRUE(client.send(request).ok());

  ASSERT_EQ(tracer().records().size(), 2u);
  const SpanRecord& send = tracer().records()[0];
  const SpanRecord& handler = tracer().records()[1];
  // Numeric path segments generalize so span names aggregate per endpoint.
  EXPECT_EQ(send.name, "net.send GET /api/users/:n/places");
  EXPECT_EQ(send.parent, SpanRecord::kNoParent);
  EXPECT_EQ(handler.name, "cloud./api/users/:id/places");
  EXPECT_EQ(handler.parent, send.id);
  EXPECT_EQ(handler.trace_id, send.trace_id);
  EXPECT_EQ(handler.depth, 1u);
  // Client span covers the simulated round-trip; handler runs at arrival.
  EXPECT_EQ(send.sim_begin, 100);
  EXPECT_EQ(send.sim_end, 102);
  EXPECT_EQ(handler.sim_begin, 100);
  EXPECT_TRUE(send.finished);
  EXPECT_TRUE(handler.finished);
}

TEST(TracePropagation, UntracedDirectRouterCallRecordsNoSpan) {
  tracer().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/ping",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  net::HttpRequest request;
  request.path = "/ping";  // no trace-context headers
  ASSERT_TRUE(router.handle(request).ok());
  EXPECT_TRUE(tracer().records().empty());
}

TEST(TracePropagation, RegistrationAgainstTheCloudYieldsOneTwoSpanTrace) {
  // The deterministic end-to-end tree: one PMS-style request through the
  // real cloud instance produces exactly one trace whose handler span is a
  // child of the client span.
  tracer().reset();
  registry().reset();
  cloud::CloudInstance cloud(cloud::CloudConfig{},
                             cloud::GeoLocationService({}), Rng(1));
  net::RestClient client(&cloud.router(), net::NetworkConditions{0.0, 1},
                         Rng(2));
  net::HttpRequest request;
  request.method = net::Method::Post;
  request.path = "/api/register";
  request.headers[net::kSimTimeHeader] = "0";
  request.body = Json::object();
  request.body.set("imei", "111");
  request.body.set("email", "a@b.c");
  ASSERT_EQ(client.send(request).status, net::kStatusCreated);

  ASSERT_EQ(tracer().records().size(), 2u);
  const SpanRecord& send = tracer().records()[0];
  const SpanRecord& handler = tracer().records()[1];
  EXPECT_EQ(send.name, "net.send POST /api/register");
  EXPECT_EQ(handler.name, "cloud./api/register");
  EXPECT_EQ(handler.parent, send.id);
  EXPECT_EQ(handler.trace_id, send.trace_id);
  EXPECT_NE(send.trace_id, 0u);
  EXPECT_GE(send.wall_ns, handler.wall_ns);
}

// ----------------------------------------------------------- flame folding

std::vector<SpanRecord> flame_fixture() {
  // Handcrafted records (parents before children, as the tracer guarantees):
  //   day 0: a (3 us wall) > a;b (1 us)
  //   day 1: a (0.5 us)
  std::vector<SpanRecord> spans(3);
  spans[0] = {"a", 0, SpanRecord::kNoParent, 0, 1, start_of_day(0),
              start_of_day(0), 3000, true};
  spans[1] = {"b", 1, 0, 1, 1, start_of_day(0), start_of_day(0), 1000, true};
  spans[2] = {"a", 2, SpanRecord::kNoParent, 0, 2, start_of_day(1),
              start_of_day(1), 500, true};
  return spans;
}

TEST(Exporters, FlameByDayFoldsSelfTimePerDay) {
  const Json flame = flame_by_day(flame_fixture());
  ASSERT_EQ(flame.size(), 2u);
  EXPECT_EQ(flame[0].at("day").as_int(), 0);
  // Parent self time = 3 us - 1 us child = 2 us.
  EXPECT_DOUBLE_EQ(flame[0].at("stacks").at("a").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(flame[0].at("stacks").at("a;b").as_double(), 1.0);
  EXPECT_EQ(flame[1].at("day").as_int(), 1);
  EXPECT_DOUBLE_EQ(flame[1].at("stacks").at("a").as_double(), 0.5);
}

TEST(Exporters, FlameClampsNegativeSelfTimeToZero) {
  // A child whose wall cost exceeds its parent's (clock jitter between the
  // two steady_clock reads) must not produce a negative stack value.
  std::vector<SpanRecord> spans(2);
  spans[0] = {"p", 0, SpanRecord::kNoParent, 0, 1, 0, 0, 100, true};
  spans[1] = {"c", 1, 0, 1, 1, 0, 0, 250, true};
  const Json flame = flame_by_day(spans);
  EXPECT_DOUBLE_EQ(flame[0].at("stacks").at("p").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(flame[0].at("stacks").at("p;c").as_double(), 0.25);
}

TEST(Exporters, SlowestTracesRankByRootWallTime) {
  std::vector<SpanRecord> spans(3);
  spans[0] = {"fast", 0, SpanRecord::kNoParent, 0, 1, 0, 0, 1000, true};
  spans[1] = {"slow", 1, SpanRecord::kNoParent, 0, 2, 0, 10, 5000, true};
  spans[2] = {"slow.child", 2, 1, 1, 2, 0, 10, 2000, true};
  const Json top = slowest_traces_json(spans, 5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].at("root").as_string(), "slow");
  EXPECT_DOUBLE_EQ(top[0].at("wall_us").as_double(), 5.0);
  EXPECT_EQ(top[0].at("span_count").as_int(), 2);
  EXPECT_EQ(top[0].at("spans").size(), 2u);
  EXPECT_EQ(top[0].at("sim_duration_s").as_int(), 10);
  EXPECT_EQ(top[1].at("root").as_string(), "fast");

  const Json only_one = slowest_traces_json(spans, 1);
  ASSERT_EQ(only_one.size(), 1u);
  EXPECT_EQ(only_one[0].at("root").as_string(), "slow");

  const Json truncated = slowest_traces_json(spans, 5, /*max_spans_per_trace=*/1);
  EXPECT_EQ(truncated[0].at("spans").size(), 1u);
  EXPECT_TRUE(truncated[0].at("spans_truncated").as_bool());
}

TEST(Exporters, DiagnosticsSummaryNamesTheSlowestTrace) {
  Tracer tracer;
  {
    Span slow(tracer, "study.participant.p00", 0);
    slow.finish(hours(1));
  }
  const std::string digest = diagnostics_summary(tracer, registry());
  EXPECT_NE(digest.find("slowest trace: study.participant.p00"),
            std::string::npos);
  EXPECT_NE(digest.find("cloud SLO violations:"), std::string::npos);
  EXPECT_NE(digest.find("log ring:"), std::string::npos);
}

// -------------------------------------------------------- exporter escaping

TEST(Exporters, PrometheusEscapesHelpText) {
  MetricsRegistry reg;
  reg.counter("esc_total", {}, "first line\nback\\slash").inc();
  const std::string text = to_prometheus(reg);
  // Exposition format: HELP escapes newline and backslash (quotes stay).
  EXPECT_NE(text.find("# HELP esc_total first line\\nback\\\\slash\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# HELP esc_total first line\nback"), std::string::npos);
}

// ----------------------------------------------------------- bench writing

TEST(Exporters, BenchJsonCarriesSchemaVersionRunMetaAndFlame) {
  registry().reset();
  tracer().reset();
  registry().counter("bench_probe_total").inc();
  {
    Span span(tracer(), "bench.op", start_of_day(3));
    span.finish(start_of_day(3));
  }
  const std::string path = ::testing::TempDir() + "pmware_bench_unit.json";
  Json extra = Json::object();
  extra.set("answer", 42);
  ASSERT_TRUE(write_bench_json(path, "unit", std::move(extra),
                               RunMeta{20141208, 8, 14}));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  EXPECT_EQ(doc.at("schema_version").as_int(), kBenchSchemaVersion);
  // Pin the current version: 9 added the deployment-study "chaos_sweep"
  // block (device-lifecycle chaos digests and checkpoint/restore
  // distributions). Bumping kBenchSchemaVersion means updating this test
  // and the history comment in export.hpp together.
  EXPECT_EQ(kBenchSchemaVersion, 9);
  EXPECT_TRUE(doc.contains("timeseries"));
  EXPECT_TRUE(doc.at("timeseries").contains("points"));
  EXPECT_GT(doc.at("process").at("peak_rss_bytes").as_int(), 0);
  EXPECT_TRUE(doc.at("metrics").contains("pmware_build_info"));
  EXPECT_EQ(doc.at("bench").as_string(), "unit");
  EXPECT_EQ(doc.at("run").at("seed").as_int(), 20141208);
  EXPECT_EQ(doc.at("run").at("threads").as_int(), 8);
  EXPECT_EQ(doc.at("run").at("sim_days").as_int(), 14);
  EXPECT_EQ(doc.at("results").at("answer").as_int(), 42);
  EXPECT_TRUE(doc.at("metrics").contains("bench_probe_total"));
  ASSERT_EQ(doc.at("spans").size(), 1u);
  EXPECT_NE(doc.at("spans")[0].at("trace_id").as_int(), 0);
  ASSERT_EQ(doc.at("flame").size(), 1u);
  EXPECT_EQ(doc.at("flame")[0].at("day").as_int(), 3);
  EXPECT_TRUE(doc.at("flame")[0].at("stacks").contains("bench.op"));
}

// -------------------------------------------------------- structured logging

/// Restores the global log threshold on scope exit; tests below lower it.
struct LogLevelGuard {
  LogLevel prev = log_level();
  ~LogLevelGuard() { set_log_level(prev); }
};

TEST(Logger, RingWrapsKeepingTheNewestRecords) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  Logger log(/*capacity=*/3);
  log.set_echo(false);
  for (int i = 0; i < 5; ++i)
    log.write(LogLevel::Info, "t", i, "m" + std::to_string(i));
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.capacity(), 3u);
  const std::vector<LogRecord> recent = log.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].message, "m2");  // oldest retained first
  EXPECT_EQ(recent[1].message, "m3");
  EXPECT_EQ(recent[2].message, "m4");
  EXPECT_EQ(recent[2].sim_time, 4);
}

TEST(Logger, ThresholdDropsRecordsBelowLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  Logger log(8);
  log.set_echo(false);
  log.write(LogLevel::Debug, "t", 0, "dropped");
  log.write(LogLevel::Info, "t", 0, "dropped");
  log.write(LogLevel::Warn, "t", 0, "kept");
  log.write(LogLevel::Error, "t", 0, "kept");
  EXPECT_EQ(log.total(), 2u);
  EXPECT_EQ(log.recent().front().level, LogLevel::Warn);
}

TEST(Logger, RecordsCorrelateWithTheOpenSpan) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Info);
  tracer().reset();
  Logger log(8);
  log.set_echo(false);
  log.write(LogLevel::Info, "t", 1, "outside any span");
  {
    Span span(tracer(), "op", 42);
    log.write(LogLevel::Info, "t", 42, "inside the span");
    span.finish(42);
  }
  const std::vector<LogRecord> recent = log.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].trace_id, 0u);
  EXPECT_EQ(recent[1].trace_id, tracer().records()[0].trace_id);
  EXPECT_EQ(recent[1].span_id, tracer().records()[0].id);
  EXPECT_EQ(recent[1].sim_time, 42);
  EXPECT_GT(recent[1].wall_us, 0);
}

TEST(Logger, ParseLogLevelAcceptsNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("loud"), std::nullopt);
}

TEST(Logger, ApplyLogLevelFlagSetsTheGlobalThreshold) {
  LogLevelGuard guard;
  const char* argv_ok[] = {"bench", "--log-level", "error"};
  EXPECT_TRUE(apply_log_level_flag(3, const_cast<char**>(argv_ok)));
  EXPECT_EQ(log_level(), LogLevel::Error);
  const char* argv_bad[] = {"bench", "--log-level", "shout"};
  EXPECT_FALSE(apply_log_level_flag(3, const_cast<char**>(argv_bad)));
  EXPECT_EQ(log_level(), LogLevel::Error);  // unchanged on parse failure
  const char* argv_absent[] = {"bench", "--json"};
  EXPECT_TRUE(apply_log_level_flag(2, const_cast<char**>(argv_absent)));
}

}  // namespace
}  // namespace pmware::telemetry
