#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include "net/client.hpp"
#include "net/http.hpp"
#include "net/router.hpp"
#include "util/json.hpp"

namespace pmware::telemetry {
namespace {

// ---------------------------------------------------------------- counters

TEST(MetricsRegistry, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.counter("requests_total").value(), 5u);
}

TEST(MetricsRegistry, SameNameAndLabelsIsTheSameSeries) {
  MetricsRegistry reg;
  reg.counter("hits_total", {{"route", "/a"}}).inc();
  reg.counter("hits_total", {{"route", "/a"}}).inc();
  EXPECT_EQ(reg.counter_value("hits_total", {{"route", "/a"}}), 2u);
}

TEST(MetricsRegistry, DifferentLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  reg.counter("hits_total", {{"route", "/a"}}).inc(1);
  reg.counter("hits_total", {{"route", "/b"}}).inc(10);
  reg.counter("hits_total").inc(100);
  EXPECT_EQ(reg.counter_value("hits_total", {{"route", "/a"}}), 1u);
  EXPECT_EQ(reg.counter_value("hits_total", {{"route", "/b"}}), 10u);
  EXPECT_EQ(reg.counter_value("hits_total"), 100u);
  EXPECT_EQ(reg.family_total("hits_total"), 111u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  // LabelSet is a sorted map, so insertion order cannot create duplicates.
  MetricsRegistry reg;
  reg.counter("x_total", {{"a", "1"}, {"b", "2"}}).inc();
  reg.counter("x_total", {{"b", "2"}, {"a", "1"}}).inc();
  EXPECT_EQ(reg.counter_value("x_total", {{"b", "2"}, {"a", "1"}}), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("thing");
  EXPECT_THROW(reg.gauge("thing"), TelemetryError);
  EXPECT_THROW(reg.histogram("thing", {}, 0, 1, 4), TelemetryError);
  reg.gauge("level");
  EXPECT_THROW(reg.counter("level"), TelemetryError);
}

TEST(MetricsRegistry, FindersReturnNullForMissingSeries) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope", {}), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  reg.counter("present", {{"k", "v"}});
  EXPECT_EQ(reg.find_counter("present", {}), nullptr);
  EXPECT_NE(reg.find_counter("present", {{"k", "v"}}), nullptr);
}

// ------------------------------------------------------------------ gauges

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("battery_pct", {{"device", "d0"}});
  g.set(80);
  g.add(-12.5);
  EXPECT_DOUBLE_EQ(reg.gauge("battery_pct", {{"device", "d0"}}).value(), 67.5);
}

// -------------------------------------------------------------- histograms

TEST(MetricsRegistry, HistogramObservationsLandInBuckets) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("latency_s", {}, 0, 10, 5);
  h.observe(1);    // bucket 0 ([0,2))
  h.observe(3);    // bucket 1
  h.observe(9.5);  // bucket 4
  h.observe(42);   // clamped into bucket 4
  EXPECT_EQ(h.buckets().total(), 4u);
  EXPECT_EQ(h.buckets().count(0), 1u);
  EXPECT_EQ(h.buckets().count(1), 1u);
  EXPECT_EQ(h.buckets().count(4), 2u);
  EXPECT_DOUBLE_EQ(h.stats().sum(), 55.5);
  EXPECT_DOUBLE_EQ(h.stats().max(), 42.0);
}

TEST(MetricsRegistry, HistogramRedeclarationWithNewBoundsThrows) {
  MetricsRegistry reg;
  reg.histogram("h", {{"i", "a"}}, 0, 10, 5);
  // Same bounds, new labels: fine.
  reg.histogram("h", {{"i", "b"}}, 0, 10, 5);
  EXPECT_THROW(reg.histogram("h", {{"i", "c"}}, 0, 20, 5), TelemetryError);
  EXPECT_THROW(reg.histogram("h", {{"i", "d"}}, 0, 10, 8), TelemetryError);
}

// ------------------------------------------------------------------- reset

TEST(MetricsRegistry, ResetClearsFamiliesAndKeepsInstanceLabelsFresh) {
  MetricsRegistry reg;
  reg.counter("a_total").inc(3);
  const std::string first = reg.next_instance_label("c");
  reg.reset();
  EXPECT_EQ(reg.family_count(), 0u);
  EXPECT_EQ(reg.counter_value("a_total"), 0u);
  // Instance ids survive reset, so pre-reset instances never collide with
  // post-reset ones.
  EXPECT_NE(reg.next_instance_label("c"), first);
}

TEST(MetricsRegistry, GlobalRegistryResetIsolatesTests) {
  registry().reset();
  registry().counter("isolation_probe_total").inc();
  EXPECT_EQ(registry().counter_value("isolation_probe_total"), 1u);
  registry().reset();
  EXPECT_EQ(registry().counter_value("isolation_probe_total"), 0u);
}

// ------------------------------------------------------------------- spans

TEST(Tracer, SpansNestParentChild) {
  Tracer tracer;
  {
    Span outer(tracer, "housekeeping", 100);
    {
      Span inner(tracer, "gca_offload", 100);
      inner.finish(100);
    }
    outer.finish(100);
  }
  ASSERT_EQ(tracer.records().size(), 2u);
  const SpanRecord& outer = tracer.records()[0];
  const SpanRecord& inner = tracer.records()[1];
  EXPECT_EQ(outer.name, "housekeeping");
  EXPECT_EQ(outer.parent, SpanRecord::kNoParent);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.name, "gca_offload");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_TRUE(outer.finished);
  EXPECT_TRUE(inner.finished);
  // The parent's wall clock ran strictly longer than (or as long as) the
  // child's: it opened earlier and closed later.
  EXPECT_GE(outer.wall_ns, inner.wall_ns);
}

TEST(Tracer, SimAndWallClocksAreAccountedSeparately) {
  Tracer tracer;
  {
    Span span(tracer, "pms.run", hours(9));
    span.finish(hours(18));
  }
  const SpanRecord& record = tracer.records()[0];
  EXPECT_EQ(record.sim_begin, hours(9));
  EXPECT_EQ(record.sim_end, hours(18));
  EXPECT_EQ(record.sim_duration(), hours(9));
  // Wall time is real elapsed time — nanoseconds, not nine hours.
  EXPECT_GE(record.wall_ns, 0);
  EXPECT_LT(record.wall_ns, 1'000'000'000);
}

TEST(Tracer, UnfinishedSpanClosesAtItsOwnSimBegin) {
  Tracer tracer;
  { Span span(tracer, "zero_sim_work", 500); }
  const SpanRecord& record = tracer.records()[0];
  EXPECT_TRUE(record.finished);
  EXPECT_EQ(record.sim_begin, 500);
  EXPECT_EQ(record.sim_end, 500);
}

TEST(Tracer, ScopedTimerReadsTheSimClockAtBothEnds) {
  Tracer tracer;
  SimTime now = minutes(5);
  {
    ScopedTimer timer(tracer, "scheduler.run", [&now] { return now; });
    now = minutes(30);  // sim time advances while the scope runs
  }
  const SpanRecord& record = tracer.records()[0];
  EXPECT_EQ(record.sim_begin, minutes(5));
  EXPECT_EQ(record.sim_end, minutes(30));
  EXPECT_EQ(record.sim_duration(), minutes(25));
}

TEST(Tracer, CapDropsSpansInsteadOfGrowing) {
  Tracer tracer(/*max_records=*/2);
  { Span a(tracer, "a", 0); }
  { Span b(tracer, "b", 0); }
  { Span c(tracer, "c", 0); }
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

// --------------------------------------------------------------- exporters

void fill_exporter_fixture(MetricsRegistry& reg) {
  reg.counter("net_requests_total", {{"instance", "c0"}},
              "requests attempted")
      .inc(7);
  reg.gauge("sensing_duty_cycle", {{"interface", "gsm"}}).set(1.0 / 60.0);
  reg.histogram("cloud_handler_wall_us", {{"route", "/metrics"}}, 0, 100, 4)
      .observe(25);
}

TEST(Exporters, PrometheusTextShape) {
  MetricsRegistry reg;
  fill_exporter_fixture(reg);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE net_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP net_requests_total requests attempted"),
            std::string::npos);
  EXPECT_NE(text.find("net_requests_total{instance=\"c0\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sensing_duty_cycle gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cloud_handler_wall_us histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("cloud_handler_wall_us_bucket{route=\"/metrics\",le=\"50\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("cloud_handler_wall_us_bucket{route=\"/metrics\",le=\"+Inf\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("cloud_handler_wall_us_count{route=\"/metrics\"} 1"),
            std::string::npos);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("odd_total", {{"k", "a\"b\\c\nd"}}).inc();
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("odd_total{k=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(Exporters, JsonRoundTripsThroughTheParser) {
  MetricsRegistry reg;
  fill_exporter_fixture(reg);
  const Json exported = to_json(reg);
  const Json reparsed = Json::parse(exported.dump());
  EXPECT_EQ(reparsed, exported);

  const Json& metrics = reparsed.at("metrics");
  EXPECT_EQ(metrics.at("net_requests_total").at("kind").as_string(),
            "counter");
  const Json& series =
      metrics.at("net_requests_total").at("series")[0];
  EXPECT_EQ(series.at("labels").at("instance").as_string(), "c0");
  EXPECT_EQ(series.at("value").as_int(), 7);

  const Json& hist = metrics.at("cloud_handler_wall_us").at("series")[0];
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 25.0);
  // Buckets are sparse: only the [25, 50) bucket saw the observation.
  ASSERT_EQ(hist.at("buckets").size(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("buckets")[0].at("lo").as_double(), 25.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets")[0].at("hi").as_double(), 50.0);
  EXPECT_EQ(hist.at("buckets")[0].at("count").as_int(), 1);
}

TEST(Exporters, ZeroCountHistogramEmitsNoBucketSeries) {
  MetricsRegistry reg;
  reg.histogram("cloud_handler_wall_us", {{"route", "/cold"}}, 0, 5000, 20);
  const std::string text = to_prometheus(reg);
  // Lazily materialized: no per-bucket lines for an untouched series, just
  // the mandatory +Inf / _sum / _count.
  EXPECT_EQ(text.find("route=\"/cold\",le=\"250\""), std::string::npos);
  EXPECT_NE(
      text.find("cloud_handler_wall_us_bucket{route=\"/cold\",le=\"+Inf\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("cloud_handler_wall_us_count{route=\"/cold\"} 0"),
            std::string::npos);

  const Json exported = to_json(reg);
  const Json& hist =
      exported.at("metrics").at("cloud_handler_wall_us").at("series")[0];
  EXPECT_EQ(hist.at("buckets").size(), 0u);
}

TEST(Exporters, SpansExportParentLinks) {
  Tracer tracer;
  {
    Span outer(tracer, "outer", 10);
    Span inner(tracer, "inner", 20);
    inner.finish(30);
    outer.finish(40);
  }
  const Json spans = Json::parse(spans_to_json(tracer).dump());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at("name").as_string(), "outer");
  EXPECT_FALSE(spans[0].contains("parent"));
  EXPECT_EQ(spans[1].at("name").as_string(), "inner");
  EXPECT_EQ(spans[1].at("parent").as_int(), spans[0].at("id").as_int());
  EXPECT_EQ(spans[1].at("sim_begin").as_int(), 20);
  EXPECT_EQ(spans[1].at("sim_end").as_int(), 30);
}

// ------------------------------------------------- middleware-facing views

TEST(TelemetryViews, ClientStatsIsAViewOverTheRegistry) {
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/ping",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  net::RestClient client(&router, net::NetworkConditions{0.0, 3}, Rng(1));
  net::HttpRequest request;
  request.path = "/ping";
  client.send(request);
  client.send(request);

  EXPECT_EQ(client.stats().requests, 2u);
  EXPECT_EQ(client.stats().total_latency, 6);
  EXPECT_EQ(registry().counter_value(
                "net_requests_total", {{"instance", client.instance_label()}}),
            2u);
  // Reset wipes the series; the view reads zeros rather than dangling.
  registry().reset();
  EXPECT_EQ(client.stats().requests, 0u);
}

TEST(TelemetryViews, TwoClientsKeepSeparateSeries) {
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/ping",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  net::RestClient a(&router, net::NetworkConditions{}, Rng(1));
  net::RestClient b(&router, net::NetworkConditions{}, Rng(2));
  net::HttpRequest request;
  request.path = "/ping";
  a.send(request);
  a.send(request);
  b.send(request);
  EXPECT_EQ(a.stats().requests, 2u);
  EXPECT_EQ(b.stats().requests, 1u);
  EXPECT_EQ(registry().family_total("net_requests_total"), 3u);
}

TEST(TelemetryViews, RouterObserverSeesPatternsNotConcretePaths) {
  registry().reset();
  net::Router router;
  router.add_route(net::Method::Get, "/users/:id/places",
                   [](const net::HttpRequest&, const net::PathParams&) {
                     return net::HttpResponse::json(Json::object());
                   });
  std::vector<std::string> seen;
  router.set_observer([&seen](net::Method, const std::string& pattern,
                              int status, double wall_us) {
    seen.push_back(pattern);
    EXPECT_EQ(status, 200);
    EXPECT_GE(wall_us, 0.0);
  });
  net::HttpRequest request;
  request.path = "/users/7/places";
  router.handle(request);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "/users/:id/places");
}

}  // namespace
}  // namespace pmware::telemetry
