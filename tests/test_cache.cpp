// Cache-subsystem tests: the generic ContentCache (LRU, digest
// invalidation, hit taxonomy), ETag generation / If-None-Match matching,
// conditional transfer end-to-end through RestClient + CloudInstance
// (including under injected faults), the GCA offload response cache, the
// analytics result cache's write-mark coherence, the place PUT/GET purity
// guarantee strong ETags rest on, and cache-on/off study equivalence.
#include "cache/content_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/digest.hpp"
#include "cache/etag.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/codec.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "study/deployment.hpp"
#include "telemetry/metrics.hpp"

namespace pmware {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::Method;

std::uint64_t outcome_count(const char* cache, const char* outcome) {
  const auto* c = telemetry::registry().find_counter(
      "cache_outcomes_total", {{"cache", cache}, {"outcome", outcome}});
  return c == nullptr ? 0 : static_cast<std::uint64_t>(c->value());
}

// --- ContentCache ---------------------------------------------------------

TEST(ContentCache, HitReturnsValueAndRefreshesRecency) {
  cache::ContentCache<std::string, int> cache("t", 2);
  cache.put("a", 1, 10);
  cache.put("b", 2, 20);
  // Touch "a" so "b" is now least recently used...
  EXPECT_EQ(cache.lookup("a", 10).value, 1);
  cache.put("c", 3, 30);  // ...and the insert beyond capacity evicts "b".
  EXPECT_EQ(cache.lookup("a", 10).value, 1);
  EXPECT_EQ(cache.lookup("c", 30).value, 3);
  const auto b = cache.lookup("b", 20);
  EXPECT_FALSE(b.value.has_value());
  EXPECT_FALSE(b.stale);  // evicted, not version-mismatched
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ContentCache, VersionMismatchDropsEntryAndReportsStale) {
  cache::ContentCache<int, std::string> cache("t", 4);
  cache.put(1, "v1", 100);
  const auto stale = cache.lookup(1, 101);
  EXPECT_FALSE(stale.value.has_value());
  EXPECT_TRUE(stale.stale);
  // The mismatch dropped the entry: the next lookup is a cold miss.
  const auto miss = cache.lookup(1, 101);
  EXPECT_FALSE(miss.value.has_value());
  EXPECT_FALSE(miss.stale);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ContentCache, PutReplacesValueAndVersionInPlace) {
  cache::ContentCache<int, std::string> cache("t", 2);
  cache.put(1, "old", 1);
  cache.put(1, "new", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup(1, 1).value.has_value());
  // (The lookup above dropped the entry as stale — reinsert and verify.)
  cache.put(1, "new", 2);
  EXPECT_EQ(cache.lookup(1, 2).value, "new");
}

TEST(ContentCache, EvictionHookSeesEveryDeparture) {
  cache::ContentCache<int, int> cache("t", 2);
  std::vector<int> evicted;
  cache.set_eviction_hook([&](const int& k, const int&) {
    evicted.push_back(k);
  });
  cache.put(1, 10, 0);
  cache.put(2, 20, 0);
  cache.put(3, 30, 0);          // capacity eviction of 1
  cache.lookup(2, 99);          // staleness drop of 2
  cache.invalidate(3);          // explicit
  cache.put(4, 40, 0);
  cache.clear();                // remaining 4
  EXPECT_EQ(evicted, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ContentCache, CapacityZeroClampsToOne) {
  cache::ContentCache<int, int> cache("t", 0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.put(1, 10, 0);
  cache.put(2, 20, 0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(2, 0).value, 20);
}

TEST(ContentCache, TaxonomyAndEvictionsExportedAsCounters) {
  telemetry::registry().reset();
  cache::ContentCache<int, int> cache("taxo", 1);
  cache.record(cache::CacheOutcome::LocalHit);
  cache.record(cache::CacheOutcome::CloudHit);
  cache.record(cache::CacheOutcome::CloudHit);
  cache.record(cache::CacheOutcome::Recompute);
  cache.record(cache::CacheOutcome::Miss);
  cache.put(1, 1, 0);
  cache.put(2, 2, 0);  // evicts 1
  EXPECT_EQ(outcome_count("taxo", "local_hit"), 1u);
  EXPECT_EQ(outcome_count("taxo", "cloud_hit"), 2u);
  EXPECT_EQ(outcome_count("taxo", "recompute"), 1u);
  EXPECT_EQ(outcome_count("taxo", "miss"), 1u);
  const auto* ev = telemetry::registry().find_counter("cache_evictions_total",
                                                      {{"cache", "taxo"}});
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(ev->value()), 1u);
}

// --- Movement digest ------------------------------------------------------

TEST(MovementDigest, SensitiveToTimeCellAndOrder) {
  auto cell = [](std::uint32_t cid) {
    world::CellId c;
    c.mcc = 262;
    c.mnc = 1;
    c.lac = 7;
    c.cid = cid;
    return c;
  };
  const std::vector<algorithms::CellObservation> a = {{0, cell(1)},
                                                      {60, cell(2)}};
  const std::vector<algorithms::CellObservation> same = a;
  EXPECT_EQ(core::movement_digest(a), core::movement_digest(same));

  std::vector<algorithms::CellObservation> longer = a;
  longer.push_back({120, cell(3)});
  EXPECT_NE(core::movement_digest(a), core::movement_digest(longer));

  const std::vector<algorithms::CellObservation> other_cell = {{0, cell(1)},
                                                               {60, cell(3)}};
  EXPECT_NE(core::movement_digest(a), core::movement_digest(other_cell));

  const std::vector<algorithms::CellObservation> other_time = {{0, cell(1)},
                                                               {61, cell(2)}};
  EXPECT_NE(core::movement_digest(a), core::movement_digest(other_time));

  const std::vector<algorithms::CellObservation> swapped = {{60, cell(2)},
                                                            {0, cell(1)}};
  EXPECT_NE(core::movement_digest(a), core::movement_digest(swapped));
}

// --- ETag edge cases ------------------------------------------------------

TEST(ETag, StrongEtagIsQuotedPadded16DigitHex) {
  const std::string etag = cache::strong_etag("{\"a\":1}");
  ASSERT_EQ(etag.size(), 18u);
  EXPECT_EQ(etag.front(), '"');
  EXPECT_EQ(etag.back(), '"');
  for (std::size_t i = 1; i + 1 < etag.size(); ++i)
    EXPECT_TRUE((etag[i] >= '0' && etag[i] <= '9') ||
                (etag[i] >= 'a' && etag[i] <= 'f'))
        << etag;
  EXPECT_EQ(etag, cache::strong_etag("{\"a\":1}"));  // deterministic
  EXPECT_NE(etag, cache::strong_etag("{\"a\":2}"));
}

TEST(ETag, MatchesExactAndListedCandidates) {
  EXPECT_TRUE(cache::etag_matches("\"abc\"", "\"abc\""));
  EXPECT_FALSE(cache::etag_matches("\"abd\"", "\"abc\""));
  EXPECT_TRUE(cache::etag_matches("\"x\", \"abc\", \"y\"", "\"abc\""));
  EXPECT_FALSE(cache::etag_matches("\"x\", \"y\"", "\"abc\""));
}

TEST(ETag, WeakComparisonIgnoresWeaknessPrefixes) {
  // RFC 7232 §3.2: If-None-Match uses the weak comparison — W/ prefixes
  // are stripped from both sides before comparing opaque tags.
  EXPECT_TRUE(cache::etag_matches("W/\"abc\"", "\"abc\""));
  EXPECT_TRUE(cache::etag_matches("\"abc\"", "W/\"abc\""));
  EXPECT_TRUE(cache::etag_matches("W/\"abc\"", "W/\"abc\""));
  EXPECT_FALSE(cache::etag_matches("W/\"abd\"", "\"abc\""));
}

TEST(ETag, StarMatchesAnyRepresentation) {
  EXPECT_TRUE(cache::etag_matches("*", "\"anything\""));
  EXPECT_TRUE(cache::etag_matches(" * ", "\"anything\""));
}

TEST(ETag, ToleratesUnquotedCandidatesAndWhitespace) {
  EXPECT_TRUE(cache::etag_matches("abc", "\"abc\""));
  EXPECT_TRUE(cache::etag_matches("  \"abc\"  ", "\"abc\""));
  EXPECT_TRUE(cache::etag_matches("x , abc", "\"abc\""));
}

TEST(ETag, EmptyHeaderNeverMatches) {
  EXPECT_FALSE(cache::etag_matches("", "\"abc\""));
  EXPECT_FALSE(cache::etag_matches("   ", "\"abc\""));
  EXPECT_FALSE(cache::etag_matches(",,", "\"abc\""));
}

// --- Conditional transfer end-to-end --------------------------------------

/// Minimal cloud + client pair; the client registers the device and keeps
/// the bearer token so tests talk to /api/users/<id>/... directly.
class ConditionalFixture : public ::testing::Test {
 protected:
  ConditionalFixture() { telemetry::registry().reset(); }

  void start(cloud::CloudConfig config = {},
             net::CachePolicy cache_policy = {true, 64}) {
    cloud_.emplace(config, cloud::GeoLocationService({}), Rng(1));
    client_.emplace(&cloud_->router(), net::NetworkConditions{}, Rng(2));
    client_->set_cache_policy(cache_policy);
    HttpRequest reg;
    reg.method = Method::Post;
    reg.path = "/api/register";
    reg.body = Json::object();
    reg.body.set("imei", "358240051111111");
    reg.body.set("email", "cache@test.pmware.org");
    const HttpResponse res = client_->send(reg);
    ASSERT_EQ(res.status, net::kStatusCreated);
    client_->set_auth_token(res.body.at("token").as_string());
    user_ = std::to_string(res.body.at("user").as_int());
  }

  HttpRequest request(Method method, std::string path, SimTime now = 0) {
    HttpRequest req;
    req.method = method;
    req.path = std::move(path);
    req.headers[cloud::CloudInstance::kSimTimeHeader] = std::to_string(now);
    return req;
  }

  HttpResponse put_place(core::PlaceUid uid, const std::string& label,
                         SimTime now = 0) {
    HttpRequest put =
        request(Method::Put, "/api/users/" + user_ + "/places/" +
                                 std::to_string(uid), now);
    core::PlaceRecord record;
    record.label = label;
    put.body = core::to_json(record);
    return client_->send(put);
  }

  std::optional<cloud::CloudInstance> cloud_;
  std::optional<net::RestClient> client_;
  std::string user_;
};

TEST_F(ConditionalFixture, RepeatGetRevalidatesTo304WithSameBody) {
  start();
  ASSERT_EQ(put_place(1, "home").status, net::kStatusCreated);
  const HttpResponse first =
      client_->send(request(Method::Get, "/api/users/" + user_ + "/places"));
  ASSERT_EQ(first.status, net::kStatusOk);
  EXPECT_EQ(client_->stats().not_modified, 0u);

  const HttpResponse second =
      client_->send(request(Method::Get, "/api/users/" + user_ + "/places"));
  // The caller still sees an ordinary 200; the wire moved a 304.
  EXPECT_EQ(second.status, net::kStatusOk);
  EXPECT_EQ(second.body.dump(), first.body.dump());
  EXPECT_EQ(client_->stats().not_modified, 1u);
  EXPECT_EQ(client_->stats().bytes_saved, first.body.dump().size());
  EXPECT_EQ(outcome_count("net_conditional", "cloud_hit"), 1u);
}

TEST_F(ConditionalFixture, ServerSide304CarriesNoBody) {
  start();
  ASSERT_EQ(put_place(1, "home").status, net::kStatusCreated);
  const HttpResponse full = cloud_->router().handle(
      request(Method::Get, "/api/users/" + user_ + "/places")
          .with_header("Authorization", "Bearer " + client_->auth_token()));
  ASSERT_EQ(full.status, net::kStatusOk);
  const auto etag = full.headers.find(net::kETagHeader);
  ASSERT_NE(etag, full.headers.end());

  HttpRequest revalidate =
      request(Method::Get, "/api/users/" + user_ + "/places")
          .with_header("Authorization", "Bearer " + client_->auth_token());
  revalidate.headers[net::kIfNoneMatchHeader] = etag->second;
  const HttpResponse res = cloud_->router().handle(revalidate);
  EXPECT_EQ(res.status, net::kStatusNotModified);
  EXPECT_TRUE(res.body.is_null());  // bodyless — the entire point
  // The 304 still names the representation it validated.
  ASSERT_NE(res.headers.find(net::kETagHeader), res.headers.end());
  EXPECT_EQ(res.headers.at(net::kETagHeader), etag->second);
}

TEST_F(ConditionalFixture, MutationInvalidatesThenRevalidatesAgain) {
  start();
  ASSERT_EQ(put_place(1, "home").status, net::kStatusCreated);
  const std::string path = "/api/users/" + user_ + "/places";
  client_->send(request(Method::Get, path));             // miss, fills cache
  ASSERT_EQ(put_place(2, "work").status, net::kStatusCreated);
  const HttpResponse changed = client_->send(request(Method::Get, path));
  // Stale tag: the full new representation comes back — a recompute.
  EXPECT_EQ(changed.status, net::kStatusOk);
  EXPECT_EQ(client_->stats().not_modified, 0u);
  EXPECT_EQ(outcome_count("net_conditional", "recompute"), 1u);
  // The refreshed entry validates on the next round trip.
  const HttpResponse again = client_->send(request(Method::Get, path));
  EXPECT_EQ(again.status, net::kStatusOk);
  EXPECT_EQ(again.body.dump(), changed.body.dump());
  EXPECT_EQ(client_->stats().not_modified, 1u);
}

TEST_F(ConditionalFixture, CacheOffNeverSendsIfNoneMatch) {
  start(cloud::CloudConfig{}, net::CachePolicy{false, 64});
  ASSERT_EQ(put_place(1, "home").status, net::kStatusCreated);
  const std::string path = "/api/users/" + user_ + "/places";
  const HttpResponse first = client_->send(request(Method::Get, path));
  const HttpResponse second = client_->send(request(Method::Get, path));
  EXPECT_EQ(first.status, net::kStatusOk);
  EXPECT_EQ(second.status, net::kStatusOk);
  EXPECT_EQ(second.body.dump(), first.body.dump());
  EXPECT_EQ(client_->stats().not_modified, 0u);
  // ETag stamping is unconditional — only revalidation needs the cache.
  EXPECT_NE(second.headers.find(net::kETagHeader), second.headers.end());
}

TEST_F(ConditionalFixture, CallerSuppliedIfNoneMatchPassesThroughRaw) {
  start();
  ASSERT_EQ(put_place(1, "home").status, net::kStatusCreated);
  HttpRequest get = request(Method::Get, "/api/users/" + user_ + "/places");
  get.headers[net::kIfNoneMatchHeader] = "*";
  const HttpResponse res = client_->send(get);
  // The client must not intercept a conditional exchange it didn't start:
  // the raw 304 is the caller's to interpret.
  EXPECT_EQ(res.status, net::kStatusNotModified);
  EXPECT_EQ(client_->stats().not_modified, 0u);
}

TEST_F(ConditionalFixture, ConditionalGetsSurviveInjectedFaults) {
  cloud::CloudConfig config;
  config.fault_plan =
      net::FaultPlan::parse("route=/api/users,error=0.4,from=0,to=2d");
  start(config);
  net::RetryPolicy retry;
  retry.max_retries = 6;
  client_->set_retry_policy(retry);
  ASSERT_EQ(put_place(1, "home").status, net::kStatusCreated);

  const std::string path = "/api/users/" + user_ + "/places";
  std::string body;
  std::size_t delivered = 0;
  for (int round = 0; round < 20; ++round) {
    // Distinct sim-times so the deterministic fault rolls differ per round.
    const HttpResponse res =
        client_->send(request(Method::Get, path, minutes(round)));
    if (res.status != net::kStatusOk) continue;  // exhausted its retries
    ++delivered;
    // Every delivered response — revalidated or re-transferred — must carry
    // the same bytes; a 304 merged with a fault must never surface.
    if (body.empty())
      body = res.body.dump();
    else
      EXPECT_EQ(res.body.dump(), body);
  }
  EXPECT_GE(delivered, 10u);
  EXPECT_GE(client_->stats().not_modified, 1u);
}

// --- Place PUT/GET purity -------------------------------------------------

// Strong ETags are only valid if response bytes are a pure function of the
// last write — no counters, timestamps, or iteration-order noise in the
// representation. This is the regression test that guarantee rests on.
TEST_F(ConditionalFixture, PlaceGetBytesArePureFunctionOfLastPut) {
  start(cloud::CloudConfig{}, net::CachePolicy{false, 64});
  const std::string path = "/api/users/" + user_ + "/places";

  ASSERT_EQ(put_place(7, "gym").status, net::kStatusCreated);
  const std::string original = client_->send(request(Method::Get, path)).body.dump();

  // Idempotent re-PUT: identical stored state, identical bytes and ETag.
  ASSERT_EQ(put_place(7, "gym").status, net::kStatusCreated);
  const HttpResponse same = client_->send(request(Method::Get, path));
  EXPECT_EQ(same.body.dump(), original);
  EXPECT_EQ(same.headers.at(net::kETagHeader), cache::strong_etag(original));

  // Different content, different bytes...
  ASSERT_EQ(put_place(7, "pool").status, net::kStatusCreated);
  const std::string changed = client_->send(request(Method::Get, path)).body.dump();
  EXPECT_NE(changed, original);

  // ...and restoring the original write restores the original bytes.
  ASSERT_EQ(put_place(7, "gym").status, net::kStatusCreated);
  EXPECT_EQ(client_->send(request(Method::Get, path)).body.dump(), original);
}

// --- GCA offload response cache ------------------------------------------

TEST_F(ConditionalFixture, RepeatDiscoverIsServedFromCloudCache) {
  start();
  auto cell = [](std::uint32_t cid) {
    world::CellId c;
    c.mcc = 262;
    c.mnc = 1;
    c.lac = 7;
    c.cid = cid;
    return c;
  };
  Json observations = Json::array();
  for (int m = 0; m < 180; ++m) {
    Json o = Json::object();
    o.set("t", static_cast<std::int64_t>(minutes(m)));
    o.set("cell", core::to_json(cell(m % 2 == 0 ? 10 : 11)));
    observations.push_back(std::move(o));
  }
  auto discover = [&]() {
    HttpRequest req = request(Method::Post, "/api/places/discover");
    req.body = Json::object();
    Json copy = observations;
    req.body.set("observations", std::move(copy));
    return client_->send(req);
  };
  const HttpResponse first = discover();
  ASSERT_EQ(first.status, net::kStatusOk);
  EXPECT_EQ(outcome_count("cloud_gca", "miss"), 1u);
  EXPECT_EQ(outcome_count("cloud_gca", "cloud_hit"), 0u);

  const HttpResponse replay = discover();
  ASSERT_EQ(replay.status, net::kStatusOk);
  EXPECT_EQ(replay.body.dump(), first.body.dump());  // byte-identical
  EXPECT_EQ(outcome_count("cloud_gca", "cloud_hit"), 1u);

  // A longer (append-only) upload is a different graph: recompute.
  Json o = Json::object();
  o.set("t", static_cast<std::int64_t>(minutes(200)));
  o.set("cell", core::to_json(cell(12)));
  observations.push_back(std::move(o));
  ASSERT_EQ(discover().status, net::kStatusOk);
  EXPECT_EQ(outcome_count("cloud_gca", "recompute"), 1u);
}

TEST_F(ConditionalFixture, CacheOffRecomputesEveryDiscover) {
  cloud::CloudConfig config;
  config.cache = false;
  start(config);
  auto cell = [](std::uint32_t cid) {
    world::CellId c;
    c.mcc = 262;
    c.mnc = 1;
    c.lac = 7;
    c.cid = cid;
    return c;
  };
  Json observations = Json::array();
  for (int m = 0; m < 120; ++m) {
    Json o = Json::object();
    o.set("t", static_cast<std::int64_t>(minutes(m)));
    o.set("cell", core::to_json(cell(m % 2 == 0 ? 10 : 11)));
    observations.push_back(std::move(o));
  }
  std::string body;
  for (int round = 0; round < 3; ++round) {
    HttpRequest req = request(Method::Post, "/api/places/discover");
    req.body = Json::object();
    Json copy = observations;
    req.body.set("observations", std::move(copy));
    const HttpResponse res = client_->send(req);
    ASSERT_EQ(res.status, net::kStatusOk);
    if (body.empty())
      body = res.body.dump();
    else
      EXPECT_EQ(res.body.dump(), body);  // disabled cache changes no bytes
  }
  EXPECT_EQ(outcome_count("cloud_gca", "cloud_hit"), 0u);
  EXPECT_EQ(outcome_count("cloud_gca", "miss"), 0u);
}

// --- Analytics result cache (write-mark coherence) ------------------------

TEST_F(ConditionalFixture, AnalyticsCacheInvalidatedByShardWrites) {
  start(cloud::CloudConfig{}, net::CachePolicy{false, 64});
  core::MobilityProfile profile;
  profile.activity.still = hours(20);
  profile.activity.walking = hours(3);
  profile.activity.vehicle = hours(1);
  auto put_profile = [&]() {
    HttpRequest put =
        request(Method::Put, "/api/users/" + user_ + "/profiles/3");
    put.body = core::to_json(profile);
    return client_->send(put);
  };
  const std::string path = "/api/users/" + user_ + "/analytics/activity/3";

  ASSERT_EQ(put_profile().status, net::kStatusCreated);
  const HttpResponse first = client_->send(request(Method::Get, path));
  ASSERT_EQ(first.status, net::kStatusOk);
  EXPECT_EQ(outcome_count("cloud_analytics", "miss"), 1u);

  // Unchanged shard: the remembered response is served.
  const HttpResponse hit = client_->send(request(Method::Get, path));
  EXPECT_EQ(hit.body.dump(), first.body.dump());
  EXPECT_EQ(outcome_count("cloud_analytics", "cloud_hit"), 1u);

  // Any write to the owning shard bumps its mark and forces a recompute —
  // which must observe the new data.
  profile.activity.walking = hours(5);
  ASSERT_EQ(put_profile().status, net::kStatusCreated);
  const HttpResponse recomputed = client_->send(request(Method::Get, path));
  ASSERT_EQ(recomputed.status, net::kStatusOk);
  EXPECT_EQ(outcome_count("cloud_analytics", "recompute"), 1u);
  EXPECT_EQ(recomputed.body.at("walking").as_int(),
            static_cast<std::int64_t>(hours(5)));
}

TEST_F(ConditionalFixture, AnalyticsCacheSeesDirectStorageMutation) {
  start(cloud::CloudConfig{}, net::CachePolicy{false, 64});
  core::MobilityProfile profile;
  profile.activity.still = hours(10);
  HttpRequest put = request(Method::Put, "/api/users/" + user_ + "/profiles/1");
  put.body = core::to_json(profile);
  ASSERT_EQ(client_->send(put).status, net::kStatusCreated);

  const std::string path = "/api/users/" + user_ + "/analytics/activity/1";
  ASSERT_EQ(client_->send(request(Method::Get, path)).status, net::kStatusOk);

  // Tests and tooling mutate through storage().user() directly; that
  // accessor counts toward the write mark too, so the cache can't serve
  // bytes the fixture has already replaced.
  const auto uid = static_cast<world::DeviceId>(std::atoll(user_.c_str()));
  cloud_->storage().user(uid).profiles[1].activity.still = hours(2);
  const HttpResponse res = client_->send(request(Method::Get, path));
  ASSERT_EQ(res.status, net::kStatusOk);
  EXPECT_EQ(res.body.at("still").as_int(), static_cast<std::int64_t>(hours(2)));
}

// --- Cache-on/off study equivalence ---------------------------------------

/// Science results and stored cloud bytes must be independent of caching;
/// traffic counters legitimately differ (that's the savings), so this is
/// the `network_counters = false` comparison from test_study.cpp.
void expect_equivalent(const study::StudyResult& a, const study::StudyResult& b,
                       const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.participants.size(), b.participants.size());
  for (std::size_t i = 0; i < a.participants.size(); ++i) {
    const study::ParticipantResult& pa = a.participants[i];
    const study::ParticipantResult& pb = b.participants[i];
    EXPECT_EQ(pa.places_discovered, pb.places_discovered);
    EXPECT_EQ(pa.places_tagged, pb.places_tagged);
    EXPECT_EQ(pa.places_evaluable, pb.places_evaluable);
    EXPECT_EQ(pa.eval.outcomes, pb.eval.outcomes);
    EXPECT_EQ(pa.ad_likes, pb.ad_likes);
    EXPECT_EQ(pa.ad_dislikes, pb.ad_dislikes);
    EXPECT_EQ(pa.sensing_joules, pb.sensing_joules);  // bitwise
  }
  ASSERT_EQ(a.place_map.size(), b.place_map.size());
  for (std::size_t i = 0; i < a.place_map.size(); ++i) {
    EXPECT_EQ(a.place_map[i].uid, b.place_map[i].uid);
    EXPECT_EQ(a.place_map[i].label, b.place_map[i].label);
    EXPECT_EQ(a.place_map[i].location, b.place_map[i].location);
  }
  EXPECT_EQ(a.storage_stats, b.storage_stats);
  EXPECT_EQ(a.storage_digest, b.storage_digest);
}

TEST(CacheStudy, CachingNeverChangesResultsAcrossShardsAndThreads) {
  study::StudyConfig base;
  base.participants = 3;
  base.days = 4;
  base.cache = false;
  base.shards = 1;
  base.threads = 1;
  const study::StudyResult baseline = study::DeploymentStudy(base).run();
  EXPECT_NE(baseline.storage_digest, 0u);

  for (const int shards : {1, 16}) {
    for (const int threads : {1, 8}) {
      study::StudyConfig config = base;
      config.cache = true;
      config.shards = shards;
      config.threads = threads;
      const study::StudyResult run = study::DeploymentStudy(config).run();
      expect_equivalent(baseline, run,
                        "cache=on shards=" + std::to_string(shards) +
                            " threads=" + std::to_string(threads) +
                            " vs cache=off shards=1 threads=1");
    }
  }
}

TEST(CacheStudy, CachedStudyEquivalentUnderFaultPlan) {
  // Conditional GETs, offload caching, retries, the outbox, and injected
  // faults all composed: the cached faulted run must still converge to the
  // cache-off no-fault bytes once the outbox drains.
  study::StudyConfig base;
  base.participants = 3;
  base.days = 6;
  base.cache = false;
  const study::StudyResult baseline = study::DeploymentStudy(base).run();

  study::StudyConfig faulted = base;
  faulted.cache = true;
  faulted.fault_plan = net::FaultPlan::parse("outage=2d..3d");
  const study::StudyResult run = study::DeploymentStudy(faulted).run();
  expect_equivalent(baseline, run, "cache=on outage=2d..3d vs cache=off");
}

}  // namespace
}  // namespace pmware
