#include "sensing/device.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware::sensing {
namespace {

class DeviceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world::WorldConfig config;
    Rng rng(1);
    world_ = world::generate_world(config, rng);
    home_ = world_->place(0).center;
  }

  /// Device pinned at a fixed position, Still, indoors flag configurable.
  Device stationary_device(geo::LatLng pos, bool indoors,
                           DeviceConfig config = {}, std::uint64_t seed = 9) {
    PositionOracle oracle;
    oracle.position = [pos](SimTime) { return pos; };
    oracle.activity = [](SimTime) { return mobility::Activity::Still; };
    oracle.indoors = [indoors](SimTime) { return indoors; };
    return Device(world_, std::move(oracle), config, Rng(seed));
  }

  std::shared_ptr<const world::World> world_;
  geo::LatLng home_;
};

TEST_F(DeviceFixture, GsmServingIsValidAndStrong) {
  Device device = stationary_device(home_, true);
  const GsmReading reading = device.read_gsm(0);
  EXPECT_EQ(reading.serving.mcc, world_->config().mcc);
  EXPECT_EQ(reading.serving.mnc, world_->config().mnc);
  EXPECT_GT(reading.serving_rssi_dbm, world::kCellDetectionDbm - 1);
}

TEST_F(DeviceFixture, GsmNeighborsExcludeServingAndRespectCap) {
  DeviceConfig config;
  config.max_neighbors = 4;
  Device device = stationary_device(home_, true, config);
  for (SimTime t = 0; t < minutes(30); t += 60) {
    const GsmReading reading = device.read_gsm(t);
    EXPECT_LE(reading.neighbors.size(), 4u);
    for (const auto& n : reading.neighbors) EXPECT_NE(n, reading.serving);
  }
}

TEST_F(DeviceFixture, OscillationEffectWhileStationary) {
  // Paper §2.2.2: the serving cell changes even when the user is still.
  Device device = stationary_device(home_, true);
  std::set<world::CellId> distinct;
  int changes = 0;
  std::optional<world::CellId> prev;
  for (SimTime t = 0; t < hours(8); t += 60) {
    const GsmReading reading = device.read_gsm(t);
    distinct.insert(reading.serving);
    if (prev && !(*prev == reading.serving)) ++changes;
    prev = reading.serving;
  }
  EXPECT_GE(distinct.size(), 2u);
  EXPECT_GE(changes, 5);
  // ...but hysteresis keeps it from flapping on every sample.
  EXPECT_LT(changes, 8 * 60 / 2);
}

TEST_F(DeviceFixture, ServingCellsAreLocal) {
  Device device = stationary_device(home_, true);
  const auto db = world_->cell_location_db();
  for (SimTime t = 0; t < hours(2); t += 60) {
    const GsmReading reading = device.read_gsm(t);
    ASSERT_TRUE(db.count(reading.serving));
    EXPECT_LT(geo::distance_m(db.at(reading.serving), home_), 3500);
  }
}

TEST_F(DeviceFixture, RatSwitchingProducesBothLayers) {
  Device device = stationary_device(home_, true);
  std::set<world::Radio> rats;
  for (SimTime t = 0; t < hours(12); t += 60)
    rats.insert(device.read_gsm(t).serving.radio);
  EXPECT_EQ(rats.size(), 2u);
}

TEST_F(DeviceFixture, WifiScanSeesOwnApsAtWifiPlace) {
  // Find a wifi place and scan at its center repeatedly.
  const world::Place* wifi_place = nullptr;
  for (const auto& p : world_->places())
    if (p.has_wifi) { wifi_place = &p; break; }
  ASSERT_NE(wifi_place, nullptr);
  Device device = stationary_device(wifi_place->center, true);
  int scans_with_own = 0;
  for (SimTime t = 0; t < minutes(20); t += 60) {
    const WifiScan scan = device.scan_wifi(t);
    std::set<world::Bssid> seen;
    for (const auto& obs : scan.aps) seen.insert(obs.bssid);
    for (const auto& ap : world_->aps())
      if (ap.place == wifi_place->id && seen.count(ap.bssid)) {
        ++scans_with_own;
        break;
      }
  }
  EXPECT_GE(scans_with_own, 15);
}

TEST_F(DeviceFixture, WifiMissRateRoughlyMatchesConfig) {
  const world::Place* wifi_place = nullptr;
  for (const auto& p : world_->places())
    if (p.has_wifi) { wifi_place = &p; break; }
  ASSERT_NE(wifi_place, nullptr);
  DeviceConfig config;
  config.wifi_miss_prob = 0.5;
  Device device = stationary_device(wifi_place->center, true, config);
  const std::size_t baseline = world_->visible_aps(wifi_place->center, 0).size();
  ASSERT_GT(baseline, 0u);
  double total_seen = 0;
  const int rounds = 200;
  for (int i = 0; i < rounds; ++i)
    total_seen += static_cast<double>(device.scan_wifi(i * 60).aps.size());
  const double observed = total_seen / (rounds * static_cast<double>(baseline));
  EXPECT_NEAR(observed, 0.5, 0.12);
}

TEST_F(DeviceFixture, GpsIndoorDegradation) {
  DeviceConfig config;
  Device indoor = stationary_device(home_, true, config, 3);
  Device outdoor = stationary_device(home_, false, config, 3);
  int indoor_valid = 0, outdoor_valid = 0;
  const int rounds = 400;
  for (int i = 0; i < rounds; ++i) {
    if (indoor.read_gps(i * 30).valid) ++indoor_valid;
    if (outdoor.read_gps(i * 30).valid) ++outdoor_valid;
  }
  EXPECT_NEAR(indoor_valid / static_cast<double>(rounds),
              config.gps_indoor_valid_prob, 0.07);
  EXPECT_NEAR(outdoor_valid / static_cast<double>(rounds),
              config.gps_outdoor_valid_prob, 0.03);
}

TEST_F(DeviceFixture, GpsErrorIsBounded) {
  DeviceConfig config;
  Device device = stationary_device(home_, false, config);
  for (int i = 0; i < 200; ++i) {
    const GpsFix fix = device.read_gps(i * 30);
    if (!fix.valid) continue;
    EXPECT_LT(geo::distance_m(fix.position, home_),
              config.gps_outdoor_sigma_m * 6);
    EXPECT_DOUBLE_EQ(fix.accuracy_m, config.gps_outdoor_sigma_m);
  }
}

TEST_F(DeviceFixture, AccelErrorRateMatchesConfig) {
  DeviceConfig config;
  config.activity_error_prob = 0.2;
  Device device = stationary_device(home_, true, config);
  int wrong = 0;
  const int rounds = 1000;
  for (int i = 0; i < rounds; ++i)
    if (device.read_accel(i * 60).activity != mobility::Activity::Still) ++wrong;
  EXPECT_NEAR(wrong / static_cast<double>(rounds), 0.2, 0.04);
}

TEST_F(DeviceFixture, BluetoothRangeGate) {
  DeviceConfig config;
  config.bluetooth_miss_prob = 0.0;
  Device device = stationary_device(home_, true, config);
  const std::vector<std::pair<world::DeviceId, geo::LatLng>> peers{
      {1, geo::destination(home_, 0, 5)},
      {2, geo::destination(home_, 90, 11)},
      {3, geo::destination(home_, 180, 50)},
      {4, geo::destination(home_, 270, 500)},
  };
  const BluetoothScan scan = device.scan_bluetooth(0, peers);
  const std::set<world::DeviceId> nearby(scan.nearby.begin(), scan.nearby.end());
  EXPECT_TRUE(nearby.count(1));
  EXPECT_TRUE(nearby.count(2));
  EXPECT_FALSE(nearby.count(3));
  EXPECT_FALSE(nearby.count(4));
}

TEST_F(DeviceFixture, BluetoothMissesSometimes) {
  DeviceConfig config;
  config.bluetooth_miss_prob = 0.5;
  Device device = stationary_device(home_, true, config);
  const std::vector<std::pair<world::DeviceId, geo::LatLng>> peers{
      {1, geo::destination(home_, 0, 5)}};
  int seen = 0;
  const int rounds = 400;
  for (int i = 0; i < rounds; ++i)
    seen += static_cast<int>(device.scan_bluetooth(i * 60, peers).nearby.size());
  EXPECT_NEAR(seen / static_cast<double>(rounds), 0.5, 0.1);
}

TEST_F(DeviceFixture, OracleFromTraceWiresThrough) {
  Rng rng(4);
  auto participants = mobility::make_participants(*world_, 1, rng);
  mobility::ScheduleConfig schedule;
  schedule.days = 1;
  const mobility::Trace trace =
      mobility::build_trace(*world_, participants[0], schedule, rng);
  const PositionOracle oracle = oracle_from_trace(trace);
  const SimTime night = hours(3);
  EXPECT_EQ(oracle.position(night).lat, trace.position_at(night).lat);
  EXPECT_EQ(oracle.activity(night), mobility::Activity::Still);
  EXPECT_TRUE(oracle.indoors(night));
}

}  // namespace
}  // namespace pmware::sensing
