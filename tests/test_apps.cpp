// Connected-application tests: PlaceADs, TodoReminder, LifeLog against a
// scripted intent stream (no full simulation needed).
#include "apps/lifelog.hpp"
#include "apps/placeads.hpp"
#include "apps/todo_reminder.hpp"

#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware::apps {
namespace {

using core::Granularity;
using core::Intent;
using core::PlaceUid;

TEST(AdInventory, DefaultCatalogueCoversLeisureCategories) {
  const AdInventory inv = AdInventory::default_catalogue();
  EXPECT_GE(inv.all().size(), 8u);
  for (const char* category : {"cafe", "restaurant", "mall", "market"})
    EXPECT_FALSE(inv.by_category(category).empty()) << category;
  EXPECT_TRUE(inv.by_category("spaceport").empty());
}

TEST(PlaceAds, TargetCategoriesKeyOffLabels) {
  EXPECT_FALSE(PlaceAds::target_categories("home").empty());
  EXPECT_FALSE(PlaceAds::target_categories("workplace").empty());
  EXPECT_TRUE(PlaceAds::target_categories("").empty());
  EXPECT_TRUE(PlaceAds::target_categories("unknown-label").empty());
}

/// Full-stack app tests need a PMS; build a tiny one (1 participant, 2 days).
struct AppStackHarness {
  AppStackHarness() {
    Rng world_rng(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng(5);
    mobility::ScheduleConfig sc;
    sc.days = 2;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));
    cloud.emplace(cloud::CloudConfig{},
                  cloud::GeoLocationService(world->cell_location_db()), Rng(3));
    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        Rng(7));
    auto client = std::make_unique<net::RestClient>(
        &cloud->router(), net::NetworkConditions{0.0, 1}, Rng(11));
    pms.emplace(std::move(device), core::PmsConfig{}, std::move(client),
                Rng(13));
    pms->register_with_cloud(0);
  }

  /// Runs a day and tags every place by its dominant truth category so that
  /// label-keyed apps have something to chew on.
  void run_day_and_tag(int day) {
    pms->run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
    const auto& log = pms->inference().visit_log();
    for (const auto& visit : log) {
      const core::PlaceRecord* record = pms->places().get(visit.uid);
      if (record == nullptr || !record->label.empty()) continue;
      const SimTime mid = (visit.window.begin + visit.window.end) / 2;
      if (const auto truth = trace->place_at(mid))
        pms->tag_place(visit.uid, world::to_string(world->place(*truth).category),
                       start_of_day(day + 1));
    }
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  std::optional<cloud::CloudInstance> cloud;
  std::optional<core::PmwareMobileService> pms;
};

TEST(PlaceAdsStack, ImpressionsFollowPlaceEnters) {
  AppStackHarness h;
  PlaceAds ads(AdInventory::default_catalogue(), Rng(5));
  ads.connect(*h.pms);
  h.run_day_and_tag(0);
  h.run_day_and_tag(1);
  h.pms->shutdown(days(2));
  EXPECT_GE(ads.impressions().size(), 2u);
  EXPECT_EQ(ads.likes() + ads.dislikes(), ads.impressions().size());
}

TEST(PlaceAdsStack, ThrottlePreventsRapidRepeats) {
  AppStackHarness h;
  PlaceAds ads(AdInventory::default_catalogue(), Rng(5));
  ads.connect(*h.pms);
  h.run_day_and_tag(0);
  // Count impressions per (place, 6h bucket): the throttle allows 1.
  std::map<std::pair<PlaceUid, SimTime>, int> buckets;
  for (const auto& imp : ads.impressions())
    ++buckets[{imp.place, imp.t / hours(6)}];
  for (const auto& [key, count] : buckets) EXPECT_EQ(count, 1);
}

TEST(PlaceAdsStack, TargetedImpressionsAppearOnceLabelled) {
  AppStackHarness h;
  PlaceAds ads(AdInventory::default_catalogue(), Rng(5));
  ads.connect(*h.pms);
  h.run_day_and_tag(0);  // labels appear at the end of day 0
  h.run_day_and_tag(1);
  h.pms->shutdown(days(2));
  bool any_targeted = false;
  for (const auto& imp : ads.impressions())
    if (imp.targeted) any_targeted = true;
  EXPECT_TRUE(any_targeted);
}

TEST(PlaceAdsStack, CustomJudgeDrivesRatio) {
  AppStackHarness h;
  PlaceAds ads(AdInventory::default_catalogue(), Rng(5));
  ads.set_feedback_judge([](const AdImpression&) { return false; });
  ads.connect(*h.pms);
  h.run_day_and_tag(0);
  h.pms->shutdown(days(1));
  EXPECT_EQ(ads.likes(), 0u);
  EXPECT_EQ(ads.ratio_of_twenty().first, 0.0);
  if (!ads.impressions().empty()) {
    EXPECT_DOUBLE_EQ(ads.ratio_of_twenty().second, 20.0);
  }
}

TEST(TodoReminderStack, FiresOnLabelledWorkplaceWithinWindow) {
  AppStackHarness h;
  TodoReminder todo("workplace", DailyWindow{hours(9), hours(18)});
  todo.add_todo({"standup notes", true});
  todo.add_todo({"timesheet", false});
  todo.connect(*h.pms);
  h.run_day_and_tag(0);  // workplace tagged at end of day 0
  h.run_day_and_tag(1);
  h.pms->shutdown(days(2));
  // Day 1 at least: enter alert at the tagged workplace.
  EXPECT_GE(todo.enter_alerts(), 1u);
  for (const auto& fired : todo.fired()) {
    const SimDuration tod = time_of_day(fired.t);
    EXPECT_GE(tod, hours(9));
    EXPECT_LT(tod, hours(18));
  }
}

TEST(TodoReminderStack, IgnoresOtherLabels) {
  AppStackHarness h;
  TodoReminder todo("gym");  // participant 0 may not even have a gym
  todo.add_todo({"bring towel", true});
  todo.connect(*h.pms);
  h.run_day_and_tag(0);
  h.pms->shutdown(days(1));
  for (const auto& fired : todo.fired()) EXPECT_EQ(fired.text, "bring towel");
}

TEST(LifeLogStack, TracksUsageAndTagging) {
  AppStackHarness h;
  LifeLog lifelog;
  lifelog.connect(*h.pms);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));

  EXPECT_GE(lifelog.discovered_places(), 2u);
  EXPECT_FALSE(lifelog.untagged_places().empty());
  const PlaceUid uid = lifelog.untagged_places().front();
  EXPECT_TRUE(lifelog.tag(uid, "home", days(2)));
  EXPECT_EQ(h.pms->places().get(uid)->label, "home");
  // One fewer untagged place now.
  for (PlaceUid remaining : lifelog.untagged_places())
    EXPECT_NE(remaining, uid);

  // Usage stats accumulated from exit events.
  SimDuration total_stay = 0;
  for (const auto& [place, usage] : lifelog.usage())
    total_stay += usage.total_stay;
  EXPECT_GT(total_stay, hours(10));

  const std::string rendered = lifelog.render_place_list();
  EXPECT_NE(rendered.find("home"), std::string::npos);
  EXPECT_NE(rendered.find("(untagged)"), std::string::npos);
}

TEST(LifeLogStack, DisconnectedLifeLogIsInert) {
  LifeLog lifelog;
  EXPECT_EQ(lifelog.discovered_places(), 0u);
  EXPECT_TRUE(lifelog.untagged_places().empty());
  EXPECT_FALSE(lifelog.tag(1, "x", 0));
  EXPECT_TRUE(lifelog.render_place_list().empty());
}

}  // namespace
}  // namespace pmware::apps
