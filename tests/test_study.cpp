// Deployment-study harness tests (small configurations for speed; the full
// 16x14 configuration runs in bench_deployment_study).
#include "study/deployment.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pmware::study {
namespace {

using algorithms::DiscoveredOutcome;

StudyConfig small_config() {
  StudyConfig config;
  config.participants = 4;
  config.days = 4;
  return config;
}

TEST(Study, ProducesPlausibleAggregates) {
  DeploymentStudy study(small_config());
  const StudyResult result = study.run();
  ASSERT_EQ(result.participants.size(), 4u);
  EXPECT_GE(result.total_discovered(), 8u);
  EXPECT_GT(result.total_tagged(), 0u);
  EXPECT_LE(result.total_tagged(), result.total_discovered());
  EXPECT_LE(result.total_evaluable(), result.total_tagged());
  const std::size_t classified = result.total(DiscoveredOutcome::Correct) +
                                 result.total(DiscoveredOutcome::Merged) +
                                 result.total(DiscoveredOutcome::Divided) +
                                 result.total(DiscoveredOutcome::Spurious);
  EXPECT_EQ(classified, result.total_evaluable());
}

TEST(Study, CorrectDominates) {
  DeploymentStudy study(small_config());
  const StudyResult result = study.run();
  EXPECT_GT(result.fraction(DiscoveredOutcome::Correct), 0.5);
}

TEST(Study, PlaceAdsProduceFeedbackSkewedTowardLikes) {
  DeploymentStudy study(small_config());
  const StudyResult result = study.run();
  EXPECT_GT(result.total_likes() + result.total_dislikes(), 10u);
  EXPECT_GT(result.total_likes(), result.total_dislikes());
}

TEST(Study, PlaceMapHasLocatedEntries) {
  DeploymentStudy study(small_config());
  const StudyResult result = study.run();
  EXPECT_GE(result.place_map.size(), result.total_discovered());
  std::size_t located = 0;
  for (const auto& entry : result.place_map)
    if (entry.location) ++located;
  // The cloud geo-location service resolves cell signatures; the large
  // majority of places get an approximate position (Figure 5b).
  EXPECT_GT(static_cast<double>(located) /
                static_cast<double>(result.place_map.size()),
            0.7);
}

TEST(Study, EnergyBudgetIsTriggeredSensingShaped) {
  DeploymentStudy study(small_config());
  const StudyResult result = study.run();
  for (const auto& p : result.participants) {
    // Far better than always-on GPS (~31 h), well past 4 days.
    EXPECT_GT(p.implied_battery_hours, 100.0);
    EXPECT_GT(p.sensing_joules, 0.0);
  }
}

TEST(Study, DeterministicForSameSeed) {
  StudyConfig config = small_config();
  config.seed = 777;
  DeploymentStudy a(config);
  DeploymentStudy b(config);
  const StudyResult ra = a.run();
  const StudyResult rb = b.run();
  EXPECT_EQ(ra.total_discovered(), rb.total_discovered());
  EXPECT_EQ(ra.total_tagged(), rb.total_tagged());
  EXPECT_EQ(ra.total_likes(), rb.total_likes());
  EXPECT_EQ(ra.total(DiscoveredOutcome::Correct),
            rb.total(DiscoveredOutcome::Correct));
}

/// Byte-identical comparison of two study runs: every per-participant
/// field, the place map, and the cloud storage's post-join fingerprint.
/// `what` names the run under test in failure output. Pass
/// `network_counters = false` when one run saw injected faults: retries,
/// offload fallbacks, and re-sent profiles legitimately change the traffic
/// counters, while science results and final cloud bytes must still match.
void expect_identical_runs(const StudyResult& rs, const StudyResult& rp,
                           const std::string& what,
                           bool network_counters = true) {
  SCOPED_TRACE(what);
  ASSERT_EQ(rs.participants.size(), rp.participants.size());
  for (std::size_t i = 0; i < rs.participants.size(); ++i) {
    const ParticipantResult& a = rs.participants[i];
    const ParticipantResult& b = rp.participants[i];
    EXPECT_EQ(a.profile.id, b.profile.id);
    EXPECT_EQ(a.places_discovered, b.places_discovered);
    EXPECT_EQ(a.places_tagged, b.places_tagged);
    EXPECT_EQ(a.places_evaluable, b.places_evaluable);
    EXPECT_EQ(a.eval.outcomes, b.eval.outcomes);
    EXPECT_EQ(a.ad_likes, b.ad_likes);
    EXPECT_EQ(a.ad_dislikes, b.ad_dislikes);
    EXPECT_EQ(a.sensing_joules, b.sensing_joules);  // bitwise, not approx
    EXPECT_EQ(a.implied_battery_hours, b.implied_battery_hours);
    EXPECT_EQ(a.pms_stats.place_events_delivered,
              b.pms_stats.place_events_delivered);
    EXPECT_EQ(a.pms_stats.route_events_delivered,
              b.pms_stats.route_events_delivered);
    EXPECT_EQ(a.pms_stats.encounters_delivered,
              b.pms_stats.encounters_delivered);
    if (network_counters) {
      EXPECT_EQ(a.pms_stats.profile_syncs, b.pms_stats.profile_syncs);
      EXPECT_EQ(a.pms_stats.token_refreshes, b.pms_stats.token_refreshes);
      EXPECT_EQ(a.pms_stats.gca_offloads, b.pms_stats.gca_offloads);
      EXPECT_EQ(a.pms_stats.gca_local_runs, b.pms_stats.gca_local_runs);
    }
  }
  ASSERT_EQ(rs.place_map.size(), rp.place_map.size());
  for (std::size_t i = 0; i < rs.place_map.size(); ++i) {
    EXPECT_EQ(rs.place_map[i].participant, rp.place_map[i].participant);
    EXPECT_EQ(rs.place_map[i].uid, rp.place_map[i].uid);
    EXPECT_EQ(rs.place_map[i].label, rp.place_map[i].label);
    EXPECT_EQ(rs.place_map[i].location, rp.place_map[i].location);
  }
  // Cloud-side truth: same places, profiles, routes, and encounters ended
  // up stored, independent of which worker/shard got them there.
  EXPECT_EQ(rs.storage_stats, rp.storage_stats);
  EXPECT_EQ(rs.storage_digest, rp.storage_digest);
}

// The tentpole determinism guarantee: a parallel run is byte-identical to a
// sequential one. Everything shared is either immutable (world), locked per
// user (cloud storage shards), or forked before workers start
// (per-participant RNGs).
TEST(Study, ThreadedRunMatchesSequentialExactly) {
  StudyConfig sequential_config = small_config();
  sequential_config.threads = 1;
  StudyConfig parallel_config = small_config();
  parallel_config.threads = 4;
  const StudyResult rs = DeploymentStudy(sequential_config).run();
  const StudyResult rp = DeploymentStudy(parallel_config).run();
  expect_identical_runs(rs, rp, "threads=4 vs threads=1");
}

// Shard-equivalence over a full 14-day study: every (shards, threads)
// configuration must reproduce the 1-shard sequential run byte-for-byte —
// places, routes, profiles, and the storage content digest. shards=1 is
// the old fully-serialized cloud, so this pins the sharded backend to the
// pre-sharding behavior.
TEST(Study, ShardCountNeverChangesResults) {
  StudyConfig base = small_config();
  base.participants = 3;  // keeps six 14-day runs affordable
  base.days = 14;
  base.shards = 1;
  base.threads = 1;
  const StudyResult baseline = DeploymentStudy(base).run();
  EXPECT_GT(baseline.storage_stats.users, 0u);
  EXPECT_GT(baseline.storage_stats.profiles, 0u);
  EXPECT_NE(baseline.storage_digest, 0u);

  for (const int shards : {1, 4, 16}) {
    for (const int threads : {1, 8}) {
      if (shards == 1 && threads == 1) continue;  // the baseline itself
      StudyConfig config = base;
      config.shards = shards;
      config.threads = threads;
      const StudyResult run = DeploymentStudy(config).run();
      expect_identical_runs(baseline, run,
                            "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads) +
                                " vs shards=1 threads=1");
    }
  }
}

// The robustness tentpole: a 14-day study that loses its cloud entirely for
// days 5..8, or suffers per-route error rates plus added latency for most
// of the study, must end byte-identical to the undisturbed run — same
// science table, same place map, same cloud content digest — once the
// store-and-forward outbox drains. Zero records lost.
TEST(Study, OutageRecoveryMatchesNoFaultRun) {
  StudyConfig base = small_config();
  base.participants = 3;
  base.days = 14;
  const StudyResult baseline = DeploymentStudy(base).run();
  EXPECT_NE(baseline.storage_digest, 0u);

  const struct {
    const char* name;
    const char* plan;
  } kScenarios[] = {
      {"full outage days 5..8", "outage=5d..8d"},
      {"per-route errors + latency",
       "route=/api/users,error=0.3,from=2d,to=11d;latency=1,from=2d,to=11d"},
  };
  for (const auto& scenario : kScenarios) {
    StudyConfig faulted = base;
    faulted.fault_plan = net::FaultPlan::parse(scenario.plan);
    const StudyResult run = DeploymentStudy(faulted).run();
    expect_identical_runs(baseline, run,
                          std::string(scenario.name) + " vs no faults",
                          /*network_counters=*/false);
    std::size_t sync_failures = 0, pending = 0;
    for (const ParticipantResult& p : run.participants) {
      sync_failures += p.pms_stats.sync_failures;
      pending += p.pms_stats.outbox_pending;
    }
    SCOPED_TRACE(scenario.name);
    EXPECT_GT(sync_failures, 0u);  // the plan actually bit
    EXPECT_EQ(pending, 0u);        // ...and everything drained
  }
}

// Oversubscription (more workers than participants) must not change
// anything either — the pool clamps to the participant count.
TEST(Study, ThreadCountBeyondParticipantsIsClamped) {
  StudyConfig config = small_config();
  config.days = 2;
  config.threads = 64;
  const StudyResult result = DeploymentStudy(config).run();
  EXPECT_EQ(result.participants.size(), 4u);
  EXPECT_GT(result.total_discovered(), 0u);
}

TEST(Study, DifferentSeedsDiffer) {
  StudyConfig config_a = small_config();
  config_a.seed = 1;
  StudyConfig config_b = small_config();
  config_b.seed = 2;
  const StudyResult ra = DeploymentStudy(config_a).run();
  const StudyResult rb = DeploymentStudy(config_b).run();
  const bool differ = ra.total_discovered() != rb.total_discovered() ||
                      ra.total_likes() != rb.total_likes() ||
                      ra.total_tagged() != rb.total_tagged();
  EXPECT_TRUE(differ);
}

TEST(Study, GsmOnlyAblationDegradesAccuracy) {
  StudyConfig hybrid = small_config();
  hybrid.days = 5;
  StudyConfig gsm_only = hybrid;
  gsm_only.use_wifi = false;
  const StudyResult rh = DeploymentStudy(hybrid).run();
  const StudyResult rg = DeploymentStudy(gsm_only).run();
  // GSM-only merges nearby places: merged fraction must not shrink, and
  // correct fraction must not grow.
  EXPECT_GE(rg.fraction(DiscoveredOutcome::Merged) + 1e-9,
            rh.fraction(DiscoveredOutcome::Merged));
  EXPECT_LE(rg.fraction(DiscoveredOutcome::Correct),
            rh.fraction(DiscoveredOutcome::Correct) + 0.05);
}

TEST(Study, NoPlaceAdsMeansNoImpressions) {
  StudyConfig config = small_config();
  config.run_placeads = false;
  const StudyResult result = DeploymentStudy(config).run();
  EXPECT_EQ(result.total_likes() + result.total_dislikes(), 0u);
}

TEST(Study, SummaryMentionsKeyRows) {
  const StudyResult result = DeploymentStudy(small_config()).run();
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("places discovered"), std::string::npos);
  EXPECT_NE(summary.find("correct"), std::string::npos);
  EXPECT_NE(summary.find("merged"), std::string::npos);
  EXPECT_NE(summary.find("divided"), std::string::npos);
  EXPECT_NE(summary.find("like:dislike"), std::string::npos);
}

TEST(Study, SwissRegionRunsAndKeepsAccuracy) {
  StudyConfig config = small_config();
  config.world.region = world::RegionProfile::switzerland();
  const StudyResult result = DeploymentStudy(config).run();
  EXPECT_GT(result.fraction(DiscoveredOutcome::Correct), 0.5);
}

}  // namespace
}  // namespace pmware::study
