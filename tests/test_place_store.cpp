#include "core/place_store.hpp"

#include <gtest/gtest.h>

namespace pmware::core {
namespace {

using algorithms::CellSignature;
using algorithms::PlaceSignature;
using algorithms::WifiSignature;
using world::CellId;

CellId cell(std::uint32_t cid) {
  return CellId{404, 10, 1, cid, world::Radio::Gsm2G};
}

TEST(PlaceStore, InternCreatesThenReuses) {
  PlaceStore store;
  const PlaceSignature sig = WifiSignature{{1, 2, 3}};
  const auto [uid1, created1] = store.intern(sig, Granularity::Building);
  EXPECT_TRUE(created1);
  EXPECT_NE(uid1, kNoPlaceUid);
  const auto [uid2, created2] = store.intern(sig, Granularity::Building);
  EXPECT_FALSE(created2);
  EXPECT_EQ(uid1, uid2);
  EXPECT_EQ(store.size(), 1u);
}

TEST(PlaceStore, SimilarSignaturesReuse) {
  PlaceStore store;
  const auto [uid1, c1] =
      store.intern(WifiSignature{{1, 2, 3}}, Granularity::Building);
  // 3/4 Tanimoto with the stored signature — same place.
  const auto [uid2, c2] =
      store.intern(WifiSignature{{1, 2, 3, 4}}, Granularity::Building);
  EXPECT_EQ(uid1, uid2);
  EXPECT_FALSE(c2);
  (void)c1;
}

TEST(PlaceStore, InternRefreshesSignature) {
  PlaceStore store;
  const auto [uid, created] =
      store.intern(WifiSignature{{1, 2, 3}}, Granularity::Building);
  store.intern(WifiSignature{{1, 2, 3, 4}}, Granularity::Building);
  const PlaceRecord* record = store.get(uid);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(std::get<WifiSignature>(record->signature).aps.size(), 4u);
  (void)created;
}

TEST(PlaceStore, DistinctSignaturesGetDistinctUids) {
  PlaceStore store;
  const auto [uid1, c1] =
      store.intern(WifiSignature{{1, 2}}, Granularity::Building);
  const auto [uid2, c2] =
      store.intern(WifiSignature{{50, 51}}, Granularity::Building);
  EXPECT_NE(uid1, uid2);
  EXPECT_TRUE(c2);
  (void)c1;
}

TEST(PlaceStore, DifferentKindsNeverCollide) {
  PlaceStore store;
  const auto [wifi_uid, cw] =
      store.intern(WifiSignature{{1, 2}}, Granularity::Building);
  const auto [cells_uid, cc] = store.intern(
      CellSignature{{cell(1), cell(2)}}, Granularity::Building);
  EXPECT_NE(wifi_uid, cells_uid);
  EXPECT_EQ(store.size(), 2u);
  (void)cw;
  (void)cc;
}

TEST(PlaceStore, FindWithoutCreating) {
  PlaceStore store;
  EXPECT_FALSE(store.find(WifiSignature{{9}}).has_value());
  const auto [uid, created] =
      store.intern(WifiSignature{{9}}, Granularity::Building);
  EXPECT_EQ(store.find(WifiSignature{{9}}), uid);
  (void)created;
}

TEST(PlaceStore, GetUnknownIsNull) {
  PlaceStore store;
  EXPECT_EQ(store.get(77), nullptr);
  EXPECT_EQ(store.get_mutable(77), nullptr);
}

TEST(PlaceStore, RecordVisitAccumulates) {
  PlaceStore store;
  const auto [uid, created] =
      store.intern(WifiSignature{{1}}, Granularity::Building);
  store.record_visit(uid, hours(2));
  store.record_visit(uid, hours(3));
  const PlaceRecord* record = store.get(uid);
  EXPECT_EQ(record->visit_count, 2u);
  EXPECT_EQ(record->total_dwell, hours(5));
  // Unknown uid is a no-op, not a crash.
  store.record_visit(9999, hours(1));
  (void)created;
}

TEST(PlaceStore, Labels) {
  PlaceStore store;
  const auto [uid, created] =
      store.intern(WifiSignature{{1}}, Granularity::Building);
  EXPECT_TRUE(store.set_label(uid, "home"));
  EXPECT_EQ(store.get(uid)->label, "home");
  EXPECT_FALSE(store.set_label(777, "nope"));
  const auto homes = store.with_label("home");
  ASSERT_EQ(homes.size(), 1u);
  EXPECT_EQ(homes[0], uid);
  EXPECT_TRUE(store.with_label("gym").empty());
  (void)created;
}

TEST(PlaceStore, UidsAreStableAndIncreasing) {
  PlaceStore store;
  PlaceUid prev = 0;
  for (int i = 0; i < 10; ++i) {
    const auto [uid, created] = store.intern(
        WifiSignature{{static_cast<world::Bssid>(100 + i)}},
        Granularity::Building);
    EXPECT_TRUE(created);
    EXPECT_GT(uid, prev);
    prev = uid;
  }
  EXPECT_EQ(store.size(), 10u);
}

}  // namespace
}  // namespace pmware::core
