#include "viz/map_render.hpp"

#include <gtest/gtest.h>

namespace pmware::viz {
namespace {

const MapExtent kExtent{{28.6139, 77.2090}, 6000};

geo::LatLng at(double east_m, double north_m) {
  return geo::from_enu(kExtent.origin, {east_m, north_m});
}

TEST(AsciiMap, EmptyMapIsAllDots) {
  const std::string map = render_ascii_map(kExtent, {}, 10, 4);
  EXPECT_EQ(map, "..........\n..........\n..........\n..........\n");
}

TEST(AsciiMap, MarkerLandsInExpectedCell) {
  // A marker in the exact south-west corner: bottom-left cell.
  const std::string map =
      render_ascii_map(kExtent, {{at(1, 1), "", 'o'}}, 10, 4);
  const std::vector<std::string> rows = {map.substr(0, 10), map.substr(11, 10),
                                         map.substr(22, 10), map.substr(33, 10)};
  EXPECT_EQ(rows[3][0], 'o');
  // North-east corner: top-right cell.
  const std::string map2 =
      render_ascii_map(kExtent, {{at(5999, 5999), "", 'x'}}, 10, 4);
  EXPECT_EQ(map2[9], 'x');
}

TEST(AsciiMap, CollidingMarkersBecomeHash) {
  // Both points sit comfortably inside the same grid cell (cells are
  // 600 m x 1500 m for a 10x4 grid over 6 km).
  const std::vector<MapMarker> markers{{at(3100, 3100), "", 'a'},
                                       {at(3140, 3130), "", 'b'}};
  const std::string map = render_ascii_map(kExtent, markers, 10, 4);
  EXPECT_NE(map.find('#'), std::string::npos);
  EXPECT_EQ(map.find('a'), std::string::npos);
}

TEST(AsciiMap, OutOfExtentMarkersDropped) {
  const std::vector<MapMarker> markers{{at(-500, 3000), "", 'o'},
                                       {at(3000, 9000), "", 'o'}};
  const std::string map = render_ascii_map(kExtent, markers, 10, 4);
  EXPECT_EQ(map.find('o'), std::string::npos);
}

TEST(AsciiMap, RejectsTinyGrid) {
  EXPECT_THROW(render_ascii_map(kExtent, {}, 1, 10), std::invalid_argument);
  EXPECT_THROW(render_ascii_map(kExtent, {}, 10, 1), std::invalid_argument);
}

TEST(SvgMap, ContainsMarkersAndTooltips) {
  std::vector<MapMarker> markers{{at(3000, 3000), "Home & <hq>", 'o', "#ff0000", 5}};
  const std::string svg = render_svg_map(kExtent, markers);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);
  // Label is XML-escaped.
  EXPECT_NE(svg.find("Home &amp; &lt;hq&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("<hq>"), std::string::npos);
}

TEST(SvgMap, RendersPolylines) {
  SvgPolyline line;
  line.points = {at(1000, 1000), at(2000, 1000), at(2000, 2000)};
  const std::string svg = render_svg_map(kExtent, {}, {line});
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgMap, SkipsOutOfExtentContent) {
  std::vector<MapMarker> markers{{at(20000, 20000), "far", 'o'}};
  const std::string svg = render_svg_map(kExtent, markers);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
}

TEST(Timeline, RendersBlocksAndLegend) {
  std::vector<TimelineEntry> entries{
      {TimeWindow{start_of_day(2), start_of_day(2) + hours(9)}, "home", 'H'},
      {TimeWindow{start_of_day(2) + hours(10), start_of_day(2) + hours(18)},
       "work", 'W'},
  };
  const std::string timeline = render_day_timeline(2, entries);
  EXPECT_NE(timeline.find("day 2"), std::string::npos);
  EXPECT_NE(timeline.find('H'), std::string::npos);
  EXPECT_NE(timeline.find('W'), std::string::npos);
  EXPECT_NE(timeline.find("H = home"), std::string::npos);
  EXPECT_NE(timeline.find("W = work"), std::string::npos);
  // Gap between 9h and 10h stays unfilled.
  EXPECT_NE(timeline.find('.'), std::string::npos);
}

TEST(Timeline, ClipsToDay) {
  std::vector<TimelineEntry> entries{
      {TimeWindow{start_of_day(1) + hours(20), start_of_day(2) + hours(8)},
       "overnight", 'N'}};
  const std::string day1 = render_day_timeline(1, entries);
  const std::string day2 = render_day_timeline(2, entries);
  const std::string day3 = render_day_timeline(3, entries);
  EXPECT_NE(day1.find('N'), std::string::npos);
  EXPECT_NE(day2.find('N'), std::string::npos);
  EXPECT_EQ(day3.find('N'), std::string::npos);
}

TEST(Timeline, BucketControlsWidth) {
  const std::string hourly = render_day_timeline(0, {}, hours(1));
  // Bar line is "  " + 24 chars + "\n".
  const std::size_t bar_start = hourly.find('\n', hourly.find('\n') + 1) + 1;
  const std::size_t bar_end = hourly.find('\n', bar_start);
  EXPECT_EQ(bar_end - bar_start, 2u + 24u);
  EXPECT_THROW(render_day_timeline(0, {}, 0), std::invalid_argument);
}

TEST(Timeline, FullDayEntryFillsEverything) {
  std::vector<TimelineEntry> entries{
      {TimeWindow{start_of_day(0), start_of_day(1)}, "home", 'H'}};
  const std::string timeline = render_day_timeline(0, entries, hours(1));
  std::size_t count = 0;
  for (char c : timeline)
    if (c == 'H') ++count;
  EXPECT_EQ(count, 24u + 1u);  // 24 buckets + the legend line
}

}  // namespace
}  // namespace pmware::viz
