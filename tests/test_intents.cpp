#include "core/intents.hpp"

#include <gtest/gtest.h>

namespace pmware::core {
namespace {

TEST(IntentBus, BroadcastReachesMatchingReceivers) {
  IntentBus bus;
  int enters = 0, exits = 0;
  bus.register_receiver({{actions::kPlaceEnter}},
                        [&enters](const Intent&) { ++enters; });
  bus.register_receiver({{actions::kPlaceExit}},
                        [&exits](const Intent&) { ++exits; });
  EXPECT_EQ(bus.broadcast(Intent{actions::kPlaceEnter}), 1u);
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 0);
}

TEST(IntentBus, MultiActionFilter) {
  IntentBus bus;
  int received = 0;
  IntentFilter filter;
  filter.actions = {actions::kPlaceEnter, actions::kPlaceExit};
  bus.register_receiver(filter, [&received](const Intent&) { ++received; });
  bus.broadcast(Intent{actions::kPlaceEnter});
  bus.broadcast(Intent{actions::kPlaceExit});
  bus.broadcast(Intent{actions::kNewPlace});
  EXPECT_EQ(received, 2);
}

TEST(IntentBus, ExtrasArriveIntact) {
  IntentBus bus;
  Json seen;
  bus.register_receiver({{actions::kPlaceEnter}},
                        [&seen](const Intent& intent) { seen = intent.extras; });
  Intent intent{actions::kPlaceEnter};
  intent.put("place_uid", Json(std::uint64_t{42}))
      .put("label", Json("home"));
  bus.broadcast(intent);
  EXPECT_EQ(seen.at("place_uid").as_int(), 42);
  EXPECT_EQ(seen.at("label").as_string(), "home");
}

TEST(IntentBus, DirectedSendIgnoresFilter) {
  IntentBus bus;
  int received = 0;
  const ReceiverId id = bus.register_receiver(
      {{actions::kPlaceEnter}}, [&received](const Intent&) { ++received; });
  EXPECT_TRUE(bus.send_to(id, Intent{actions::kRouteCompleted}));
  EXPECT_EQ(received, 1);
}

TEST(IntentBus, SendToUnknownReceiverFails) {
  IntentBus bus;
  EXPECT_FALSE(bus.send_to(999, Intent{actions::kPlaceEnter}));
}

TEST(IntentBus, UnregisterStopsDelivery) {
  IntentBus bus;
  int received = 0;
  const ReceiverId id = bus.register_receiver(
      {{actions::kPlaceEnter}}, [&received](const Intent&) { ++received; });
  bus.broadcast(Intent{actions::kPlaceEnter});
  bus.unregister(id);
  bus.broadcast(Intent{actions::kPlaceEnter});
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.receiver_count(), 0u);
}

TEST(IntentBus, HandlerMayUnregisterDuringBroadcast) {
  IntentBus bus;
  int a_count = 0, b_count = 0;
  ReceiverId b_id = 0;
  bus.register_receiver({{actions::kPlaceEnter}}, [&](const Intent&) {
    ++a_count;
    bus.unregister(b_id);  // remove the other receiver mid-broadcast
  });
  b_id = bus.register_receiver({{actions::kPlaceEnter}},
                               [&b_count](const Intent&) { ++b_count; });
  // Must not crash; b may or may not receive this one, never later ones.
  bus.broadcast(Intent{actions::kPlaceEnter});
  bus.broadcast(Intent{actions::kPlaceEnter});
  EXPECT_EQ(a_count, 2);
  EXPECT_LE(b_count, 1);
}

TEST(IntentBus, HandlerMayRegisterDuringBroadcast) {
  IntentBus bus;
  int late_count = 0;
  bus.register_receiver({{actions::kPlaceEnter}}, [&](const Intent&) {
    if (bus.receiver_count() == 1) {
      bus.register_receiver({{actions::kPlaceEnter}},
                            [&late_count](const Intent&) { ++late_count; });
    }
  });
  bus.broadcast(Intent{actions::kPlaceEnter});
  bus.broadcast(Intent{actions::kPlaceEnter});
  EXPECT_EQ(late_count, 1);  // receives only the second broadcast
}

TEST(IntentBus, BroadcastCountTracksAllBroadcasts) {
  IntentBus bus;
  bus.broadcast(Intent{actions::kPlaceEnter});
  bus.broadcast(Intent{actions::kPlaceExit});
  EXPECT_EQ(bus.broadcast_count(), 2u);
}

TEST(IntentFilter, MatchSemantics) {
  IntentFilter filter;
  filter.actions = {actions::kEncounter};
  EXPECT_TRUE(filter.matches(Intent{actions::kEncounter}));
  EXPECT_FALSE(filter.matches(Intent{actions::kPlaceEnter}));
  const IntentFilter empty;
  EXPECT_FALSE(empty.matches(Intent{actions::kPlaceEnter}));
}

}  // namespace
}  // namespace pmware::core
