// Concurrency tests: hammer the telemetry registry, the tracer, and the
// sharded cloud from many threads, and run the deployment study on a worker
// pool. These run under ThreadSanitizer in ci.sh (PMWARE_SANITIZE=thread,
// ctest -L Sharding); the assertions below catch lost updates, the
// sanitizer catches the races assertions cannot see.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"
#include "core/codec.hpp"
#include "study/deployment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::telemetry {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 2000;

/// Start gate so all workers enter the hot section together instead of
/// running mostly sequentially on a loaded machine.
class StartGate {
 public:
  void wait() {
    ready_.fetch_add(1);
    while (!go_.load()) std::this_thread::yield();
  }
  void open(std::size_t expected) {
    while (ready_.load() < expected) std::this_thread::yield();
    go_.store(true);
  }

 private:
  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> go_{false};
};

TEST(TelemetryConcurrency, RegistryCountsExactlyUnderHammering) {
  MetricsRegistry reg;
  StartGate gate;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &gate, t] {
      gate.wait();
      // Every thread hits one shared series, one per-thread series, a
      // shared gauge, and a shared histogram — mixing contended and
      // uncontended paths plus first-use series creation.
      const std::string mine = "t" + std::to_string(t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        reg.counter("hammer_shared_total").inc();
        reg.counter("hammer_per_thread_total", {{"thread", mine}}).inc();
        reg.gauge("hammer_gauge").add(1.0);
        reg.histogram("hammer_hist", {}, 0.0, 100.0, 10)
            .observe(static_cast<double>(i % 100));
        if (i % 64 == 0) {
          // Exercise reader paths concurrently with writers.
          (void)reg.counter_value("hammer_shared_total");
          (void)reg.family_total("hammer_per_thread_total");
        }
      }
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();

  const std::uint64_t expected = kThreads * kOpsPerThread;
  EXPECT_EQ(reg.counter_value("hammer_shared_total"), expected);
  EXPECT_EQ(reg.family_total("hammer_per_thread_total"), expected);
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter_value("hammer_per_thread_total",
                                {{"thread", "t" + std::to_string(t)}}),
              kOpsPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("hammer_gauge").value(),
                   static_cast<double>(expected));
  const HistogramMetric::Snapshot h = reg.histogram("hammer_hist", {}, 0.0,
                                                    100.0, 10)
                                          .snapshot();
  EXPECT_EQ(h.stats.count(), expected);
}

TEST(TelemetryConcurrency, ExportersStayCoherentWhileWritersRun) {
  MetricsRegistry reg;
  // Register the families up front so every render can assert on them;
  // the writers still churn fresh *series* into both families below.
  reg.counter("churn_total", {{"series", "seed"}}).inc();
  reg.histogram("churn_hist", {{"w", "seed"}}, 0.0, 50.0, 5).observe(1.0);
  std::atomic<bool> stop{false};
  StartGate gate;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &gate, &stop, t] {
      gate.wait();
      std::size_t i = 0;
      while (!stop.load()) {
        // Keep registering fresh series so exporters race against map
        // growth, not just cell updates.
        reg.counter("churn_total",
                    {{"series", "s" + std::to_string((t * 131 + i) % 97)}})
            .inc();
        reg.histogram("churn_hist", {{"w", std::to_string(t)}}, 0.0, 50.0, 5)
            .observe(static_cast<double>(i % 50));
        ++i;
      }
    });
  }
  gate.open(4);
  // Export repeatedly while the writers churn; the exporters lock the
  // registry, so each render must parse/shape coherently.
  for (int round = 0; round < 50; ++round) {
    const std::string text = to_prometheus(reg);
    EXPECT_NE(text.find("# TYPE churn_total counter"), std::string::npos);
    const Json json = to_json(reg);
    ASSERT_TRUE(json.contains("metrics"));
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(TelemetryConcurrency, TracerNestsSpansPerThread) {
  Tracer trc(1u << 16);
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trc, &gate, t] {
      gate.wait();
      const std::string name = "worker" + std::to_string(t);
      for (std::size_t i = 0; i < 200; ++i) {
        Span outer(trc, name + ".outer", static_cast<SimTime>(i));
        {
          Span inner(trc, name + ".inner", static_cast<SimTime>(i));
          inner.finish(static_cast<SimTime>(i + 1));
        }
        (void)trc.open_depth();  // reader racing the sink
        outer.finish(static_cast<SimTime>(i + 2));
      }
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();

  const std::vector<SpanRecord> spans = trc.snapshot();
  ASSERT_EQ(spans.size(), kThreads * 200 * 2);
  EXPECT_EQ(trc.dropped(), 0u);
  EXPECT_EQ(trc.open_depth(), 0u);
  for (const SpanRecord& s : spans) {
    EXPECT_TRUE(s.finished);
    if (s.depth == 0) {
      EXPECT_EQ(s.parent, SpanRecord::kNoParent);
      continue;
    }
    // Nesting never crosses threads: a child's parent is the same
    // worker's outer span, and parents precede children in the record
    // vector.
    ASSERT_LT(s.parent, spans.size());
    const SpanRecord& p = spans[s.parent];
    EXPECT_LT(s.parent, s.id);
    EXPECT_EQ(s.depth, p.depth + 1);
    EXPECT_EQ(s.name.substr(0, s.name.find('.')),
              p.name.substr(0, p.name.find('.')));
  }
}

TEST(TelemetryConcurrency, LoggerAcceptsWritesFromAllThreads) {
  // The structured logger is the one telemetry sink every worker of the
  // parallel study hits on warnings; hammer the ring, the counters, and the
  // concurrent reader paths. Echo is off so tsan runs stay quiet.
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Debug);
  Logger log(/*capacity=*/128);
  log.set_echo(false);
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, &gate, t] {
      gate.wait();
      const std::string who = "w" + std::to_string(t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        log.write(i % 2 ? LogLevel::Info : LogLevel::Warn, who,
                  static_cast<SimTime>(i), who + " op " + std::to_string(i));
        if (i % 64 == 0) (void)log.recent();  // reader racing the ring
      }
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();

  EXPECT_EQ(log.total(), kThreads * kOpsPerThread);
  const std::vector<LogRecord> recent = log.recent();
  ASSERT_EQ(recent.size(), 128u);
  for (const LogRecord& r : recent) {
    EXPECT_FALSE(r.message.empty());
    EXPECT_EQ(r.message.substr(0, r.message.find(' ')), r.component);
  }
  set_log_level(prev);
}

TEST(TelemetryConcurrency, TracerCapDropsInsteadOfGrowing) {
  Tracer trc(64);
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trc, &gate] {
      gate.wait();
      for (std::size_t i = 0; i < 100; ++i)
        Span span(trc, "overflow", static_cast<SimTime>(i));
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();
  EXPECT_EQ(trc.snapshot().size(), 64u);
  EXPECT_EQ(trc.dropped(), kThreads * 100 - 64);
}

}  // namespace
}  // namespace pmware::telemetry

namespace pmware::cloud {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::Method;

HttpRequest make_request(Method method, std::string path,
                         const std::string& token, SimTime now) {
  HttpRequest req;
  req.method = method;
  req.path = std::move(path);
  req.headers[CloudInstance::kSimTimeHeader] = std::to_string(now);
  if (!token.empty()) req.headers["Authorization"] = "Bearer " + token;
  return req;
}

/// One worker's deterministic traffic: per-user writes (places, profiles,
/// routes, contacts) plus, when `with_reads`, cross-user reads (/healthz
/// takes the all-shards snapshot, analytics re-enters the storage from a
/// handler). Returns the number of non-2xx responses.
int drive_user(const net::Router& router, world::DeviceId user,
               const std::string& token, std::size_t index, bool with_reads) {
  int failures = 0;
  auto check = [&failures](const HttpResponse& res) {
    if (!res.ok()) ++failures;
  };
  const std::string base = "/api/users/" + std::to_string(user);
  for (int i = 0; i < 40; ++i) {
    const SimTime now = minutes(i);  // stays far inside the token TTL

    core::PlaceRecord record;
    record.uid = static_cast<core::PlaceUid>(1 + i % 5);
    record.label = "u" + std::to_string(index) + "-p" + std::to_string(i % 5);
    record.visit_count = static_cast<std::size_t>(i);
    HttpRequest put = make_request(
        Method::Put, base + "/places/" + std::to_string(record.uid), token, now);
    put.body = core::to_json(record);
    check(router.handle(put));

    core::MobilityProfile profile;
    profile.day = i % 7;
    profile.places.push_back({record.uid, start_of_day(i % 7) + hours(8),
                              start_of_day(i % 7) + hours(9 + i % 3)});
    HttpRequest prof = make_request(
        Method::Put, base + "/profiles/" + std::to_string(i % 7), token, now);
    prof.body = core::to_json(profile);
    check(router.handle(prof));

    HttpRequest route = make_request(Method::Post, base + "/routes", token, now);
    route.body = Json::object();
    route.body.set("from", 1 + i % 3);
    route.body.set("to", 2 + i % 3);
    route.body.set("start", hours(8) + minutes(i));
    route.body.set("end", hours(9) + minutes(i));
    check(router.handle(route));

    HttpRequest contacts =
        make_request(Method::Post, base + "/contacts", token, now);
    Json encounter = Json::object();
    encounter.set("contact", static_cast<std::uint64_t>(9000 + index));
    encounter.set("place", static_cast<std::uint64_t>(record.uid));
    encounter.set("start", hours(i));
    encounter.set("end", hours(i) + minutes(30));
    Json encounters = Json::array();
    encounters.push_back(std::move(encounter));
    contacts.body = Json::object();
    contacts.body.set("encounters", std::move(encounters));
    check(router.handle(contacts));

    if (with_reads && i % 4 == 0) {
      check(router.handle(make_request(Method::Get, "/healthz", token, now)));
      check(router.handle(make_request(
          Method::Get, base + "/analytics/frequency", token, now)));
    }
  }
  return failures;
}

// The sharding correctness battery's centerpiece: 8 threads hammer a
// 4-shard cloud with mixed per-user writes and cross-user reads, then the
// exact same traffic replays serially into a 1-shard cloud. The stored
// content must come out identical — same aggregate stats, same
// order-independent digest. Run under tsan via ci.sh (-L Sharding) to catch
// the races the equality assertions cannot see.
TEST(CloudConcurrency, ShardedHammerMatchesSerialReplay) {
  constexpr std::size_t kUsers = 8;
  auto register_all = [](CloudInstance& cloud) {
    std::vector<std::pair<world::DeviceId, std::string>> creds;
    for (std::size_t u = 0; u < kUsers; ++u) {
      HttpRequest req = make_request(Method::Post, "/api/register", "", 0);
      req.body = Json::object();
      req.body.set("imei", "imei-" + std::to_string(u));
      req.body.set("email", "u" + std::to_string(u) + "@study.pmware.org");
      const HttpResponse res = cloud.router().handle(req);
      EXPECT_EQ(res.status, net::kStatusCreated);
      creds.emplace_back(
          static_cast<world::DeviceId>(res.body.at("user").as_int()),
          res.body.at("token").as_string());
    }
    return creds;
  };

  CloudConfig hammer_config;
  hammer_config.shards = 4;
  CloudInstance hammer(hammer_config, GeoLocationService({}), Rng(42));
  const auto creds = register_all(hammer);

  telemetry::StartGate gate;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    workers.emplace_back([&hammer, &gate, &failures, &creds, u] {
      gate.wait();
      failures += drive_user(hammer.router(), creds[u].first, creds[u].second,
                             u, /*with_reads=*/true);
    });
  }
  gate.open(kUsers);
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // Serial replay: same registrations (same RNG seed, same order, so same
  // user ids and tokens), same per-user traffic, one thread, one shard.
  CloudConfig replay_config;
  replay_config.shards = 1;
  CloudInstance replay(replay_config, GeoLocationService({}), Rng(42));
  const auto replay_creds = register_all(replay);
  int replay_failures = 0;
  for (std::size_t u = 0; u < kUsers; ++u)
    replay_failures += drive_user(replay.router(), replay_creds[u].first,
                                  replay_creds[u].second, u,
                                  /*with_reads=*/true);
  EXPECT_EQ(replay_failures, 0);

  const CloudStorage::Stats hammered = hammer.storage().stats();
  EXPECT_EQ(hammered, replay.storage().stats());
  EXPECT_EQ(hammer.storage().content_digest(),
            replay.storage().content_digest());
  // Sanity: the hammer actually stored things.
  EXPECT_EQ(hammered.users, kUsers);
  EXPECT_EQ(hammered.places, kUsers * 5);
  EXPECT_EQ(hammered.profiles, kUsers * 7);
  EXPECT_EQ(hammered.encounters, kUsers * 40);
}

}  // namespace
}  // namespace pmware::cloud

namespace pmware::study {
namespace {

// End-to-end: the worker pool drives real PMS/cloud traffic through the
// process-wide registry and tracer. Small enough for the tsan build.
TEST(StudyConcurrency, ParallelSmallStudyRuns) {
  StudyConfig config;
  config.participants = 4;
  config.days = 2;
  config.threads = 4;
  const StudyResult result = DeploymentStudy(config).run();
  ASSERT_EQ(result.participants.size(), 4u);
  EXPECT_GT(result.total_discovered(), 0u);
  for (const auto& p : result.participants)
    EXPECT_GT(p.sensing_joules, 0.0);
}

}  // namespace
}  // namespace pmware::study
