// Concurrency tests: hammer the telemetry registry and tracer from many
// threads and run the deployment study on a worker pool. These are the
// tests ci.sh re-runs under ThreadSanitizer (PMWARE_SANITIZE=thread,
// ctest -R Concurrency); the assertions below catch lost updates, the
// sanitizer catches the races assertions cannot see.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "study/deployment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::telemetry {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 2000;

/// Start gate so all workers enter the hot section together instead of
/// running mostly sequentially on a loaded machine.
class StartGate {
 public:
  void wait() {
    ready_.fetch_add(1);
    while (!go_.load()) std::this_thread::yield();
  }
  void open(std::size_t expected) {
    while (ready_.load() < expected) std::this_thread::yield();
    go_.store(true);
  }

 private:
  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> go_{false};
};

TEST(TelemetryConcurrency, RegistryCountsExactlyUnderHammering) {
  MetricsRegistry reg;
  StartGate gate;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &gate, t] {
      gate.wait();
      // Every thread hits one shared series, one per-thread series, a
      // shared gauge, and a shared histogram — mixing contended and
      // uncontended paths plus first-use series creation.
      const std::string mine = "t" + std::to_string(t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        reg.counter("hammer_shared_total").inc();
        reg.counter("hammer_per_thread_total", {{"thread", mine}}).inc();
        reg.gauge("hammer_gauge").add(1.0);
        reg.histogram("hammer_hist", {}, 0.0, 100.0, 10)
            .observe(static_cast<double>(i % 100));
        if (i % 64 == 0) {
          // Exercise reader paths concurrently with writers.
          (void)reg.counter_value("hammer_shared_total");
          (void)reg.family_total("hammer_per_thread_total");
        }
      }
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();

  const std::uint64_t expected = kThreads * kOpsPerThread;
  EXPECT_EQ(reg.counter_value("hammer_shared_total"), expected);
  EXPECT_EQ(reg.family_total("hammer_per_thread_total"), expected);
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter_value("hammer_per_thread_total",
                                {{"thread", "t" + std::to_string(t)}}),
              kOpsPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("hammer_gauge").value(),
                   static_cast<double>(expected));
  const HistogramMetric::Snapshot h = reg.histogram("hammer_hist", {}, 0.0,
                                                    100.0, 10)
                                          .snapshot();
  EXPECT_EQ(h.stats.count(), expected);
}

TEST(TelemetryConcurrency, ExportersStayCoherentWhileWritersRun) {
  MetricsRegistry reg;
  // Register the families up front so every render can assert on them;
  // the writers still churn fresh *series* into both families below.
  reg.counter("churn_total", {{"series", "seed"}}).inc();
  reg.histogram("churn_hist", {{"w", "seed"}}, 0.0, 50.0, 5).observe(1.0);
  std::atomic<bool> stop{false};
  StartGate gate;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &gate, &stop, t] {
      gate.wait();
      std::size_t i = 0;
      while (!stop.load()) {
        // Keep registering fresh series so exporters race against map
        // growth, not just cell updates.
        reg.counter("churn_total",
                    {{"series", "s" + std::to_string((t * 131 + i) % 97)}})
            .inc();
        reg.histogram("churn_hist", {{"w", std::to_string(t)}}, 0.0, 50.0, 5)
            .observe(static_cast<double>(i % 50));
        ++i;
      }
    });
  }
  gate.open(4);
  // Export repeatedly while the writers churn; the exporters lock the
  // registry, so each render must parse/shape coherently.
  for (int round = 0; round < 50; ++round) {
    const std::string text = to_prometheus(reg);
    EXPECT_NE(text.find("# TYPE churn_total counter"), std::string::npos);
    const Json json = to_json(reg);
    ASSERT_TRUE(json.contains("metrics"));
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(TelemetryConcurrency, TracerNestsSpansPerThread) {
  Tracer trc(1u << 16);
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trc, &gate, t] {
      gate.wait();
      const std::string name = "worker" + std::to_string(t);
      for (std::size_t i = 0; i < 200; ++i) {
        Span outer(trc, name + ".outer", static_cast<SimTime>(i));
        {
          Span inner(trc, name + ".inner", static_cast<SimTime>(i));
          inner.finish(static_cast<SimTime>(i + 1));
        }
        (void)trc.open_depth();  // reader racing the sink
        outer.finish(static_cast<SimTime>(i + 2));
      }
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();

  const std::vector<SpanRecord> spans = trc.snapshot();
  ASSERT_EQ(spans.size(), kThreads * 200 * 2);
  EXPECT_EQ(trc.dropped(), 0u);
  EXPECT_EQ(trc.open_depth(), 0u);
  for (const SpanRecord& s : spans) {
    EXPECT_TRUE(s.finished);
    if (s.depth == 0) {
      EXPECT_EQ(s.parent, SpanRecord::kNoParent);
      continue;
    }
    // Nesting never crosses threads: a child's parent is the same
    // worker's outer span, and parents precede children in the record
    // vector.
    ASSERT_LT(s.parent, spans.size());
    const SpanRecord& p = spans[s.parent];
    EXPECT_LT(s.parent, s.id);
    EXPECT_EQ(s.depth, p.depth + 1);
    EXPECT_EQ(s.name.substr(0, s.name.find('.')),
              p.name.substr(0, p.name.find('.')));
  }
}

TEST(TelemetryConcurrency, LoggerAcceptsWritesFromAllThreads) {
  // The structured logger is the one telemetry sink every worker of the
  // parallel study hits on warnings; hammer the ring, the counters, and the
  // concurrent reader paths. Echo is off so tsan runs stay quiet.
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Debug);
  Logger log(/*capacity=*/128);
  log.set_echo(false);
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, &gate, t] {
      gate.wait();
      const std::string who = "w" + std::to_string(t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        log.write(i % 2 ? LogLevel::Info : LogLevel::Warn, who,
                  static_cast<SimTime>(i), who + " op " + std::to_string(i));
        if (i % 64 == 0) (void)log.recent();  // reader racing the ring
      }
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();

  EXPECT_EQ(log.total(), kThreads * kOpsPerThread);
  const std::vector<LogRecord> recent = log.recent();
  ASSERT_EQ(recent.size(), 128u);
  for (const LogRecord& r : recent) {
    EXPECT_FALSE(r.message.empty());
    EXPECT_EQ(r.message.substr(0, r.message.find(' ')), r.component);
  }
  set_log_level(prev);
}

TEST(TelemetryConcurrency, TracerCapDropsInsteadOfGrowing) {
  Tracer trc(64);
  StartGate gate;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trc, &gate] {
      gate.wait();
      for (std::size_t i = 0; i < 100; ++i)
        Span span(trc, "overflow", static_cast<SimTime>(i));
    });
  }
  gate.open(kThreads);
  for (auto& w : workers) w.join();
  EXPECT_EQ(trc.snapshot().size(), 64u);
  EXPECT_EQ(trc.dropped(), kThreads * 100 - 64);
}

}  // namespace
}  // namespace pmware::telemetry

namespace pmware::study {
namespace {

// End-to-end: the worker pool drives real PMS/cloud traffic through the
// process-wide registry and tracer. Small enough for the tsan build.
TEST(StudyConcurrency, ParallelSmallStudyRuns) {
  StudyConfig config;
  config.participants = 4;
  config.days = 2;
  config.threads = 4;
  const StudyResult result = DeploymentStudy(config).run();
  ASSERT_EQ(result.participants.size(), 4u);
  EXPECT_GT(result.total_discovered(), 0u);
  for (const auto& p : result.participants)
    EXPECT_GT(p.sensing_joules, 0.0);
}

}  // namespace
}  // namespace pmware::study
