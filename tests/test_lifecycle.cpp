// Crash-consistent PMS lifecycle: checkpoint/restore round-trips, torn
// checkpoint detection with cold-restart fallback, outbox persistence,
// epoch-qualified replay across reboots, and deterministic crash/churn
// studies (DESIGN.md "Failure model & recovery").
#include "core/pms.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cloud/cloud_instance.hpp"
#include "core/outbox.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "study/deployment.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::core {
namespace {

/// One world + trace + cloud, able to boot any number of PMS incarnations
/// of the SAME device identity against it (crash/restart modeling).
struct LifecycleHarness {
  explicit LifecycleHarness(int days_n, cloud::CloudConfig cloud_config = {}) {
    Rng world_rng(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng(5);
    mobility::ScheduleConfig sc;
    sc.days = days_n;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));
    cloud.emplace(cloud_config,
                  cloud::GeoLocationService(world->cell_location_db()), Rng(3));
  }

  /// A fresh incarnation of the device — same IMEI/email, fresh RNGs.
  std::unique_ptr<PmwareMobileService> boot(std::uint64_t salt = 7) {
    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        Rng(salt));
    auto client = std::make_unique<net::RestClient>(
        &cloud->router(), net::NetworkConditions{0.0, 1}, Rng(salt + 1));
    PmsConfig config;
    config.imei = "358240050000042";
    config.email = "lifecycle@study.pmware.org";
    return std::make_unique<PmwareMobileService>(std::move(device), config,
                                                 std::move(client),
                                                 Rng(salt + 2));
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  std::optional<cloud::CloudInstance> cloud;
};

std::string checkpoint_of(const PmwareMobileService& pms) {
  std::ostringstream out;
  pms.save(out);
  return out.str();
}

TEST(Lifecycle, CheckpointRoundTripRestoresState) {
  LifecycleHarness h(2);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  EXPECT_EQ(pms1->boot_epoch(), 1u);
  pms1->run(TimeWindow{0, days(2)});
  const std::string checkpoint = checkpoint_of(*pms1);
  ASSERT_FALSE(checkpoint.empty());

  auto pms2 = h.boot(19);
  std::istringstream in(checkpoint);
  ASSERT_TRUE(pms2->restore(in));
  // Restore deliberately leaves the device unregistered: the next
  // registration mints a fresh boot epoch (session) for the incarnation.
  EXPECT_FALSE(pms2->registered());
  EXPECT_EQ(pms2->boot_epoch(), 0u);

  // Science state round-trips bit-for-bit.
  ASSERT_EQ(pms2->inference().visit_log().size(),
            pms1->inference().visit_log().size());
  for (std::size_t i = 0; i < pms1->inference().visit_log().size(); ++i) {
    EXPECT_EQ(pms2->inference().visit_log()[i].uid,
              pms1->inference().visit_log()[i].uid);
    EXPECT_EQ(pms2->inference().visit_log()[i].window,
              pms1->inference().visit_log()[i].window);
  }
  ASSERT_EQ(pms2->places().records().size(), pms1->places().records().size());
  for (const auto& [uid, record] : pms1->places().records()) {
    const PlaceRecord* restored = pms2->places().get(uid);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->label, record.label);
    EXPECT_EQ(restored->granularity, record.granularity);
  }
  const MobilityProfile p1 = pms1->profile_for(0);
  const MobilityProfile p2 = pms2->profile_for(0);
  ASSERT_EQ(p2.places.size(), p1.places.size());
  for (std::size_t i = 0; i < p1.places.size(); ++i) {
    EXPECT_EQ(p2.places[i].place, p1.places[i].place);
    EXPECT_EQ(p2.places[i].arrival, p1.places[i].arrival);
  }

  // The second registration of the same identity is session 2.
  ASSERT_TRUE(pms2->register_with_cloud(days(2)));
  EXPECT_EQ(pms2->boot_epoch(), 2u);
}

TEST(Lifecycle, RestoreDetectsTornCheckpoint) {
  LifecycleHarness h(1);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  pms1->run(TimeWindow{0, days(1)});
  const std::string checkpoint = checkpoint_of(*pms1);

  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{10}, checkpoint.size() / 4,
        checkpoint.size() / 2, checkpoint.size() - 1}) {
    auto pms2 = h.boot(23);
    std::istringstream in(checkpoint.substr(0, cut));
    EXPECT_FALSE(pms2->restore(in)) << "cut at byte " << cut;
  }
  // Garbage that is not even a manifest.
  auto pms3 = h.boot(29);
  std::istringstream garbage("hello world\nnot a checkpoint\n");
  EXPECT_FALSE(pms3->restore(garbage));
}

TEST(Lifecycle, AnySingleByteCorruptionIsDetected) {
  LifecycleHarness h(1);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  pms1->run(TimeWindow{0, days(1)});
  const std::string checkpoint = checkpoint_of(*pms1);

  // The manifest digest covers every payload byte; a flip anywhere (body,
  // manifest, newline structure) must fail the restore, never half-apply.
  for (std::size_t pos = 0; pos < checkpoint.size();
       pos += 1 + checkpoint.size() / 97) {
    std::string corrupt = checkpoint;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    auto pms2 = h.boot(31);
    std::istringstream in(corrupt);
    EXPECT_FALSE(pms2->restore(in)) << "flip at byte " << pos;
  }
}

TEST(Lifecycle, FailedRestoreLeavesStateUntouched) {
  LifecycleHarness h(2);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  pms1->run(TimeWindow{0, days(1)});
  const std::string good = checkpoint_of(*pms1);
  pms1->run(TimeWindow{days(1), days(2)});
  const std::size_t visits_after_day2 = pms1->inference().visit_log().size();

  std::string corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  std::istringstream in(corrupt);
  EXPECT_FALSE(pms1->restore(in));
  // All-or-nothing: the running day-2 state survives the rejected restore.
  EXPECT_EQ(pms1->inference().visit_log().size(), visits_after_day2);
  EXPECT_TRUE(pms1->registered());
}

TEST(Lifecycle, ColdRestartRebuildsPlacesFromCloud) {
  LifecycleHarness h(2);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  pms1->run(TimeWindow{0, days(2)});
  pms1->shutdown(days(2));
  const std::size_t synced_places = pms1->places().records().size();
  ASSERT_GT(synced_places, 0u);

  // No checkpoint survives: the incarnation rebuilds from the cloud.
  auto pms2 = h.boot(37);
  ASSERT_TRUE(pms2->cold_restart(days(2)));
  EXPECT_TRUE(pms2->registered());
  EXPECT_EQ(pms2->boot_epoch(), 2u);
  EXPECT_EQ(pms2->places().records().size(), synced_places);
  for (const auto& [uid, record] : pms1->places().records()) {
    const PlaceRecord* pulled = pms2->places().get(uid);
    ASSERT_NE(pulled, nullptr);
    EXPECT_EQ(pulled->label, record.label);
  }
  EXPECT_GE(telemetry::registry().family_total(
                "pms_cold_profile_days_recovered_total"),
            1u);
}

TEST(Lifecycle, ColdRestartWithEmptyCloudStartsFresh) {
  LifecycleHarness h(1);
  auto pms = h.boot();
  ASSERT_TRUE(pms->cold_restart(0));
  EXPECT_TRUE(pms->registered());
  EXPECT_TRUE(pms->places().records().empty());
}

TEST(Lifecycle, OutboxSaveLoadRoundTripPreservesEntries) {
  SyncOutbox outbox;
  outbox.enqueue(SyncKind::ProfileDay, 0, 0, 100, /*epoch=*/1);
  outbox.enqueue(SyncKind::PlaceUpsert, 7, 0, 200, 1);
  outbox.enqueue(SyncKind::Route, 3, 0, 300, 1);
  outbox.enqueue(SyncKind::EncounterBatch, 0, 4, 400, 1);
  outbox.enqueue(SyncKind::EncounterBatch, 4, 9, 500, 2);  // new epoch: kept
  ASSERT_EQ(outbox.size(), 5u);
  // Fail one drain so attempts round-trips too.
  outbox.drain([](const OutboxEntry&) { return false; });

  std::stringstream stream;
  outbox.save(stream);
  SyncOutbox loaded;
  const auto result = loaded.load(stream);
  EXPECT_EQ(result.loaded, 5u);
  EXPECT_EQ(result.evicted, 0u);
  ASSERT_EQ(loaded.size(), outbox.size());
  for (std::size_t i = 0; i < outbox.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].kind, outbox.entries()[i].kind);
    EXPECT_EQ(loaded.entries()[i].key, outbox.entries()[i].key);
    EXPECT_EQ(loaded.entries()[i].key2, outbox.entries()[i].key2);
    EXPECT_EQ(loaded.entries()[i].enqueued_at, outbox.entries()[i].enqueued_at);
    EXPECT_EQ(loaded.entries()[i].attempts, outbox.entries()[i].attempts);
    EXPECT_EQ(loaded.entries()[i].epoch, outbox.entries()[i].epoch);
  }
  // Restored entries keep deduping later enqueues.
  EXPECT_FALSE(loaded.enqueue(SyncKind::PlaceUpsert, 7, 0, 999, 2).appended);
}

TEST(Lifecycle, OutboxLoadEvictsOldestBeyondCapacity) {
  SyncOutbox big;
  for (std::uint64_t day = 0; day < 6; ++day)
    big.enqueue(SyncKind::ProfileDay, day, 0, static_cast<SimTime>(day), 1);
  std::stringstream stream;
  big.save(stream);

  SyncOutbox small(OutboxConfig{4});
  const auto result = small.load(stream);
  EXPECT_EQ(result.loaded, 4u);
  EXPECT_EQ(result.evicted, 2u);
  ASSERT_EQ(small.size(), 4u);
  // Oldest-first eviction: days 0 and 1 gone, 2..5 kept in FIFO order.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(small.entries()[i].key, i + 2);
}

TEST(Lifecycle, CheckpointedEntriesReplayAfterRestart) {
  // Profile-route outage from day 1: profile PUTs queue in the outbox
  // (other routes stay up, so registration works). The device crashes with
  // the day-1 profile still queued; the restored incarnation must deliver
  // it under its ORIGINAL epoch once the route recovers at 3d (the final
  // shutdown drain).
  cloud::CloudConfig cloud_config;
  cloud_config.fault_plan =
      net::FaultPlan::parse("route=/profiles,outage=1d..3d");
  LifecycleHarness h(3, cloud_config);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  pms1->run(TimeWindow{0, days(2)});
  ASSERT_GT(pms1->stats().outbox_pending, 0u);
  const std::string checkpoint = checkpoint_of(*pms1);

  auto pms2 = h.boot(41);
  std::istringstream in(checkpoint);
  ASSERT_TRUE(pms2->restore(in));
  ASSERT_TRUE(pms2->register_with_cloud(days(2)));
  EXPECT_EQ(pms2->boot_epoch(), 2u);
  pms2->run(TimeWindow{days(2), days(3)});
  pms2->shutdown(days(3));
  EXPECT_EQ(pms2->stats().outbox_pending, 0u);
  // The outage-day profile reached the cloud via the replayed entry.
  const auto* store = h.cloud->storage().find_user(*pms2->user_id());
  ASSERT_NE(store, nullptr);
  EXPECT_GE(store->profiles.count(1), 1u);
}

TEST(Lifecycle, WipedCheckpointCannotResurrectData) {
  // Same shape, but the user privacy-wipes between checkpoint and restore:
  // the replayed entries carry the wiped epoch and must be refused by the
  // cloud tombstone (410 -> dropped), never resurrecting pre-wipe data.
  cloud::CloudConfig cloud_config;
  cloud_config.fault_plan =
      net::FaultPlan::parse("route=/profiles,outage=1d..3d");
  LifecycleHarness h(3, cloud_config);
  auto pms1 = h.boot();
  ASSERT_TRUE(pms1->register_with_cloud(0));
  pms1->run(TimeWindow{0, days(2)});
  ASSERT_GT(pms1->stats().outbox_pending, 0u);
  const std::string checkpoint = checkpoint_of(*pms1);
  ASSERT_TRUE(pms1->wipe_cloud_data(days(2)));

  auto pms2 = h.boot(43);
  std::istringstream in(checkpoint);
  ASSERT_TRUE(pms2->restore(in));
  ASSERT_TRUE(pms2->register_with_cloud(days(2)));
  pms2->run(TimeWindow{days(2), days(3)});
  pms2->shutdown(days(3));
  // Replays under the wiped epoch were dropped, not delivered: the
  // outage-day profile (enqueued under epoch 1, pre-wipe) never lands.
  EXPECT_GT(pms2->stats().outbox_dropped, 0u);
  const auto* store = h.cloud->storage().find_user(*pms2->user_id());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->profiles.count(1), 0u);
  EXPECT_GE(telemetry::registry().family_total(
                "cloud_tombstone_rejections_total"),
            1u);
}

TEST(Lifecycle, DiscardPendingCountsDroppedEntries) {
  cloud::CloudConfig cloud_config;
  cloud_config.fault_plan = net::FaultPlan::parse("outage=0d..2d");
  LifecycleHarness h(1, cloud_config);
  auto pms = h.boot();
  pms->register_with_cloud(0);  // fails under the outage; queues nothing yet
  pms->run(TimeWindow{0, days(1)});
  const std::size_t pending = pms->stats().outbox_pending;
  const std::size_t before = pms->stats().outbox_dropped;
  EXPECT_EQ(pms->discard_pending(), pending);
  EXPECT_EQ(pms->stats().outbox_pending, 0u);
  EXPECT_EQ(pms->stats().outbox_dropped, before + pending);
}

// --- Crashed-study determinism: the chaos headline. A study with crash
// injection, privacy wipes, and late joins must produce a byte-identical
// cloud digest at every shards x threads x runner shape, and the outbox
// balance must close with nothing lost for survivors.

study::StudyResult run_chaos_study(int shards, int threads,
                                   study::RunnerMode runner) {
  telemetry::registry().reset();
  telemetry::tracer().reset();
  study::StudyConfig config;
  config.participants = 4;
  config.days = 3;
  config.shards = shards;
  config.threads = threads;
  config.runner = runner;
  config.fault_plan = net::FaultPlan::parse(
      "crash=0d..2d,crash_rate=0.5,restart_delay=2h;"
      "wipe=1d..2d,wipe_rate=0.5;join=0d..2d,join_rate=0.5");
  return study::DeploymentStudy(config).run();
}

TEST(Lifecycle, CrashedStudyIsDeterministicAcrossShapes) {
  const study::StudyResult baseline =
      run_chaos_study(1, 1, study::RunnerMode::Materialized);
  // The chaos plan actually fired (otherwise this test asserts nothing).
  EXPECT_GT(telemetry::registry().family_total("pms_restarts_total"), 0u);
  EXPECT_GT(telemetry::registry().family_total("cloud_wipe_tombstones_total"),
            0u);
  const std::uint64_t digest = baseline.storage_digest;
  ASSERT_NE(digest, 0u);

  const struct {
    int shards, threads;
    study::RunnerMode runner;
    const char* what;
  } kShapes[] = {
      {4, 2, study::RunnerMode::Materialized, "4 shards, 2 threads, mat"},
      {1, 1, study::RunnerMode::Streaming, "1 shard, 1 thread, streaming"},
      {4, 2, study::RunnerMode::Streaming, "4 shards, 2 threads, streaming"},
  };
  for (const auto& shape : kShapes) {
    SCOPED_TRACE(shape.what);
    const study::StudyResult run =
        run_chaos_study(shape.shards, shape.threads, shape.runner);
    EXPECT_EQ(run.storage_digest, digest);
    EXPECT_EQ(run.storage_stats, baseline.storage_stats);
  }
}

TEST(Lifecycle, CrashedStudyLosesNoSurvivorRecords) {
  run_chaos_study(4, 2, study::RunnerMode::Materialized);
  const auto& reg = telemetry::registry();
  const std::uint64_t enqueued = reg.family_total("pms_outbox_enqueued_total");
  const std::uint64_t delivered =
      reg.family_total("pms_outbox_delivered_total");
  const std::uint64_t evicted = reg.family_total("pms_outbox_evicted_total");
  const std::uint64_t dropped = reg.family_total("pms_outbox_dropped_total");
  ASSERT_GT(enqueued, 0u);
  // The balance closes exactly: every enqueued entry was delivered, or was
  // intentionally discarded at a crash/wipe teardown. Nothing evicted,
  // nothing silently pending at study end.
  EXPECT_EQ(evicted, 0u);
  EXPECT_EQ(enqueued, delivered + dropped);
}

TEST(Lifecycle, NoFaultStudyDrawsNoLifecycleCounters) {
  telemetry::registry().reset();
  telemetry::tracer().reset();
  study::StudyConfig config;
  config.participants = 2;
  config.days = 2;
  study::DeploymentStudy(config).run();
  // Without device fault rules the lifecycle machinery must stay entirely
  // cold: no restarts, no checkpoints, no drops.
  EXPECT_EQ(telemetry::registry().family_total("pms_restarts_total"), 0u);
  EXPECT_EQ(telemetry::registry().family_total("pms_outbox_dropped_total"),
            0u);
}

}  // namespace
}  // namespace pmware::core
