// PMS-level tests: the full mobile service against an in-process cloud.
#include "core/pms.hpp"

#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"

namespace pmware::core {
namespace {

struct PmsHarness {
  explicit PmsHarness(int days_n, net::NetworkConditions network = {0.0, 1},
                      bool offload = true) {
    Rng world_rng(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng(5);
    mobility::ScheduleConfig sc;
    sc.days = days_n;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));

    cloud.emplace(cloud::CloudConfig{},
                  cloud::GeoLocationService(world->cell_location_db()), Rng(3));

    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        Rng(7));
    auto client = std::make_unique<net::RestClient>(&cloud->router(), network,
                                                    Rng(11));
    PmsConfig config;
    config.offload_gca = offload;
    pms.emplace(std::move(device), config, std::move(client), Rng(13));

    // A building-level consumer so the full pipeline is active.
    PlaceAlertRequest request;
    request.app = "harness";
    request.granularity = Granularity::Building;
    apps_request_id = pms->apps().register_place_alerts(request);
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  std::optional<cloud::CloudInstance> cloud;
  std::optional<PmwareMobileService> pms;
  RequestId apps_request_id = 0;
};

TEST(Pms, RegistrationSucceedsAndSetsUser) {
  PmsHarness h(1);
  EXPECT_FALSE(h.pms->registered());
  EXPECT_TRUE(h.pms->register_with_cloud(0));
  EXPECT_TRUE(h.pms->registered());
  EXPECT_EQ(*h.pms->user_id(), 1u);
}

TEST(Pms, OfflinePmsWorksWithLocalGca) {
  Rng world_rng(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng(2);
  auto participants = mobility::make_participants(*world, 1, prng);
  Rng trng(5);
  mobility::ScheduleConfig sc;
  sc.days = 1;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], sc, trng);
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{}, Rng(7));
  PmwareMobileService pms(std::move(device), PmsConfig{}, nullptr, Rng(13));
  EXPECT_FALSE(pms.register_with_cloud(0));

  PlaceAlertRequest request;
  request.app = "x";
  pms.apps().register_place_alerts(request);
  pms.run(TimeWindow{0, days(1)});
  pms.shutdown(days(1));
  EXPECT_GE(pms.inference().visit_log().size(), 2u);
  EXPECT_GE(pms.stats().gca_local_runs, 1u);
  EXPECT_EQ(pms.stats().gca_offloads, 0u);
}

TEST(Pms, OffloadsGcaToCloud) {
  PmsHarness h(2);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));
  EXPECT_GE(h.pms->stats().gca_offloads, 2u);
  EXPECT_EQ(h.pms->stats().gca_local_runs, 0u);
}

TEST(Pms, OffloadFallsBackToLocalWhenNetworkDead) {
  PmsHarness h(1, net::NetworkConditions{1.0, 0});  // 100% loss
  EXPECT_FALSE(h.pms->register_with_cloud(0));
  h.pms->run(TimeWindow{0, days(1)});
  h.pms->shutdown(days(1));
  EXPECT_GE(h.pms->stats().gca_local_runs, 1u);
  EXPECT_GE(h.pms->inference().visit_log().size(), 2u);
}

TEST(Pms, ProfilesSyncToCloud) {
  PmsHarness h(2);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));
  EXPECT_GE(h.pms->stats().profile_syncs, 2u);
  const auto* user_store = h.cloud->storage().find_user(1);
  ASSERT_NE(user_store, nullptr);
  EXPECT_GE(user_store->profiles.size(), 2u);
  // Cloud profile matches the local one.
  const MobilityProfile local = h.pms->profile_for(0);
  const MobilityProfile& remote = user_store->profiles.at(0);
  ASSERT_EQ(remote.places.size(), local.places.size());
  for (std::size_t i = 0; i < local.places.size(); ++i) {
    EXPECT_EQ(remote.places[i].place, local.places[i].place);
    EXPECT_EQ(remote.places[i].arrival, local.places[i].arrival);
  }
}

TEST(Pms, PlaceRecordsSyncWithResolvedLocations) {
  PmsHarness h(2);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));
  const auto* user_store = h.cloud->storage().find_user(1);
  ASSERT_NE(user_store, nullptr);
  EXPECT_GE(user_store->places.size(), 2u);
  // The cloud resolves approximate locations via the geo-location service.
  std::size_t located = 0;
  for (const auto& [uid, record] : user_store->places)
    if (record.location) ++located;
  EXPECT_GE(located, 1u);
}

TEST(Pms, TokenRefreshHappensAcrossDays) {
  PmsHarness h(3);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(3)});
  h.pms->shutdown(days(3));
  // Token TTL is 24h and housekeeping refreshes nightly.
  EXPECT_GE(h.pms->stats().token_refreshes + 0u, 1u);
  // All syncs kept working on day 3 (auth never went stale).
  EXPECT_GE(h.pms->stats().profile_syncs, 3u);
}

TEST(Pms, TagPlacePropagatesToCloud) {
  PmsHarness h(1);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(1)});
  ASSERT_GE(h.pms->places().size(), 1u);
  const PlaceUid uid = h.pms->places().records().begin()->first;
  EXPECT_TRUE(h.pms->tag_place(uid, "home", days(1)));
  h.pms->shutdown(days(1));
  EXPECT_EQ(h.pms->places().get(uid)->label, "home");
  const auto* user_store = h.cloud->storage().find_user(1);
  ASSERT_NE(user_store, nullptr);
  ASSERT_TRUE(user_store->places.count(uid));
  EXPECT_EQ(user_store->places.at(uid).label, "home");
}

TEST(Pms, TagUnknownPlaceFails) {
  PmsHarness h(1);
  EXPECT_FALSE(h.pms->tag_place(999, "nope", 0));
}

TEST(Pms, ProfileForSplitsAtMidnight) {
  PmsHarness h(2);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));
  for (std::int64_t day = 0; day < 2; ++day) {
    const MobilityProfile profile = h.pms->profile_for(day);
    for (const auto& entry : profile.places) {
      EXPECT_GE(entry.arrival, start_of_day(day));
      EXPECT_LE(entry.departure, start_of_day(day + 1));
      EXPECT_LT(entry.arrival, entry.departure);
    }
  }
}

TEST(Pms, EventsAreDeliveredToConnectedApps) {
  PmsHarness h(2);
  h.pms->register_with_cloud(0);
  int received = 0;
  IntentFilter filter;
  filter.actions = {actions::kPlaceEnter, actions::kPlaceExit};
  const ReceiverId receiver = h.pms->bus().register_receiver(
      filter, [&received](const Intent&) { ++received; });
  PlaceAlertRequest request;
  request.app = "listener";
  request.receiver = receiver;
  h.pms->apps().register_place_alerts(request);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));
  EXPECT_GT(received, 4);
  EXPECT_GT(h.pms->stats().place_events_delivered, 4u);
}

TEST(Pms, MasterSwitchSilencesAppsAndSensing) {
  PmsHarness h(1);
  h.pms->register_with_cloud(0);
  h.pms->preferences().set_sharing_enabled(false);
  int received = 0;
  IntentFilter filter;
  filter.actions = {actions::kPlaceEnter};
  const ReceiverId receiver = h.pms->bus().register_receiver(
      filter, [&received](const Intent&) { ++received; });
  PlaceAlertRequest request;
  request.app = "listener";
  request.receiver = receiver;
  h.pms->apps().register_place_alerts(request);
  h.pms->run(TimeWindow{0, days(1)});
  EXPECT_EQ(received, 0);
  // Expensive interfaces idle while sharing is off.
  EXPECT_EQ(h.pms->meter().sample_count(energy::Interface::Wifi), 0u);
}

TEST(Pms, EnergyStaysNearGsmBaseline) {
  PmsHarness h(2);
  h.pms->register_with_cloud(0);
  h.pms->run(TimeWindow{0, days(2)});
  h.pms->shutdown(days(2));
  // Triggered sensing must land far below always-on GPS (~145 mW) —
  // in the tens of milliwatts.
  const double avg_w = h.pms->meter().average_power_w(days(2));
  EXPECT_LT(avg_w, 0.05);
  EXPECT_GT(avg_w, 0.012);  // above bare baseline: sensing did happen
}

}  // namespace
}  // namespace pmware::core
