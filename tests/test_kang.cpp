#include "algorithms/kang.hpp"

#include <gtest/gtest.h>

namespace pmware::algorithms {
namespace {

constexpr geo::LatLng kBase{28.6139, 77.2090};

sensing::GpsFix fix_at(SimTime t, geo::LatLng pos, bool valid = true) {
  sensing::GpsFix fix;
  fix.t = t;
  fix.valid = valid;
  fix.position = pos;
  fix.accuracy_m = 8;
  return fix;
}

int arrivals(const std::vector<GpsPlaceClusterer::Event>& events) {
  int n = 0;
  for (const auto& e : events)
    if (e.kind == GpsPlaceClusterer::Event::Kind::Arrival) ++n;
  return n;
}

TEST(Kang, DwellAtOneSpotBecomesAPlace) {
  GpsPlaceClusterer clusterer;
  SimTime t = 0;
  std::vector<GpsPlaceClusterer::Event> all;
  for (int i = 0; i < 15; ++i, t += 60) {
    const geo::LatLng jittered = geo::destination(kBase, i * 24.0, 15.0);
    auto evs = clusterer.on_fix(fix_at(t, jittered));
    all.insert(all.end(), evs.begin(), evs.end());
  }
  EXPECT_EQ(arrivals(all), 1);
  ASSERT_EQ(clusterer.places().size(), 1u);
  EXPECT_LT(geo::distance_m(clusterer.places()[0].center, kBase), 30);
}

TEST(Kang, ArrivalIsRetrospective) {
  GpsPlaceClusterer clusterer;
  KangConfig config;
  SimTime t = 0;
  std::optional<SimTime> arrival_fired_at;
  std::optional<SimTime> arrival_stamp;
  for (int i = 0; i < 15; ++i, t += 60) {
    for (const auto& ev : clusterer.on_fix(fix_at(t, kBase))) {
      if (ev.kind == GpsPlaceClusterer::Event::Kind::Arrival) {
        arrival_fired_at = t;
        arrival_stamp = ev.t;
      }
    }
  }
  ASSERT_TRUE(arrival_fired_at.has_value());
  // Fires only once min_dwell has elapsed, but is stamped at cluster start.
  EXPECT_GE(*arrival_fired_at, config.min_dwell);
  EXPECT_EQ(*arrival_stamp, 0);
}

TEST(Kang, PassThroughIsNotAPlace) {
  GpsPlaceClusterer clusterer;
  SimTime t = 0;
  // Driving: each fix 300 m beyond the last.
  for (int i = 0; i < 30; ++i, t += 60)
    clusterer.on_fix(fix_at(t, geo::destination(kBase, 90, i * 300.0)));
  clusterer.finish(t);
  EXPECT_TRUE(clusterer.places().empty());
  EXPECT_TRUE(clusterer.visits().empty());
}

TEST(Kang, InvalidFixesIgnored) {
  GpsPlaceClusterer clusterer;
  SimTime t = 0;
  for (int i = 0; i < 15; ++i, t += 60) {
    clusterer.on_fix(fix_at(t, kBase));
    clusterer.on_fix(fix_at(t + 30, geo::destination(kBase, 0, 5000), false));
  }
  clusterer.finish(t);
  EXPECT_EQ(clusterer.places().size(), 1u);
}

TEST(Kang, RevisitMergesWithinMergeDistance) {
  KangConfig config;
  GpsPlaceClusterer clusterer(config);
  SimTime t = 0;
  for (int i = 0; i < 15; ++i, t += 60) clusterer.on_fix(fix_at(t, kBase));
  // Travel away.
  for (int i = 0; i < 10; ++i, t += 60)
    clusterer.on_fix(fix_at(t, geo::destination(kBase, 90, 500.0 + i * 300)));
  // Come back, offset by less than merge_distance.
  const geo::LatLng nearby = geo::destination(kBase, 45, 40);
  for (int i = 0; i < 15; ++i, t += 60) clusterer.on_fix(fix_at(t, nearby));
  clusterer.finish(t);
  EXPECT_EQ(clusterer.places().size(), 1u);
  EXPECT_EQ(clusterer.visits().size(), 2u);
  EXPECT_EQ(clusterer.visits()[0].place_index,
            clusterer.visits()[1].place_index);
}

TEST(Kang, DistinctSpotsBecomeDistinctPlaces) {
  GpsPlaceClusterer clusterer;
  SimTime t = 0;
  const geo::LatLng second = geo::destination(kBase, 90, 2000);
  for (int i = 0; i < 15; ++i, t += 60) clusterer.on_fix(fix_at(t, kBase));
  for (int i = 0; i < 8; ++i, t += 60)
    clusterer.on_fix(fix_at(t, geo::destination(kBase, 90, 250.0 * i)));
  for (int i = 0; i < 15; ++i, t += 60) clusterer.on_fix(fix_at(t, second));
  clusterer.finish(t);
  EXPECT_EQ(clusterer.places().size(), 2u);
  ASSERT_EQ(clusterer.visits().size(), 2u);
  EXPECT_NE(clusterer.visits()[0].place_index,
            clusterer.visits()[1].place_index);
}

TEST(Kang, FixGapBreaksPendingCluster) {
  KangConfig config;
  config.max_fix_gap = minutes(20);
  GpsPlaceClusterer clusterer(config);
  // 8 minutes of fixes (below min_dwell), then a long gap, then 8 more:
  // neither burst alone qualifies, and the gap forbids joining them.
  SimTime t = 0;
  for (int i = 0; i < 8; ++i, t += 60) clusterer.on_fix(fix_at(t, kBase));
  t += hours(2);
  for (int i = 0; i < 8; ++i, t += 60) clusterer.on_fix(fix_at(t, kBase));
  clusterer.finish(t);
  EXPECT_TRUE(clusterer.places().empty());
}

TEST(Kang, FinishCommitsPendingCluster) {
  GpsPlaceClusterer clusterer;
  SimTime t = 0;
  for (int i = 0; i < 15; ++i, t += 60) clusterer.on_fix(fix_at(t, kBase));
  const auto evs = clusterer.finish(t);
  bool departure = false;
  for (const auto& e : evs)
    if (e.kind == GpsPlaceClusterer::Event::Kind::Departure) departure = true;
  EXPECT_TRUE(departure);
  ASSERT_EQ(clusterer.visits().size(), 1u);
  EXPECT_GE(clusterer.visits()[0].window.length(), minutes(10));
}

TEST(Kang, VisitWindowsMatchDwellTimes) {
  GpsPlaceClusterer clusterer;
  SimTime t = 0;
  for (int i = 0; i <= 30; ++i, t += 60) clusterer.on_fix(fix_at(t, kBase));
  // Leave decisively.
  for (int i = 0; i < 5; ++i, t += 60)
    clusterer.on_fix(fix_at(t, geo::destination(kBase, 0, 1000.0 + i * 500)));
  clusterer.finish(t);
  ASSERT_EQ(clusterer.visits().size(), 1u);
  EXPECT_EQ(clusterer.visits()[0].window.begin, 0);
  EXPECT_NEAR(static_cast<double>(clusterer.visits()[0].window.length()),
              static_cast<double>(minutes(30)), 90.0);
}

class RadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(RadiusSweep, JitterWithinRadiusStaysOneCluster) {
  KangConfig config;
  config.cluster_radius_m = GetParam();
  GpsPlaceClusterer clusterer(config);
  SimTime t = 0;
  for (int i = 0; i < 20; ++i, t += 60) {
    const geo::LatLng p =
        geo::destination(kBase, i * 37.0, config.cluster_radius_m * 0.45);
    clusterer.on_fix(fix_at(t, p));
  }
  clusterer.finish(t);
  EXPECT_EQ(clusterer.places().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Radii, RadiusSweep,
                         ::testing::Values(50.0, 100.0, 150.0, 250.0));

}  // namespace
}  // namespace pmware::algorithms
