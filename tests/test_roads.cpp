#include "world/roads.hpp"

#include <gtest/gtest.h>

#include "geo/polyline.hpp"
#include "util/rng.hpp"

namespace pmware::world {
namespace {

constexpr geo::LatLng kOrigin{28.6139, 77.2090};

TEST(RoadNetwork, RejectsBadConstruction) {
  EXPECT_THROW(RoadNetwork(kOrigin, 0, 5, 5), std::invalid_argument);
  EXPECT_THROW(RoadNetwork(kOrigin, 100, 1, 5), std::invalid_argument);
  EXPECT_THROW(RoadNetwork(kOrigin, 100, 5, 1), std::invalid_argument);
}

TEST(RoadNetwork, NodePositions) {
  const RoadNetwork roads(kOrigin, 250, 10, 10);
  EXPECT_NEAR(geo::distance_m(roads.node(0, 0), kOrigin), 0, 0.1);
  EXPECT_NEAR(geo::distance_m(roads.node(1, 0), roads.node(0, 0)), 250, 1);
  EXPECT_NEAR(geo::distance_m(roads.node(0, 1), roads.node(0, 0)), 250, 1);
  EXPECT_NEAR(geo::distance_m(roads.node(3, 4), kOrigin),
              std::hypot(750.0, 1000.0), 2);
}

TEST(RoadNetwork, NearestNodeSnapsAndClamps) {
  const RoadNetwork roads(kOrigin, 250, 10, 10);
  const auto [i0, j0] = roads.nearest_node(kOrigin);
  EXPECT_EQ(i0, 0);
  EXPECT_EQ(j0, 0);
  // A point past the grid clamps to the last node.
  const geo::LatLng far = geo::from_enu(kOrigin, {100000, 100000});
  const auto [i1, j1] = roads.nearest_node(far);
  EXPECT_EQ(i1, 9);
  EXPECT_EQ(j1, 9);
  // Snapping rounds to the closest intersection.
  const geo::LatLng near_21 = geo::from_enu(kOrigin, {2 * 250 + 40, 250 - 40});
  const auto [i2, j2] = roads.nearest_node(near_21);
  EXPECT_EQ(i2, 2);
  EXPECT_EQ(j2, 1);
}

TEST(RoadNetwork, RouteStartsAndEndsAtRequestedPoints) {
  const RoadNetwork roads(kOrigin, 250, 10, 10);
  const geo::LatLng from = geo::from_enu(kOrigin, {130, 620});
  const geo::LatLng to = geo::from_enu(kOrigin, {1800, 1100});
  const auto route = roads.route(from, to);
  ASSERT_GE(route.size(), 2u);
  EXPECT_EQ(route.front(), from);
  EXPECT_EQ(route.back(), to);
}

TEST(RoadNetwork, RouteLengthApproximatesManhattanDistance) {
  const RoadNetwork roads(kOrigin, 250, 25, 25);
  const geo::LatLng from = geo::from_enu(kOrigin, {250, 250});
  const geo::LatLng to = geo::from_enu(kOrigin, {2250, 1750});
  const auto route = roads.route(from, to);
  const double length = geo::polyline_length_m(route);
  const double manhattan = 2000 + 1500;
  // Grid path cannot be shorter than Manhattan and should not exceed it by
  // much more than the snap overhead.
  EXPECT_GE(length, manhattan - 5);
  EXPECT_LE(length, manhattan + 2 * 250 + 5);
}

TEST(RoadNetwork, RouteBetweenSamePointIsTrivial) {
  const RoadNetwork roads(kOrigin, 250, 10, 10);
  const geo::LatLng p = geo::from_enu(kOrigin, {600, 600});
  const auto route = roads.route(p, p);
  EXPECT_EQ(route.front(), p);
  EXPECT_EQ(route.back(), p);
}

TEST(RoadNetwork, ConsecutiveRoutePointsAreAdjacent) {
  const RoadNetwork roads(kOrigin, 250, 20, 20);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const geo::LatLng from =
        geo::from_enu(kOrigin, {rng.uniform(0, 4500), rng.uniform(0, 4500)});
    const geo::LatLng to =
        geo::from_enu(kOrigin, {rng.uniform(0, 4500), rng.uniform(0, 4500)});
    const auto route = roads.route(from, to);
    // Interior hops are single grid edges (≤ spacing + rounding).
    for (std::size_t i = 2; i + 1 < route.size(); ++i) {
      EXPECT_LE(geo::distance_m(route[i - 1], route[i]), 251.0)
          << "hop " << i << " in trial " << trial;
    }
  }
}

class RoadGridSweep : public ::testing::TestWithParam<int> {};

TEST_P(RoadGridSweep, AllRoutesReachable) {
  const int n = GetParam();
  const RoadNetwork roads(kOrigin, 300, n, n);
  const geo::LatLng corner_a = roads.node(0, 0);
  const geo::LatLng corner_b = roads.node(n - 1, n - 1);
  const auto route = roads.route(corner_a, corner_b);
  const double expected = 2.0 * 300 * (n - 1);
  EXPECT_NEAR(geo::polyline_length_m(route), expected, 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoadGridSweep, ::testing::Values(2, 3, 5, 12));

}  // namespace
}  // namespace pmware::world
