#include "algorithms/gca.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pmware::algorithms {
namespace {

using world::CellId;

CellId cell(std::uint32_t cid) {
  return CellId{404, 10, 1, cid, world::Radio::Gsm2G};
}

/// Appends `duration/60` one-minute observations oscillating among `cells`.
void append_dwell(std::vector<CellObservation>& log, SimTime& t,
                  const std::vector<CellId>& cells, SimDuration duration,
                  Rng& rng) {
  for (SimDuration elapsed = 0; elapsed < duration; elapsed += 60) {
    log.push_back({t, cells[rng.index(cells.size())]});
    t += 60;
  }
}

/// Appends a travel chain visiting each cell once (pass-through).
void append_travel(std::vector<CellObservation>& log, SimTime& t,
                   const std::vector<CellId>& chain) {
  for (const CellId& c : chain) {
    log.push_back({t, c});
    t += 60;
  }
}

TEST(MovementGraph, CountsDwellAndTransitions) {
  MovementGraph graph;
  const GcaConfig config;
  graph.observe({0, cell(1)}, config);
  graph.observe({60, cell(1)}, config);
  graph.observe({120, cell(2)}, config);
  graph.observe({180, cell(1)}, config);
  EXPECT_EQ(graph.dwell().at(cell(1)), 120);  // [0,60)+[60,120)
  EXPECT_EQ(graph.dwell().at(cell(2)), 60);
  EXPECT_EQ(graph.edges().at(std::minmax(cell(1), cell(2))), 2);
  EXPECT_EQ(graph.transitions(cell(1)), 2);
  EXPECT_EQ(graph.transitions(cell(2)), 2);
  EXPECT_EQ(graph.node_count(), 2u);
}

TEST(MovementGraph, OscillationRequiresBounceBack) {
  MovementGraph graph;
  const GcaConfig config;
  // 1 -> 2 -> 1 within the window: one oscillation event.
  graph.observe({0, cell(1)}, config);
  graph.observe({60, cell(2)}, config);
  graph.observe({120, cell(1)}, config);
  // 1 -> 3 -> 4: travel, no oscillation.
  graph.observe({180, cell(3)}, config);
  graph.observe({240, cell(4)}, config);
  const std::pair<CellId, CellId> key{cell(1), cell(2)};
  EXPECT_EQ(graph.oscillations().at(key), 1);
  const std::pair<CellId, CellId> travel_key{cell(3), cell(4)};
  EXPECT_EQ(graph.oscillations().count(travel_key), 0u);
}

TEST(MovementGraph, BounceOutsideWindowNotCounted) {
  MovementGraph graph;
  GcaConfig config;
  config.oscillation_window = minutes(5);
  config.max_transition_gap = hours(1);
  graph.observe({0, cell(1)}, config);
  graph.observe({60, cell(2)}, config);
  // Return transition 20 minutes later: outside the oscillation window.
  graph.observe({60 + minutes(20), cell(1)}, config);
  EXPECT_EQ(graph.oscillations().count(std::minmax(cell(1), cell(2))), 0u);
}

TEST(MovementGraph, GapBreaksAdjacency) {
  MovementGraph graph;
  const GcaConfig config;  // max gap 4 min
  graph.observe({0, cell(1)}, config);
  graph.observe({minutes(30), cell(2)}, config);  // 30-minute hole
  EXPECT_TRUE(graph.edges().empty());
  EXPECT_EQ(graph.dwell().at(cell(1)), 0);
}

TEST(MovementGraph, RejectsOutOfOrder) {
  MovementGraph graph;
  const GcaConfig config;
  graph.observe({100, cell(1)}, config);
  EXPECT_THROW(graph.observe({50, cell(1)}, config), std::invalid_argument);
}

TEST(RunGca, EmptyLogYieldsNothing) {
  const GcaResult result = run_gca({});
  EXPECT_TRUE(result.places.empty());
  EXPECT_TRUE(result.visits.empty());
}

TEST(RunGca, SinglePlaceOscillationBecomesOneCluster) {
  Rng rng(1);
  std::vector<CellObservation> log;
  SimTime t = 0;
  const std::vector<CellId> home{cell(1), cell(2), cell(3)};
  append_dwell(log, t, home, hours(8), rng);
  const GcaResult result = run_gca(log);
  ASSERT_EQ(result.places.size(), 1u);
  EXPECT_EQ(result.places[0].signature.cells.size(), 3u);
  EXPECT_GE(result.places[0].total_dwell, hours(7));
  ASSERT_EQ(result.visits.size(), 1u);
  EXPECT_LE(result.visits[0].window.begin, minutes(2));
}

TEST(RunGca, TwoPlacesWithCommuteStaySeparate) {
  Rng rng(2);
  std::vector<CellObservation> log;
  SimTime t = 0;
  const std::vector<CellId> home{cell(1), cell(2)};
  const std::vector<CellId> work{cell(10), cell(11), cell(12)};
  const std::vector<CellId> commute{cell(20), cell(21), cell(22), cell(23)};
  std::vector<CellId> commute_back(commute.rbegin(), commute.rend());
  // 10 days of home -> commute -> work -> commute -> home. The commute chain
  // repeats 20 times; raw edge weights are high but there is no bouncing.
  for (int day = 0; day < 10; ++day) {
    append_dwell(log, t, home, hours(9), rng);
    append_travel(log, t, commute);
    append_dwell(log, t, work, hours(8), rng);
    append_travel(log, t, commute_back);
    append_dwell(log, t, home, hours(6), rng);
  }
  const GcaResult result = run_gca(log);
  // Exactly two multi-cell clusters; commute cells must not merge them.
  ASSERT_EQ(result.places.size(), 2u);
  std::set<CellId> all;
  for (const auto& p : result.places)
    all.insert(p.signature.cells.begin(), p.signature.cells.end());
  for (const auto& c : commute) EXPECT_EQ(all.count(c), 0u) << c.to_string();
  // Home and work cells land in different clusters.
  const auto& sig0 = result.places[0].signature.cells;
  EXPECT_NE(sig0.count(cell(1)), sig0.count(cell(10)));
}

TEST(RunGca, VisitsAlternateBetweenPlaces) {
  Rng rng(3);
  std::vector<CellObservation> log;
  SimTime t = 0;
  const std::vector<CellId> home{cell(1), cell(2)};
  const std::vector<CellId> work{cell(10), cell(11)};
  const std::vector<CellId> commute{cell(20), cell(21)};
  std::vector<CellId> back(commute.rbegin(), commute.rend());
  for (int day = 0; day < 5; ++day) {
    append_dwell(log, t, home, hours(10), rng);
    append_travel(log, t, commute);
    append_dwell(log, t, work, hours(8), rng);
    append_travel(log, t, back);
    append_dwell(log, t, home, hours(5), rng);
  }
  const GcaResult result = run_gca(log);
  ASSERT_EQ(result.places.size(), 2u);
  // 5 days x (home, work, home) minus merges at midnight: at least 10 visits.
  EXPECT_GE(result.visits.size(), 10u);
  for (std::size_t i = 1; i < result.visits.size(); ++i) {
    EXPECT_GE(result.visits[i].window.begin, result.visits[i - 1].window.end);
    EXPECT_NE(result.visits[i].place_index, result.visits[i - 1].place_index);
  }
}

TEST(RunGca, ShortPassThroughIsNotAPlace) {
  Rng rng(4);
  std::vector<CellObservation> log;
  SimTime t = 0;
  append_dwell(log, t, {cell(1), cell(2)}, hours(4), rng);
  append_travel(log, t, {cell(20), cell(21), cell(22)});
  append_dwell(log, t, {cell(10), cell(11)}, hours(4), rng);
  const GcaResult result = run_gca(log);
  for (const auto& place : result.places) {
    EXPECT_EQ(place.signature.cells.count(cell(20)), 0u);
    EXPECT_EQ(place.signature.cells.count(cell(21)), 0u);
  }
}

TEST(RunGca, SingleStableCellNeedsLongDwell) {
  // One cell with no oscillation partners qualifies only via long dwell.
  std::vector<CellObservation> shortlog;
  SimTime t = 0;
  for (; t < minutes(30); t += 60) shortlog.push_back({t, cell(5)});
  EXPECT_TRUE(run_gca(shortlog).places.empty());

  std::vector<CellObservation> longlog;
  t = 0;
  for (; t < hours(2); t += 60) longlog.push_back({t, cell(5)});
  const GcaResult result = run_gca(longlog);
  ASSERT_EQ(result.places.size(), 1u);
  EXPECT_EQ(result.places[0].signature.cells.count(cell(5)), 1u);
}

TEST(RunGca, CellToPlaceMapsEveryClusterCell) {
  Rng rng(5);
  std::vector<CellObservation> log;
  SimTime t = 0;
  append_dwell(log, t, {cell(1), cell(2), cell(3)}, hours(6), rng);
  const GcaResult result = run_gca(log);
  ASSERT_EQ(result.places.size(), 1u);
  for (const auto& c : result.places[0].signature.cells) {
    ASSERT_TRUE(result.cell_to_place.count(c));
    EXPECT_EQ(result.cell_to_place.at(c), 0u);
  }
}

TEST(CellVisitTracker, ArrivalAfterMinDwellDepartureOnExit) {
  std::map<CellId, std::size_t> mapping{{cell(1), 0}, {cell(2), 0}};
  GcaConfig config;
  config.min_visit_dwell = minutes(10);
  config.visit_gap_tolerance = minutes(6);
  CellVisitTracker tracker(mapping, config);

  std::vector<CellVisitTracker::Event> events;
  SimTime t = 0;
  for (; t <= minutes(30); t += 60) {
    auto evs = tracker.observe({t, t % 120 == 0 ? cell(1) : cell(2)});
    events.insert(events.end(), evs.begin(), evs.end());
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, CellVisitTracker::Event::Kind::Arrival);
  EXPECT_EQ(events[0].place_index, 0u);
  EXPECT_EQ(events[0].t, 0);  // backdated to the first in-cluster reading

  // Leave: unknown cells past the gap tolerance.
  std::vector<CellVisitTracker::Event> depart;
  const SimTime leave_start = t;
  for (; t <= leave_start + minutes(8); t += 60) {
    auto evs = tracker.observe({t, cell(99)});
    depart.insert(depart.end(), evs.begin(), evs.end());
  }
  ASSERT_EQ(depart.size(), 1u);
  EXPECT_EQ(depart[0].kind, CellVisitTracker::Event::Kind::Departure);
  // Departure stamped at the last in-cluster observation.
  EXPECT_LE(depart[0].t, leave_start);
}

TEST(CellVisitTracker, BriefExcursionDoesNotEndVisit) {
  std::map<CellId, std::size_t> mapping{{cell(1), 0}};
  GcaConfig config;
  config.min_visit_dwell = minutes(10);
  config.visit_gap_tolerance = minutes(6);
  CellVisitTracker tracker(mapping, config);
  int departures = 0;
  SimTime t = 0;
  for (int i = 0; i < 60; ++i, t += 60) {
    // Every 10th sample flickers to an unknown cell for one minute.
    const CellId c = (i % 10 == 9) ? cell(50) : cell(1);
    for (const auto& ev : tracker.observe({t, c}))
      if (ev.kind == CellVisitTracker::Event::Kind::Departure) ++departures;
  }
  EXPECT_EQ(departures, 0);
  EXPECT_TRUE(tracker.current_place().has_value());
}

TEST(CellVisitTracker, TransientVisitNeverAnnounced) {
  std::map<CellId, std::size_t> mapping{{cell(1), 0}};
  GcaConfig config;
  config.min_visit_dwell = minutes(10);
  CellVisitTracker tracker(mapping, config);
  std::vector<CellVisitTracker::Event> events;
  // Only 5 minutes in the cluster, then away for good.
  for (SimTime t = 0; t <= minutes(5); t += 60) {
    auto evs = tracker.observe({t, cell(1)});
    events.insert(events.end(), evs.begin(), evs.end());
  }
  for (SimTime t = minutes(6); t <= minutes(30); t += 60) {
    auto evs = tracker.observe({t, cell(99)});
    events.insert(events.end(), evs.begin(), evs.end());
  }
  auto evs = tracker.finish(minutes(30));
  events.insert(events.end(), evs.begin(), evs.end());
  EXPECT_TRUE(events.empty());
}

TEST(CellVisitTracker, FinishClosesOpenVisit) {
  std::map<CellId, std::size_t> mapping{{cell(1), 0}};
  CellVisitTracker tracker(mapping, GcaConfig{});
  for (SimTime t = 0; t <= minutes(20); t += 60) tracker.observe({t, cell(1)});
  const auto events = tracker.finish(minutes(21));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, CellVisitTracker::Event::Kind::Departure);
  EXPECT_FALSE(tracker.current_place().has_value());
}

/// Two results agree when their externally visible shape is identical:
/// clusters (cells + dwell), visit sequence, and the cell->place mapping.
void expect_same_result(const GcaResult& a, const GcaResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.places.size(), b.places.size()) << context;
  for (std::size_t i = 0; i < a.places.size(); ++i) {
    EXPECT_EQ(a.places[i].signature.cells, b.places[i].signature.cells)
        << context << " place " << i;
    EXPECT_EQ(a.places[i].total_dwell, b.places[i].total_dwell)
        << context << " place " << i;
  }
  ASSERT_EQ(a.visits.size(), b.visits.size()) << context;
  for (std::size_t i = 0; i < a.visits.size(); ++i) {
    EXPECT_EQ(a.visits[i].place_index, b.visits[i].place_index)
        << context << " visit " << i;
    EXPECT_EQ(a.visits[i].window.begin, b.visits[i].window.begin)
        << context << " visit " << i;
    EXPECT_EQ(a.visits[i].window.end, b.visits[i].window.end)
        << context << " visit " << i;
  }
  EXPECT_EQ(a.cell_to_place, b.cell_to_place) << context;
}

TEST(GcaState, IncrementalReclusterMatchesFullRebuild) {
  // A growing multi-day trace reclustered once per day — the PMS
  // housekeeping pattern. Day 4 introduces a brand-new place (gym), which
  // changes the cell->place mapping and forces the exact full-replay
  // fallback; the surrounding days extend existing places and should take
  // the incremental path.
  Rng rng(11);
  std::vector<CellObservation> log;
  SimTime t = 0;
  const std::vector<CellId> home{cell(1), cell(2)};
  const std::vector<CellId> work{cell(10), cell(11), cell(12)};
  const std::vector<CellId> gym{cell(40), cell(41)};
  const std::vector<CellId> commute{cell(20), cell(21), cell(22)};
  std::vector<CellId> back(commute.rbegin(), commute.rend());

  GcaState state;
  for (int day = 0; day < 7; ++day) {
    append_dwell(log, t, home, hours(9), rng);
    append_travel(log, t, commute);
    append_dwell(log, t, work, hours(8), rng);
    if (day >= 3) {
      append_travel(log, t, {cell(30)});
      append_dwell(log, t, gym, hours(2), rng);
    }
    append_travel(log, t, back);
    append_dwell(log, t, home, hours(4), rng);

    const GcaResult incremental = state.run(log);
    const GcaResult full = run_gca(log);
    expect_same_result(incremental, full, "day " + std::to_string(day));
  }
  EXPECT_EQ(state.passes(), 7u);
  // Most daily passes only extend known places; at least one must have
  // taken the incremental path, and the gym's first appearance must not
  // have (mapping changed).
  EXPECT_GT(state.incremental_passes(), 0u);
  EXPECT_LT(state.incremental_passes(), state.passes());
}

TEST(GcaState, RewrittenHistoryForcesFullReset) {
  Rng rng(12);
  std::vector<CellObservation> log;
  SimTime t = 0;
  append_dwell(log, t, {cell(1), cell(2)}, hours(6), rng);

  GcaState state;
  (void)state.run(log);

  // A *different* log (not an extension of the fed prefix) must be
  // detected and reclustered from scratch, matching run_gca exactly.
  Rng rng2(99);
  std::vector<CellObservation> other;
  SimTime t2 = 0;
  append_dwell(other, t2, {cell(7), cell(8)}, hours(5), rng2);
  const GcaResult incremental = state.run(other);
  const GcaResult full = run_gca(other);
  expect_same_result(incremental, full, "rewritten history");
  EXPECT_FALSE(state.last_pass_incremental());
}

TEST(GcaState, EmptyThenGrowingLogIsSafe) {
  GcaState state;
  EXPECT_TRUE(state.run({}).places.empty());
  Rng rng(13);
  std::vector<CellObservation> log;
  SimTime t = 0;
  append_dwell(log, t, {cell(1), cell(2), cell(3)}, hours(6), rng);
  expect_same_result(state.run(log), run_gca(log), "after empty pass");
}

class GcaNoiseSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcaNoiseSweep, HomeWorkSeparationRobustToSeed) {
  Rng rng(GetParam());
  std::vector<CellObservation> log;
  SimTime t = 0;
  const std::vector<CellId> home{cell(1), cell(2), cell(3)};
  const std::vector<CellId> work{cell(10), cell(11)};
  const std::vector<CellId> commute{cell(20), cell(21), cell(22)};
  std::vector<CellId> back(commute.rbegin(), commute.rend());
  for (int day = 0; day < 7; ++day) {
    append_dwell(log, t, home, hours(10), rng);
    append_travel(log, t, commute);
    append_dwell(log, t, work, hours(8), rng);
    append_travel(log, t, back);
    append_dwell(log, t, home, hours(5), rng);
  }
  const GcaResult result = run_gca(log);
  EXPECT_EQ(result.places.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcaNoiseSweep,
                         ::testing::Values(1ULL, 7ULL, 13ULL, 42ULL, 1234ULL));

}  // namespace
}  // namespace pmware::algorithms
