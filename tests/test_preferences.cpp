#include "core/preferences.hpp"

#include <gtest/gtest.h>

namespace pmware::core {
namespace {

TEST(Preferences, NoCapMeansRequestedGranularity) {
  const UserPreferences prefs;
  EXPECT_EQ(prefs.effective("ads", Granularity::Room), Granularity::Room);
  EXPECT_EQ(prefs.effective("ads", Granularity::Area), Granularity::Area);
  EXPECT_FALSE(prefs.app_cap("ads").has_value());
}

TEST(Preferences, CapCoarsensRequest) {
  // The paper's example (§2.2.1): an advertisement app wants building-level
  // data but the user permits only area level.
  UserPreferences prefs;
  prefs.set_app_cap("ads", Granularity::Area);
  EXPECT_EQ(prefs.effective("ads", Granularity::Building), Granularity::Area);
  EXPECT_EQ(prefs.effective("ads", Granularity::Room), Granularity::Area);
  EXPECT_EQ(prefs.effective("ads", Granularity::Area), Granularity::Area);
}

TEST(Preferences, CapAboveRequestDoesNotRefine) {
  UserPreferences prefs;
  prefs.set_app_cap("todo", Granularity::Room);
  EXPECT_EQ(prefs.effective("todo", Granularity::Building),
            Granularity::Building);
}

TEST(Preferences, CapsArePerApp) {
  UserPreferences prefs;
  prefs.set_app_cap("ads", Granularity::Area);
  EXPECT_EQ(prefs.effective("lifelog", Granularity::Room), Granularity::Room);
  ASSERT_TRUE(prefs.app_cap("ads").has_value());
  EXPECT_EQ(*prefs.app_cap("ads"), Granularity::Area);
}

TEST(Preferences, CapCanBeTightened) {
  UserPreferences prefs;
  prefs.set_app_cap("ads", Granularity::Building);
  EXPECT_EQ(prefs.effective("ads", Granularity::Room), Granularity::Building);
  prefs.set_app_cap("ads", Granularity::Area);
  EXPECT_EQ(prefs.effective("ads", Granularity::Room), Granularity::Area);
}

TEST(Preferences, MasterSwitchDefaultsOn) {
  const UserPreferences prefs;
  EXPECT_TRUE(prefs.sharing_enabled());
}

TEST(Preferences, MasterSwitchToggles) {
  UserPreferences prefs;
  prefs.set_sharing_enabled(false);
  EXPECT_FALSE(prefs.sharing_enabled());
  prefs.set_sharing_enabled(true);
  EXPECT_TRUE(prefs.sharing_enabled());
}

}  // namespace
}  // namespace pmware::core
