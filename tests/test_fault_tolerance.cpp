// Fault-tolerance battery: fault-plan parsing and deterministic evaluation,
// router-level injection, client backoff + circuit breaker, the PMS
// store-and-forward outbox, and end-to-end outage recovery for a single
// participant (the multi-participant recovery-equivalence proof lives in
// test_study.cpp).
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include "cloud/cloud_instance.hpp"
#include "core/outbox.hpp"
#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "net/client.hpp"
#include "net/router.hpp"

namespace pmware::net {
namespace {

HttpRequest at_time(Method method, std::string path, SimTime now) {
  HttpRequest request;
  request.method = method;
  request.path = std::move(path);
  request.headers[kSimTimeHeader] = std::to_string(now);
  return request;
}

TEST(FaultPlan, ParsesOutageShorthand) {
  const FaultPlan plan = FaultPlan::parse("outage=5d..8d");
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].from, days(5));
  EXPECT_EQ(plan.rules[0].to, days(8));
  EXPECT_DOUBLE_EQ(plan.rules[0].error_prob, 1.0);
  EXPECT_EQ(plan.rules[0].status, kStatusServiceUnavailable);
}

TEST(FaultPlan, ParsesRuleFieldsAndMultipleRules) {
  const FaultPlan plan = FaultPlan::parse(
      "route=/api/users,error=0.25,from=2d,to=12d,status=500;"
      "latency=30s;seed=42");
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].route, "/api/users");
  EXPECT_DOUBLE_EQ(plan.rules[0].error_prob, 0.25);
  EXPECT_EQ(plan.rules[0].from, days(2));
  EXPECT_EQ(plan.rules[0].to, days(12));
  EXPECT_EQ(plan.rules[0].status, 500);
  EXPECT_EQ(plan.rules[1].added_latency_s, 30);
  EXPECT_DOUBLE_EQ(plan.rules[1].error_prob, 0.0);
  EXPECT_EQ(plan.seed, 42u);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ").empty());
  EXPECT_EQ(FaultPlan::parse("").describe(), "none");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("frequency=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("error=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("outage=5d"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("from=3d,to=2d"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("from=xyz"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("status=200"), std::invalid_argument);
}

TEST(FaultPlan, OutageRejectsOnlyInsideWindow) {
  const FaultPlan plan = FaultPlan::parse("outage=1d..2d");
  EXPECT_FALSE(
      plan.evaluate(at_time(Method::Get, "/ping", days(1) - 1)).reject);
  EXPECT_TRUE(plan.evaluate(at_time(Method::Get, "/ping", days(1))).reject);
  EXPECT_TRUE(plan.evaluate(at_time(Method::Get, "/ping", days(2) - 1)).reject);
  EXPECT_FALSE(plan.evaluate(at_time(Method::Get, "/ping", days(2))).reject);
}

TEST(FaultPlan, RouteFilterMatchesGeneralizedPath) {
  // Concrete user ids generalize to ":n", so the filter matches the route
  // shape, never a specific user.
  const FaultPlan plan = FaultPlan::parse("route=/api/users,error=1");
  EXPECT_TRUE(
      plan.evaluate(at_time(Method::Post, "/api/users/7/routes", 0)).reject);
  EXPECT_TRUE(
      plan.evaluate(at_time(Method::Post, "/api/users/12345/contacts", 0)).reject);
  EXPECT_FALSE(plan.evaluate(at_time(Method::Post, "/api/register", 0)).reject);
}

TEST(FaultPlan, LatencyRuleAddsLatencyWithoutRejecting) {
  const FaultPlan plan = FaultPlan::parse("latency=5,from=0,to=1d");
  const FaultOutcome outcome =
      plan.evaluate(at_time(Method::Get, "/ping", 100));
  EXPECT_FALSE(outcome.reject);
  EXPECT_EQ(outcome.added_latency_s, 5);
  EXPECT_EQ(plan.evaluate(at_time(Method::Get, "/ping", days(2))).added_latency_s,
            0);
}

TEST(FaultPlan, EvaluationIsDeterministic) {
  const FaultPlan plan = FaultPlan::parse("error=0.5");
  int rejects = 0;
  for (SimTime t = 0; t < 200; ++t) {
    const HttpRequest request = at_time(Method::Get, "/ping", t);
    const bool first = plan.evaluate(request).reject.has_value();
    for (int repeat = 0; repeat < 3; ++repeat)
      EXPECT_EQ(plan.evaluate(request).reject.has_value(), first);
    rejects += first ? 1 : 0;
  }
  // The rolls hash (time, path, body, attempt) — roughly half should hit.
  EXPECT_GT(rejects, 60);
  EXPECT_LT(rejects, 140);
}

TEST(FaultPlan, RetryAttemptsRollIndependently) {
  // Sim-time freezes during PMS housekeeping, so a retry differs from the
  // original request only by the attempt header — which must be enough to
  // re-roll, or one unlucky request would fail forever.
  const FaultPlan plan = FaultPlan::parse("error=0.5");
  bool saw_reject = false, saw_pass = false;
  HttpRequest request = at_time(Method::Post, "/api/users/3/routes", 1234);
  for (int attempt = 0; attempt < 20; ++attempt) {
    request.headers[kAttemptHeader] = std::to_string(attempt);
    (plan.evaluate(request).reject ? saw_reject : saw_pass) = true;
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_pass);
}

Router make_ping_router(int* handler_calls = nullptr) {
  Router router;
  router.add_route(Method::Get, "/ping",
                   [handler_calls](const HttpRequest&, const PathParams&) {
                     if (handler_calls != nullptr) ++*handler_calls;
                     Json body = Json::object();
                     body.set("pong", true);
                     return HttpResponse::json(std::move(body));
                   });
  return router;
}

TEST(RouterFaults, InjectedErrorShortCircuitsHandler) {
  int handler_calls = 0;
  Router router = make_ping_router(&handler_calls);
  const FaultPlan plan = FaultPlan::parse("outage=0..1d");
  router.set_fault_injector(
      [&plan](const HttpRequest& request) { return plan.evaluate(request); });

  const HttpResponse rejected = router.handle(at_time(Method::Get, "/ping", 0));
  EXPECT_EQ(rejected.status, kStatusServiceUnavailable);
  EXPECT_EQ(handler_calls, 0);

  const HttpResponse healthy =
      router.handle(at_time(Method::Get, "/ping", days(1)));
  EXPECT_TRUE(healthy.ok());
  EXPECT_EQ(handler_calls, 1);
}

TEST(RouterFaults, AddedLatencyRidesTheResponse) {
  Router router = make_ping_router();
  const FaultPlan plan = FaultPlan::parse("latency=7");
  router.set_fault_injector(
      [&plan](const HttpRequest& request) { return plan.evaluate(request); });
  const HttpResponse response = router.handle(at_time(Method::Get, "/ping", 0));
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.sim_latency_s, 7);
}

/// Server whose health is switchable mid-test.
struct FlakyServer {
  Router router;
  bool healthy = true;

  FlakyServer() {
    router.add_route(Method::Get, "/ping",
                     [this](const HttpRequest&, const PathParams&) {
                       if (!healthy)
                         return HttpResponse::error(kStatusServiceUnavailable,
                                                    "down");
                       return HttpResponse::json(Json::object());
                     });
  }
};

TEST(Backoff, DeterministicScheduleWithoutJitter) {
  FlakyServer server;
  server.healthy = false;
  RestClient client(&server.router, NetworkConditions{0.0, 1}, Rng(3));
  client.set_retry_policy({/*max_retries=*/3, /*backoff_base_s=*/2,
                           /*backoff_cap_s=*/60, /*jitter=*/0.0});
  client.set_breaker_policy({0, 0});  // isolate backoff from the breaker

  const HttpResponse response = client.send(at_time(Method::Get, "/ping", 0));
  EXPECT_EQ(response.status, kStatusServiceUnavailable);
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.retries, 3u);
  // 2, 4, 8 simulated seconds before retries 1..3.
  EXPECT_EQ(stats.backoff_s, 14);
}

TEST(Backoff, CapBoundsTheSchedule) {
  FlakyServer server;
  server.healthy = false;
  RestClient client(&server.router, NetworkConditions{0.0, 0}, Rng(3));
  client.set_retry_policy({3, 10, 15, 0.0});
  client.set_breaker_policy({0, 0});
  client.send(at_time(Method::Get, "/ping", 0));
  // 10, then 20 capped to 15, then 15 again.
  EXPECT_EQ(client.stats().backoff_s, 40);
}

TEST(Backoff, JitterStaysWithinFraction) {
  FlakyServer server;
  server.healthy = false;
  RestClient client(&server.router, NetworkConditions{0.0, 0}, Rng(3));
  client.set_retry_policy({3, 2, 60, 0.5});
  client.set_breaker_policy({0, 0});
  client.send(at_time(Method::Get, "/ping", 0));
  const SimDuration backoff = client.stats().backoff_s;
  EXPECT_GE(backoff, 14);      // deterministic floor: 2 + 4 + 8
  EXPECT_LE(backoff, 14 + 7);  // + at most 50% jitter per wait
}

TEST(Backoff, RetryCountersMatchAttemptsUnderLoss) {
  FlakyServer server;
  RestClient client(&server.router, NetworkConditions{1.0, 0}, Rng(3));
  client.set_retry_policy({2, 1, 4, 0.0});
  client.set_breaker_policy({0, 0});
  const HttpResponse response = client.send(at_time(Method::Get, "/ping", 0));
  EXPECT_EQ(response.status, kStatusServiceUnavailable);
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.failures, 3u);
  EXPECT_EQ(stats.retries, 2u);
}

TEST(Breaker, OpensAfterConsecutiveFailuresAndFastFails) {
  FlakyServer server;
  server.healthy = false;
  RestClient client(&server.router, NetworkConditions{0.0, 0}, Rng(3));
  client.set_retry_policy({0, 1, 4, 0.0});
  client.set_breaker_policy({/*failure_threshold=*/3, /*cooldown_s=*/100});

  for (int i = 0; i < 3; ++i)
    client.send(at_time(Method::Get, "/ping", 10));
  EXPECT_EQ(client.breaker_state(), BreakerState::Open);
  EXPECT_EQ(client.stats().breaker_opens, 1u);
  EXPECT_EQ(client.stats().requests, 3u);

  // Inside the cooldown: rejected locally, no network traffic at all.
  const HttpResponse fast = client.send(at_time(Method::Get, "/ping", 50));
  EXPECT_EQ(fast.status, kStatusServiceUnavailable);
  EXPECT_EQ(client.stats().requests, 3u);
  EXPECT_EQ(client.stats().breaker_fast_fails, 1u);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccess) {
  FlakyServer server;
  server.healthy = false;
  RestClient client(&server.router, NetworkConditions{0.0, 0}, Rng(3));
  client.set_retry_policy({5, 1, 4, 0.0});
  client.set_breaker_policy({3, 100});
  for (int i = 0; i < 3; ++i)
    client.send(at_time(Method::Get, "/ping", 10), 0);
  ASSERT_EQ(client.breaker_state(), BreakerState::Open);

  server.healthy = true;
  const std::size_t before = client.stats().requests;
  // Past the cooldown the next send is a single half-open probe — exactly
  // one attempt even though the retry policy allows five.
  const HttpResponse probe = client.send(at_time(Method::Get, "/ping", 200));
  EXPECT_TRUE(probe.ok());
  EXPECT_EQ(client.stats().requests, before + 1);
  EXPECT_EQ(client.breaker_state(), BreakerState::Closed);
}

TEST(Breaker, HalfOpenProbeReopensOnFailure) {
  FlakyServer server;
  server.healthy = false;
  RestClient client(&server.router, NetworkConditions{0.0, 0}, Rng(3));
  client.set_retry_policy({5, 1, 4, 0.0});
  client.set_breaker_policy({3, 100});
  for (int i = 0; i < 3; ++i)
    client.send(at_time(Method::Get, "/ping", 10), 0);
  ASSERT_EQ(client.breaker_state(), BreakerState::Open);

  const std::size_t before = client.stats().requests;
  const HttpResponse probe = client.send(at_time(Method::Get, "/ping", 200));
  EXPECT_EQ(probe.status, kStatusServiceUnavailable);
  EXPECT_EQ(client.stats().requests, before + 1);  // probe, no retries
  EXPECT_EQ(client.breaker_state(), BreakerState::Open);
  EXPECT_EQ(client.stats().breaker_opens, 2u);

  // The re-opened cooldown starts at the probe's time.
  client.send(at_time(Method::Get, "/ping", 250));
  EXPECT_EQ(client.stats().breaker_fast_fails, 1u);
}

TEST(Breaker, SuccessResetsConsecutiveFailureCount) {
  FlakyServer server;
  RestClient client(&server.router, NetworkConditions{0.0, 0}, Rng(3));
  client.set_retry_policy({0, 1, 4, 0.0});
  client.set_breaker_policy({3, 100});
  for (int round = 0; round < 4; ++round) {
    server.healthy = false;
    client.send(at_time(Method::Get, "/ping", 10));
    client.send(at_time(Method::Get, "/ping", 10));
    server.healthy = true;
    EXPECT_TRUE(client.send(at_time(Method::Get, "/ping", 10)).ok());
  }
  EXPECT_EQ(client.breaker_state(), BreakerState::Closed);
  EXPECT_EQ(client.stats().breaker_opens, 0u);
}

}  // namespace
}  // namespace pmware::net

namespace pmware::core {
namespace {

TEST(Outbox, DrainsFifoAndStopsAtFirstFailure) {
  SyncOutbox outbox;
  outbox.enqueue(SyncKind::ProfileDay, 0, 0, 10);
  outbox.enqueue(SyncKind::Route, 5, 0, 11);
  outbox.enqueue(SyncKind::ProfileDay, 1, 0, 12);

  std::vector<std::uint64_t> delivered;
  const std::size_t n = outbox.drain([&](const OutboxEntry& entry) {
    if (entry.kind == SyncKind::ProfileDay && entry.key == 1) return false;
    delivered.push_back(entry.key);
    return true;
  });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 5}));
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox.entries().front().attempts, 1);

  // Next drain retries the failed entry first; attempts accumulate.
  outbox.drain([](const OutboxEntry&) { return false; });
  EXPECT_EQ(outbox.entries().front().attempts, 2);
  EXPECT_EQ(outbox.drain([](const OutboxEntry&) { return true; }), 1u);
  EXPECT_TRUE(outbox.empty());
}

TEST(Outbox, DedupsByKindAndKey) {
  SyncOutbox outbox;
  EXPECT_TRUE(outbox.enqueue(SyncKind::ProfileDay, 3, 0, 0).appended);
  EXPECT_FALSE(outbox.enqueue(SyncKind::ProfileDay, 3, 0, 1).appended);
  EXPECT_TRUE(outbox.enqueue(SyncKind::PlaceUpsert, 3, 0, 2).appended);
  EXPECT_EQ(outbox.size(), 2u);
}

TEST(Outbox, EncounterBatchesMergeIntoOneRange) {
  SyncOutbox outbox;
  EXPECT_TRUE(outbox.enqueue(SyncKind::EncounterBatch, 4, 7, 0).appended);
  EXPECT_FALSE(outbox.enqueue(SyncKind::EncounterBatch, 7, 12, 1).appended);
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox.entries().front().key, 4u);
  EXPECT_EQ(outbox.entries().front().key2, 12u);
}

TEST(Outbox, OverflowEvictsOldest) {
  SyncOutbox outbox(OutboxConfig{2});
  outbox.enqueue(SyncKind::ProfileDay, 0, 0, 0);
  outbox.enqueue(SyncKind::ProfileDay, 1, 0, 1);
  const auto result = outbox.enqueue(SyncKind::ProfileDay, 2, 0, 2);
  EXPECT_TRUE(result.appended);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(result.evicted->key, 0u);
  EXPECT_EQ(outbox.size(), 2u);
  EXPECT_EQ(outbox.entries().front().key, 1u);
}

TEST(Outbox, RemoveDropsPendingEntry) {
  SyncOutbox outbox;
  outbox.enqueue(SyncKind::PlaceUpsert, 9, 0, 0);
  outbox.enqueue(SyncKind::PlaceDelete, 9, 0, 0);
  EXPECT_TRUE(outbox.remove(SyncKind::PlaceUpsert, 9));
  EXPECT_FALSE(outbox.remove(SyncKind::PlaceUpsert, 9));
  EXPECT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox.entries().front().kind, SyncKind::PlaceDelete);
}

/// One participant, full stack, optional cloud fault plan.
struct FaultHarness {
  explicit FaultHarness(int days_n, const std::string& fault_spec = "",
                        std::size_t outbox_capacity = 256) {
    Rng world_rng(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng(5);
    mobility::ScheduleConfig sc;
    sc.days = days_n;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));

    cloud::CloudConfig cc;
    cc.fault_plan = net::FaultPlan::parse(fault_spec);
    cloud.emplace(cc, cloud::GeoLocationService(world->cell_location_db()),
                  Rng(3));

    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(*trace), sensing::DeviceConfig{},
        Rng(7));
    auto client = std::make_unique<net::RestClient>(
        &cloud->router(), net::NetworkConditions{0.0, 1}, Rng(11));
    PmsConfig config;
    config.outbox.capacity = outbox_capacity;
    pms.emplace(std::move(device), config, std::move(client), Rng(13));
  }

  void run_study(int days_n) {
    pms->register_with_cloud(0);
    pms->run(TimeWindow{0, days(days_n)});
    pms->shutdown(days(days_n));
  }

  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
  std::optional<cloud::CloudInstance> cloud;
  std::optional<PmwareMobileService> pms;
};

TEST(FaultRecovery, OutageDrainsToIdenticalCloudState) {
  constexpr int kDays = 3;
  FaultHarness clean(kDays);
  clean.run_study(kDays);
  const std::uint64_t clean_digest = clean.cloud->storage().content_digest();
  ASSERT_NE(clean_digest, 0u);
  EXPECT_EQ(clean.pms->stats().sync_failures, 0u);

  // Same seeds, but the cloud is down across the day-1 housekeeping tick
  // (and day 1's GCA offloads). Everything parks in the outbox and replays
  // at the day-2 tick — the final cloud bytes must match the clean run.
  FaultHarness faulted(kDays, "outage=1d..2d");
  faulted.run_study(kDays);
  const PmsStats stats = faulted.pms->stats();
  EXPECT_GT(stats.sync_failures, 0u);
  EXPECT_GT(stats.outbox_recovered, 0u);
  EXPECT_EQ(stats.outbox_pending, 0u);
  EXPECT_EQ(stats.outbox_evicted, 0u);
  EXPECT_EQ(faulted.cloud->storage().content_digest(), clean_digest);
  EXPECT_EQ(faulted.cloud->storage().stats(), clean.cloud->storage().stats());
}

TEST(FaultRecovery, PerRouteErrorsDrainToIdenticalCloudState) {
  constexpr int kDays = 3;
  FaultHarness clean(kDays);
  clean.run_study(kDays);

  FaultHarness faulted(kDays,
                       "route=/api/users,error=0.6,from=12h,to=2d;"
                       "latency=2,from=12h,to=2d");
  faulted.run_study(kDays);
  EXPECT_EQ(faulted.pms->stats().outbox_pending, 0u);
  EXPECT_EQ(faulted.cloud->storage().content_digest(),
            clean.cloud->storage().content_digest());
}

TEST(FaultRecovery, TinyOutboxEvictsOldestAndCounts) {
  constexpr int kDays = 3;
  // Cloud dead for the whole run after registration: every sync parks, and
  // a 2-entry outbox must overflow.
  FaultHarness faulted(kDays, "outage=1s..30d", /*outbox_capacity=*/2);
  faulted.run_study(kDays);
  const PmsStats stats = faulted.pms->stats();
  EXPECT_GT(stats.outbox_evicted, 0u);
  EXPECT_LE(stats.outbox_pending, 2u);
  EXPECT_GT(stats.sync_failures, 0u);
}

TEST(FaultRecovery, SteadyStateHousekeepingSkipsCleanDays) {
  // Dirty-day tracking: after a clean run, profile PUTs must be far fewer
  // than the old "every day from 0, every tick" quadratic schedule, yet
  // every non-empty day must exist on the cloud.
  constexpr int kDays = 4;
  FaultHarness h(kDays);
  h.run_study(kDays);
  const PmsStats stats = h.pms->stats();
  EXPECT_EQ(stats.outbox_pending, 0u);
  const auto* user = h.cloud->storage().find_user(*h.pms->user_id());
  ASSERT_NE(user, nullptr);
  std::size_t non_empty_days = 0;
  for (std::int64_t day = 0; day < kDays; ++day)
    if (!h.pms->profile_for(day).empty()) ++non_empty_days;
  EXPECT_EQ(user->profiles.size(), non_empty_days);
  // Old behavior: every housekeeping tick re-PUT every day so far —
  // dozens of PUTs per day. New behavior: one PUT per day plus the
  // occasional recluster-refined re-PUT.
  EXPECT_LT(stats.profile_syncs, static_cast<std::size_t>(kDays) * 4);
  EXPECT_GE(stats.profile_syncs, non_empty_days);
}

}  // namespace
}  // namespace pmware::core
