// Life-log visualization (paper §3, Figure 4): the mobility-history app that
// ships with PMWare. Renders
//   (a) the map of discovered places (Figure 4a / 5b) as ASCII and as an
//       SVG file written next to the binary,
//   (b) per-day timelines of the user's stays (Figure 4c), and
//   (c) exports the visit log and place records as JSONL (the app's local
//       storage), reloading them to show the round trip.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/lifelog.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/persistence.hpp"
#include "core/pms.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"
#include "viz/map_render.hpp"

using namespace pmware;

int main() {
  set_log_level(LogLevel::Warn);
  Rng rng(31);
  world::WorldConfig world_config;
  auto world = world::generate_world(world_config, rng);
  auto participants = mobility::make_participants(*world, 1, rng);
  mobility::ScheduleConfig schedule;
  schedule.days = 5;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], schedule, rng);

  cloud::GeoLocationService geoloc(world->cell_location_db());
  geoloc.set_ap_db(world->ap_location_db());
  cloud::CloudInstance cloud(cloud::CloudConfig{}, std::move(geoloc),
                             rng.fork(1));
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(2));
  auto client = std::make_unique<net::RestClient>(
      &cloud.router(), net::NetworkConditions{0.0, 1}, rng.fork(3));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(4));
  pms.register_with_cloud(0);

  apps::LifeLog lifelog;
  lifelog.connect(pms);

  for (int day = 0; day < schedule.days; ++day) {
    pms.run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
    for (const auto& visit : pms.inference().visit_log()) {
      const core::PlaceRecord* record = pms.places().get(visit.uid);
      if (record == nullptr || !record->label.empty()) continue;
      const SimTime mid = (visit.window.begin + visit.window.end) / 2;
      if (const auto truth = trace.place_at(mid))
        lifelog.tag(visit.uid, world::to_string(world->place(*truth).category),
                    start_of_day(day + 1));
    }
  }
  pms.shutdown(days(schedule.days));

  // (a) The place map. Positions come back from the cloud's geo-location
  // resolution during sync.
  viz::MapExtent extent{world->config().origin, world->config().extent_m};
  std::vector<viz::MapMarker> markers;
  const auto* user_store = cloud.storage().find_user(1);
  if (user_store != nullptr) {
    for (const auto& [uid, record] : user_store->places) {
      if (!record.location) continue;
      viz::MapMarker marker;
      marker.position = *record.location;
      marker.label = record.label.empty() ? "(untagged)" : record.label;
      marker.glyph = record.label.empty() ? 'o' : record.label[0];
      marker.color = record.label == "home" ? "#cc4444" : "#4466cc";
      markers.push_back(std::move(marker));
    }
  }
  std::printf("--- discovered places (glyph = first letter of label) ---\n");
  std::printf("%s", viz::render_ascii_map(extent, markers, 60, 20).c_str());

  const std::string svg = viz::render_svg_map(extent, markers);
  std::ofstream("lifelog_places.svg") << svg;
  std::printf("SVG map written to lifelog_places.svg (%zu bytes)\n\n",
              svg.size());

  // (b) Day timelines from the visit log.
  for (int day = 1; day <= 2; ++day) {
    std::vector<viz::TimelineEntry> entries;
    for (const auto& visit : pms.inference().visit_log()) {
      const core::PlaceRecord* record = pms.places().get(visit.uid);
      std::string label = record != nullptr && !record->label.empty()
                              ? record->label
                              : "place-" + std::to_string(visit.uid);
      entries.push_back({visit.window, label,
                         label.empty() ? '?' : static_cast<char>(
                                                   std::toupper(label[0]))});
    }
    std::printf("%s\n", viz::render_day_timeline(day, entries).c_str());
  }

  // (c) Persistence round trip: the app's local storage.
  std::stringstream visits_file, places_file;
  core::write_visit_log(visits_file, pms.inference().visit_log());
  core::write_place_records(places_file, pms.places());
  const auto visits_back = core::read_visit_log(visits_file);
  const auto places_back = core::read_place_records(places_file);
  std::printf("persisted and reloaded %zu visits and %zu place records "
              "(JSONL)\n",
              visits_back.size(), places_back.size());
  std::printf("%s", lifelog.render_place_list().c_str());
  return 0;
}
