// Quickstart: the §2.4 use case end-to-end.
//
// Builds a synthetic city, simulates one user for three days, runs the
// PMWare Mobile Service against an in-process Cloud Instance, connects a
// To-Do app that wants building-level place alerts between 9 AM and 6 PM,
// and prints every reminder that fires plus the discovered-place list.
#include <cstdio>

#include "apps/lifelog.hpp"
#include "apps/todo_reminder.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/schedule.hpp"
#include "sensing/device.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"
#include "util/logging.hpp"
#include "world/world.hpp"

using namespace pmware;

int main() {
  set_log_level(LogLevel::Warn);
  Rng rng(7);

  // 1. A city to live in and a participant to follow.
  world::WorldConfig world_config;
  auto world = world::generate_world(world_config, rng);
  auto participants = mobility::make_participants(*world, 1, rng);
  const mobility::Participant& user = participants.front();

  mobility::ScheduleConfig schedule;
  schedule.days = 3;
  const mobility::Trace trace =
      mobility::build_trace(*world, user, schedule, rng);
  std::printf("ground truth: %zu visits, %zu trips over %d days\n",
              trace.visits().size(), trace.trips().size(), schedule.days);

  // 2. The PMWare Cloud Instance (in-process REST server).
  cloud::CloudInstance cloud(cloud::CloudConfig{},
                             cloud::GeoLocationService(world->cell_location_db()),
                             rng.fork(1));

  // 3. The PMWare Mobile Service on the user's phone.
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(2));
  auto client = std::make_unique<net::RestClient>(
      &cloud.router(), net::NetworkConditions{0.01, 1}, rng.fork(3));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(4));
  if (!pms.register_with_cloud(0)) {
    std::printf("cloud registration failed\n");
    return 1;
  }

  // 4. Connected applications delegate their place sensing to PMWare.
  apps::LifeLog lifelog;
  lifelog.connect(pms);

  apps::TodoReminder todo("workplace", DailyWindow{hours(9), hours(18)});
  todo.add_todo({"Prepare stand-up notes", /*on_enter=*/true});
  todo.add_todo({"Submit timesheet", /*on_enter=*/false});
  todo.connect(pms);

  // 5. Live the three days. Day boundaries trigger GCA offloading to the
  //    cloud, profile sync, and token refresh automatically.
  for (int day = 0; day < schedule.days; ++day) {
    pms.run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
    // The user tags the workplace once it shows up in the life-log UI
    // (labels are what the To-Do app keys on).
    for (core::PlaceUid uid : lifelog.untagged_places()) {
      const core::PlaceRecord* record = pms.places().get(uid);
      if (record == nullptr || record->visit_count == 0) continue;
      // Tag every discovered place with a guess from the visit pattern: the
      // place occupied at 11:00 on a weekday is "workplace", the one at
      // 03:00 is "home".
      const auto& log = pms.inference().visit_log();
      for (const auto& visit : log) {
        if (visit.uid != uid) continue;
        const SimDuration tod = time_of_day(visit.window.begin);
        if (tod > hours(7) && tod < hours(12) && !is_weekend(visit.window.begin))
          lifelog.tag(uid, "workplace", start_of_day(day + 1));
        else if (visit.window.length() > hours(6))
          lifelog.tag(uid, "home", start_of_day(day + 1));
      }
    }
  }
  pms.shutdown(start_of_day(schedule.days));

  // 6. What did PMWare see?
  std::printf("\ndiscovered places (%zu):\n%s", lifelog.discovered_places(),
              lifelog.render_place_list().c_str());

  std::printf("reminders fired: %zu on enter, %zu on exit\n",
              todo.enter_alerts(), todo.exit_alerts());
  for (const auto& fired : todo.fired())
    std::printf("  [%s] %s (%s)\n", format_time(fired.t).c_str(),
                fired.text.c_str(), fired.entered ? "arrived" : "left");

  std::printf("\nenergy: %s\n", pms.meter().summary().c_str());
  std::printf("implied battery life at this duty cycle: %.1f h\n",
              pms.meter().implied_battery_duration_s(days(schedule.days)) /
                  3600.0);
  std::printf("cloud: %zu profile syncs, %zu GCA offloads\n",
              pms.stats().profile_syncs, pms.stats().gca_offloads);

  // 7. Everything above was also traced and metered: the diagnostics digest
  //    is the human-readable view of what the cloud serves on GET /healthz
  //    and GET /tracez (the full registry is one GET /metrics away).
  std::printf("\n%s", telemetry::diagnostics_summary(telemetry::tracer(),
                                                     telemetry::registry())
                          .c_str());
  return 0;
}
