// Digest probe: prints the deployment study's cloud content digest (exact
// uint64) plus per-participant energy bits across the shard/thread/cache
// matrix and the default fault plans. Used to assert byte-identical results
// across code changes (run on two builds, diff the output).
#include <cstdio>

#include "net/fault.hpp"
#include "study/deployment.hpp"

using namespace pmware;

namespace {

void report(const char* tag, const study::StudyResult& r) {
  unsigned long long joules_hash = 1469598103934665603ull;  // FNV-1a
  for (const auto& p : r.participants) {
    unsigned long long bits;
    static_assert(sizeof(bits) == sizeof(p.sensing_joules));
    __builtin_memcpy(&bits, &p.sensing_joules, sizeof(bits));
    joules_hash = (joules_hash ^ bits) * 1099511628211ull;
  }
  std::printf("%s digest=%llu discovered=%zu joules_hash=%llu\n", tag,
              static_cast<unsigned long long>(r.storage_digest),
              r.total_discovered(), joules_hash);
  std::fflush(stdout);
}

}  // namespace

int main() {
  for (const int shards : {1, 16}) {
    for (const int threads : {1, 8}) {
      for (const bool cache : {true, false}) {
        study::StudyConfig config;
        config.shards = shards;
        config.threads = threads;
        config.cache = cache;
        char tag[64];
        std::snprintf(tag, sizeof(tag), "shards=%d threads=%d cache=%d",
                      shards, threads, cache ? 1 : 0);
        report(tag, study::DeploymentStudy(config).run());
      }
    }
  }
  const char* plans[] = {
      "outage=5d..8d",
      "route=/api/users,error=0.25,from=2d,to=12d",
      "latency=2,from=0,to=12d",
  };
  for (const char* plan : plans) {
    study::StudyConfig config;
    config.threads = 8;
    config.fault_plan = net::FaultPlan::parse(plan);
    char tag[96];
    std::snprintf(tag, sizeof(tag), "fault=%s", plan);
    report(tag, study::DeploymentStudy(config).run());
  }
  return 0;
}
