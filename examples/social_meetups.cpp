// Social discovery (paper §2.2.2): "detects physical proximity amongst users
// via their Bluetooth data ... allows targeted sensing of social contacts
// such as monitoring contacts only at the user's workplace."
//
// Two office workers share a workplace. Alice's device runs a meetup app
// that asks PMWare to watch for social contacts — but only at her workplace.
// The harness supplies all participants' ground-truth positions as the
// Bluetooth peer oracle, and the report lists who Alice met, where, when.
#include <cstdio>

#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"

using namespace pmware;

int main() {
  set_log_level(LogLevel::Warn);
  Rng rng(11);
  world::WorldConfig world_config;
  auto world = world::generate_world(world_config, rng);
  auto participants = mobility::make_participants(*world, 6, rng);

  // Force participants 0 and 1 to share a workplace so they actually meet.
  participants[1].anchor = participants[0].anchor;
  participants[1].archetype = participants[0].archetype =
      mobility::Archetype::OfficeWorker;

  mobility::ScheduleConfig schedule;
  schedule.days = 5;
  std::vector<mobility::Trace> traces;
  for (const auto& participant : participants) {
    Rng trace_rng = rng.fork(50 + participant.id);
    traces.push_back(
        mobility::build_trace(*world, participant, schedule, trace_rng));
  }

  cloud::CloudInstance cloud(cloud::CloudConfig{},
                             cloud::GeoLocationService(world->cell_location_db()),
                             rng.fork(1));
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(traces[0]), sensing::DeviceConfig{},
      rng.fork(2));
  auto client = std::make_unique<net::RestClient>(
      &cloud.router(), net::NetworkConditions{0.0, 1}, rng.fork(3));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(4));
  pms.register_with_cloud(0);

  // Everyone else's ground-truth position feeds the Bluetooth oracle.
  pms.set_peer_provider([&](SimTime t) {
    std::vector<std::pair<world::DeviceId, geo::LatLng>> peers;
    for (std::size_t i = 1; i < traces.size(); ++i)
      peers.push_back({participants[i].id, traces[i].position_at(t)});
    return peers;
  });

  // A place consumer keeps building-level discovery alive...
  core::PlaceAlertRequest place_request;
  place_request.app = "meetup";
  place_request.granularity = core::Granularity::Building;
  pms.apps().register_place_alerts(place_request);

  // Day 0 discovers the workplace; then the meetup app targets it.
  pms.run(TimeWindow{0, days(1)});
  std::optional<core::PlaceUid> workplace_uid;
  SimDuration longest_day_dwell = 0;
  for (const auto& visit : pms.inference().visit_log()) {
    const SimDuration tod = time_of_day(visit.window.begin);
    if (tod < hours(7) || tod > hours(12)) continue;
    if (visit.window.length() > longest_day_dwell) {
      longest_day_dwell = visit.window.length();
      workplace_uid = visit.uid;
    }
  }
  if (!workplace_uid) {
    std::printf("no workplace discovered on day 0 — nothing to target\n");
    return 1;
  }
  pms.tag_place(*workplace_uid, "workplace", days(1));
  std::printf("workplace discovered as place #%llu; targeting social scans "
              "there only\n\n",
              static_cast<unsigned long long>(*workplace_uid));

  core::SocialRequest social_request;
  social_request.app = "meetup";
  social_request.only_at_place = *workplace_uid;
  pms.apps().register_social(social_request);

  pms.run(TimeWindow{days(1), days(schedule.days)});
  pms.shutdown(days(schedule.days));

  std::printf("--- encounters (days 1-%d) ---\n", schedule.days - 1);
  for (const auto& encounter : pms.inference().encounter_log()) {
    std::printf("  met %-16s at place #%llu  [%s .. %s]  (%s)\n",
                participants[encounter.contact].name.c_str(),
                static_cast<unsigned long long>(encounter.place),
                format_time(encounter.window.begin).c_str(),
                format_time(encounter.window.end).c_str(),
                format_duration(encounter.window.length()).c_str());
  }
  std::printf("\n%zu encounters total; colleague %s shares the workplace, so "
              "they dominate.\n",
              pms.inference().encounter_log().size(),
              participants[1].name.c_str());
  std::printf("Bluetooth scans: %zu (only while at the targeted place — "
              "targeted sensing)\n",
              pms.meter().sample_count(energy::Interface::Bluetooth));

  // The encounters were synced into the day profiles; ask the cloud back.
  std::size_t cloud_encounters = 0;
  if (const auto* user = cloud.storage().find_user(1)) {
    for (const auto& [day, profile] : user->profiles)
      cloud_encounters += profile.encounters.size();
  }
  std::printf("encounters stored in cloud profiles: %zu\n", cloud_encounters);
  return 0;
}
