// PlaceADs campaign (paper §3-§4): contextual advertisements pushed on place
// visits, the paper's proof-of-concept connected application.
//
// Four participants live a week with PMWare + PlaceADs. Participants tag
// their places in the life-log UI as they discover them (that is what makes
// ads *targeted*), and every impression is judged by the built-in relevance
// model. The report shows the like:dislike ratio overall and per ad
// category — the paper reports 17:3 overall.
#include <cstdio>

#include <map>

#include "apps/lifelog.hpp"
#include "apps/placeads.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"

using namespace pmware;

namespace {

constexpr int kParticipants = 4;
constexpr int kDays = 7;

}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  Rng rng(42);
  Rng world_rng = rng.fork(1);
  world::WorldConfig world_config;
  auto world = world::generate_world(world_config, world_rng);
  Rng prng = rng.fork(2);
  const auto participants =
      mobility::make_participants(*world, kParticipants, prng);

  cloud::GeoLocationService geoloc(world->cell_location_db());
  geoloc.set_ap_db(world->ap_location_db());
  cloud::CloudInstance cloud(cloud::CloudConfig{}, std::move(geoloc),
                             rng.fork(3));

  std::size_t total_likes = 0, total_dislikes = 0, targeted = 0, shotgun = 0;
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_category;

  for (const auto& participant : participants) {
    Rng p_rng = rng.fork(100 + participant.id);
    Rng trace_rng = p_rng.fork(1);
    mobility::ScheduleConfig schedule;
    schedule.days = kDays;
    const mobility::Trace trace =
        mobility::build_trace(*world, participant, schedule, trace_rng);

    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
        p_rng.fork(2));
    auto client = std::make_unique<net::RestClient>(
        &cloud.router(), net::NetworkConditions{0.01, 1}, p_rng.fork(3));
    core::PmsConfig pms_config;
    pms_config.imei = "35824005" + std::to_string(1000000 + participant.id);
    pms_config.email = participant.name + "@campaign.example";
    core::PmwareMobileService pms(std::move(device), pms_config,
                                  std::move(client), p_rng.fork(4));
    pms.register_with_cloud(0);

    apps::LifeLog lifelog;
    lifelog.connect(pms);
    apps::PlaceAds ads(apps::AdInventory::default_catalogue(), p_rng.fork(5));
    ads.connect(pms);

    for (int day = 0; day < kDays; ++day) {
      pms.run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
      // Evening tagging session: the participant labels new places by what
      // they know them to be (ground truth stands in for their memory).
      for (const auto& visit : pms.inference().visit_log()) {
        const core::PlaceRecord* record = pms.places().get(visit.uid);
        if (record == nullptr || !record->label.empty()) continue;
        const SimTime mid = (visit.window.begin + visit.window.end) / 2;
        if (const auto truth = trace.place_at(mid))
          lifelog.tag(visit.uid, world::to_string(world->place(*truth).category),
                      start_of_day(day + 1));
      }
    }
    pms.shutdown(days(kDays));

    std::printf("%s: %zu impressions, %zu likes, %zu dislikes\n",
                participant.name.c_str(), ads.impressions().size(), ads.likes(),
                ads.dislikes());
    total_likes += ads.likes();
    total_dislikes += ads.dislikes();
    for (const auto& impression : ads.impressions()) {
      auto& [likes, count] = per_category[impression.ad.category];
      if (impression.liked) ++likes;
      ++count;
      if (impression.targeted) ++targeted;
      else ++shotgun;
    }
  }

  std::printf("\n--- campaign report (%d participants x %d days) ---\n",
              kParticipants, kDays);
  std::printf("%-14s %8s %8s %8s\n", "ad category", "shown", "liked", "rate");
  for (const auto& [category, stats] : per_category) {
    std::printf("%-14s %8zu %8zu %7.0f%%\n", category.c_str(), stats.second,
                stats.first,
                100.0 * static_cast<double>(stats.first) /
                    static_cast<double>(stats.second));
  }
  const std::size_t impressions = total_likes + total_dislikes;
  std::printf("\ntargeted %zu / shotgun %zu impressions\n", targeted, shotgun);
  if (impressions > 0) {
    const double like20 = 20.0 * static_cast<double>(total_likes) /
                          static_cast<double>(impressions);
    std::printf("overall like:dislike = %.1f : %.1f  (paper: 17 : 3)\n", like20,
                20 - like20);
  }
  return 0;
}
