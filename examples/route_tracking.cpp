// Route tracking (paper §2.1.2, §2.2.2): low-accuracy mode records the cell
// sequence of each journey for free (GSM is already sampled); high-accuracy
// mode turns GPS on while moving. Repeated commutes collapse into canonical
// routes with usage frequency, retrievable through the cloud Routes API.
#include <cstdio>

#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "geo/polyline.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"

using namespace pmware;

int main() {
  set_log_level(LogLevel::Warn);
  Rng rng(23);
  world::WorldConfig world_config;
  auto world = world::generate_world(world_config, rng);
  auto participants = mobility::make_participants(*world, 1, rng);
  mobility::ScheduleConfig schedule;
  schedule.days = 5;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], schedule, rng);

  cloud::CloudInstance cloud(cloud::CloudConfig{},
                             cloud::GeoLocationService(world->cell_location_db()),
                             rng.fork(1));
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(2));
  auto client = std::make_unique<net::RestClient>(
      &cloud.router(), net::NetworkConditions{0.0, 1}, rng.fork(3));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(4));
  pms.register_with_cloud(0);

  // A health app wants exact exposure paths: high-accuracy route tracking.
  core::PlaceAlertRequest place_request;
  place_request.app = "health";
  place_request.granularity = core::Granularity::Building;
  pms.apps().register_place_alerts(place_request);
  int completed_routes = 0;
  core::IntentFilter filter;
  filter.actions = {core::actions::kRouteCompleted};
  const auto receiver = pms.bus().register_receiver(
      filter, [&completed_routes](const core::Intent&) { ++completed_routes; });

  core::RouteTrackingRequest route_request;
  route_request.app = "health";
  route_request.accuracy = core::RouteAccuracy::High;
  route_request.receiver = receiver;
  pms.apps().register_route_tracking(route_request);

  pms.run(TimeWindow{0, days(schedule.days)});
  pms.shutdown(days(schedule.days));

  std::printf("--- canonical routes after %d days ---\n", schedule.days);
  const auto& store = pms.inference().routes();
  for (std::size_t i = 0; i < store.routes().size(); ++i) {
    const auto& route = store.routes()[i];
    const auto& rep = route.representative;
    const double gps_len = geo::polyline_length_m(rep.gps.points);
    std::printf(
        "  route #%zu: place %llu -> %llu, used %zux, %zu GPS points "
        "(%.1f km), %zu cells\n",
        i, static_cast<unsigned long long>(rep.from_place),
        static_cast<unsigned long long>(rep.to_place), route.use_count,
        rep.gps.points.size(), gps_len / 1000.0, rep.cells.cells.size());
  }

  // The daily commute should have collapsed into a reused canonical route.
  std::size_t max_use = 0;
  for (const auto& route : store.routes())
    max_use = std::max(max_use, route.use_count);
  std::printf("\nmost-used route seen %zu times (the commute)\n", max_use);
  std::printf("route-completed intents delivered to the app: %d\n",
              completed_routes);
  std::printf("GPS samples: %zu — only while moving, never while parked\n",
              pms.meter().sample_count(energy::Interface::Gps));
  std::printf("energy: %s\n", pms.meter().summary().c_str());

  // Retrieve the same data through the cloud Routes API, the way another
  // service would.
  net::HttpRequest request;
  request.method = net::Method::Get;
  request.path = "/api/users/1/routes";
  request.headers["X-Sim-Time"] = std::to_string(days(schedule.days));
  request.headers["Authorization"] =
      "Bearer " + pms.client()->auth_token();
  const net::HttpResponse response = cloud.router().handle(request);
  if (response.ok())
    std::printf("cloud Routes API reports %zu canonical routes\n",
                response.body.at("routes").size());
  return 0;
}
