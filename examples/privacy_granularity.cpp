// Privacy controls (paper §2.2.1): per-app granularity permissions and the
// master switch.
//
// Two apps connect: a life-log the user trusts (building granularity) and an
// advertising app the user restricts to area level. The example prints what
// each app actually receives for the same place events, then flips the
// master switch mid-study and shows the silence.
#include <cstdio>

#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"

using namespace pmware;

namespace {

struct Receiver {
  const char* name;
  std::size_t events = 0;
  std::size_t with_place_uid = 0;
  std::size_t with_label = 0;

  void on_intent(const core::Intent& intent) {
    ++events;
    if (intent.extras.contains("place_uid")) ++with_place_uid;
    if (intent.extras.contains("label")) ++with_label;
  }
};

}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  Rng rng(7);
  world::WorldConfig world_config;
  auto world = world::generate_world(world_config, rng);
  auto participants = mobility::make_participants(*world, 1, rng);
  mobility::ScheduleConfig schedule;
  schedule.days = 3;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], schedule, rng);

  cloud::CloudInstance cloud(cloud::CloudConfig{},
                             cloud::GeoLocationService(world->cell_location_db()),
                             rng.fork(1));
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(2));
  auto client = std::make_unique<net::RestClient>(
      &cloud.router(), net::NetworkConditions{0.0, 1}, rng.fork(3));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(4));
  pms.register_with_cloud(0);

  // The paper's scenario: the ads app *asks* for building granularity, the
  // user grants only area level.
  pms.preferences().set_app_cap("ads", core::Granularity::Area);

  Receiver lifelog_rx{"lifelog"};
  Receiver ads_rx{"ads"};
  core::IntentFilter filter;
  filter.actions = {core::actions::kPlaceEnter, core::actions::kPlaceExit};
  const auto lifelog_id = pms.bus().register_receiver(
      filter, [&](const core::Intent& i) { lifelog_rx.on_intent(i); });
  const auto ads_id = pms.bus().register_receiver(
      filter, [&](const core::Intent& i) { ads_rx.on_intent(i); });

  core::PlaceAlertRequest lifelog_request;
  lifelog_request.app = "lifelog";
  lifelog_request.granularity = core::Granularity::Building;
  lifelog_request.receiver = lifelog_id;
  pms.apps().register_place_alerts(lifelog_request);

  core::PlaceAlertRequest ads_request;
  ads_request.app = "ads";
  ads_request.granularity = core::Granularity::Building;  // what it *wants*
  ads_request.receiver = ads_id;
  pms.apps().register_place_alerts(ads_request);

  // Days 0-1: normal operation. Tag places so labels exist to be withheld.
  for (int day = 0; day < 2; ++day) {
    pms.run(TimeWindow{start_of_day(day), start_of_day(day + 1)});
    for (const auto& visit : pms.inference().visit_log()) {
      const core::PlaceRecord* record = pms.places().get(visit.uid);
      if (record == nullptr || !record->label.empty()) continue;
      const SimTime mid = (visit.window.begin + visit.window.end) / 2;
      if (const auto truth = trace.place_at(mid))
        pms.tag_place(visit.uid, world::to_string(world->place(*truth).category),
                      start_of_day(day + 1));
    }
  }

  std::printf("--- after 2 days of normal operation ---\n");
  for (const Receiver* rx : {&lifelog_rx, &ads_rx}) {
    std::printf(
        "%-8s received %3zu events: %3zu with exact place uid, %3zu with "
        "label\n",
        rx->name, rx->events, rx->with_place_uid, rx->with_label);
  }
  std::printf("=> the area-capped ads app sees events but never an exact "
              "place identity or label.\n\n");

  // Day 2: the user flips the master switch ("single control to switch off
  // all place-centric applications").
  const std::size_t lifelog_before = lifelog_rx.events;
  const std::size_t ads_before = ads_rx.events;
  pms.preferences().set_sharing_enabled(false);
  pms.run(TimeWindow{start_of_day(2), start_of_day(3)});
  pms.shutdown(days(3));

  std::printf("--- day 2 with the master switch OFF ---\n");
  std::printf("lifelog: +%zu events, ads: +%zu events\n",
              lifelog_rx.events - lifelog_before, ads_rx.events - ads_before);
  std::printf("WiFi samples on day 2: %s (sensing wound down with demand)\n",
              pms.meter().summary().c_str());
  return 0;
}
