// studyctl — command-line driver for the deployment-study harness.
//
// Runs a configurable PMWare deployment study and writes a JSON report plus
// an SVG place map, so parameter sweeps can be scripted without recompiling:
//
//   studyctl [--participants N] [--days D] [--seed S] [--threads T]
//            [--shards N] [--region india|switzerland] [--no-wifi] [--no-ads]
//            [--cache on|off] [--fault-plan SPEC]
//            [--progress] [--no-timeseries] [--no-alerts]
//            [--log-level debug|info|warn|error|off]
//            [--report FILE.json] [--map FILE.svg]
//
// --progress prints a live line to stderr while the study runs:
// participant-days done, throughput, ETA, and how many alert rules are
// firing. The sim-time series recorder and SLO alert engine are on by
// default (they never perturb results — the content digest is identical
// with them off); --no-timeseries / --no-alerts disable them.
//
// --fault-plan scripts cloud-side failures (see DESIGN.md "Failure model &
// recovery"), e.g. "outage=5d..8d" or
// "route=/api/users,error=0.3,from=2d,to=11d;latency=1". The sync
// reliability digest printed after the run shows how much traffic failed,
// what the outbox recovered, and whether anything was lost.
//
// --churn [SPEC] adds device-side lifecycle rules (crash/restart chaos,
// privacy wipes, late joins) on top of --fault-plan, e.g.
// "crash=2d..9d,crash_rate=0.2,restart_delay=2h;wipe=6d..7d,wipe_rate=0.25".
// Bare --churn applies a canned schedule of all three. Both flags share the
// same grammar; --churn exists so a chaos schedule can be layered onto a
// wire-fault plan without editing one combined spec.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "study/deployment.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/strfmt.hpp"
#include "viz/map_render.hpp"

using namespace pmware;
using algorithms::DiscoveredOutcome;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--participants N] [--days D] [--seed S]\n"
               "          [--threads T] [--shards N]\n"
               "          [--runner auto|materialized|streaming] [--wave N]\n"
               "          [--region india|switzerland]\n"
               "          [--no-wifi] [--no-ads] [--cache on|off]\n"
               "          [--fault-plan SPEC]  (e.g. \"outage=5d..8d\")\n"
               "          [--churn [SPEC]]  (bare = canned crash/wipe/join "
               "schedule)\n"
               "          [--progress] [--no-timeseries] [--no-alerts]\n"
               "          [--log-level debug|info|warn|error|off]\n"
               "          [--report FILE.json] [--map FILE.svg]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Error);
  study::StudyConfig config;
  std::string report_path = "study_report.json";
  std::string map_path;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--participants") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.participants = std::atoi(v);
    } else if (arg == "--days") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.days = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.threads = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.shards = std::atoi(v);
    } else if (arg == "--region") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "india") == 0)
        config.world.region = world::RegionProfile::india();
      else if (std::strcmp(v, "switzerland") == 0)
        config.world.region = world::RegionProfile::switzerland();
      else
        return usage(argv[0]);
    } else if (arg == "--fault-plan" || arg == "--churn") {
      const char* v =
          i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0 ? next()
                                                                  : nullptr;
      if (!v && arg == "--churn")
        // Bare --churn: the canned chaos schedule (mid-study crash wave,
        // privacy wipes, a late-join cohort), same as the bench default.
        v = "crash=2d..9d,crash_rate=0.2,restart_delay=2h;"
            "wipe=6d..7d,wipe_rate=0.25;join=0d..5d,join_rate=0.2";
      if (!v) return usage(argv[0]);
      try {
        net::FaultPlan plan = net::FaultPlan::parse(v);
        // --churn merges into whatever --fault-plan already set (and vice
        // versa), so the two schedules compose instead of clobbering.
        for (auto& rule : plan.rules)
          config.fault_plan.rules.push_back(std::move(rule));
        for (auto& rule : plan.device_rules)
          config.fault_plan.device_rules.push_back(std::move(rule));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage(argv[0]);
      }
    } else if (arg == "--cache") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "on") == 0)
        config.cache = true;
      else if (std::strcmp(v, "off") == 0)
        config.cache = false;
      else
        return usage(argv[0]);
    } else if (arg == "--runner") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "auto") == 0)
        config.runner = study::RunnerMode::Auto;
      else if (std::strcmp(v, "materialized") == 0)
        config.runner = study::RunnerMode::Materialized;
      else if (std::strcmp(v, "streaming") == 0)
        config.runner = study::RunnerMode::Streaming;
      else
        return usage(argv[0]);
    } else if (arg == "--wave") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.wave_size = std::atoi(v);
    } else if (arg == "--no-wifi") {
      config.use_wifi = false;
    } else if (arg == "--no-ads") {
      config.run_placeads = false;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--no-timeseries") {
      config.timeseries.enabled = false;
    } else if (arg == "--no-alerts") {
      config.alerts = false;
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      report_path = v;
    } else if (arg == "--map") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      map_path = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const auto level = telemetry::parse_log_level(v);
      if (!level) return usage(argv[0]);
      set_log_level(*level);
    } else {
      return usage(argv[0]);
    }
  }
  if (config.participants < 1 || config.days < 1 || config.threads < 1 ||
      config.shards < 1)
    return usage(argv[0]);

  std::printf("running study: %d participants x %d days, region %s, "
              "wifi %s, cache %s, seed %llu, faults: %s\n",
              config.participants, config.days,
              config.world.region.name.c_str(),
              config.use_wifi ? "on" : "off", config.cache ? "on" : "off",
              static_cast<unsigned long long>(config.seed),
              config.fault_plan.describe().c_str());

  study::DeploymentStudy study(config);

  // --progress reporter: polls the study's progress counter on a wall-clock
  // cadence and repaints one stderr line. Read-only observers of telemetry
  // state — never touches science state, so the digest is unaffected.
  std::atomic<bool> study_done{false};
  std::thread reporter;
  if (progress) {
    reporter = std::thread([&study, &study_done] {
      using clock = std::chrono::steady_clock;
      const auto t0 = clock::now();
      const std::uint64_t total = study.participant_days_total();
      while (!study_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        const std::uint64_t done = study.participant_days_done();
        const double wall =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                clock::now() - t0)
                .count();
        const double rate = wall > 0 ? static_cast<double>(done) / wall : 0;
        const double eta =
            rate > 0 ? static_cast<double>(total - done) / rate : 0;
        std::fprintf(stderr,
                     "\rprogress: %llu/%llu participant-days  "
                     "%.1f pd/s  eta %.0fs  alerts firing: %zu   ",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total), rate, eta,
                     telemetry::alerts().firing_count());
      }
      std::fprintf(stderr, "\n");
    });
  }

  const study::StudyResult result = study.run();
  study_done.store(true, std::memory_order_relaxed);
  if (reporter.joinable()) reporter.join();
  std::printf("%s", result.summary().c_str());
  std::printf("%s", telemetry::diagnostics_summary(telemetry::tracer(),
                                                   telemetry::registry())
                        .c_str());

  // --- Sync reliability digest: what failed, what the outbox recovered,
  // and whether anything was actually lost (evicted or still pending).
  std::size_t sync_failures = 0, enqueued = 0, delivered = 0, recovered = 0,
              evicted = 0, dropped = 0, pending = 0;
  const auto& reg = telemetry::registry();
  if (!result.participants.empty()) {
    for (const auto& p : result.participants) {
      sync_failures += p.pms_stats.sync_failures;
      enqueued += p.pms_stats.outbox_enqueued;
      delivered += p.pms_stats.outbox_delivered;
      recovered += p.pms_stats.outbox_recovered;
      evicted += p.pms_stats.outbox_evicted;
      dropped += p.pms_stats.outbox_dropped;
      pending += p.pms_stats.outbox_pending;
    }
  } else {
    // Aggregate-only streaming run: per-participant results were folded
    // away, so read the study-wide registry families instead.
    sync_failures = reg.family_total("pms_sync_failures_total");
    enqueued = reg.family_total("pms_outbox_enqueued_total");
    delivered = reg.family_total("pms_outbox_delivered_total");
    recovered = reg.family_total("pms_outbox_recovered_total");
    evicted = reg.family_total("pms_outbox_evicted_total");
    dropped = reg.family_total("pms_outbox_dropped_total");
    pending = enqueued - delivered - evicted - dropped;
  }
  std::printf("\n--- sync reliability ---\n");
  std::printf("  sync failures:     %zu\n", sync_failures);
  std::printf("  outbox enqueued:   %zu (delivered %zu, recovered after "
              "retry %zu, dropped at crash/wipe %zu)\n",
              enqueued, delivered, recovered, dropped);
  std::printf("  breaker opens:     %llu (fast fails %llu)\n",
              static_cast<unsigned long long>(
                  reg.family_total("net_breaker_open_total")),
              static_cast<unsigned long long>(
                  reg.family_total("net_breaker_fast_fail_total")));
  std::printf("  faults injected:   %llu\n",
              static_cast<unsigned long long>(
                  reg.family_total("cloud_faults_injected_total")));
  const std::size_t lost = evicted + pending;
  std::printf("  recovered vs lost: %zu recovered, %zu lost (%zu evicted, "
              "%zu still pending)%s\n",
              recovered, lost, evicted, pending,
              lost == 0 ? " — no records lost" : "");

  // --- Device lifecycle digest (only with --churn / device fault rules):
  // how often devices died and came back, and what the wipe tombstones
  // refused to let back in.
  if (config.fault_plan.has_device_rules()) {
    std::printf("\n--- device lifecycle ---\n");
    std::printf("  restarts:          %llu\n",
                static_cast<unsigned long long>(
                    reg.family_total("pms_restarts_total")));
    std::printf("  wipe tombstones:   %llu raised, %llu replays rejected\n",
                static_cast<unsigned long long>(
                    reg.family_total("cloud_wipe_tombstones_total")),
                static_cast<unsigned long long>(
                    reg.family_total("cloud_tombstone_rejections_total")));
    std::printf("  cold restarts:     %llu profile-days re-pulled from cloud\n",
                static_cast<unsigned long long>(
                    reg.family_total("pms_cold_profile_days_recovered_total")));
    std::printf("  torn tails healed: %llu\n",
                static_cast<unsigned long long>(
                    reg.family_total("persistence_torn_tail_total")));
  }

  // Exact (non-lossy) digest line: ci.sh greps this to assert the study is
  // byte-identical to the golden digest committed with each perf PR.
  std::printf("cloud content digest: %llu\n",
              static_cast<unsigned long long>(result.storage_digest));

  // --- Telemetry digest: what the recorder sampled and how the alert
  // rules ended the run.
  if (config.timeseries.enabled || config.alerts) {
    std::printf("\n--- telemetry ---\n");
    if (config.timeseries.enabled) {
      const auto& ts = telemetry::timeseries();
      std::printf("  timeseries:        %zu points @ %llds interval"
                  " (%zu evicted)\n",
                  ts.points().size(),
                  static_cast<long long>(ts.config().interval), ts.dropped());
    }
    if (config.alerts) {
      for (const auto& [rule, state] : telemetry::alerts().snapshot())
        std::printf("  alert %-16s %s (fired %llu time%s)\n",
                    rule.name.c_str(), state.firing ? "FIRING" : "ok",
                    static_cast<unsigned long long>(state.fire_count),
                    state.fire_count == 1 ? "" : "s");
    }
  }

  // --- Caching digest: the ccache-style hit taxonomy per cache instance,
  // plus what the conditional-GET cache saved on the wire.
  const auto outcome_total = [&](const char* cache,
                                 const char* outcome) -> unsigned long long {
    const auto* c = reg.find_counter(
        "cache_outcomes_total", {{"cache", cache}, {"outcome", outcome}});
    return c ? static_cast<unsigned long long>(c->value()) : 0;
  };
  std::printf("\n--- caching (%s) ---\n", config.cache ? "on" : "off");
  for (const char* cache :
       {"pms_gca", "cloud_gca", "cloud_analytics", "net_conditional"}) {
    std::printf("  %-16s local_hit %llu, cloud_hit %llu, recompute %llu, "
                "miss %llu\n",
                cache, outcome_total(cache, "local_hit"),
                outcome_total(cache, "cloud_hit"),
                outcome_total(cache, "recompute"),
                outcome_total(cache, "miss"));
  }
  std::printf("  conditional GETs:  %llu not-modified, %llu body bytes "
              "saved\n",
              static_cast<unsigned long long>(
                  reg.family_total("net_not_modified_total")),
              static_cast<unsigned long long>(
                  reg.family_total("net_bytes_saved_total")));

  // --- JSON report ---
  Json report = Json::object();
  report.set("participants", config.participants);
  report.set("days", config.days);
  report.set("seed", static_cast<std::uint64_t>(config.seed));
  report.set("region", config.world.region.name);
  report.set("wifi", config.use_wifi);
  report.set("cache", config.cache);
  report.set("discovered", static_cast<std::uint64_t>(result.total_discovered()));
  report.set("tagged", static_cast<std::uint64_t>(result.total_tagged()));
  report.set("evaluable", static_cast<std::uint64_t>(result.total_evaluable()));
  Json outcomes = Json::object();
  outcomes.set("correct", result.fraction(DiscoveredOutcome::Correct));
  outcomes.set("merged", result.fraction(DiscoveredOutcome::Merged));
  outcomes.set("divided", result.fraction(DiscoveredOutcome::Divided));
  report.set("outcomes", std::move(outcomes));
  report.set("likes", static_cast<std::uint64_t>(result.total_likes()));
  report.set("dislikes", static_cast<std::uint64_t>(result.total_dislikes()));
  Json per_participant = Json::array();
  for (const auto& p : result.participants) {
    Json row = Json::object();
    row.set("name", p.profile.name);
    row.set("archetype", to_string(p.profile.archetype));
    row.set("places", static_cast<std::uint64_t>(p.places_discovered));
    row.set("tagged", static_cast<std::uint64_t>(p.places_tagged));
    row.set("battery_hours", p.implied_battery_hours);
    per_participant.push_back(std::move(row));
  }
  report.set("per_participant", std::move(per_participant));
  Json cohorts = Json::object();
  for (const auto& [arch, stats] : result.cohorts) {
    Json row = Json::object();
    row.set("participants", stats.participants);
    row.set("places_discovered", stats.places_discovered);
    row.set("places_tagged", stats.places_tagged);
    row.set("sensing_joules", stats.sensing_joules);
    row.set("battery_hours", stats.battery_hours);
    cohorts.set(to_string(arch), std::move(row));
  }
  report.set("cohorts", std::move(cohorts));
  Json sync = Json::object();
  sync.set("fault_plan", config.fault_plan.describe());
  sync.set("sync_failures", static_cast<std::uint64_t>(sync_failures));
  sync.set("outbox_recovered", static_cast<std::uint64_t>(recovered));
  sync.set("outbox_evicted", static_cast<std::uint64_t>(evicted));
  sync.set("outbox_dropped", static_cast<std::uint64_t>(dropped));
  sync.set("outbox_pending", static_cast<std::uint64_t>(pending));
  sync.set("restarts", reg.family_total("pms_restarts_total"));
  // As a string: Json numbers are doubles, which cannot carry a full
  // 64-bit digest exactly (matches the decimal form printed above).
  sync.set("storage_digest",
           strfmt("%llu", static_cast<unsigned long long>(
                          result.storage_digest)));
  report.set("sync", std::move(sync));
  std::ofstream(report_path) << report.pretty() << '\n';
  std::printf("report written to %s\n", report_path.c_str());

  // --- optional SVG map (Figure 5b) ---
  if (!map_path.empty()) {
    viz::MapExtent extent{study.world().config().origin,
                          study.world().config().extent_m};
    std::vector<viz::MapMarker> markers;
    for (const auto& entry : result.place_map) {
      if (!entry.location) continue;
      markers.push_back({*entry.location, entry.label, 'o', "#4466cc", 4});
    }
    std::ofstream(map_path) << viz::render_svg_map(extent, markers);
    std::printf("map written to %s (%zu places)\n", map_path.c_str(),
                markers.size());
  }
  return 0;
}
