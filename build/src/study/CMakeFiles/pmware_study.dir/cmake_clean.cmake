file(REMOVE_RECURSE
  "CMakeFiles/pmware_study.dir/deployment.cpp.o"
  "CMakeFiles/pmware_study.dir/deployment.cpp.o.d"
  "libpmware_study.a"
  "libpmware_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
