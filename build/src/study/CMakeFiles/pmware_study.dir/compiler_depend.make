# Empty compiler generated dependencies file for pmware_study.
# This may be replaced when dependencies are built.
