file(REMOVE_RECURSE
  "libpmware_study.a"
)
