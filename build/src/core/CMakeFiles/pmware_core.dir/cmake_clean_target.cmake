file(REMOVE_RECURSE
  "libpmware_core.a"
)
