# Empty compiler generated dependencies file for pmware_core.
# This may be replaced when dependencies are built.
