file(REMOVE_RECURSE
  "CMakeFiles/pmware_core.dir/codec.cpp.o"
  "CMakeFiles/pmware_core.dir/codec.cpp.o.d"
  "CMakeFiles/pmware_core.dir/connected_apps.cpp.o"
  "CMakeFiles/pmware_core.dir/connected_apps.cpp.o.d"
  "CMakeFiles/pmware_core.dir/inference_engine.cpp.o"
  "CMakeFiles/pmware_core.dir/inference_engine.cpp.o.d"
  "CMakeFiles/pmware_core.dir/intents.cpp.o"
  "CMakeFiles/pmware_core.dir/intents.cpp.o.d"
  "CMakeFiles/pmware_core.dir/persistence.cpp.o"
  "CMakeFiles/pmware_core.dir/persistence.cpp.o.d"
  "CMakeFiles/pmware_core.dir/place_store.cpp.o"
  "CMakeFiles/pmware_core.dir/place_store.cpp.o.d"
  "CMakeFiles/pmware_core.dir/pms.cpp.o"
  "CMakeFiles/pmware_core.dir/pms.cpp.o.d"
  "CMakeFiles/pmware_core.dir/preferences.cpp.o"
  "CMakeFiles/pmware_core.dir/preferences.cpp.o.d"
  "libpmware_core.a"
  "libpmware_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
