
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/pmware_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/connected_apps.cpp" "src/core/CMakeFiles/pmware_core.dir/connected_apps.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/connected_apps.cpp.o.d"
  "/root/repo/src/core/inference_engine.cpp" "src/core/CMakeFiles/pmware_core.dir/inference_engine.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/inference_engine.cpp.o.d"
  "/root/repo/src/core/intents.cpp" "src/core/CMakeFiles/pmware_core.dir/intents.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/intents.cpp.o.d"
  "/root/repo/src/core/persistence.cpp" "src/core/CMakeFiles/pmware_core.dir/persistence.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/persistence.cpp.o.d"
  "/root/repo/src/core/place_store.cpp" "src/core/CMakeFiles/pmware_core.dir/place_store.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/place_store.cpp.o.d"
  "/root/repo/src/core/pms.cpp" "src/core/CMakeFiles/pmware_core.dir/pms.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/pms.cpp.o.d"
  "/root/repo/src/core/preferences.cpp" "src/core/CMakeFiles/pmware_core.dir/preferences.cpp.o" "gcc" "src/core/CMakeFiles/pmware_core.dir/preferences.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/pmware_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/pmware_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pmware_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmware_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pmware_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmware_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/pmware_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/pmware_world.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
