# Empty compiler generated dependencies file for pmware_mobility.
# This may be replaced when dependencies are built.
