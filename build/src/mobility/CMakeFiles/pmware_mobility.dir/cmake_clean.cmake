file(REMOVE_RECURSE
  "CMakeFiles/pmware_mobility.dir/participant.cpp.o"
  "CMakeFiles/pmware_mobility.dir/participant.cpp.o.d"
  "CMakeFiles/pmware_mobility.dir/schedule.cpp.o"
  "CMakeFiles/pmware_mobility.dir/schedule.cpp.o.d"
  "CMakeFiles/pmware_mobility.dir/trace.cpp.o"
  "CMakeFiles/pmware_mobility.dir/trace.cpp.o.d"
  "libpmware_mobility.a"
  "libpmware_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
