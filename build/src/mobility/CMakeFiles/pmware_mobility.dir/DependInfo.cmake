
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/participant.cpp" "src/mobility/CMakeFiles/pmware_mobility.dir/participant.cpp.o" "gcc" "src/mobility/CMakeFiles/pmware_mobility.dir/participant.cpp.o.d"
  "/root/repo/src/mobility/schedule.cpp" "src/mobility/CMakeFiles/pmware_mobility.dir/schedule.cpp.o" "gcc" "src/mobility/CMakeFiles/pmware_mobility.dir/schedule.cpp.o.d"
  "/root/repo/src/mobility/trace.cpp" "src/mobility/CMakeFiles/pmware_mobility.dir/trace.cpp.o" "gcc" "src/mobility/CMakeFiles/pmware_mobility.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/pmware_world.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pmware_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmware_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
