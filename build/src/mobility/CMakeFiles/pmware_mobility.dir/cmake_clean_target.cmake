file(REMOVE_RECURSE
  "libpmware_mobility.a"
)
