# Empty dependencies file for pmware_sensing.
# This may be replaced when dependencies are built.
