
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/device.cpp" "src/sensing/CMakeFiles/pmware_sensing.dir/device.cpp.o" "gcc" "src/sensing/CMakeFiles/pmware_sensing.dir/device.cpp.o.d"
  "/root/repo/src/sensing/scheduler.cpp" "src/sensing/CMakeFiles/pmware_sensing.dir/scheduler.cpp.o" "gcc" "src/sensing/CMakeFiles/pmware_sensing.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/pmware_world.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/pmware_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pmware_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pmware_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmware_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
