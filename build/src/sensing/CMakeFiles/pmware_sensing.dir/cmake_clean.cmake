file(REMOVE_RECURSE
  "CMakeFiles/pmware_sensing.dir/device.cpp.o"
  "CMakeFiles/pmware_sensing.dir/device.cpp.o.d"
  "CMakeFiles/pmware_sensing.dir/scheduler.cpp.o"
  "CMakeFiles/pmware_sensing.dir/scheduler.cpp.o.d"
  "libpmware_sensing.a"
  "libpmware_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
