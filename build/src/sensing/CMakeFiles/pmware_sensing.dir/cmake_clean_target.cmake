file(REMOVE_RECURSE
  "libpmware_sensing.a"
)
