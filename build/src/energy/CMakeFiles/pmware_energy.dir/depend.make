# Empty dependencies file for pmware_energy.
# This may be replaced when dependencies are built.
