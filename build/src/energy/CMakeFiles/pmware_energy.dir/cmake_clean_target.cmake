file(REMOVE_RECURSE
  "libpmware_energy.a"
)
