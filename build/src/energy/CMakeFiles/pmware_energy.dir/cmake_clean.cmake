file(REMOVE_RECURSE
  "CMakeFiles/pmware_energy.dir/meter.cpp.o"
  "CMakeFiles/pmware_energy.dir/meter.cpp.o.d"
  "CMakeFiles/pmware_energy.dir/profile.cpp.o"
  "CMakeFiles/pmware_energy.dir/profile.cpp.o.d"
  "libpmware_energy.a"
  "libpmware_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
