file(REMOVE_RECURSE
  "CMakeFiles/pmware_viz.dir/map_render.cpp.o"
  "CMakeFiles/pmware_viz.dir/map_render.cpp.o.d"
  "libpmware_viz.a"
  "libpmware_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
