# Empty dependencies file for pmware_viz.
# This may be replaced when dependencies are built.
