file(REMOVE_RECURSE
  "libpmware_viz.a"
)
