# Empty dependencies file for pmware_geo.
# This may be replaced when dependencies are built.
