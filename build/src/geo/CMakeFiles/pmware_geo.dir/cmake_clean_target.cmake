file(REMOVE_RECURSE
  "libpmware_geo.a"
)
