file(REMOVE_RECURSE
  "CMakeFiles/pmware_geo.dir/latlng.cpp.o"
  "CMakeFiles/pmware_geo.dir/latlng.cpp.o.d"
  "CMakeFiles/pmware_geo.dir/polyline.cpp.o"
  "CMakeFiles/pmware_geo.dir/polyline.cpp.o.d"
  "libpmware_geo.a"
  "libpmware_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
