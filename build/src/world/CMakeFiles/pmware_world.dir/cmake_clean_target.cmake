file(REMOVE_RECURSE
  "libpmware_world.a"
)
