file(REMOVE_RECURSE
  "CMakeFiles/pmware_world.dir/ids.cpp.o"
  "CMakeFiles/pmware_world.dir/ids.cpp.o.d"
  "CMakeFiles/pmware_world.dir/place.cpp.o"
  "CMakeFiles/pmware_world.dir/place.cpp.o.d"
  "CMakeFiles/pmware_world.dir/radio.cpp.o"
  "CMakeFiles/pmware_world.dir/radio.cpp.o.d"
  "CMakeFiles/pmware_world.dir/roads.cpp.o"
  "CMakeFiles/pmware_world.dir/roads.cpp.o.d"
  "CMakeFiles/pmware_world.dir/world.cpp.o"
  "CMakeFiles/pmware_world.dir/world.cpp.o.d"
  "libpmware_world.a"
  "libpmware_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
