# Empty dependencies file for pmware_world.
# This may be replaced when dependencies are built.
