file(REMOVE_RECURSE
  "CMakeFiles/pmware_net.dir/client.cpp.o"
  "CMakeFiles/pmware_net.dir/client.cpp.o.d"
  "CMakeFiles/pmware_net.dir/router.cpp.o"
  "CMakeFiles/pmware_net.dir/router.cpp.o.d"
  "libpmware_net.a"
  "libpmware_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
