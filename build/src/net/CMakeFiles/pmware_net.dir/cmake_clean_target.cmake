file(REMOVE_RECURSE
  "libpmware_net.a"
)
