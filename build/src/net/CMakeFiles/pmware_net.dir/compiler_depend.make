# Empty compiler generated dependencies file for pmware_net.
# This may be replaced when dependencies are built.
