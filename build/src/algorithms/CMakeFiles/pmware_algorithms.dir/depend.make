# Empty dependencies file for pmware_algorithms.
# This may be replaced when dependencies are built.
