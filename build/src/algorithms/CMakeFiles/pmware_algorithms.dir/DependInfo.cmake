
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/evaluate.cpp" "src/algorithms/CMakeFiles/pmware_algorithms.dir/evaluate.cpp.o" "gcc" "src/algorithms/CMakeFiles/pmware_algorithms.dir/evaluate.cpp.o.d"
  "/root/repo/src/algorithms/gca.cpp" "src/algorithms/CMakeFiles/pmware_algorithms.dir/gca.cpp.o" "gcc" "src/algorithms/CMakeFiles/pmware_algorithms.dir/gca.cpp.o.d"
  "/root/repo/src/algorithms/kang.cpp" "src/algorithms/CMakeFiles/pmware_algorithms.dir/kang.cpp.o" "gcc" "src/algorithms/CMakeFiles/pmware_algorithms.dir/kang.cpp.o.d"
  "/root/repo/src/algorithms/routes.cpp" "src/algorithms/CMakeFiles/pmware_algorithms.dir/routes.cpp.o" "gcc" "src/algorithms/CMakeFiles/pmware_algorithms.dir/routes.cpp.o.d"
  "/root/repo/src/algorithms/sensloc.cpp" "src/algorithms/CMakeFiles/pmware_algorithms.dir/sensloc.cpp.o" "gcc" "src/algorithms/CMakeFiles/pmware_algorithms.dir/sensloc.cpp.o.d"
  "/root/repo/src/algorithms/signature.cpp" "src/algorithms/CMakeFiles/pmware_algorithms.dir/signature.cpp.o" "gcc" "src/algorithms/CMakeFiles/pmware_algorithms.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensing/CMakeFiles/pmware_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/pmware_world.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pmware_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmware_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/pmware_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pmware_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
