file(REMOVE_RECURSE
  "CMakeFiles/pmware_algorithms.dir/evaluate.cpp.o"
  "CMakeFiles/pmware_algorithms.dir/evaluate.cpp.o.d"
  "CMakeFiles/pmware_algorithms.dir/gca.cpp.o"
  "CMakeFiles/pmware_algorithms.dir/gca.cpp.o.d"
  "CMakeFiles/pmware_algorithms.dir/kang.cpp.o"
  "CMakeFiles/pmware_algorithms.dir/kang.cpp.o.d"
  "CMakeFiles/pmware_algorithms.dir/routes.cpp.o"
  "CMakeFiles/pmware_algorithms.dir/routes.cpp.o.d"
  "CMakeFiles/pmware_algorithms.dir/sensloc.cpp.o"
  "CMakeFiles/pmware_algorithms.dir/sensloc.cpp.o.d"
  "CMakeFiles/pmware_algorithms.dir/signature.cpp.o"
  "CMakeFiles/pmware_algorithms.dir/signature.cpp.o.d"
  "libpmware_algorithms.a"
  "libpmware_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
