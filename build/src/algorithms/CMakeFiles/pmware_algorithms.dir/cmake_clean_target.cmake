file(REMOVE_RECURSE
  "libpmware_algorithms.a"
)
