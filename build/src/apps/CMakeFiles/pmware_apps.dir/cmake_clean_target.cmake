file(REMOVE_RECURSE
  "libpmware_apps.a"
)
