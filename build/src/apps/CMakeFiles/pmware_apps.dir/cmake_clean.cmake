file(REMOVE_RECURSE
  "CMakeFiles/pmware_apps.dir/lifelog.cpp.o"
  "CMakeFiles/pmware_apps.dir/lifelog.cpp.o.d"
  "CMakeFiles/pmware_apps.dir/placeads.cpp.o"
  "CMakeFiles/pmware_apps.dir/placeads.cpp.o.d"
  "CMakeFiles/pmware_apps.dir/todo_reminder.cpp.o"
  "CMakeFiles/pmware_apps.dir/todo_reminder.cpp.o.d"
  "libpmware_apps.a"
  "libpmware_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
