# Empty compiler generated dependencies file for pmware_apps.
# This may be replaced when dependencies are built.
