# Empty dependencies file for pmware_util.
# This may be replaced when dependencies are built.
