file(REMOVE_RECURSE
  "CMakeFiles/pmware_util.dir/json.cpp.o"
  "CMakeFiles/pmware_util.dir/json.cpp.o.d"
  "CMakeFiles/pmware_util.dir/logging.cpp.o"
  "CMakeFiles/pmware_util.dir/logging.cpp.o.d"
  "CMakeFiles/pmware_util.dir/rng.cpp.o"
  "CMakeFiles/pmware_util.dir/rng.cpp.o.d"
  "CMakeFiles/pmware_util.dir/simtime.cpp.o"
  "CMakeFiles/pmware_util.dir/simtime.cpp.o.d"
  "CMakeFiles/pmware_util.dir/stats.cpp.o"
  "CMakeFiles/pmware_util.dir/stats.cpp.o.d"
  "libpmware_util.a"
  "libpmware_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
