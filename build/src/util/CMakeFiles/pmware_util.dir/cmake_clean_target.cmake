file(REMOVE_RECURSE
  "libpmware_util.a"
)
