file(REMOVE_RECURSE
  "CMakeFiles/pmware_cloud.dir/analytics.cpp.o"
  "CMakeFiles/pmware_cloud.dir/analytics.cpp.o.d"
  "CMakeFiles/pmware_cloud.dir/cloud_instance.cpp.o"
  "CMakeFiles/pmware_cloud.dir/cloud_instance.cpp.o.d"
  "CMakeFiles/pmware_cloud.dir/geolocation.cpp.o"
  "CMakeFiles/pmware_cloud.dir/geolocation.cpp.o.d"
  "CMakeFiles/pmware_cloud.dir/storage.cpp.o"
  "CMakeFiles/pmware_cloud.dir/storage.cpp.o.d"
  "CMakeFiles/pmware_cloud.dir/token_service.cpp.o"
  "CMakeFiles/pmware_cloud.dir/token_service.cpp.o.d"
  "libpmware_cloud.a"
  "libpmware_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmware_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
