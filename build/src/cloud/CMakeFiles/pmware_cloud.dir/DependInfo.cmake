
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/analytics.cpp" "src/cloud/CMakeFiles/pmware_cloud.dir/analytics.cpp.o" "gcc" "src/cloud/CMakeFiles/pmware_cloud.dir/analytics.cpp.o.d"
  "/root/repo/src/cloud/cloud_instance.cpp" "src/cloud/CMakeFiles/pmware_cloud.dir/cloud_instance.cpp.o" "gcc" "src/cloud/CMakeFiles/pmware_cloud.dir/cloud_instance.cpp.o.d"
  "/root/repo/src/cloud/geolocation.cpp" "src/cloud/CMakeFiles/pmware_cloud.dir/geolocation.cpp.o" "gcc" "src/cloud/CMakeFiles/pmware_cloud.dir/geolocation.cpp.o.d"
  "/root/repo/src/cloud/storage.cpp" "src/cloud/CMakeFiles/pmware_cloud.dir/storage.cpp.o" "gcc" "src/cloud/CMakeFiles/pmware_cloud.dir/storage.cpp.o.d"
  "/root/repo/src/cloud/token_service.cpp" "src/cloud/CMakeFiles/pmware_cloud.dir/token_service.cpp.o" "gcc" "src/cloud/CMakeFiles/pmware_cloud.dir/token_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pmware_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmware_net.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/pmware_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmware_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/pmware_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/pmware_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/pmware_world.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pmware_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pmware_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
