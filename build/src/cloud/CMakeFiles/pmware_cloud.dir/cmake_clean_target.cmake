file(REMOVE_RECURSE
  "libpmware_cloud.a"
)
