# Empty compiler generated dependencies file for pmware_cloud.
# This may be replaced when dependencies are built.
