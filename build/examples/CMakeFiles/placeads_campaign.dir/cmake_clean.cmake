file(REMOVE_RECURSE
  "CMakeFiles/placeads_campaign.dir/placeads_campaign.cpp.o"
  "CMakeFiles/placeads_campaign.dir/placeads_campaign.cpp.o.d"
  "placeads_campaign"
  "placeads_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placeads_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
