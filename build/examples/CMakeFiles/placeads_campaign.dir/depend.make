# Empty dependencies file for placeads_campaign.
# This may be replaced when dependencies are built.
