# Empty compiler generated dependencies file for studyctl.
# This may be replaced when dependencies are built.
