file(REMOVE_RECURSE
  "CMakeFiles/studyctl.dir/studyctl.cpp.o"
  "CMakeFiles/studyctl.dir/studyctl.cpp.o.d"
  "studyctl"
  "studyctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/studyctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
