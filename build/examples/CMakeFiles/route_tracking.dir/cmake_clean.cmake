file(REMOVE_RECURSE
  "CMakeFiles/route_tracking.dir/route_tracking.cpp.o"
  "CMakeFiles/route_tracking.dir/route_tracking.cpp.o.d"
  "route_tracking"
  "route_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
