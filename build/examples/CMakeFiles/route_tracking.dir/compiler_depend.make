# Empty compiler generated dependencies file for route_tracking.
# This may be replaced when dependencies are built.
