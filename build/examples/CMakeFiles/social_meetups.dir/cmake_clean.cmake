file(REMOVE_RECURSE
  "CMakeFiles/social_meetups.dir/social_meetups.cpp.o"
  "CMakeFiles/social_meetups.dir/social_meetups.cpp.o.d"
  "social_meetups"
  "social_meetups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_meetups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
