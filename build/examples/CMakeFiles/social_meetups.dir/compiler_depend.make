# Empty compiler generated dependencies file for social_meetups.
# This may be replaced when dependencies are built.
