file(REMOVE_RECURSE
  "CMakeFiles/lifelog_visualization.dir/lifelog_visualization.cpp.o"
  "CMakeFiles/lifelog_visualization.dir/lifelog_visualization.cpp.o.d"
  "lifelog_visualization"
  "lifelog_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifelog_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
