# Empty dependencies file for lifelog_visualization.
# This may be replaced when dependencies are built.
