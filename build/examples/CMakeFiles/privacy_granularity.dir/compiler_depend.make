# Empty compiler generated dependencies file for privacy_granularity.
# This may be replaced when dependencies are built.
