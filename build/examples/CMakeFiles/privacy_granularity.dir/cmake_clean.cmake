file(REMOVE_RECURSE
  "CMakeFiles/privacy_granularity.dir/privacy_granularity.cpp.o"
  "CMakeFiles/privacy_granularity.dir/privacy_granularity.cpp.o.d"
  "privacy_granularity"
  "privacy_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
