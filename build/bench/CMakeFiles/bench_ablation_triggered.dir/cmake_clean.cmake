file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_triggered.dir/bench_ablation_triggered.cpp.o"
  "CMakeFiles/bench_ablation_triggered.dir/bench_ablation_triggered.cpp.o.d"
  "bench_ablation_triggered"
  "bench_ablation_triggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_triggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
