# Empty compiler generated dependencies file for bench_ablation_triggered.
# This may be replaced when dependencies are built.
