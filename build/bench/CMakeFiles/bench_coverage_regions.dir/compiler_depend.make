# Empty compiler generated dependencies file for bench_coverage_regions.
# This may be replaced when dependencies are built.
