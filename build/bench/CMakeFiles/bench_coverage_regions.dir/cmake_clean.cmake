file(REMOVE_RECURSE
  "CMakeFiles/bench_coverage_regions.dir/bench_coverage_regions.cpp.o"
  "CMakeFiles/bench_coverage_regions.dir/bench_coverage_regions.cpp.o.d"
  "bench_coverage_regions"
  "bench_coverage_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coverage_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
