file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interfaces.dir/bench_ablation_interfaces.cpp.o"
  "CMakeFiles/bench_ablation_interfaces.dir/bench_ablation_interfaces.cpp.o.d"
  "bench_ablation_interfaces"
  "bench_ablation_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
