# Empty dependencies file for bench_ablation_interfaces.
# This may be replaced when dependencies are built.
