file(REMOVE_RECURSE
  "CMakeFiles/bench_deployment_study.dir/bench_deployment_study.cpp.o"
  "CMakeFiles/bench_deployment_study.dir/bench_deployment_study.cpp.o.d"
  "bench_deployment_study"
  "bench_deployment_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deployment_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
