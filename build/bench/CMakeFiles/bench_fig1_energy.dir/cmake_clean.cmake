file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_energy.dir/bench_fig1_energy.cpp.o"
  "CMakeFiles/bench_fig1_energy.dir/bench_fig1_energy.cpp.o.d"
  "bench_fig1_energy"
  "bench_fig1_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
