file(REMOVE_RECURSE
  "CMakeFiles/test_intents.dir/test_intents.cpp.o"
  "CMakeFiles/test_intents.dir/test_intents.cpp.o.d"
  "test_intents"
  "test_intents.pdb"
  "test_intents[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
