# Empty compiler generated dependencies file for test_intents.
# This may be replaced when dependencies are built.
