file(REMOVE_RECURSE
  "CMakeFiles/test_analytics_ext.dir/test_analytics_ext.cpp.o"
  "CMakeFiles/test_analytics_ext.dir/test_analytics_ext.cpp.o.d"
  "test_analytics_ext"
  "test_analytics_ext.pdb"
  "test_analytics_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytics_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
