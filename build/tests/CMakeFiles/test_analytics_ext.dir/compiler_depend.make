# Empty compiler generated dependencies file for test_analytics_ext.
# This may be replaced when dependencies are built.
