file(REMOVE_RECURSE
  "CMakeFiles/test_pms.dir/test_pms.cpp.o"
  "CMakeFiles/test_pms.dir/test_pms.cpp.o.d"
  "test_pms"
  "test_pms.pdb"
  "test_pms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
