# Empty compiler generated dependencies file for test_pms.
# This may be replaced when dependencies are built.
