file(REMOVE_RECURSE
  "CMakeFiles/test_sensloc.dir/test_sensloc.cpp.o"
  "CMakeFiles/test_sensloc.dir/test_sensloc.cpp.o.d"
  "test_sensloc"
  "test_sensloc.pdb"
  "test_sensloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
