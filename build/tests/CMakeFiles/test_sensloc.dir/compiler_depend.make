# Empty compiler generated dependencies file for test_sensloc.
# This may be replaced when dependencies are built.
