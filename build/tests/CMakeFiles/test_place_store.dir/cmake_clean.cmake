file(REMOVE_RECURSE
  "CMakeFiles/test_place_store.dir/test_place_store.cpp.o"
  "CMakeFiles/test_place_store.dir/test_place_store.cpp.o.d"
  "test_place_store"
  "test_place_store.pdb"
  "test_place_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_place_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
