file(REMOVE_RECURSE
  "CMakeFiles/test_roads.dir/test_roads.cpp.o"
  "CMakeFiles/test_roads.dir/test_roads.cpp.o.d"
  "test_roads"
  "test_roads.pdb"
  "test_roads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
