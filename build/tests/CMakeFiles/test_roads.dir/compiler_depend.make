# Empty compiler generated dependencies file for test_roads.
# This may be replaced when dependencies are built.
