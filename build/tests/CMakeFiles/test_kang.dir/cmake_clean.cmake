file(REMOVE_RECURSE
  "CMakeFiles/test_kang.dir/test_kang.cpp.o"
  "CMakeFiles/test_kang.dir/test_kang.cpp.o.d"
  "test_kang"
  "test_kang.pdb"
  "test_kang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
