# Empty compiler generated dependencies file for test_kang.
# This may be replaced when dependencies are built.
