file(REMOVE_RECURSE
  "CMakeFiles/test_connected_apps.dir/test_connected_apps.cpp.o"
  "CMakeFiles/test_connected_apps.dir/test_connected_apps.cpp.o.d"
  "test_connected_apps"
  "test_connected_apps.pdb"
  "test_connected_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connected_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
