# Empty compiler generated dependencies file for test_connected_apps.
# This may be replaced when dependencies are built.
