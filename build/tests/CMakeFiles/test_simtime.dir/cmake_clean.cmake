file(REMOVE_RECURSE
  "CMakeFiles/test_simtime.dir/test_simtime.cpp.o"
  "CMakeFiles/test_simtime.dir/test_simtime.cpp.o.d"
  "test_simtime"
  "test_simtime.pdb"
  "test_simtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
