
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simtime.cpp" "tests/CMakeFiles/test_simtime.dir/test_simtime.cpp.o" "gcc" "tests/CMakeFiles/test_simtime.dir/test_simtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/pmware_study.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pmware_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/pmware_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmware_core.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/pmware_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/pmware_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/pmware_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pmware_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/pmware_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/pmware_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmware_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pmware_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmware_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
