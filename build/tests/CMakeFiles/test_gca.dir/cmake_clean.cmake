file(REMOVE_RECURSE
  "CMakeFiles/test_gca.dir/test_gca.cpp.o"
  "CMakeFiles/test_gca.dir/test_gca.cpp.o.d"
  "test_gca"
  "test_gca.pdb"
  "test_gca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
