# Empty compiler generated dependencies file for test_gca.
# This may be replaced when dependencies are built.
