#include "sensing/scheduler_reference.hpp"

#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::sensing {

namespace {

telemetry::LabelSet interface_labels(energy::Interface interface) {
  return {{"interface", energy::to_string(interface)}};
}

void count_sample(energy::Interface interface) {
  telemetry::registry()
      .counter("sensing_samples_total", interface_labels(interface),
               "sensor samples dispatched by the sampling scheduler")
      .inc();
}

}  // namespace

ReferenceScheduler::ReferenceScheduler(energy::EnergyMeter* meter)
    : meter_(meter),
      instance_(telemetry::registry().next_instance_label("dev")) {}

void ReferenceScheduler::arm(std::size_t index, SimTime at) {
  ++generation_[index];
  next_due_[index] = at;
  queue_.push({at, false, index, generation_[index]});
}

void ReferenceScheduler::set_period(energy::Interface interface,
                                    std::optional<SimDuration> period) {
  if (period && *period <= 0)
    throw std::invalid_argument("set_period: period <= 0");
  const auto idx = static_cast<std::size_t>(interface);
  periods_[idx] = period;
  if (period) {
    arm(idx, now_ + *period);
  } else {
    ++generation_[idx];
    next_due_[idx] = std::nullopt;
  }
  // Duty-cycle view of the current policy: samples per second, 0 when the
  // interface is off. The instance label keeps each device's policy its own
  // series — without it, concurrent devices would race last-writer-wins.
  telemetry::LabelSet labels = interface_labels(interface);
  labels.emplace("instance", instance_);
  auto& reg = telemetry::registry();
  reg.gauge("sensing_period_seconds", labels,
            "configured sampling period, seconds (0 = disabled)")
      .set(period ? static_cast<double>(*period) : 0.0);
  reg.gauge("sensing_duty_cycle", std::move(labels),
            "samples per simulated second under the current policy")
      .set(period ? 1.0 / static_cast<double>(*period) : 0.0);
}

void ReferenceScheduler::set_callback(energy::Interface interface,
                                      Callback cb) {
  callbacks_[static_cast<std::size_t>(interface)] = std::move(cb);
}

void ReferenceScheduler::request_once(energy::Interface interface, SimTime at) {
  telemetry::registry()
      .counter("sensing_one_shots_total", interface_labels(interface),
               "triggered (one-shot) samples requested")
      .inc();
  queue_.push({std::max(at, now_), true,
               static_cast<std::size_t>(interface), one_shot_seq_++});
}

void ReferenceScheduler::run(TimeWindow window) {
  now_ = window.begin;
  telemetry::ScopedTimer run_span(telemetry::tracer(), "scheduler.run.ref",
                                  [this] { return now_; });
  if (meter_ != nullptr) meter_->charge_baseline(window.begin, window.end);

  // Arm periodic interfaces to fire at the window start.
  for (std::size_t i = 0; i < periods_.size(); ++i)
    if (periods_[i]) arm(i, window.begin);

  while (!queue_.empty()) {
    // Discard stale periodic hints so the top is a real event.
    const HeapEntry top = queue_.top();
    if (!top.one_shot && !live_periodic(top)) {
      queue_.pop();
      continue;
    }
    if (top.at >= window.end) break;
    now_ = top.at;

    // Periodic interfaces due now: the comparator sorts them before
    // one-shots at equal time and by ascending index, so popping until the
    // top moves on yields them in the stable dispatch order.
    std::vector<HeapEntry> due_periodic;
    while (!queue_.empty() && queue_.top().at == now_ &&
           !queue_.top().one_shot) {
      const HeapEntry entry = queue_.top();
      queue_.pop();
      if (live_periodic(entry)) due_periodic.push_back(entry);
    }
    for (const HeapEntry& entry : due_periodic) {
      const std::size_t i = entry.index;
      // Revalidate: an earlier callback this tick may have re-armed or
      // disabled this interface.
      if (!live_periodic(entry)) continue;
      const auto interface = static_cast<energy::Interface>(i);
      // Reschedule before dispatch so a callback changing the period wins.
      if (periods_[i]) {
        arm(i, now_ + *periods_[i]);
      } else {
        ++generation_[i];
        next_due_[i] = std::nullopt;
      }
      if (meter_ != nullptr) meter_->charge_sample(interface, now_);
      count_sample(interface);
      if (callbacks_[i]) callbacks_[i](now_);
    }

    // Due one-shots, drained as a snapshot (periodic callbacks above may
    // have requested some at `now_`; one-shot callbacks requesting more at
    // `now_` see them dispatched in the next loop iteration, still at the
    // same simulated time).
    std::vector<HeapEntry> due_shots;
    while (!queue_.empty() && queue_.top().at <= now_) {
      const HeapEntry entry = queue_.top();
      queue_.pop();
      if (entry.one_shot) due_shots.push_back(entry);
      // A periodic entry here is necessarily stale: live ones at `now_`
      // were drained above and callbacks only arm into the future.
    }
    for (const HeapEntry& shot : due_shots) {
      const auto interface = static_cast<energy::Interface>(shot.index);
      if (meter_ != nullptr) meter_->charge_sample(interface, now_);
      count_sample(interface);
      if (callbacks_[shot.index]) callbacks_[shot.index](now_);
    }
  }
  now_ = window.end;
}

}  // namespace pmware::sensing
