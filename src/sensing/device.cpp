#include "sensing/device.hpp"

#include <algorithm>

namespace pmware::sensing {

PositionOracle oracle_from_trace(const mobility::Trace& trace) {
  PositionOracle oracle;
  oracle.position = [&trace](SimTime t) { return trace.position_at(t); };
  oracle.activity = [&trace](SimTime t) { return trace.activity_at(t); };
  oracle.indoors = [&trace](SimTime t) { return trace.place_at(t).has_value(); };
  return oracle;
}

Device::Device(std::shared_ptr<const world::World> world, PositionOracle oracle,
               DeviceConfig config, Rng rng)
    : world_(std::move(world)),
      oracle_(std::move(oracle)),
      config_(config),
      rng_(rng) {}

GsmReading Device::read_gsm(SimTime t) {
  const geo::LatLng pos = oracle_.position(t);
  auto heard = world_->hearable_cells(pos, config_.fading_sigma_db * 2);

  GsmReading reading;
  reading.t = t;
  if (heard.empty()) {
    // Dead zone: report the last serving cell (phones hold on to it).
    if (last_serving_) {
      reading.serving = *last_serving_;
      reading.serving_rssi_dbm = -110;
    }
    return reading;
  }

  // Occasional preferred-RAT flip models 2G<->3G handoff (load balancing,
  // data-session start/stop) — one driver of the oscillating effect.
  if (rng_.bernoulli(config_.rat_switch_prob))
    preferred_rat_ = preferred_rat_ == world::Radio::Gsm2G
                         ? world::Radio::Umts3G
                         : world::Radio::Gsm2G;

  // Add per-sample fading and pick the strongest cell in the preferred RAT;
  // fall back to any RAT when the preferred layer is silent.
  struct Candidate {
    world::CellId cell;
    double rssi;
  };
  std::vector<Candidate> faded;
  faded.reserve(heard.size());
  for (const auto& h : heard)
    faded.push_back({h.cell, h.rssi_dbm + rng_.normal(0, config_.fading_sigma_db)});

  auto best_in = [&](std::optional<world::Radio> rat) -> const Candidate* {
    const Candidate* best = nullptr;
    for (const auto& c : faded) {
      if (rat && c.cell.radio != *rat) continue;
      if (c.rssi < world::kCellDetectionDbm) continue;
      if (!best || c.rssi > best->rssi) best = &c;
    }
    return best;
  };

  const Candidate* best = best_in(preferred_rat_);
  if (best == nullptr) best = best_in(std::nullopt);
  if (best == nullptr) {
    if (last_serving_) {
      reading.serving = *last_serving_;
      reading.serving_rssi_dbm = -110;
    }
    return reading;
  }

  // Reselection hysteresis: keep the previous serving cell unless the
  // challenger is clearly stronger (and the RAT did not just switch).
  bool keep_previous = false;
  if (last_serving_ && last_serving_->radio == best->cell.radio &&
      *last_serving_ != best->cell) {
    for (const auto& c : faded) {
      if (c.cell == *last_serving_ &&
          c.rssi + config_.reselect_hysteresis_db >= best->rssi &&
          c.rssi >= world::kCellDetectionDbm) {
        reading.serving = c.cell;
        reading.serving_rssi_dbm = c.rssi;
        keep_previous = true;
        break;
      }
    }
  }
  if (!keep_previous) {
    reading.serving = best->cell;
    reading.serving_rssi_dbm = best->rssi;
  }
  last_serving_ = reading.serving;
  last_serving_rssi_ = reading.serving_rssi_dbm;

  // Neighbor list: strongest other cells, any RAT.
  std::sort(faded.begin(), faded.end(),
            [](const Candidate& a, const Candidate& b) { return a.rssi > b.rssi; });
  for (const auto& c : faded) {
    if (c.cell == reading.serving) continue;
    if (c.rssi < world::kCellDetectionDbm) continue;
    reading.neighbors.push_back(c.cell);
    if (static_cast<int>(reading.neighbors.size()) >= config_.max_neighbors)
      break;
  }
  return reading;
}

WifiScan Device::scan_wifi(SimTime t) {
  const geo::LatLng pos = oracle_.position(t);
  WifiScan scan;
  scan.t = t;
  for (const auto& ap : world_->visible_aps(pos, 4.0)) {
    if (rng_.bernoulli(config_.wifi_miss_prob)) continue;
    const double rssi = ap.rssi_dbm + rng_.normal(0, 2.0);
    if (rssi < world::kWifiDetectionDbm) continue;
    scan.aps.push_back({ap.bssid, rssi});
  }
  return scan;
}

GpsFix Device::read_gps(SimTime t) {
  const geo::LatLng pos = oracle_.position(t);
  const bool indoors = oracle_.indoors(t);
  GpsFix fix;
  fix.t = t;
  const double valid_prob = indoors ? config_.gps_indoor_valid_prob
                                    : config_.gps_outdoor_valid_prob;
  if (!rng_.bernoulli(valid_prob)) return fix;  // no fix
  const double sigma =
      indoors ? config_.gps_indoor_sigma_m : config_.gps_outdoor_sigma_m;
  fix.valid = true;
  fix.position = geo::destination(pos, rng_.uniform(0, 360),
                                  std::abs(rng_.normal(0, sigma)));
  fix.accuracy_m = sigma;
  return fix;
}

AccelReading Device::read_accel(SimTime t) {
  const mobility::Activity truth = oracle_.activity(t);
  AccelReading reading;
  reading.t = t;
  reading.activity = truth;
  if (rng_.bernoulli(config_.activity_error_prob)) {
    // Misclassify into a uniformly-chosen other state.
    const mobility::Activity all[3] = {mobility::Activity::Still,
                                       mobility::Activity::Walking,
                                       mobility::Activity::Vehicle};
    mobility::Activity wrong = truth;
    while (wrong == truth) wrong = all[rng_.index(3)];
    reading.activity = wrong;
  }
  return reading;
}

BluetoothScan Device::scan_bluetooth(
    SimTime t, std::span<const std::pair<world::DeviceId, geo::LatLng>> others) {
  const geo::LatLng pos = oracle_.position(t);
  BluetoothScan scan;
  scan.t = t;
  for (const auto& [id, other_pos] : others) {
    if (geo::distance_m(pos, other_pos) > config_.bluetooth_range_m) continue;
    if (rng_.bernoulli(config_.bluetooth_miss_prob)) continue;
    scan.nearby.push_back(id);
  }
  return scan;
}

}  // namespace pmware::sensing
