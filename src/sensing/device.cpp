#include "sensing/device.hpp"

#include <algorithm>

namespace pmware::sensing {

PositionOracle oracle_from_trace(const mobility::Trace& trace) {
  PositionOracle oracle;
  oracle.position = [&trace](SimTime t) { return trace.position_at(t); };
  oracle.activity = [&trace](SimTime t) { return trace.activity_at(t); };
  oracle.indoors = [&trace](SimTime t) { return trace.place_at(t).has_value(); };
  return oracle;
}

Device::Device(std::shared_ptr<const world::World> world, PositionOracle oracle,
               DeviceConfig config, Rng rng)
    : world_(std::move(world)),
      oracle_(std::move(oracle)),
      config_(config),
      rng_(rng) {}

const std::vector<world::HeardCell>& Device::cell_env(const geo::LatLng& pos) {
  ++env_queries_;
  if (config_.reuse_world_env && cell_env_pos_ && *cell_env_pos_ == pos) {
    ++env_hits_;
    return cell_env_;
  }
  world_->hearable_cells_into(pos, cell_env_, config_.fading_sigma_db * 2);
  cell_env_pos_ = pos;
  return cell_env_;
}

const std::vector<world::HeardAp>& Device::ap_env(const geo::LatLng& pos) {
  ++env_queries_;
  if (config_.reuse_world_env && ap_env_pos_ && *ap_env_pos_ == pos) {
    ++env_hits_;
    return ap_env_;
  }
  world_->visible_aps_into(pos, ap_env_, 4.0);
  ap_env_pos_ = pos;
  return ap_env_;
}

GsmReading Device::read_gsm(SimTime t) {
  GsmReading reading;
  read_gsm_into(t, reading);
  return reading;
}

void Device::read_gsm_into(SimTime t, GsmReading& reading) {
  const geo::LatLng pos = oracle_.position(t);
  const std::vector<world::HeardCell>& heard = cell_env(pos);

  reading.t = t;
  reading.serving = world::CellId{};
  reading.serving_rssi_dbm = 0;
  reading.neighbors.clear();
  if (heard.empty()) {
    // Dead zone: report the last serving cell (phones hold on to it).
    if (last_serving_) {
      reading.serving = *last_serving_;
      reading.serving_rssi_dbm = -110;
    }
    return;
  }

  // Occasional preferred-RAT flip models 2G<->3G handoff (load balancing,
  // data-session start/stop) — one driver of the oscillating effect.
  if (rng_.bernoulli(config_.rat_switch_prob))
    preferred_rat_ = preferred_rat_ == world::Radio::Gsm2G
                         ? world::Radio::Umts3G
                         : world::Radio::Gsm2G;

  // Add per-sample fading and pick the strongest cell in the preferred RAT;
  // fall back to any RAT when the preferred layer is silent. The fading
  // normals are drawn in heard order — the order the cached environment
  // preserves — so cached and uncached reads consume identical RNG streams.
  faded_.clear();
  for (const auto& h : heard)
    faded_.push_back({h.cell, h.rssi_dbm + rng_.normal(0, config_.fading_sigma_db)});

  auto best_in = [&](std::optional<world::Radio> rat) -> const Candidate* {
    const Candidate* best = nullptr;
    for (const auto& c : faded_) {
      if (rat && c.cell.radio != *rat) continue;
      if (c.rssi < world::kCellDetectionDbm) continue;
      if (!best || c.rssi > best->rssi) best = &c;
    }
    return best;
  };

  const Candidate* best = best_in(preferred_rat_);
  if (best == nullptr) best = best_in(std::nullopt);
  if (best == nullptr) {
    if (last_serving_) {
      reading.serving = *last_serving_;
      reading.serving_rssi_dbm = -110;
    }
    return;
  }

  // Reselection hysteresis: keep the previous serving cell unless the
  // challenger is clearly stronger (and the RAT did not just switch).
  bool keep_previous = false;
  if (last_serving_ && last_serving_->radio == best->cell.radio &&
      *last_serving_ != best->cell) {
    for (const auto& c : faded_) {
      if (c.cell == *last_serving_ &&
          c.rssi + config_.reselect_hysteresis_db >= best->rssi &&
          c.rssi >= world::kCellDetectionDbm) {
        reading.serving = c.cell;
        reading.serving_rssi_dbm = c.rssi;
        keep_previous = true;
        break;
      }
    }
  }
  if (!keep_previous) {
    reading.serving = best->cell;
    reading.serving_rssi_dbm = best->rssi;
  }
  last_serving_ = reading.serving;
  last_serving_rssi_ = reading.serving_rssi_dbm;

  // Neighbor list: strongest other cells, any RAT. Only the strongest
  // max_neighbors + 1 candidates can ever be emitted (the +1 absorbs the
  // serving cell), so a partial selection replaces the full sort; if any
  // element of that prefix is below the detection threshold, everything
  // beyond the prefix is too, so the scan below never needs the rest
  // ordered.
  const auto sorted_end =
      faded_.begin() +
      static_cast<std::ptrdiff_t>(
          std::min(faded_.size(),
                   static_cast<std::size_t>(config_.max_neighbors) + 1));
  std::partial_sort(
      faded_.begin(), sorted_end, faded_.end(),
      [](const Candidate& a, const Candidate& b) { return a.rssi > b.rssi; });
  for (auto it = faded_.begin(); it != sorted_end; ++it) {
    const auto& c = *it;
    if (c.cell == reading.serving) continue;
    if (c.rssi < world::kCellDetectionDbm) continue;
    reading.neighbors.push_back(c.cell);
    if (static_cast<int>(reading.neighbors.size()) >= config_.max_neighbors)
      break;
  }
}

std::size_t Device::read_gsm_run(
    std::span<const SimTime> times,
    const std::function<bool(const GsmReading&)>& sink) {
  std::size_t n = 0;
  for (const SimTime t : times) {
    read_gsm_into(t, gsm_scratch_);
    ++n;
    if (!sink(gsm_scratch_)) break;
  }
  return n;
}

WifiScan Device::scan_wifi(SimTime t) {
  WifiScan scan;
  scan_wifi_into(t, scan);
  return scan;
}

void Device::scan_wifi_into(SimTime t, WifiScan& scan) {
  const geo::LatLng pos = oracle_.position(t);
  scan.t = t;
  scan.aps.clear();
  for (const auto& ap : ap_env(pos)) {
    if (rng_.bernoulli(config_.wifi_miss_prob)) continue;
    const double rssi = ap.rssi_dbm + rng_.normal(0, 2.0);
    if (rssi < world::kWifiDetectionDbm) continue;
    scan.aps.push_back({ap.bssid, rssi});
  }
}

std::size_t Device::scan_wifi_run(
    std::span<const SimTime> times,
    const std::function<bool(const WifiScan&)>& sink) {
  std::size_t n = 0;
  for (const SimTime t : times) {
    scan_wifi_into(t, wifi_scratch_);
    ++n;
    if (!sink(wifi_scratch_)) break;
  }
  return n;
}

GpsFix Device::read_gps(SimTime t) {
  const geo::LatLng pos = oracle_.position(t);
  const bool indoors = oracle_.indoors(t);
  GpsFix fix;
  fix.t = t;
  const double valid_prob = indoors ? config_.gps_indoor_valid_prob
                                    : config_.gps_outdoor_valid_prob;
  if (!rng_.bernoulli(valid_prob)) return fix;  // no fix
  const double sigma =
      indoors ? config_.gps_indoor_sigma_m : config_.gps_outdoor_sigma_m;
  fix.valid = true;
  fix.position = geo::destination(pos, rng_.uniform(0, 360),
                                  std::abs(rng_.normal(0, sigma)));
  fix.accuracy_m = sigma;
  return fix;
}

AccelReading Device::read_accel(SimTime t) {
  const mobility::Activity truth = oracle_.activity(t);
  AccelReading reading;
  reading.t = t;
  reading.activity = truth;
  if (rng_.bernoulli(config_.activity_error_prob)) {
    // Misclassify into a uniformly-chosen other state.
    const mobility::Activity all[3] = {mobility::Activity::Still,
                                       mobility::Activity::Walking,
                                       mobility::Activity::Vehicle};
    mobility::Activity wrong = truth;
    while (wrong == truth) wrong = all[rng_.index(3)];
    reading.activity = wrong;
  }
  return reading;
}

BluetoothScan Device::scan_bluetooth(
    SimTime t, std::span<const std::pair<world::DeviceId, geo::LatLng>> others) {
  const geo::LatLng pos = oracle_.position(t);
  BluetoothScan scan;
  scan.t = t;
  for (const auto& [id, other_pos] : others) {
    if (geo::distance_m(pos, other_pos) > config_.bluetooth_range_m) continue;
    if (rng_.bernoulli(config_.bluetooth_miss_prob)) continue;
    scan.nearby.push_back(id);
  }
  return scan;
}

}  // namespace pmware::sensing
