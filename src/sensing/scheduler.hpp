// Sampling scheduler: the device's single sensing loop.
//
// Exactly one scheduler runs per device — this is the architectural point of
// PMWare (paper §2.2): N connected applications share one sensing pipeline
// instead of N redundant ones. The inference engine adjusts periods and
// requests one-shot samples; every sample is charged to the energy meter.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "energy/meter.hpp"
#include "util/simtime.hpp"

namespace pmware::sensing {

class SamplingScheduler {
 public:
  using Callback = std::function<void(SimTime)>;

  explicit SamplingScheduler(energy::EnergyMeter* meter) : meter_(meter) {}

  /// Sets the periodic sampling interval for an interface; nullopt disables
  /// periodic sampling. Takes effect from the current simulation time.
  void set_period(energy::Interface interface,
                  std::optional<SimDuration> period);

  std::optional<SimDuration> period(energy::Interface interface) const {
    return periods_[static_cast<std::size_t>(interface)];
  }

  /// Installs the handler invoked on each sample of `interface`.
  void set_callback(energy::Interface interface, Callback cb);

  /// Requests a single extra sample at time `at` (>= now); used for
  /// triggered sensing (e.g. "scan WiFi now, movement started").
  void request_once(energy::Interface interface, SimTime at);

  /// Runs the loop over [window.begin, window.end), dispatching samples in
  /// time order and charging the meter (samples + baseline). Callbacks may
  /// call set_period/request_once to adapt sensing while running.
  void run(TimeWindow window);

  SimTime now() const { return now_; }

 private:
  struct OneShot {
    energy::Interface interface;
    SimTime at;
  };

  energy::EnergyMeter* meter_;
  std::array<std::optional<SimDuration>, energy::kInterfaceCount> periods_{};
  std::array<std::optional<SimTime>, energy::kInterfaceCount> next_due_{};
  std::array<Callback, energy::kInterfaceCount> callbacks_{};
  std::vector<OneShot> one_shots_;
  SimTime now_ = 0;
};

}  // namespace pmware::sensing
