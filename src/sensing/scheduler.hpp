// Sampling scheduler: the device's single sensing loop.
//
// Exactly one scheduler runs per device — this is the architectural point of
// PMWare (paper §2.2): N connected applications share one sensing pipeline
// instead of N redundant ones. The inference engine adjusts periods and
// requests one-shot samples; every sample is charged to the energy meter.
//
// The event loop is run-oriented: periodic interfaces live in small
// fixed-size next-due arrays (finding the earliest of kInterfaceCount
// entries is a handful of compares — cheaper than any heap or timing wheel
// at this fan-in), and for the earliest interface the scheduler computes the
// *run* of consecutive fire times up to the next foreign event (another
// interface, a one-shot, or the window end) and dispatches the whole run
// through one batch callback into a pre-sized reusable buffer. Only
// one-shots still go through a min-heap, because their arrival order is
// data-dependent. Schedule changes are tracked with per-interface
// generation counters plus a global change epoch: a set_period/request_once
// from inside a run truncates it — the batch consumer stops consuming, the
// scheduler re-plans from the last consumed sample — so adaptive-sensing
// semantics are identical to per-sample dispatch (fuzz-verified against
// ReferenceScheduler, the retired heap implementation).
//
// Determinism contract (unchanged): dispatch is time-ordered; at equal
// times periodic interfaces fire before one-shots, periodic in ascending
// interface index, one-shots in (interface index, request order). Batching
// never reorders callbacks, so RNG draw order — and therefore every study
// digest — is byte-identical to per-sample dispatch.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "energy/meter.hpp"
#include "telemetry/metrics.hpp"
#include "util/simtime.hpp"

namespace pmware::sensing {

class SamplingScheduler {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Batch handler: receives a run of fire times for one interface (always
  /// non-empty, strictly increasing, one period apart) and returns how many
  /// it consumed, in order, from the front. Consuming fewer than the full
  /// run tells the scheduler the sampling schedule changed mid-run (the
  /// consumer called set_period/request_once); the scheduler re-plans the
  /// remainder. Contract for in-run schedule changes: stop consuming right
  /// after the sample that made the change, and pass explicit times —
  /// set_period(i, p, /*from=*/t) and request_once(i, /*at>=*/t) — because
  /// now() only advances at run granularity during batch dispatch.
  using BatchCallback = std::function<std::size_t(std::span<const SimTime>)>;

  /// Longest run handed to a batch callback in one call; bounds the reusable
  /// dispatch buffer.
  static constexpr std::size_t kMaxRunLength = 256;

  explicit SamplingScheduler(energy::EnergyMeter* meter);

  /// Sets the periodic sampling interval for an interface; nullopt disables
  /// periodic sampling. Takes effect from `from` when given, otherwise from
  /// the current simulation time. Batch consumers changing the schedule
  /// mid-run must pass the triggering sample's time as `from`.
  void set_period(energy::Interface interface, std::optional<SimDuration> period,
                  std::optional<SimTime> from = std::nullopt);

  std::optional<SimDuration> period(energy::Interface interface) const {
    return periods_[static_cast<std::size_t>(interface)];
  }

  /// Installs the handler invoked on each sample of `interface`.
  void set_callback(energy::Interface interface, Callback cb);

  /// Installs a run-oriented handler for `interface`; takes precedence over
  /// the per-sample callback when both are set. One-shots arrive as runs of
  /// length 1.
  void set_batch_callback(energy::Interface interface, BatchCallback cb);

  /// Requests a single extra sample at time `at` (>= now); used for
  /// triggered sensing (e.g. "scan WiFi now, movement started").
  void request_once(energy::Interface interface, SimTime at);

  /// Runs the loop over [window.begin, window.end), dispatching samples in
  /// time order and charging the meter (samples + baseline). Callbacks may
  /// call set_period/request_once to adapt sensing while running.
  ///
  /// Dispatch order at equal times: periodic interfaces first (ascending
  /// interface index), then one-shots in (interface index, request order).
  void run(TimeWindow window);

  SimTime now() const { return now_; }

  /// Bumped by every set_period/request_once. Batch consumers compare it
  /// around each sample to detect that they changed the schedule and must
  /// stop consuming the current run.
  std::uint64_t change_epoch() const { return change_epoch_; }

  /// Value of this scheduler's "instance" metric label, e.g. "dev3" —
  /// isolates the per-device policy gauges.
  const std::string& instance_label() const { return instance_; }

 private:
  /// Pending one-shot request. `seq` is the FIFO ticket breaking ties among
  /// equal-time requests for the same interface.
  struct OneShot {
    SimTime at = 0;
    std::size_t index = 0;  ///< interface index
    std::uint64_t seq = 0;
  };
  struct ShotLater {
    bool operator()(const OneShot& a, const OneShot& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.index != b.index) return a.index > b.index;
      return a.seq > b.seq;
    }
  };

  /// Dispatches the run of interface `index` starting at `t0`, bounded by
  /// the earliest foreign event (`horizon`, exclusive).
  void dispatch_periodic_run(std::size_t index, SimTime t0, SimTime horizon,
                             TimeWindow window);
  /// Dispatches the snapshot of one-shots due at <= t (all at time t).
  void dispatch_due_one_shots(SimTime t);
  /// Fires one sample of `index` at `t` through the batch callback (span of
  /// one) or the per-sample callback.
  void dispatch_single(std::size_t index, SimTime t);

  energy::EnergyMeter* meter_;
  std::string instance_;  ///< registry label isolating this device's gauges
  std::array<std::optional<SimDuration>, energy::kInterfaceCount> periods_{};
  std::array<std::optional<SimTime>, energy::kInterfaceCount> next_due_{};
  std::array<std::uint64_t, energy::kInterfaceCount> generation_{};
  std::array<Callback, energy::kInterfaceCount> callbacks_{};
  std::array<BatchCallback, energy::kInterfaceCount> batch_callbacks_{};
  std::priority_queue<OneShot, std::vector<OneShot>, ShotLater> shots_;
  std::uint64_t one_shot_seq_ = 0;
  std::uint64_t change_epoch_ = 0;
  SimTime now_ = 0;

  // Reusable hot-loop buffers: the run handed to batch callbacks and the
  // snapshot of due one-shots. Sized once, never reallocated per sample.
  std::vector<SimTime> run_buffer_;
  std::vector<OneShot> due_shots_;

  // Wall time spent inside consumer callbacks this window, per interface.
  // run() folds each accumulator into one "scheduler.sampling.<interface>"
  // child span per window (Tracer::record_span), so flame folds separate the
  // sampling work the scheduler *drives* from the dispatch machinery itself
  // (scheduler.run self time) without a per-run span blowing the tracer cap.
  std::array<std::int64_t, energy::kInterfaceCount> callback_ns_{};

  // Pre-resolved per-interface sample/one-shot counters: the hot loop does
  // one relaxed atomic add per dispatch instead of a LabelSet build + a
  // locked registry lookup per sample.
  std::array<telemetry::CachedCounter, energy::kInterfaceCount> samples_total_;
  std::array<telemetry::CachedCounter, energy::kInterfaceCount> one_shots_total_;
};

}  // namespace pmware::sensing
