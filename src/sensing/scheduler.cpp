#include "sensing/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmware::sensing {

void SamplingScheduler::set_period(energy::Interface interface,
                                   std::optional<SimDuration> period) {
  if (period && *period <= 0)
    throw std::invalid_argument("set_period: period <= 0");
  const auto idx = static_cast<std::size_t>(interface);
  periods_[idx] = period;
  next_due_[idx] = period ? std::optional<SimTime>(now_ + *period) : std::nullopt;
}

void SamplingScheduler::set_callback(energy::Interface interface, Callback cb) {
  callbacks_[static_cast<std::size_t>(interface)] = std::move(cb);
}

void SamplingScheduler::request_once(energy::Interface interface, SimTime at) {
  one_shots_.push_back({interface, std::max(at, now_)});
}

void SamplingScheduler::run(TimeWindow window) {
  now_ = window.begin;
  if (meter_ != nullptr) meter_->charge_baseline(window.begin, window.end);

  // Arm periodic interfaces to fire at the window start.
  for (std::size_t i = 0; i < periods_.size(); ++i)
    if (periods_[i]) next_due_[i] = window.begin;

  while (true) {
    // Earliest due event across periodic interfaces and one-shots.
    std::optional<SimTime> due;
    for (std::size_t i = 0; i < next_due_.size(); ++i)
      if (next_due_[i] && (!due || *next_due_[i] < *due)) due = next_due_[i];
    for (const OneShot& shot : one_shots_)
      if (!due || shot.at < *due) due = shot.at;
    if (!due || *due >= window.end) break;

    now_ = *due;

    // Dispatch every periodic interface due now (stable order by index).
    for (std::size_t i = 0; i < next_due_.size(); ++i) {
      if (!next_due_[i] || *next_due_[i] != now_) continue;
      const auto interface = static_cast<energy::Interface>(i);
      // Reschedule before dispatch so a callback changing the period wins.
      next_due_[i] = periods_[i] ? std::optional<SimTime>(now_ + *periods_[i])
                                 : std::nullopt;
      if (meter_ != nullptr) meter_->charge_sample(interface, now_);
      if (callbacks_[i]) callbacks_[i](now_);
    }

    // Dispatch due one-shots. Callbacks may enqueue more one-shots, so work
    // on a drained copy.
    std::vector<OneShot> due_shots;
    auto split = std::partition(one_shots_.begin(), one_shots_.end(),
                                [&](const OneShot& s) { return s.at > now_; });
    due_shots.assign(split, one_shots_.end());
    one_shots_.erase(split, one_shots_.end());
    for (const OneShot& shot : due_shots) {
      const auto idx = static_cast<std::size_t>(shot.interface);
      if (meter_ != nullptr) meter_->charge_sample(shot.interface, now_);
      if (callbacks_[idx]) callbacks_[idx](now_);
    }
  }
  now_ = window.end;
}

}  // namespace pmware::sensing
