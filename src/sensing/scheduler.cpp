#include "sensing/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "telemetry/trace.hpp"

namespace pmware::sensing {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

telemetry::LabelSet interface_labels(energy::Interface interface) {
  return {{"interface", energy::to_string(interface)}};
}

std::array<telemetry::CachedCounter, energy::kInterfaceCount> sample_counters(
    const char* name, const char* help) {
  const auto make = [&](std::size_t i) {
    return telemetry::CachedCounter(
        name, interface_labels(static_cast<energy::Interface>(i)), help);
  };
  return {make(0), make(1), make(2), make(3), make(4)};
}

}  // namespace

static_assert(energy::kInterfaceCount == 5,
              "sample_counters() enumerates the interfaces explicitly");

SamplingScheduler::SamplingScheduler(energy::EnergyMeter* meter)
    : meter_(meter),
      instance_(telemetry::registry().next_instance_label("dev")),
      samples_total_(sample_counters(
          "sensing_samples_total",
          "sensor samples dispatched by the sampling scheduler")),
      one_shots_total_(sample_counters(
          "sensing_one_shots_total",
          "triggered (one-shot) samples requested")) {
  run_buffer_.reserve(kMaxRunLength);
  due_shots_.reserve(16);
}

void SamplingScheduler::set_period(energy::Interface interface,
                                   std::optional<SimDuration> period,
                                   std::optional<SimTime> from) {
  if (period && *period <= 0)
    throw std::invalid_argument("set_period: period <= 0");
  const auto idx = static_cast<std::size_t>(interface);
  periods_[idx] = period;
  ++generation_[idx];
  ++change_epoch_;
  if (period) {
    next_due_[idx] = from.value_or(now_) + *period;
  } else {
    next_due_[idx] = std::nullopt;
  }
  // Duty-cycle view of the current policy: samples per second, 0 when the
  // interface is off. The instance label keeps each device's policy its own
  // series — without it, concurrent devices would race last-writer-wins.
  // This is the cold path (policy changes, not samples), so the registry
  // lookup stays inline.
  telemetry::LabelSet labels = interface_labels(interface);
  labels.emplace("instance", instance_);
  auto& reg = telemetry::registry();
  reg.gauge("sensing_period_seconds", labels,
            "configured sampling period, seconds (0 = disabled)")
      .set(period ? static_cast<double>(*period) : 0.0);
  reg.gauge("sensing_duty_cycle", std::move(labels),
            "samples per simulated second under the current policy")
      .set(period ? 1.0 / static_cast<double>(*period) : 0.0);
}

void SamplingScheduler::set_callback(energy::Interface interface, Callback cb) {
  callbacks_[static_cast<std::size_t>(interface)] = std::move(cb);
}

void SamplingScheduler::set_batch_callback(energy::Interface interface,
                                           BatchCallback cb) {
  batch_callbacks_[static_cast<std::size_t>(interface)] = std::move(cb);
}

void SamplingScheduler::request_once(energy::Interface interface, SimTime at) {
  const auto idx = static_cast<std::size_t>(interface);
  one_shots_total_[idx].get().inc();
  ++change_epoch_;
  shots_.push({std::max(at, now_), idx, one_shot_seq_++});
}

void SamplingScheduler::dispatch_single(std::size_t index, SimTime t) {
  if (batch_callbacks_[index]) {
    const std::span<const SimTime> one(&t, 1);
    (void)batch_callbacks_[index](one);
  } else if (callbacks_[index]) {
    callbacks_[index](t);
  }
}

void SamplingScheduler::dispatch_due_one_shots(SimTime t) {
  // Old heap semantics, preserved: a one-shot queued before the window at a
  // time already in the past still dispatches at its own (earlier) time.
  now_ = t;
  // Snapshot-then-dispatch: one-shot callbacks requesting more shots at the
  // same time see them in the *next* snapshot, still at the same simulated
  // time — the order the heap scheduler produced.
  due_shots_.clear();
  while (!shots_.empty() && shots_.top().at <= t) {
    due_shots_.push_back(shots_.top());
    shots_.pop();
  }
  for (const OneShot& shot : due_shots_) {
    const auto interface = static_cast<energy::Interface>(shot.index);
    if (meter_ != nullptr) meter_->charge_sample(interface, now_);
    samples_total_[shot.index].get().inc();
    const auto begin = std::chrono::steady_clock::now();
    dispatch_single(shot.index, now_);
    callback_ns_[shot.index] +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count();
  }
}

void SamplingScheduler::dispatch_periodic_run(std::size_t index, SimTime t0,
                                              SimTime horizon,
                                              TimeWindow window) {
  const SimDuration p = *periods_[index];
  const auto interface = static_cast<energy::Interface>(index);

  // Fire times t0, t0+p, ... strictly below the horizon (the first instant
  // anything else can fire). Ties at t0 with another interface or a one-shot
  // still yield a run of one — the loop re-plans after every dispatch, so
  // equal-time ordering is preserved.
  std::size_t n = 1;
  if (horizon > t0)
    n = static_cast<std::size_t>((horizon - t0 - 1) / p) + 1;
  n = std::min(n, kMaxRunLength);
  run_buffer_.clear();
  for (std::size_t k = 0; k < n; ++k)
    run_buffer_.push_back(t0 + static_cast<SimTime>(k) * p);

  const std::uint64_t gen_before = generation_[index];
  if (batch_callbacks_[index]) {
    now_ = t0;
    const auto begin = std::chrono::steady_clock::now();
    std::size_t consumed = batch_callbacks_[index](
        std::span<const SimTime>(run_buffer_.data(), n));
    callback_ns_[index] +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count();
    consumed = std::clamp<std::size_t>(consumed, 1, n);
    const SimTime last = run_buffer_[consumed - 1];
    now_ = std::max(now_, last);
    if (meter_ != nullptr) meter_->charge_samples(interface, consumed, last);
    samples_total_[index].get().add(consumed);
    // A mid-run set_period on this interface already re-armed it (relative
    // to the consumer's explicit `from`); otherwise continue the cadence
    // from the last consumed sample.
    if (generation_[index] == gen_before && periods_[index])
      next_due_[index] = last + *periods_[index];
  } else {
    // Per-sample path (tests, ad-hoc consumers): identical semantics to the
    // retired heap loop — reschedule before dispatch so a callback changing
    // the period wins, and stop the run on any schedule change so foreign
    // events (new one-shots, other interfaces' new periods) interleave at
    // the right times.
    for (std::size_t k = 0; k < n; ++k) {
      const SimTime t = run_buffer_[k];
      const std::uint64_t epoch_before = change_epoch_;
      now_ = t;
      next_due_[index] = t + p;
      if (meter_ != nullptr) meter_->charge_sample(interface, t);
      samples_total_[index].get().inc();
      if (callbacks_[index]) {
        const auto begin = std::chrono::steady_clock::now();
        callbacks_[index](t);
        callback_ns_[index] +=
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
      }
      if (change_epoch_ != epoch_before) break;
    }
  }
  (void)window;
}

void SamplingScheduler::run(TimeWindow window) {
  now_ = window.begin;
  callback_ns_.fill(0);
  telemetry::ScopedTimer run_span(telemetry::tracer(), "scheduler.run",
                                  [this] { return now_; });
  if (meter_ != nullptr) meter_->charge_baseline(window.begin, window.end);

  // Arm periodic interfaces to fire at the window start.
  for (std::size_t i = 0; i < periods_.size(); ++i) {
    if (periods_[i]) {
      ++generation_[i];
      next_due_[i] = window.begin;
    }
  }

  while (true) {
    // Earliest due periodic interface; ties resolve to the lowest index,
    // which is the dispatch order contract.
    std::size_t best = kNone;
    SimTime best_t = kNever;
    for (std::size_t i = 0; i < next_due_.size(); ++i) {
      if (next_due_[i] && *next_due_[i] < best_t) {
        best = i;
        best_t = *next_due_[i];
      }
    }
    const SimTime shot_t = shots_.empty() ? kNever : shots_.top().at;
    const SimTime t = std::min(best_t, shot_t);
    if (t >= window.end) break;

    if (best != kNone && best_t <= shot_t) {
      // Horizon: the next instant any *other* source can fire.
      SimTime horizon = std::min(window.end, shot_t);
      for (std::size_t j = 0; j < next_due_.size(); ++j)
        if (j != best && next_due_[j])
          horizon = std::min(horizon, *next_due_[j]);
      dispatch_periodic_run(best, best_t, horizon, window);
    } else {
      dispatch_due_one_shots(shot_t);
    }
  }
  now_ = window.end;

  // Fold the accumulated consumer time into one child span per interface,
  // while scheduler.run is still the open span: the flame then separates
  // the sampling work (device reads + inference, under
  // scheduler.sampling.<interface>) from the dispatch machinery itself
  // (scheduler.run self time). One record per interface per window — a
  // per-run RAII span would overflow the tracer's record cap on a full
  // study and distort the very flame it measures.
  for (std::size_t i = 0; i < callback_ns_.size(); ++i) {
    if (callback_ns_[i] <= 0) continue;
    telemetry::tracer().record_span(
        std::string("scheduler.sampling.") +
            energy::to_string(static_cast<energy::Interface>(i)),
        window.begin, window.end, callback_ns_[i]);
  }
}

}  // namespace pmware::sensing
