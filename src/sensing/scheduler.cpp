#include "sensing/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::sensing {

namespace {

telemetry::LabelSet interface_labels(energy::Interface interface) {
  return {{"interface", energy::to_string(interface)}};
}

void count_sample(energy::Interface interface) {
  telemetry::registry()
      .counter("sensing_samples_total", interface_labels(interface),
               "sensor samples dispatched by the sampling scheduler")
      .inc();
}

}  // namespace

void SamplingScheduler::set_period(energy::Interface interface,
                                   std::optional<SimDuration> period) {
  if (period && *period <= 0)
    throw std::invalid_argument("set_period: period <= 0");
  const auto idx = static_cast<std::size_t>(interface);
  periods_[idx] = period;
  next_due_[idx] = period ? std::optional<SimTime>(now_ + *period) : std::nullopt;
  // Duty-cycle view of the current policy: samples per second, 0 when the
  // interface is off. Last writer wins across devices — the gauge reflects
  // the most recently adjusted device, while the sample counters aggregate.
  auto& reg = telemetry::registry();
  reg.gauge("sensing_period_seconds", interface_labels(interface),
            "configured sampling period, seconds (0 = disabled)")
      .set(period ? static_cast<double>(*period) : 0.0);
  reg.gauge("sensing_duty_cycle", interface_labels(interface),
            "samples per simulated second under the current policy")
      .set(period ? 1.0 / static_cast<double>(*period) : 0.0);
}

void SamplingScheduler::set_callback(energy::Interface interface, Callback cb) {
  callbacks_[static_cast<std::size_t>(interface)] = std::move(cb);
}

void SamplingScheduler::request_once(energy::Interface interface, SimTime at) {
  telemetry::registry()
      .counter("sensing_one_shots_total", interface_labels(interface),
               "triggered (one-shot) samples requested")
      .inc();
  one_shots_.push_back({interface, std::max(at, now_)});
}

void SamplingScheduler::run(TimeWindow window) {
  now_ = window.begin;
  telemetry::ScopedTimer run_span(telemetry::tracer(), "scheduler.run",
                                  [this] { return now_; });
  if (meter_ != nullptr) meter_->charge_baseline(window.begin, window.end);

  // Arm periodic interfaces to fire at the window start.
  for (std::size_t i = 0; i < periods_.size(); ++i)
    if (periods_[i]) next_due_[i] = window.begin;

  while (true) {
    // Earliest due event across periodic interfaces and one-shots.
    std::optional<SimTime> due;
    for (std::size_t i = 0; i < next_due_.size(); ++i)
      if (next_due_[i] && (!due || *next_due_[i] < *due)) due = next_due_[i];
    for (const OneShot& shot : one_shots_)
      if (!due || shot.at < *due) due = shot.at;
    if (!due || *due >= window.end) break;

    now_ = *due;

    // Dispatch every periodic interface due now (stable order by index).
    for (std::size_t i = 0; i < next_due_.size(); ++i) {
      if (!next_due_[i] || *next_due_[i] != now_) continue;
      const auto interface = static_cast<energy::Interface>(i);
      // Reschedule before dispatch so a callback changing the period wins.
      next_due_[i] = periods_[i] ? std::optional<SimTime>(now_ + *periods_[i])
                                 : std::nullopt;
      if (meter_ != nullptr) meter_->charge_sample(interface, now_);
      count_sample(interface);
      if (callbacks_[i]) callbacks_[i](now_);
    }

    // Dispatch due one-shots. Callbacks may enqueue more one-shots, so work
    // on a drained copy.
    std::vector<OneShot> due_shots;
    auto split = std::partition(one_shots_.begin(), one_shots_.end(),
                                [&](const OneShot& s) { return s.at > now_; });
    due_shots.assign(split, one_shots_.end());
    one_shots_.erase(split, one_shots_.end());
    for (const OneShot& shot : due_shots) {
      const auto idx = static_cast<std::size_t>(shot.interface);
      if (meter_ != nullptr) meter_->charge_sample(shot.interface, now_);
      count_sample(shot.interface);
      if (callbacks_[idx]) callbacks_[idx](now_);
    }
  }
  now_ = window.end;
}

}  // namespace pmware::sensing
