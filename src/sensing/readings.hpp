// Raw sensor readings as the device drivers deliver them to the middleware.
#pragma once

#include <vector>

#include "geo/latlng.hpp"
#include "mobility/trace.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::sensing {

/// GSM modem state: serving cell plus the neighbor list (paper §2.2.2 tracks
/// Cell ID, LAC, MNC, MCC continuously).
struct GsmReading {
  SimTime t = 0;
  world::CellId serving;
  double serving_rssi_dbm = 0;
  std::vector<world::CellId> neighbors;
};

/// One AP seen in a WiFi scan.
struct WifiObservation {
  world::Bssid bssid = 0;
  double rssi_dbm = 0;
};

/// Result of an active WiFi scan.
struct WifiScan {
  SimTime t = 0;
  std::vector<WifiObservation> aps;
};

/// GPS fix; `valid == false` models indoor/urban-canyon acquisition failure.
struct GpsFix {
  SimTime t = 0;
  bool valid = false;
  geo::LatLng position;
  double accuracy_m = 0;  ///< 1-sigma horizontal error estimate
};

/// Output of the accelerometer-based activity detector.
struct AccelReading {
  SimTime t = 0;
  mobility::Activity activity = mobility::Activity::Still;
};

/// Devices seen in a Bluetooth discovery scan (social proximity, §2.2.2).
struct BluetoothScan {
  SimTime t = 0;
  std::vector<world::DeviceId> nearby;
};

}  // namespace pmware::sensing
