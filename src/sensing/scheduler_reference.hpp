// Reference sampling scheduler: the retired min-heap implementation, kept
// verbatim (modulo the class name) as the equivalence oracle for the
// run-oriented SamplingScheduler and as the "before" baseline in the
// scheduler dispatch microbench.
//
// The event loop is a min-heap of due events (periodic firings and
// one-shots). Periodic entries are invalidated lazily via per-interface
// generation counters: set_period() bumps the generation and pushes a fresh
// entry; stale heap entries are discarded when popped. Every dispatched
// sample builds a LabelSet and takes a locked registry lookup — the exact
// per-sample cost profile the batched scheduler was built to remove.
//
// Do not use in production paths; it exists for tests and benches only.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "energy/meter.hpp"
#include "util/simtime.hpp"

namespace pmware::sensing {

class ReferenceScheduler {
 public:
  using Callback = std::function<void(SimTime)>;

  explicit ReferenceScheduler(energy::EnergyMeter* meter);

  /// Sets the periodic sampling interval for an interface; nullopt disables
  /// periodic sampling. Takes effect from the current simulation time.
  void set_period(energy::Interface interface,
                  std::optional<SimDuration> period);

  std::optional<SimDuration> period(energy::Interface interface) const {
    return periods_[static_cast<std::size_t>(interface)];
  }

  /// Installs the handler invoked on each sample of `interface`.
  void set_callback(energy::Interface interface, Callback cb);

  /// Requests a single extra sample at time `at` (>= now); used for
  /// triggered sensing (e.g. "scan WiFi now, movement started").
  void request_once(energy::Interface interface, SimTime at);

  /// Runs the loop over [window.begin, window.end), dispatching samples in
  /// time order and charging the meter (samples + baseline). Callbacks may
  /// call set_period/request_once to adapt sensing while running.
  ///
  /// Dispatch order at equal times: periodic interfaces first (ascending
  /// interface index), then one-shots in (interface index, request order).
  void run(TimeWindow window);

  SimTime now() const { return now_; }

  /// Value of this scheduler's "instance" metric label, e.g. "dev3" —
  /// isolates the per-device policy gauges.
  const std::string& instance_label() const { return instance_; }

 private:
  /// A heap entry is a *hint* that something may be due at `at`. One-shot
  /// entries are always live; a periodic entry is live only while the
  /// interface's generation still matches `seq` and next_due_ equals `at`
  /// (set_period and window re-arming bump the generation, orphaning any
  /// entries already in the heap).
  struct HeapEntry {
    SimTime at = 0;
    bool one_shot = false;
    std::size_t index = 0;  ///< interface index
    std::uint64_t seq = 0;  ///< periodic: generation; one-shot: FIFO ticket
  };
  struct EntryLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.one_shot != b.one_shot) return a.one_shot;  // periodic first
      if (a.index != b.index) return a.index > b.index;
      return a.seq > b.seq;
    }
  };

  /// True while `entry` (periodic) still reflects the interface's schedule.
  bool live_periodic(const HeapEntry& entry) const {
    return generation_[entry.index] == entry.seq &&
           next_due_[entry.index] && *next_due_[entry.index] == entry.at;
  }
  void arm(std::size_t index, SimTime at);

  energy::EnergyMeter* meter_;
  std::string instance_;  ///< registry label isolating this device's gauges
  std::array<std::optional<SimDuration>, energy::kInterfaceCount> periods_{};
  std::array<std::optional<SimTime>, energy::kInterfaceCount> next_due_{};
  std::array<std::uint64_t, energy::kInterfaceCount> generation_{};
  std::array<Callback, energy::kInterfaceCount> callbacks_{};
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, EntryLater> queue_;
  std::uint64_t one_shot_seq_ = 0;
  SimTime now_ = 0;
};

}  // namespace pmware::sensing
