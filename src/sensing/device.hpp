// Simulated handset: turns the ground-truth position of a participant into
// the noisy sensor readings a real phone would produce.
//
// The GSM model deliberately reproduces the "oscillating effect" of paper
// §2.2.2: the serving cell changes while the user is stationary, due to
// per-sample fading, load-dependent reselection, and 2G<->3G handoff. GCA's
// movement graph exists to absorb exactly this noise.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "sensing/readings.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

namespace pmware::sensing {

struct DeviceConfig {
  double fading_sigma_db = 3.0;       ///< per-sample RSSI noise
  double reselect_hysteresis_db = 2.0;///< challenger must beat serving by this
  double rat_switch_prob = 0.06;      ///< chance a read flips preferred 2G/3G
  int max_neighbors = 6;
  double wifi_miss_prob = 0.10;       ///< per-AP missed-beacon probability
  double gps_outdoor_valid_prob = 0.97;
  double gps_indoor_valid_prob = 0.55;
  double gps_outdoor_sigma_m = 8.0;
  double gps_indoor_sigma_m = 25.0;
  double activity_error_prob = 0.05;  ///< accelerometer misclassification
  double bluetooth_range_m = 12.0;
  double bluetooth_miss_prob = 0.15;
};

/// Ground-truth oracle the device samples: where the participant is and what
/// they are doing. Implemented by mobility::Trace in production use.
struct PositionOracle {
  std::function<geo::LatLng(SimTime)> position;
  std::function<mobility::Activity(SimTime)> activity;
  /// Whether the participant is inside a building (degrades GPS).
  std::function<bool(SimTime)> indoors;
};

/// Builds a PositionOracle backed by a ground-truth trace.
PositionOracle oracle_from_trace(const mobility::Trace& trace);

class Device {
 public:
  Device(std::shared_ptr<const world::World> world, PositionOracle oracle,
         DeviceConfig config, Rng rng);

  /// Reads modem state. Stateful: reselection hysteresis and the preferred
  /// radio-access technology persist between reads.
  GsmReading read_gsm(SimTime t);

  /// Runs an active WiFi scan.
  WifiScan scan_wifi(SimTime t);

  /// Attempts a GPS fix.
  GpsFix read_gps(SimTime t);

  /// Samples the activity detector.
  AccelReading read_accel(SimTime t);

  /// Bluetooth discovery against the supplied positions of other devices.
  BluetoothScan scan_bluetooth(
      SimTime t,
      std::span<const std::pair<world::DeviceId, geo::LatLng>> others);

  const DeviceConfig& config() const { return config_; }
  const world::World& world() const { return *world_; }

 private:
  std::shared_ptr<const world::World> world_;
  PositionOracle oracle_;
  DeviceConfig config_;
  Rng rng_;
  world::Radio preferred_rat_ = world::Radio::Gsm2G;
  std::optional<world::CellId> last_serving_;
  double last_serving_rssi_ = -999;
};

}  // namespace pmware::sensing
