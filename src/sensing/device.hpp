// Simulated handset: turns the ground-truth position of a participant into
// the noisy sensor readings a real phone would produce.
//
// The GSM model deliberately reproduces the "oscillating effect" of paper
// §2.2.2: the serving cell changes while the user is stationary, due to
// per-sample fading, load-dependent reselection, and 2G<->3G handoff. GCA's
// movement graph exists to absorb exactly this noise.
//
// Hot-path structure: the deterministic part of the radio environment —
// which towers/APs are hearable at a position and their pre-fading RSSI —
// is a pure function of the position, and participants dwell at places for
// most of the day, so the device memoizes it keyed on the exact position
// and only re-runs the spatial query + path-loss + sort when the position
// changes. The stochastic part (per-sample fading, missed beacons) is drawn
// per sample from the device RNG in exactly the same order as the uncached
// path, so readings are byte-identical with the cache on or off
// (reuse_world_env) — that equivalence is what lets the deployment study
// digests stay unchanged. The *_into / *_run entry points reuse
// caller-owned readings and internal scratch buffers: after warmup the
// per-sample loop performs no heap allocations.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "sensing/readings.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

namespace pmware::sensing {

struct DeviceConfig {
  double fading_sigma_db = 3.0;       ///< per-sample RSSI noise
  double reselect_hysteresis_db = 2.0;///< challenger must beat serving by this
  double rat_switch_prob = 0.06;      ///< chance a read flips preferred 2G/3G
  int max_neighbors = 6;
  double wifi_miss_prob = 0.10;       ///< per-AP missed-beacon probability
  double gps_outdoor_valid_prob = 0.97;
  double gps_indoor_valid_prob = 0.55;
  double gps_outdoor_sigma_m = 8.0;
  double gps_indoor_sigma_m = 25.0;
  double activity_error_prob = 0.05;  ///< accelerometer misclassification
  double bluetooth_range_m = 12.0;
  double bluetooth_miss_prob = 0.15;
  /// Reuse the hearable-cells / visible-APs spatial query result while the
  /// position is unchanged (dwells dominate real traces). Readings are
  /// byte-identical either way; off = honest "before" baseline for benches.
  bool reuse_world_env = true;
};

/// Ground-truth oracle the device samples: where the participant is and what
/// they are doing. Implemented by mobility::Trace in production use.
struct PositionOracle {
  std::function<geo::LatLng(SimTime)> position;
  std::function<mobility::Activity(SimTime)> activity;
  /// Whether the participant is inside a building (degrades GPS).
  std::function<bool(SimTime)> indoors;
};

/// Builds a PositionOracle backed by a ground-truth trace.
PositionOracle oracle_from_trace(const mobility::Trace& trace);

class Device {
 public:
  Device(std::shared_ptr<const world::World> world, PositionOracle oracle,
         DeviceConfig config, Rng rng);

  /// Reads modem state. Stateful: reselection hysteresis and the preferred
  /// radio-access technology persist between reads.
  GsmReading read_gsm(SimTime t);

  /// Allocation-free read_gsm: refills `out` (including its neighbor list)
  /// in place, reusing its capacity across calls.
  void read_gsm_into(SimTime t, GsmReading& out);

  /// Runs an active WiFi scan.
  WifiScan scan_wifi(SimTime t);

  /// Allocation-free scan_wifi: refills `out` in place.
  void scan_wifi_into(SimTime t, WifiScan& out);

  /// Reads a run of GSM samples at the given times, reusing one scratch
  /// reading. `sink(reading)` is invoked per sample in order; returning
  /// false stops the run after that sample. Returns how many samples were
  /// read (== the count the scheduler should treat as consumed). RNG draws
  /// happen in exactly per-sample order, so interleaving runs with single
  /// reads is byte-identical.
  std::size_t read_gsm_run(std::span<const SimTime> times,
                           const std::function<bool(const GsmReading&)>& sink);

  /// WiFi analogue of read_gsm_run().
  std::size_t scan_wifi_run(std::span<const SimTime> times,
                            const std::function<bool(const WifiScan&)>& sink);

  /// Attempts a GPS fix.
  GpsFix read_gps(SimTime t);

  /// Samples the activity detector.
  AccelReading read_accel(SimTime t);

  /// Bluetooth discovery against the supplied positions of other devices.
  BluetoothScan scan_bluetooth(
      SimTime t,
      std::span<const std::pair<world::DeviceId, geo::LatLng>> others);

  const DeviceConfig& config() const { return config_; }
  const world::World& world() const { return *world_; }

  /// Spatial-query cache effectiveness: queries answered from the cached
  /// environment vs. total. The microbench asserts a high hit rate on
  /// dwell-dominated traces.
  std::uint64_t env_queries() const { return env_queries_; }
  std::uint64_t env_hits() const { return env_hits_; }

 private:
  /// Hearable cells at `pos`, memoized on exact position equality.
  const std::vector<world::HeardCell>& cell_env(const geo::LatLng& pos);
  /// Visible APs at `pos`, memoized on exact position equality.
  const std::vector<world::HeardAp>& ap_env(const geo::LatLng& pos);

  std::shared_ptr<const world::World> world_;
  PositionOracle oracle_;
  DeviceConfig config_;
  Rng rng_;
  world::Radio preferred_rat_ = world::Radio::Gsm2G;
  std::optional<world::CellId> last_serving_;
  double last_serving_rssi_ = -999;

  // Position-keyed radio-environment caches + stats. The key is the exact
  // position: traces return a constant anchor while dwelling, so equality
  // (not proximity) is the right invalidation rule.
  std::optional<geo::LatLng> cell_env_pos_;
  std::vector<world::HeardCell> cell_env_;
  std::optional<geo::LatLng> ap_env_pos_;
  std::vector<world::HeardAp> ap_env_;
  std::uint64_t env_queries_ = 0;
  std::uint64_t env_hits_ = 0;

  // Per-sample scratch, reused across reads (zero-alloc hot loop).
  struct Candidate {
    world::CellId cell;
    double rssi;
  };
  std::vector<Candidate> faded_;
  GsmReading gsm_scratch_;
  WifiScan wifi_scratch_;
};

}  // namespace pmware::sensing
