// Energy accounting for a running device: every sensor sample taken by the
// sampling scheduler is charged here, so experiments can compare sensing
// strategies by joules actually spent.
#pragma once

#include <array>
#include <string>

#include "energy/profile.hpp"
#include "util/simtime.hpp"

namespace pmware::energy {

class EnergyMeter {
 public:
  explicit EnergyMeter(PowerProfile profile = PowerProfile::htc_explorer())
      : profile_(profile) {}

  /// Charges one sample of `interface` at time `t`.
  void charge_sample(Interface interface, SimTime t);

  /// Charges `n` samples of `interface` in one call — the batch-dispatch
  /// path charges a whole run at once. Accumulates with the same per-sample
  /// floating-point additions as n charge_sample() calls so batched and
  /// per-sample runs report bit-identical joules.
  void charge_samples(Interface interface, std::size_t n, SimTime t);

  /// Charges baseline drain for the span [from, to).
  void charge_baseline(SimTime from, SimTime to);

  const PowerProfile& profile() const { return profile_; }
  double total_j() const;
  double sensing_j() const;
  double baseline_j() const { return baseline_j_; }
  double interface_j(Interface i) const {
    return per_interface_j_[static_cast<std::size_t>(i)];
  }
  std::size_t sample_count(Interface i) const {
    return per_interface_count_[static_cast<std::size_t>(i)];
  }

  /// Average power over [begin, end) assuming all charges fell inside it.
  double average_power_w(SimDuration span) const;

  /// Battery lifetime implied by the average power over `span`.
  double implied_battery_duration_s(SimDuration span,
                                    const Battery& battery = Battery{}) const;

  /// One-line summary for bench output.
  std::string summary() const;

 private:
  PowerProfile profile_;
  std::array<double, kInterfaceCount> per_interface_j_{};
  std::array<std::size_t, kInterfaceCount> per_interface_count_{};
  double baseline_j_ = 0;
};

}  // namespace pmware::energy
