#include "energy/profile.hpp"

#include <stdexcept>

namespace pmware::energy {

const char* to_string(Interface i) {
  switch (i) {
    case Interface::Gsm: return "gsm";
    case Interface::Wifi: return "wifi";
    case Interface::Gps: return "gps";
    case Interface::Accelerometer: return "accel";
    case Interface::Bluetooth: return "bluetooth";
  }
  return "?";
}

double PowerProfile::average_power_w(Interface i, SimDuration interval) const {
  if (interval <= 0)
    throw std::invalid_argument("average_power_w: interval <= 0");
  return base_power_w + sample_energy(i) / static_cast<double>(interval);
}

void Battery::consume(double joules) {
  if (joules < 0) throw std::invalid_argument("Battery::consume: negative");
  consumed_j += joules;
}

double battery_duration_s(const Battery& battery, double average_power_w) {
  if (average_power_w <= 0)
    throw std::invalid_argument("battery_duration_s: power <= 0");
  return battery.capacity_j / average_power_w;
}

double continuous_sensing_duration_s(const PowerProfile& profile,
                                     Interface interface,
                                     SimDuration interval) {
  return battery_duration_s(Battery{},
                            profile.average_power_w(interface, interval));
}

}  // namespace pmware::energy
