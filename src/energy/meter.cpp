#include "energy/meter.hpp"

#include <cstdio>
#include <stdexcept>

namespace pmware::energy {

void EnergyMeter::charge_sample(Interface interface, SimTime /*t*/) {
  const auto idx = static_cast<std::size_t>(interface);
  per_interface_j_[idx] += profile_.sample_energy(interface);
  ++per_interface_count_[idx];
}

void EnergyMeter::charge_samples(Interface interface, std::size_t n,
                                 SimTime /*t*/) {
  const auto idx = static_cast<std::size_t>(interface);
  const double e = profile_.sample_energy(interface);
  // Summed one sample at a time, not as n*e: repeated addition is what the
  // per-sample path does, and the study fingerprint compares joules exactly.
  for (std::size_t k = 0; k < n; ++k) per_interface_j_[idx] += e;
  per_interface_count_[idx] += n;
}

void EnergyMeter::charge_baseline(SimTime from, SimTime to) {
  if (to < from) throw std::invalid_argument("charge_baseline: to < from");
  baseline_j_ += profile_.base_power_w * static_cast<double>(to - from);
}

double EnergyMeter::sensing_j() const {
  double total = 0;
  for (double j : per_interface_j_) total += j;
  return total;
}

double EnergyMeter::total_j() const { return sensing_j() + baseline_j_; }

double EnergyMeter::average_power_w(SimDuration span) const {
  if (span <= 0) throw std::invalid_argument("average_power_w: span <= 0");
  return total_j() / static_cast<double>(span);
}

double EnergyMeter::implied_battery_duration_s(SimDuration span,
                                               const Battery& battery) const {
  return battery_duration_s(battery, average_power_w(span));
}

std::string EnergyMeter::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sensing %.1f J (gsm %zu, wifi %zu, gps %zu, accel %zu, bt %zu "
                "samples), baseline %.1f J",
                sensing_j(), sample_count(Interface::Gsm),
                sample_count(Interface::Wifi), sample_count(Interface::Gps),
                sample_count(Interface::Accelerometer),
                sample_count(Interface::Bluetooth), baseline_j_);
  return buf;
}

}  // namespace pmware::energy
