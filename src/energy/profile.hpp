// Per-interface power model, calibrated against Figure 1 of the paper
// (HTC A310E Explorer, 1230 mAh): battery duration with GSM sampled every
// minute is ~11x the duration with GPS sampled every minute, with WiFi in
// between and the accelerometer nearly free.
#pragma once

#include <array>
#include <string>

#include "util/simtime.hpp"

namespace pmware::energy {

/// Location/context interfaces the middleware can sample (paper §1/§2.2.2).
enum class Interface : std::uint8_t {
  Gsm = 0,        ///< read serving cell + neighbors from the modem
  Wifi = 1,       ///< active AP scan
  Gps = 2,        ///< position fix (incl. wake + tracking cost)
  Accelerometer = 3,
  Bluetooth = 4,  ///< discovery scan for social proximity
};

inline constexpr std::size_t kInterfaceCount = 5;
const char* to_string(Interface i);

/// Energy cost of one sample of each interface, plus the phone's baseline
/// drain. Values are joules / watts of a ~2012 smartphone.
struct PowerProfile {
  /// Joules consumed by a single sample of each interface.
  std::array<double, kInterfaceCount> sample_energy_j{
      0.08,  // GSM: modem is connected anyway; reading state is nearly free
      1.5,   // WiFi scan
      8.0,   // GPS fix, amortized acquisition + CPU wake
      0.06,  // accelerometer burst (a few seconds at ~20 mW)
      1.2,   // Bluetooth discovery scan
  };
  /// Baseline phone drain with the screen off, watts.
  double base_power_w = 0.012;

  double sample_energy(Interface i) const {
    return sample_energy_j[static_cast<std::size_t>(i)];
  }

  /// Average power when interface `i` is sampled every `interval` seconds,
  /// including baseline. Throws on non-positive interval.
  double average_power_w(Interface i, SimDuration interval) const;

  static PowerProfile htc_explorer() { return PowerProfile{}; }
};

/// The paper's reference battery: 1230 mAh at 3.7 V nominal.
struct Battery {
  double capacity_j = 1.230 * 3.7 * 3600;
  double consumed_j = 0;

  void consume(double joules);
  double remaining_j() const { return capacity_j - consumed_j; }
  double remaining_fraction() const { return remaining_j() / capacity_j; }
  bool depleted() const { return consumed_j >= capacity_j; }
};

/// Battery lifetime in seconds at a constant average power draw.
double battery_duration_s(const Battery& battery, double average_power_w);

/// Convenience: lifetime when sampling one interface continuously at a fixed
/// interval (the exact scenario of Figure 1).
double continuous_sensing_duration_s(const PowerProfile& profile,
                                     Interface interface,
                                     SimDuration interval);

}  // namespace pmware::energy
