#include "net/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pmware::net {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic per-(request, attempt, rule) roll in [0, 1). The inputs are
/// everything that distinguishes one logical request from another WITHOUT
/// being thread-schedule dependent: sim-time, the generalized path (concrete
/// user ids are registration-order-assigned, so they must not participate),
/// the body bytes (distinguish same-route requests within one frozen
/// housekeeping tick), the client's attempt counter (so retries re-roll),
/// and the rule index (so overlapping rules roll independently).
double fault_roll(std::uint64_t seed, const HttpRequest& request,
                  const std::string& gpath, std::size_t rule_index) {
  std::uint64_t h = seed;
  h = splitmix64(h ^ static_cast<std::uint64_t>(request.sim_time()));
  h = splitmix64(h ^ fnv1a(gpath));
  h = splitmix64(h ^ fnv1a(request.body.dump()));
  const auto it = request.headers.find(kAttemptHeader);
  const std::uint64_t attempt =
      it == request.headers.end()
          ? 0
          : static_cast<std::uint64_t>(std::atoll(it->second.c_str()));
  h = splitmix64(h ^ attempt);
  h = splitmix64(h ^ static_cast<std::uint64_t>(rule_index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Parses "90", "30s", "5m", "6h", "2d" into seconds.
SimDuration parse_duration(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("fault plan: empty time");
  std::size_t suffix = 0;
  SimDuration scale = 1;
  switch (text.back()) {
    case 's': suffix = 1; scale = 1; break;
    case 'm': suffix = 1; scale = 60; break;
    case 'h': suffix = 1; scale = 3600; break;
    case 'd': suffix = 1; scale = 86400; break;
    default: break;
  }
  const std::string digits = text.substr(0, text.size() - suffix);
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; }))
    throw std::invalid_argument("fault plan: bad time '" + text + "'");
  return static_cast<SimDuration>(std::strtoll(digits.c_str(), nullptr, 10)) *
         scale;
}

std::string render_time(SimTime t) {
  if (t == std::numeric_limits<SimTime>::max()) return "inf";
  if (t != 0 && t % 86400 == 0) return std::to_string(t / 86400) + "d";
  return std::to_string(t) + "s";
}

/// Deterministic per-(device, day, rule, decision) roll in [0, 1). Keyed on
/// the device's stable identity string (IMEI) rather than its cloud user id:
/// user ids are assigned in registration order, which varies with thread
/// scheduling, and lifecycle decisions must not.
double device_roll(std::uint64_t seed, const std::string& device_key,
                   std::int64_t day, std::size_t rule_index,
                   std::uint64_t salt) {
  std::uint64_t h = seed;
  h = splitmix64(h ^ fnv1a(device_key));
  h = splitmix64(h ^ static_cast<std::uint64_t>(day));
  h = splitmix64(h ^ static_cast<std::uint64_t>(rule_index));
  h = splitmix64(h ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Salts separating the independent decisions rolled from one
// (device, day, rule) key.
constexpr std::uint64_t kSaltCrashHit = 1;
constexpr std::uint64_t kSaltCrashTime = 2;
constexpr std::uint64_t kSaltWipeHit = 3;
constexpr std::uint64_t kSaltJoinHit = 4;
constexpr std::uint64_t kSaltJoinDay = 5;

/// True when day `day`'s window [day*86400, (day+1)*86400) starts inside the
/// rule's [from, to) window.
bool rule_covers_day(const DeviceFaultRule& rule, std::int64_t day) {
  const SimTime day_start = day * 86400;
  return day_start >= rule.from && day_start < rule.to;
}

}  // namespace

std::string generalized_path(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  std::size_t i = 0;
  while (i < path.size()) {
    if (path[i] != '/') {
      out += path[i++];
      continue;
    }
    std::size_t j = i + 1;
    while (j < path.size() && path[j] != '/') ++j;
    const bool numeric =
        j > i + 1 && std::all_of(path.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                 path.begin() + static_cast<std::ptrdiff_t>(j),
                                 [](char c) { return c >= '0' && c <= '9'; });
    out += numeric ? std::string("/:n") : path.substr(i, j - i);
    i = j;
  }
  return out;
}

FaultOutcome FaultPlan::evaluate(const HttpRequest& request) const {
  FaultOutcome outcome;
  if (rules.empty()) return outcome;
  const SimTime now = request.sim_time();
  const std::string gpath = generalized_path(request.path);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (now < rule.from || now >= rule.to) continue;
    if (!rule.route.empty() && gpath.find(rule.route) == std::string::npos)
      continue;
    outcome.added_latency_s += rule.added_latency_s;
    if (outcome.reject || rule.error_prob <= 0.0) continue;
    // error=1 short-circuits the roll: hard outages must not depend on the
    // hash, and skipping it keeps full-outage plans cheap.
    if (rule.error_prob >= 1.0 ||
        fault_roll(seed, request, gpath, i) < rule.error_prob)
      outcome.reject = HttpResponse::error(rule.status, "injected fault");
  }
  return outcome;
}

DeviceFaultDecision FaultPlan::evaluate_device(const std::string& device_key,
                                               std::int64_t day) const {
  DeviceFaultDecision decision;
  for (std::size_t i = 0; i < device_rules.size(); ++i) {
    const DeviceFaultRule& rule = device_rules[i];
    if (!rule_covers_day(rule, day)) continue;
    switch (rule.kind) {
      case DeviceFaultRule::Kind::Crash: {
        if (decision.crash_at) break;  // first crash rule to hit wins
        if (rule.rate < 1.0 &&
            device_roll(seed, device_key, day, i, kSaltCrashHit) >= rule.rate)
          break;
        const double at = device_roll(seed, device_key, day, i, kSaltCrashTime);
        decision.crash_at =
            day * 86400 + static_cast<SimTime>(at * 86400.0);
        decision.restart_delay = rule.restart_delay;
        break;
      }
      case DeviceFaultRule::Kind::Wipe:
        if (rule.rate >= 1.0 ||
            device_roll(seed, device_key, day, i, kSaltWipeHit) < rule.rate)
          decision.wipe = true;
        break;
      case DeviceFaultRule::Kind::Join:
        break;  // join rules do not act per-day; see join_day()
    }
  }
  return decision;
}

std::int64_t FaultPlan::join_day(const std::string& device_key) const {
  for (std::size_t i = 0; i < device_rules.size(); ++i) {
    const DeviceFaultRule& rule = device_rules[i];
    if (rule.kind != DeviceFaultRule::Kind::Join) continue;
    if (rule.rate < 1.0 &&
        device_roll(seed, device_key, 0, i, kSaltJoinHit) >= rule.rate)
      continue;
    const std::int64_t first = rule.from / 86400;
    const SimTime to =
        std::min(rule.to, std::numeric_limits<SimTime>::max() - 86400);
    const std::int64_t last = std::max(first + 1, (to + 86399) / 86400);
    const double at = device_roll(seed, device_key, 0, i, kSaltJoinDay);
    return first + static_cast<std::int64_t>(at * static_cast<double>(last -
                                                                      first));
  }
  return 0;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string trimmed;
  for (char c : spec)
    if (!std::isspace(static_cast<unsigned char>(c))) trimmed += c;
  if (trimmed.empty()) return plan;

  std::stringstream rules_in(trimmed);
  std::string rule_text;
  while (std::getline(rules_in, rule_text, ';')) {
    if (rule_text.empty()) continue;
    FaultRule rule;
    DeviceFaultRule device;
    bool wire_fields = false;    // a "seed=N" segment is not a rule
    bool device_window = false;  // crash=/wipe=/join= seen
    bool device_fields = false;  // any device-side key seen
    std::string rate_key;        // which *_rate key set device.rate
    std::stringstream fields_in(rule_text);
    std::string field;
    while (std::getline(fields_in, field, ',')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("fault plan: expected key=value in '" +
                                    field + "'");
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      const auto parse_prob = [&](double& out) {
        char* end = nullptr;
        out = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || out < 0.0 || out > 1.0)
          throw std::invalid_argument("fault plan: " + key +
                                      " wants 0..1, got '" + value + "'");
      };
      const auto parse_window = [&](SimTime& from, SimTime& to) {
        const std::size_t dots = value.find("..");
        if (dots == std::string::npos)
          throw std::invalid_argument("fault plan: " + key +
                                      " wants A..B, got '" + value + "'");
        from = parse_duration(value.substr(0, dots));
        to = parse_duration(value.substr(dots + 2));
      };
      if (key == "outage") {
        parse_window(rule.from, rule.to);
        rule.error_prob = 1.0;
        wire_fields = true;
      } else if (key == "route") {
        rule.route = value;
        wire_fields = true;
      } else if (key == "from") {
        rule.from = parse_duration(value);
        wire_fields = true;
      } else if (key == "to") {
        rule.to = parse_duration(value);
        wire_fields = true;
      } else if (key == "error") {
        parse_prob(rule.error_prob);
        wire_fields = true;
      } else if (key == "status") {
        rule.status = static_cast<int>(parse_duration(value));
        if (rule.status < 400 || rule.status > 599)
          throw std::invalid_argument("fault plan: status wants 4xx/5xx, got '" +
                                      value + "'");
        wire_fields = true;
      } else if (key == "latency") {
        rule.added_latency_s = parse_duration(value);
        wire_fields = true;
      } else if (key == "seed") {
        plan.seed = static_cast<std::uint64_t>(parse_duration(value));
      } else if (key == "crash" || key == "wipe" || key == "join") {
        if (device_window)
          throw std::invalid_argument(
              "fault plan: one crash=/wipe=/join= per rule, got '" + rule_text +
              "'");
        parse_window(device.from, device.to);
        device.kind = key == "crash"  ? DeviceFaultRule::Kind::Crash
                      : key == "wipe" ? DeviceFaultRule::Kind::Wipe
                                      : DeviceFaultRule::Kind::Join;
        device_window = true;
        device_fields = true;
      } else if (key == "crash_rate" || key == "wipe_rate" ||
                 key == "join_rate") {
        parse_prob(device.rate);
        rate_key = key;
        device_fields = true;
      } else if (key == "restart_delay") {
        device.restart_delay = parse_duration(value);
        device_fields = true;
      } else {
        throw std::invalid_argument("fault plan: unknown field '" + key + "'");
      }
    }
    if (wire_fields && device_fields)
      throw std::invalid_argument(
          "fault plan: wire and device fields mixed in '" + rule_text + "'");
    if (device_fields) {
      if (!device_window)
        throw std::invalid_argument(
            "fault plan: device rule needs crash=/wipe=/join= window in '" +
            rule_text + "'");
      const char* wanted_rate =
          device.kind == DeviceFaultRule::Kind::Crash  ? "crash_rate"
          : device.kind == DeviceFaultRule::Kind::Wipe ? "wipe_rate"
                                                       : "join_rate";
      if (!rate_key.empty() && rate_key != wanted_rate)
        throw std::invalid_argument("fault plan: " + rate_key +
                                    " does not apply in '" + rule_text + "'");
      if (device.kind != DeviceFaultRule::Kind::Crash &&
          device.restart_delay != DeviceFaultRule{}.restart_delay)
        throw std::invalid_argument(
            "fault plan: restart_delay wants a crash rule in '" + rule_text +
            "'");
      if (device.from >= device.to)
        throw std::invalid_argument("fault plan: empty window in '" +
                                    rule_text + "'");
      plan.device_rules.push_back(device);
      continue;
    }
    if (!wire_fields) continue;
    if (rule.from >= rule.to)
      throw std::invalid_argument("fault plan: empty window in '" + rule_text +
                                  "'");
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) return "none";
  std::string out;
  for (const FaultRule& rule : rules) {
    if (!out.empty()) out += "; ";
    if (rule.error_prob >= 1.0) {
      out += "outage";
    } else if (rule.error_prob > 0.0) {
      std::ostringstream prob;
      prob << rule.error_prob;
      out += "error=" + prob.str();
    } else {
      out += "latency-only";
    }
    if (!rule.route.empty()) out += " route~" + rule.route;
    out += " [" + render_time(rule.from) + ".." + render_time(rule.to) + ")";
    if (rule.added_latency_s > 0)
      out += " +" + std::to_string(rule.added_latency_s) + "s";
    if (rule.status != kStatusServiceUnavailable)
      out += " status=" + std::to_string(rule.status);
  }
  for (const DeviceFaultRule& rule : device_rules) {
    if (!out.empty()) out += "; ";
    switch (rule.kind) {
      case DeviceFaultRule::Kind::Crash: out += "crash"; break;
      case DeviceFaultRule::Kind::Wipe: out += "wipe"; break;
      case DeviceFaultRule::Kind::Join: out += "join"; break;
    }
    out += " [" + render_time(rule.from) + ".." + render_time(rule.to) + ")";
    if (rule.rate < 1.0) {
      std::ostringstream prob;
      prob << rule.rate;
      out += " p=" + prob.str();
    }
    if (rule.kind == DeviceFaultRule::Kind::Crash)
      out += " restart+" + std::to_string(rule.restart_delay) + "s";
  }
  return out;
}

}  // namespace pmware::net
