#include "net/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pmware::net {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic per-(request, attempt, rule) roll in [0, 1). The inputs are
/// everything that distinguishes one logical request from another WITHOUT
/// being thread-schedule dependent: sim-time, the generalized path (concrete
/// user ids are registration-order-assigned, so they must not participate),
/// the body bytes (distinguish same-route requests within one frozen
/// housekeeping tick), the client's attempt counter (so retries re-roll),
/// and the rule index (so overlapping rules roll independently).
double fault_roll(std::uint64_t seed, const HttpRequest& request,
                  const std::string& gpath, std::size_t rule_index) {
  std::uint64_t h = seed;
  h = splitmix64(h ^ static_cast<std::uint64_t>(request.sim_time()));
  h = splitmix64(h ^ fnv1a(gpath));
  h = splitmix64(h ^ fnv1a(request.body.dump()));
  const auto it = request.headers.find(kAttemptHeader);
  const std::uint64_t attempt =
      it == request.headers.end()
          ? 0
          : static_cast<std::uint64_t>(std::atoll(it->second.c_str()));
  h = splitmix64(h ^ attempt);
  h = splitmix64(h ^ static_cast<std::uint64_t>(rule_index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Parses "90", "30s", "5m", "6h", "2d" into seconds.
SimDuration parse_duration(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("fault plan: empty time");
  std::size_t suffix = 0;
  SimDuration scale = 1;
  switch (text.back()) {
    case 's': suffix = 1; scale = 1; break;
    case 'm': suffix = 1; scale = 60; break;
    case 'h': suffix = 1; scale = 3600; break;
    case 'd': suffix = 1; scale = 86400; break;
    default: break;
  }
  const std::string digits = text.substr(0, text.size() - suffix);
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; }))
    throw std::invalid_argument("fault plan: bad time '" + text + "'");
  return static_cast<SimDuration>(std::strtoll(digits.c_str(), nullptr, 10)) *
         scale;
}

std::string render_time(SimTime t) {
  if (t == std::numeric_limits<SimTime>::max()) return "inf";
  if (t != 0 && t % 86400 == 0) return std::to_string(t / 86400) + "d";
  return std::to_string(t) + "s";
}

}  // namespace

std::string generalized_path(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  std::size_t i = 0;
  while (i < path.size()) {
    if (path[i] != '/') {
      out += path[i++];
      continue;
    }
    std::size_t j = i + 1;
    while (j < path.size() && path[j] != '/') ++j;
    const bool numeric =
        j > i + 1 && std::all_of(path.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                 path.begin() + static_cast<std::ptrdiff_t>(j),
                                 [](char c) { return c >= '0' && c <= '9'; });
    out += numeric ? std::string("/:n") : path.substr(i, j - i);
    i = j;
  }
  return out;
}

FaultOutcome FaultPlan::evaluate(const HttpRequest& request) const {
  FaultOutcome outcome;
  if (rules.empty()) return outcome;
  const SimTime now = request.sim_time();
  const std::string gpath = generalized_path(request.path);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (now < rule.from || now >= rule.to) continue;
    if (!rule.route.empty() && gpath.find(rule.route) == std::string::npos)
      continue;
    outcome.added_latency_s += rule.added_latency_s;
    if (outcome.reject || rule.error_prob <= 0.0) continue;
    // error=1 short-circuits the roll: hard outages must not depend on the
    // hash, and skipping it keeps full-outage plans cheap.
    if (rule.error_prob >= 1.0 ||
        fault_roll(seed, request, gpath, i) < rule.error_prob)
      outcome.reject = HttpResponse::error(rule.status, "injected fault");
  }
  return outcome;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string trimmed;
  for (char c : spec)
    if (!std::isspace(static_cast<unsigned char>(c))) trimmed += c;
  if (trimmed.empty()) return plan;

  std::stringstream rules_in(trimmed);
  std::string rule_text;
  while (std::getline(rules_in, rule_text, ';')) {
    if (rule_text.empty()) continue;
    FaultRule rule;
    bool rule_has_fields = false;  // a "seed=N" segment is not a rule
    std::stringstream fields_in(rule_text);
    std::string field;
    while (std::getline(fields_in, field, ',')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("fault plan: expected key=value in '" +
                                    field + "'");
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      rule_has_fields |= key != "seed";
      if (key == "outage") {
        const std::size_t dots = value.find("..");
        if (dots == std::string::npos)
          throw std::invalid_argument("fault plan: outage wants A..B, got '" +
                                      value + "'");
        rule.from = parse_duration(value.substr(0, dots));
        rule.to = parse_duration(value.substr(dots + 2));
        rule.error_prob = 1.0;
      } else if (key == "route") {
        rule.route = value;
      } else if (key == "from") {
        rule.from = parse_duration(value);
      } else if (key == "to") {
        rule.to = parse_duration(value);
      } else if (key == "error") {
        char* end = nullptr;
        rule.error_prob = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || rule.error_prob < 0.0 ||
            rule.error_prob > 1.0)
          throw std::invalid_argument("fault plan: error wants 0..1, got '" +
                                      value + "'");
      } else if (key == "status") {
        rule.status = static_cast<int>(parse_duration(value));
        if (rule.status < 400 || rule.status > 599)
          throw std::invalid_argument("fault plan: status wants 4xx/5xx, got '" +
                                      value + "'");
      } else if (key == "latency") {
        rule.added_latency_s = parse_duration(value);
      } else if (key == "seed") {
        plan.seed = static_cast<std::uint64_t>(parse_duration(value));
      } else {
        throw std::invalid_argument("fault plan: unknown field '" + key + "'");
      }
    }
    if (!rule_has_fields) continue;
    if (rule.from >= rule.to)
      throw std::invalid_argument("fault plan: empty window in '" + rule_text +
                                  "'");
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (rules.empty()) return "none";
  std::string out;
  for (const FaultRule& rule : rules) {
    if (!out.empty()) out += "; ";
    if (rule.error_prob >= 1.0) {
      out += "outage";
    } else if (rule.error_prob > 0.0) {
      std::ostringstream prob;
      prob << rule.error_prob;
      out += "error=" + prob.str();
    } else {
      out += "latency-only";
    }
    if (!rule.route.empty()) out += " route~" + rule.route;
    out += " [" + render_time(rule.from) + ".." + render_time(rule.to) + ")";
    if (rule.added_latency_s > 0)
      out += " +" + std::to_string(rule.added_latency_s) + "s";
    if (rule.status != kStatusServiceUnavailable)
      out += " status=" + std::to_string(rule.status);
  }
  return out;
}

}  // namespace pmware::net
