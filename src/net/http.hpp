// HTTP request/response model for the simulated REST transport between the
// PMWare Mobile Service and the Cloud Instance (paper §2.3.3). In-process,
// but with the same shapes (methods, paths, headers, JSON bodies, status
// codes) as the paper's Django deployment, so the control flow — auth
// tokens, retries, offloading — is exercised for real.
#pragma once

#include <cstdlib>
#include <map>
#include <string>

#include "telemetry/trace.hpp"
#include "util/json.hpp"

namespace pmware::net {

enum class Method { Get, Post, Put, Delete };
const char* to_string(Method m);

/// Caller's simulation clock, the in-process stand-in for wall-clock.
inline constexpr const char* kSimTimeHeader = "X-Sim-Time";
/// Trace-context propagation (contract documented in DESIGN.md): the trace
/// the request belongs to and the client span the handler span must parent
/// under. Decimal-rendered; absent means "not traced".
inline constexpr const char* kTraceIdHeader = "X-PMWare-Trace-Id";
inline constexpr const char* kParentSpanHeader = "X-PMWare-Parent-Span";
/// 0-based retry counter stamped by RestClient. Sim-time is frozen while PMS
/// housekeeping runs, so without this a retried request would be
/// byte-identical to the original and a deterministic server-side fault roll
/// (net/fault.hpp) would fail it forever; the attempt number makes each
/// retry a fresh roll.
inline constexpr const char* kAttemptHeader = "X-PMWare-Attempt";
/// Conditional transfer (cache subsystem, RFC 7232 shapes): the cloud
/// stamps a strong ETag on cacheable GET responses; RestClient replays it
/// in If-None-Match and a match collapses the exchange to a bodyless 304.
inline constexpr const char* kETagHeader = "ETag";
inline constexpr const char* kIfNoneMatchHeader = "If-None-Match";
/// The device's registration session (boot epoch) stamped on mutating
/// requests: the cloud refuses writes whose session is at or below the
/// device's wipe tombstone with 410 Gone, so replayed traffic from a
/// wiped-then-re-registered device can never resurrect pre-wipe data.
/// Absent means session 0 — blocked after any wipe.
inline constexpr const char* kSessionHeader = "X-PMWare-Session";

struct HttpRequest {
  Method method = Method::Get;
  std::string path;                          ///< e.g. "/api/places/discover"
  std::map<std::string, std::string> headers;
  std::map<std::string, std::string> query;
  Json body;

  HttpRequest& with_header(std::string key, std::string value) {
    headers[std::move(key)] = std::move(value);
    return *this;
  }

  /// Simulation time as reported by the caller (0 if absent).
  SimTime sim_time() const {
    const auto it = headers.find(kSimTimeHeader);
    return it == headers.end() ? 0 : std::atoll(it->second.c_str());
  }

  /// Stamps the trace-context headers from `ctx`; no-op when invalid.
  void set_trace_context(const telemetry::TraceContext& ctx) {
    if (!ctx.valid()) return;
    headers[kTraceIdHeader] = std::to_string(ctx.trace_id);
    headers[kParentSpanHeader] = std::to_string(ctx.span_id);
  }

  /// Parses the trace-context headers; invalid (default) context when the
  /// request carries none.
  telemetry::TraceContext trace_context() const {
    telemetry::TraceContext ctx;
    const auto trace = headers.find(kTraceIdHeader);
    const auto parent = headers.find(kParentSpanHeader);
    if (trace == headers.end() || parent == headers.end()) return ctx;
    ctx.trace_id = static_cast<std::uint64_t>(
        std::strtoull(trace->second.c_str(), nullptr, 10));
    ctx.span_id = static_cast<std::size_t>(
        std::strtoull(parent->second.c_str(), nullptr, 10));
    return ctx;
  }
};

struct HttpResponse {
  int status = 200;
  Json body;
  /// Response headers (ETag today). Not part of the fault injector's roll
  /// inputs and excluded from response-body digests.
  std::map<std::string, std::string> headers;
  /// Extra simulated seconds this response cost beyond the client's base
  /// round-trip — stamped by the router when a fault plan adds latency, and
  /// folded into the client's sim-latency accounting.
  SimDuration sim_latency_s = 0;

  bool ok() const { return status >= 200 && status < 300; }

  static HttpResponse json(Json body, int status = 200) {
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
  }
  static HttpResponse error(int status, const std::string& message) {
    Json b = Json::object();
    b.set("error", message);
    return json(std::move(b), status);
  }
};

inline constexpr int kStatusOk = 200;
inline constexpr int kStatusCreated = 201;
inline constexpr int kStatusNotModified = 304;
inline constexpr int kStatusBadRequest = 400;
inline constexpr int kStatusUnauthorized = 401;
inline constexpr int kStatusNotFound = 404;
/// Permanent refusal: the write's registration session is at or below the
/// device's wipe tombstone. Clients must drop the work item, not retry.
inline constexpr int kStatusGone = 410;
inline constexpr int kStatusServiceUnavailable = 503;

}  // namespace pmware::net
