// HTTP request/response model for the simulated REST transport between the
// PMWare Mobile Service and the Cloud Instance (paper §2.3.3). In-process,
// but with the same shapes (methods, paths, headers, JSON bodies, status
// codes) as the paper's Django deployment, so the control flow — auth
// tokens, retries, offloading — is exercised for real.
#pragma once

#include <map>
#include <string>

#include "util/json.hpp"

namespace pmware::net {

enum class Method { Get, Post, Put, Delete };
const char* to_string(Method m);

struct HttpRequest {
  Method method = Method::Get;
  std::string path;                          ///< e.g. "/api/places/discover"
  std::map<std::string, std::string> headers;
  std::map<std::string, std::string> query;
  Json body;

  HttpRequest& with_header(std::string key, std::string value) {
    headers[std::move(key)] = std::move(value);
    return *this;
  }
};

struct HttpResponse {
  int status = 200;
  Json body;

  bool ok() const { return status >= 200 && status < 300; }

  static HttpResponse json(Json body, int status = 200) {
    return {status, std::move(body)};
  }
  static HttpResponse error(int status, const std::string& message) {
    Json b = Json::object();
    b.set("error", message);
    return {status, std::move(b)};
  }
};

inline constexpr int kStatusOk = 200;
inline constexpr int kStatusCreated = 201;
inline constexpr int kStatusBadRequest = 400;
inline constexpr int kStatusUnauthorized = 401;
inline constexpr int kStatusNotFound = 404;
inline constexpr int kStatusServiceUnavailable = 503;

}  // namespace pmware::net
