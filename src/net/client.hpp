// REST client with simulated network conditions: latency, transient
// failures, deterministic exponential backoff with jitter, and a per-client
// circuit breaker — the PMS communication-management module's transport
// (paper §2.2.5). Breaker state machine and backoff semantics are
// documented in DESIGN.md "Failure model & recovery".
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "cache/content_cache.hpp"
#include "net/http.hpp"
#include "net/router.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace pmware::net {

struct NetworkConditions {
  double failure_prob = 0.0;       ///< chance a request is lost (503)
  SimDuration latency_s = 0;       ///< simulated round-trip, whole seconds
};

/// Retry schedule: attempt k (1-based retry) waits
/// min(backoff_base_s * 2^(k-1), backoff_cap_s) plus a uniform jitter draw
/// in [0, jitter * backoff] simulated seconds. All waits are sim-time only
/// (accumulated into latency accounting), never wall-clock.
struct RetryPolicy {
  int max_retries = 2;
  SimDuration backoff_base_s = 2;
  SimDuration backoff_cap_s = 60;
  double jitter = 0.5;  ///< fraction of the backoff drawn as jitter; 0 = none
};

/// Circuit breaker: after `failure_threshold` consecutive failed send()
/// calls (final status 503) the breaker opens and send() fast-fails without
/// touching the network until `cooldown_s` of sim-time has passed; the next
/// send() then runs as a single half-open probe that closes the breaker on
/// success or re-opens it for another cooldown on failure.
struct BreakerPolicy {
  int failure_threshold = 5;   ///< <= 0 disables the breaker
  SimDuration cooldown_s = minutes(5);
};

enum class BreakerState { Closed = 0, Open = 1, HalfOpen = 2 };
const char* to_string(BreakerState s);

/// Conditional-transfer cache (cache subsystem, DESIGN.md "Content
/// addressing & cache coherence"): when enabled, GET responses carrying an
/// ETag are remembered per path+query, the tag is replayed in
/// If-None-Match, and a 304 is transparently resolved from the cached body
/// — the caller still sees an ordinary 200. Off by default so existing
/// transports are byte-for-byte unchanged.
struct CachePolicy {
  bool enabled = false;
  std::size_t capacity = 64;  ///< LRU entry bound per client
};

/// Per-client transport totals. Since the telemetry subsystem landed this is
/// a *view*: the source of truth is the process-wide metrics registry
/// (net_* families, labeled by client instance); stats() assembles it on
/// demand.
struct ClientStats {
  std::size_t requests = 0;
  std::size_t failures = 0;   ///< transport-level losses observed
  std::size_t retries = 0;
  std::size_t bytes_sent = 0; ///< serialized JSON body bytes
  SimDuration total_latency = 0;
  SimDuration backoff_s = 0;         ///< sim-seconds spent waiting to retry
  std::size_t breaker_opens = 0;     ///< closed/half-open -> open transitions
  std::size_t breaker_fast_fails = 0;///< sends rejected while open
  std::size_t not_modified = 0;      ///< 304s resolved from the local cache
  std::size_t bytes_saved = 0;       ///< body bytes those 304s did not move
};

class RestClient {
 public:
  /// `server` must outlive the client.
  RestClient(const Router* server, NetworkConditions conditions, Rng rng);

  /// Sends a request; transparently retries transport failures and server
  /// 503s with capped exponential backoff. `max_retries` = -1 (default)
  /// uses the RetryPolicy; an explicit value overrides the attempt budget
  /// for this call only. Returns the final response (503 if every attempt
  /// failed, or immediately if the circuit breaker is open).
  HttpResponse send(const HttpRequest& request, int max_retries = -1);

  /// Assembled from the metrics registry (family "net_*", this client's
  /// instance label); zeros after telemetry::registry().reset().
  ClientStats stats() const;

  /// Value of this client's "instance" metric label, e.g. "c3".
  const std::string& instance_label() const { return instance_; }

  /// Default bearer token attached to every request (set after
  /// registration); empty disables.
  void set_auth_token(std::string token) { token_ = std::move(token); }
  const std::string& auth_token() const { return token_; }

  void set_network_conditions(NetworkConditions conditions) {
    conditions_ = conditions;
  }
  const NetworkConditions& network_conditions() const { return conditions_; }
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }
  void set_breaker_policy(BreakerPolicy policy) { breaker_ = policy; }
  const BreakerPolicy& breaker_policy() const { return breaker_; }
  /// Enabling allocates (or drops, when disabling) the conditional cache.
  void set_cache_policy(CachePolicy policy);
  const CachePolicy& cache_policy() const { return cache_policy_; }

  BreakerState breaker_state() const { return state_; }

 private:
  /// One remembered representation: the ETag the cloud stamped and the
  /// body it validates. Keyed by path + canonical query.
  struct CachedRepresentation {
    std::string etag;
    Json body;
  };

  void enter_state(BreakerState state);
  void record_outcome(bool delivered, SimTime sim_now);

  const Router* server_;
  NetworkConditions conditions_;
  Rng rng_;
  std::string instance_;  ///< registry label isolating this client's series
  // Pre-resolved metric handles (telemetry/metrics.hpp): send() records
  // through these so the per-attempt hot path is one relaxed atomic add,
  // never a registry map lookup. Handles revalidate after registry reset.
  telemetry::CounterHandle requests_;
  telemetry::CounterHandle failures_;
  telemetry::CounterHandle retries_;
  telemetry::CounterHandle bytes_sent_;
  telemetry::CounterHandle latency_;
  telemetry::CounterHandle backoff_;
  telemetry::CounterHandle breaker_opens_;
  telemetry::CounterHandle breaker_fast_fails_;
  telemetry::CounterHandle not_modified_;
  telemetry::CounterHandle bytes_saved_;
  telemetry::GaugeHandle breaker_state_gauge_;
  telemetry::HistogramHandle request_bytes_;  ///< unlabeled: fleet-shared
  std::string token_;
  RetryPolicy retry_;
  BreakerPolicy breaker_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  SimTime open_until_ = 0;  ///< sim-time the open breaker admits a probe
  CachePolicy cache_policy_;
  std::unique_ptr<cache::ContentCache<std::string, CachedRepresentation>>
      conditional_cache_;  ///< non-null iff cache_policy_.enabled
};

}  // namespace pmware::net
