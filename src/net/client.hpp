// REST client with simulated network conditions: latency, transient
// failures, and retry with backoff — the PMS communication-management
// module's transport (paper §2.2.5).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "net/http.hpp"
#include "net/router.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace pmware::net {

struct NetworkConditions {
  double failure_prob = 0.0;       ///< chance a request is lost (503)
  SimDuration latency_s = 0;       ///< simulated round-trip, whole seconds
};

/// Per-client transport totals. Since the telemetry subsystem landed this is
/// a *view*: the source of truth is the process-wide metrics registry
/// (net_* families, labeled by client instance); stats() assembles it on
/// demand.
struct ClientStats {
  std::size_t requests = 0;
  std::size_t failures = 0;   ///< transport-level losses observed
  std::size_t retries = 0;
  std::size_t bytes_sent = 0; ///< serialized JSON body bytes
  SimDuration total_latency = 0;
};

class RestClient {
 public:
  /// `server` must outlive the client.
  RestClient(const Router* server, NetworkConditions conditions, Rng rng);

  /// Sends a request; transparently retries transport failures up to
  /// `max_retries` times. Returns the final response (503 if all attempts
  /// were lost).
  HttpResponse send(const HttpRequest& request, int max_retries = 2);

  /// Assembled from the metrics registry (family "net_*", this client's
  /// instance label); zeros after telemetry::registry().reset().
  ClientStats stats() const;

  /// Value of this client's "instance" metric label, e.g. "c3".
  const std::string& instance_label() const { return instance_; }

  /// Default bearer token attached to every request (set after
  /// registration); empty disables.
  void set_auth_token(std::string token) { token_ = std::move(token); }
  const std::string& auth_token() const { return token_; }

 private:
  const Router* server_;
  NetworkConditions conditions_;
  Rng rng_;
  std::string instance_;  ///< registry label isolating this client's series
  std::string token_;
};

}  // namespace pmware::net
