// Scriptable server-side fault injection for the simulated REST transport:
// outage windows, per-route error rates, and added latency. Failures
// originate at the cloud's router (before auth and handlers run), so a
// client-observed injected error implies the handler never executed —
// retrying is always safe.
//
// Decisions are DETERMINISTIC: an error-rate rule rolls a hash of
// (plan seed, request sim-time, generalized path, body bytes, attempt
// number, rule index), never a shared RNG, so fault outcomes are identical
// across thread and shard counts (DESIGN.md "Failure model & recovery").
// Retries carry an incrementing X-PMWare-Attempt header, so a retry within
// one frozen-sim-time housekeeping tick re-rolls instead of re-losing.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "net/http.hpp"

namespace pmware::net {

/// One fault rule. A rule applies when the request's sim-time lies in
/// [from, to) AND `route` (if non-empty) is a substring of the request's
/// generalized path ("/api/users/7/places/12" -> "/api/users/:n/places/:n").
struct FaultRule {
  std::string route;  ///< substring of the generalized path; empty = all
  SimTime from = 0;   ///< active window, inclusive
  SimTime to = std::numeric_limits<SimTime>::max();  ///< exclusive
  double error_prob = 0.0;   ///< 1.0 = hard outage, 0.0 = latency-only rule
  int status = kStatusServiceUnavailable;  ///< status of injected errors
  SimDuration added_latency_s = 0;  ///< extra simulated seconds per request
};

/// What the router's fault injector decided for one request: either pass
/// the request through (possibly with added simulated latency stamped on
/// the eventual response) or short-circuit with an injected error.
struct FaultOutcome {
  std::optional<HttpResponse> reject;
  SimDuration added_latency_s = 0;
};

/// One device-side lifecycle rule (crash/restart chaos and churn), rolled
/// per (plan seed, device key, sim-day) — the device key is the IMEI, a
/// stable pre-registration identity, so decisions are byte-identical across
/// thread/shard counts and runners. Exactly one of crash=/wipe=/join= sets
/// the window and the kind.
struct DeviceFaultRule {
  enum class Kind : std::uint8_t {
    Crash,  ///< kill the PMS mid-day; restart after `restart_delay`
    Wipe,   ///< end-of-day erase_user privacy wipe + fresh re-registration
    Join,   ///< late registration: the device joins on a rolled day
  };
  Kind kind = Kind::Crash;
  SimTime from = 0;  ///< active window, inclusive
  SimTime to = std::numeric_limits<SimTime>::max();  ///< exclusive
  /// Per-day hit probability (crash/wipe) or per-device selection
  /// probability (join). Defaults to 1: `crash=2d..3d` alone crashes every
  /// device once on day 2, mirroring `outage=`'s certainty.
  double rate = 1.0;
  /// Crash only: sim-seconds the device stays dark before rebooting.
  SimDuration restart_delay = 3600;
};

/// What the device-side rules decided for one (device, day).
struct DeviceFaultDecision {
  std::optional<SimTime> crash_at;  ///< absolute sim-time of the kill
  SimDuration restart_delay = 0;    ///< dark time after crash_at
  bool wipe = false;                ///< end-of-day privacy wipe
};

/// An ordered set of fault rules plus the roll seed. Matching rules all
/// contribute latency; the first matching rule whose error roll hits
/// produces the injected response.
struct FaultPlan {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::vector<FaultRule> rules;
  std::vector<DeviceFaultRule> device_rules;

  bool empty() const { return rules.empty() && device_rules.empty(); }
  bool has_device_rules() const { return !device_rules.empty(); }

  /// Evaluates the plan against one request (deterministic; thread-safe —
  /// the plan is immutable after setup).
  FaultOutcome evaluate(const HttpRequest& request) const;

  /// Rolls the device-side rules for one (device, sim-day). A day matches a
  /// rule when its start lies in [from, to). The first crash rule whose roll
  /// hits decides crash_at (uniform second within the day, from a second
  /// roll) and restart_delay; wipe rules are evaluated independently.
  /// Deterministic in (seed, device_key, day) only.
  DeviceFaultDecision evaluate_device(const std::string& device_key,
                                      std::int64_t day) const;

  /// First study day for `device_key`: 0 unless a join rule selects the
  /// device as a late joiner, in which case a day uniform over the rule's
  /// window. First matching join rule wins.
  std::int64_t join_day(const std::string& device_key) const;

  /// Parses a plan spec. Grammar (times/durations take an optional
  /// s/m/h/d suffix, default seconds):
  ///
  ///   plan  := rule (';' rule)*
  ///   rule  := field (',' field)*
  ///   field := 'outage=' TIME '..' TIME   — shorthand for from/to + error=1
  ///          | 'route=' SUBSTRING         — match on the generalized path
  ///          | 'from=' TIME | 'to=' TIME
  ///          | 'error=' PROB | 'status=' CODE
  ///          | 'latency=' DURATION
  ///          | 'seed=' N                  — plan-level roll seed
  ///          | 'crash=' TIME '..' TIME    — device rule: kill window
  ///          | 'crash_rate=' PROB         — per-day crash probability
  ///          | 'restart_delay=' DURATION  — dark time before reboot
  ///          | 'wipe=' TIME '..' TIME     — device rule: privacy-wipe window
  ///          | 'wipe_rate=' PROB
  ///          | 'join=' TIME '..' TIME     — device rule: late-join window
  ///          | 'join_rate=' PROB          — fraction joining late
  ///
  /// A rule is either wire-side or device-side; mixing both kinds of field
  /// in one ';'-segment is an error, as is more than one of crash=/wipe=/
  /// join= per segment (each sets the segment's window and kind).
  ///
  /// Examples: "outage=5d..8d"
  ///           "route=/api/users,error=0.25,from=2d,to=12d;latency=2"
  ///           "crash=2d..9d,crash_rate=0.2,restart_delay=2h;wipe=6d..7d,wipe_rate=0.25"
  /// Empty spec -> empty plan. Throws std::invalid_argument on bad specs.
  static FaultPlan parse(const std::string& spec);

  /// One-line human-readable form, for logs and bench JSON.
  std::string describe() const;
};

/// Path with all-digit segments collapsed to ":n", shared by the client's
/// span naming and the fault roll (user ids must not leak into fault
/// decisions: cloud-assigned ids depend on registration order, the roll
/// must not).
std::string generalized_path(const std::string& path);

}  // namespace pmware::net
