#include "net/router.hpp"

#include <chrono>
#include <optional>

#include "telemetry/trace.hpp"

namespace pmware::net {

const char* to_string(Method m) {
  switch (m) {
    case Method::Get: return "GET";
    case Method::Post: return "POST";
    case Method::Put: return "PUT";
    case Method::Delete: return "DELETE";
  }
  return "?";
}

std::vector<std::string> Router::split(const std::string& path) {
  // Interior empty segments are preserved ("/a//b" -> [a, "", b]) so they
  // can be rejected at match time instead of silently collapsing into a
  // shorter — and wrongly matchable — path. The leading empty segment of an
  // absolute path and a single trailing one ("/metrics/") are dropped.
  std::vector<std::string> out;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  if (!out.empty() && out.front().empty()) out.erase(out.begin());
  if (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

void Router::add_route(Method method, const std::string& pattern,
                       Handler handler) {
  auto segments = split(pattern);
  std::size_t params = 0;
  for (const std::string& seg : segments)
    if (!seg.empty() && seg[0] == ':') ++params;
  routes_.push_back(
      {method, pattern, std::move(segments), params, std::move(handler)});
}

void Router::add_middleware(Middleware mw,
                            std::vector<std::string> exempt_prefixes) {
  guards_.push_back({std::move(mw), std::move(exempt_prefixes)});
}

bool Router::match(const Route& route, const std::vector<std::string>& segments,
                   PathParams& params) {
  if (route.segments.size() != segments.size()) return false;
  params.clear();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pat = route.segments[i];
    if (!pat.empty() && pat[0] == ':') {
      if (segments[i].empty()) return false;  // ":id" never binds ""
      params[pat.substr(1)] = segments[i];
    } else if (pat != segments[i]) {
      return false;
    }
  }
  return true;
}

HttpResponse Router::handle(const HttpRequest& request) const {
  const auto wall_begin = std::chrono::steady_clock::now();
  auto observe = [&](const std::string& pattern, int status) {
    if (!observer_) return;
    const double wall_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    observer_(request.method, pattern, status, wall_us);
  };

  // The fault injector models a failure in front of the service (load
  // balancer, network partition), so it runs before auth guards and
  // handlers: an injected failure guarantees no server-side state changed,
  // which is what makes client retries and outbox replay safe.
  SimDuration added_latency_s = 0;
  if (fault_injector_) {
    FaultOutcome outcome = fault_injector_(request);
    added_latency_s = outcome.added_latency_s;
    if (outcome.reject) {
      outcome.reject->sim_latency_s = added_latency_s;
      observe("<fault>", outcome.reject->status);
      return *std::move(outcome.reject);
    }
  }

  for (const Guard& guard : guards_) {
    bool exempt = false;
    for (const std::string& prefix : guard.exempt_prefixes) {
      if (request.path.rfind(prefix, 0) == 0) {
        exempt = true;
        break;
      }
    }
    if (exempt) continue;
    if (auto response = guard.mw(request)) {
      response->sim_latency_s = added_latency_s;
      observe("<middleware>", response->status);
      return *response;
    }
  }

  const auto segments = split(request.path);
  // Most-specific match wins: among routes that accept the path, the one
  // with the fewest ":param" captures (i.e. the most literal segments) is
  // chosen, with registration order breaking ties — so "/api/users/all"
  // beats "/api/users/:id" however the cloud registered them.
  const Route* best = nullptr;
  PathParams best_params;
  PathParams params;
  for (const Route& route : routes_) {
    if (route.method != request.method) continue;
    if (!match(route, segments, params)) continue;
    if (best == nullptr || route.params < best->params) {
      best = &route;
      best_params = std::move(params);
      if (best->params == 0) break;  // fully literal: nothing beats it
    }
  }
  if (best != nullptr) {
    // Trace-context propagation: a request that arrived with trace
    // headers gets a handler span parented under the *client's* span (the
    // remote context wins over this thread's stack), so the device↔cloud
    // request is one causal tree. Untraced requests (tests poking the
    // router directly) record no span. The span covers the handler only;
    // routing overhead stays in the observer's wall_us.
    const telemetry::TraceContext ctx = request.trace_context();
    const SimTime sim_now = request.sim_time();
    std::optional<telemetry::Span> span;
    if (ctx.valid())
      span.emplace(telemetry::tracer(), "cloud." + best->pattern, sim_now, ctx);
    HttpResponse response = best->handler(request, best_params);
    response.sim_latency_s += added_latency_s;
    if (span) span->finish(sim_now);
    observe(best->pattern, response.status);
    return response;
  }
  observe("<unmatched>", kStatusNotFound);
  HttpResponse not_found =
      HttpResponse::error(kStatusNotFound, "no route for " + request.path);
  not_found.sim_latency_s = added_latency_s;
  return not_found;
}

}  // namespace pmware::net
