// Path router: dispatches requests to handlers, with ":param" captures —
// the server half of the simulated REST stack.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/http.hpp"

namespace pmware::net {

/// Path parameters captured from ":name" segments.
using PathParams = std::map<std::string, std::string>;

using Handler = std::function<HttpResponse(const HttpRequest&, const PathParams&)>;

/// A middleware may short-circuit (return a response) or pass (return
/// nullopt) — used for the cloud's auth check.
using Middleware = std::function<std::optional<HttpResponse>(const HttpRequest&)>;

/// Called once per dispatched request with the matched route pattern (the
/// registration string, so ":id" not the concrete id — bounded metric
/// cardinality), the response status, and the wall-clock handler cost.
/// Pattern is "<unmatched>" for 404s and "<middleware>" when a middleware
/// short-circuited before routing.
using Observer = std::function<void(Method method, const std::string& pattern,
                                    int status, double wall_us)>;

/// Decides per request whether to inject a failure or added latency before
/// any guard or handler runs (an injected failure means the handler never
/// executed). Must be deterministic and thread-safe; see net/fault.hpp.
using FaultInjector = std::function<FaultOutcome(const HttpRequest&)>;

class Router {
 public:
  /// Registers a handler for `method` on `pattern`, where pattern segments
  /// starting with ':' capture the corresponding request segment,
  /// e.g. "/api/users/:id/places".
  void add_route(Method method, const std::string& pattern, Handler handler);

  /// Adds a middleware run (in registration order) before every route whose
  /// path does NOT start with one of `exempt_prefixes`.
  void add_middleware(Middleware mw, std::vector<std::string> exempt_prefixes = {});

  /// Installs the per-request observer (telemetry); replaces any previous.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Installs the fault injector (scripted outages / error rates / latency,
  /// see net/fault.hpp); replaces any previous. Like add_route, setup-time
  /// only — must not race handle().
  void set_fault_injector(FaultInjector injector) {
    fault_injector_ = std::move(injector);
  }

  /// Dispatches a request; 404 when no route matches.
  ///
  /// Matching rules:
  ///  * a single trailing slash is tolerated ("/metrics/" == "/metrics");
  ///  * an empty segment never binds a ":param" capture
  ///    ("/api/users//places" is a 404, not id="");
  ///  * among overlapping patterns the most specific wins — fewest ":param"
  ///    captures first, registration order as the tie-break — so a literal
  ///    "/api/users/all" beats "/api/users/:id" regardless of registration
  ///    order.
  ///
  /// handle() itself takes no lock and is safe to call concurrently: the
  /// route/middleware tables are immutable after single-threaded setup
  /// (add_route/add_middleware must not race handle()), and synchronization
  /// of shared backend state is the handlers' job — the cloud instance
  /// routes each request to its per-user shard lock (DESIGN.md
  /// "Concurrency model").
  HttpResponse handle(const HttpRequest& request) const;

  std::size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    Method method;
    std::string pattern;                ///< as registered, for the observer
    std::vector<std::string> segments;  ///< pattern split on '/'
    std::size_t params;                 ///< ':' captures, for specificity
    Handler handler;
  };
  struct Guard {
    Middleware mw;
    std::vector<std::string> exempt_prefixes;
  };

  static std::vector<std::string> split(const std::string& path);
  static bool match(const Route& route, const std::vector<std::string>& segments,
                    PathParams& params);

  std::vector<Route> routes_;
  std::vector<Guard> guards_;
  Observer observer_;
  FaultInjector fault_injector_;
};

}  // namespace pmware::net
