#include "net/client.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::net {

namespace {

using telemetry::LabelSet;
using telemetry::registry;

constexpr const char* kRequests = "net_requests_total";
constexpr const char* kFailures = "net_failures_total";
constexpr const char* kRetries = "net_retries_total";
constexpr const char* kBytesSent = "net_bytes_sent_total";
constexpr const char* kLatency = "net_sim_latency_seconds_total";

LabelSet instance_labels(const std::string& instance) {
  return {{"instance", instance}};
}

/// Path with all-digit segments collapsed to ":n", so client span names
/// aggregate per endpoint in flame output instead of fragmenting per user
/// ("/api/users/7/places" -> "/api/users/:n/places").
std::string generalized_path(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  std::size_t i = 0;
  while (i < path.size()) {
    if (path[i] != '/') {
      out += path[i++];
      continue;
    }
    std::size_t j = i + 1;
    while (j < path.size() && path[j] != '/') ++j;
    const bool numeric =
        j > i + 1 && std::all_of(path.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                 path.begin() + static_cast<std::ptrdiff_t>(j),
                                 [](char c) { return c >= '0' && c <= '9'; });
    out += numeric ? std::string("/:n") : path.substr(i, j - i);
    i = j;
  }
  return out;
}

}  // namespace

RestClient::RestClient(const Router* server, NetworkConditions conditions,
                       Rng rng)
    : server_(server),
      conditions_(conditions),
      rng_(rng),
      instance_(registry().next_instance_label("c")) {}

HttpResponse RestClient::send(const HttpRequest& request, int max_retries) {
  HttpRequest outgoing = request;
  if (!token_.empty() && outgoing.headers.find("Authorization") ==
                             outgoing.headers.end())
    outgoing.headers["Authorization"] = "Bearer " + token_;

  // One client span covers the request including retries. It nests under
  // whatever span the calling thread has open (pms.housekeeping, a GCA
  // offload, ...) or roots a fresh trace, and its context rides the
  // trace-context headers so the server-side handler span joins the same
  // tree — the device↔cloud boundary stays one causal trace.
  const SimTime sim_now = outgoing.sim_time();
  telemetry::Span span(telemetry::tracer(),
                       std::string("net.send ") + to_string(outgoing.method) +
                           " " + generalized_path(outgoing.path),
                       sim_now);
  outgoing.set_trace_context(telemetry::tracer().current_context());

  auto& reg = registry();
  const LabelSet labels = instance_labels(instance_);
  const std::size_t body_bytes = outgoing.body.dump().size();

  HttpResponse response =
      HttpResponse::error(kStatusServiceUnavailable, "network unreachable");
  // In simulated time the request costs one round-trip per attempt.
  auto finish_span = [&](int attempts) {
    span.finish(sim_now + conditions_.latency_s * attempts);
  };
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    reg.counter(kRequests, labels, "REST requests attempted (incl. retries)")
        .inc();
    if (attempt > 0)
      reg.counter(kRetries, labels, "REST retries after transport loss").inc();
    reg.counter(kBytesSent, labels, "serialized JSON body bytes sent")
        .inc(body_bytes);
    reg.histogram("net_request_bytes", {}, 0, 4096, 16,
                  "request body size distribution, bytes")
        .observe(static_cast<double>(body_bytes));
    reg.counter(kLatency, labels, "simulated round-trip seconds accumulated")
        .inc(static_cast<std::uint64_t>(conditions_.latency_s));
    if (rng_.bernoulli(conditions_.failure_prob)) {
      reg.counter(kFailures, labels, "transport-level losses observed").inc();
      continue;  // request lost; retry
    }
    response = server_->handle(outgoing);
    finish_span(attempt + 1);
    return response;
  }
  finish_span(max_retries + 1);
  return response;
}

ClientStats RestClient::stats() const {
  const auto& reg = registry();
  const LabelSet labels = instance_labels(instance_);
  ClientStats stats;
  stats.requests = reg.counter_value(kRequests, labels);
  stats.failures = reg.counter_value(kFailures, labels);
  stats.retries = reg.counter_value(kRetries, labels);
  stats.bytes_sent = reg.counter_value(kBytesSent, labels);
  stats.total_latency =
      static_cast<SimDuration>(reg.counter_value(kLatency, labels));
  return stats;
}

}  // namespace pmware::net
