#include "net/client.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "net/fault.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::net {

namespace {

using telemetry::LabelSet;
using telemetry::registry;

constexpr const char* kRequests = "net_requests_total";
constexpr const char* kFailures = "net_failures_total";
constexpr const char* kRetries = "net_retries_total";
constexpr const char* kBytesSent = "net_bytes_sent_total";
constexpr const char* kLatency = "net_sim_latency_seconds_total";
constexpr const char* kBackoff = "net_backoff_seconds_total";
constexpr const char* kBreakerOpens = "net_breaker_open_total";
constexpr const char* kBreakerFastFails = "net_breaker_fast_fail_total";
constexpr const char* kBreakerState = "net_breaker_state";
constexpr const char* kNotModified = "net_not_modified_total";
constexpr const char* kBytesSaved = "net_bytes_saved_total";

/// Name of every client-side conditional cache's metric series; instances
/// aggregate (the taxonomy uses counters, never gauges).
constexpr const char* kConditionalCacheName = "net_conditional";

LabelSet instance_labels(const std::string& instance) {
  return {{"instance", instance}};
}

}  // namespace

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

RestClient::RestClient(const Router* server, NetworkConditions conditions,
                       Rng rng)
    : server_(server),
      conditions_(conditions),
      rng_(rng),
      instance_(registry().next_instance_label("c")),
      requests_(kRequests, instance_labels(instance_),
                "REST requests attempted (incl. retries)"),
      failures_(kFailures, instance_labels(instance_),
                "transport-level losses observed"),
      retries_(kRetries, instance_labels(instance_),
               "REST retries after transport loss"),
      bytes_sent_(kBytesSent, instance_labels(instance_),
                  "serialized JSON body bytes sent"),
      latency_(kLatency, instance_labels(instance_),
               "simulated round-trip seconds accumulated"),
      backoff_(kBackoff, instance_labels(instance_),
               "simulated seconds spent in retry backoff waits"),
      breaker_opens_(kBreakerOpens, instance_labels(instance_),
                     "circuit breaker transitions to open"),
      breaker_fast_fails_(kBreakerFastFails, instance_labels(instance_),
                          "sends rejected while the circuit breaker was open"),
      not_modified_(kNotModified, instance_labels(instance_),
                    "conditional GETs resolved as 304 Not Modified"),
      bytes_saved_(kBytesSaved, instance_labels(instance_),
                   "response body bytes 304s did not re-transfer"),
      breaker_state_gauge_(kBreakerState, instance_labels(instance_),
                           "circuit breaker state: 0 closed, 1 open, 2 half-open"),
      request_bytes_("net_request_bytes", {}, 0, 4096, 16,
                     "request body size distribution, bytes") {
  enter_state(BreakerState::Closed);
}

void RestClient::set_cache_policy(CachePolicy policy) {
  cache_policy_ = policy;
  if (!policy.enabled) {
    conditional_cache_.reset();
    return;
  }
  conditional_cache_ =
      std::make_unique<cache::ContentCache<std::string, CachedRepresentation>>(
          kConditionalCacheName, policy.capacity);
}

void RestClient::enter_state(BreakerState state) {
  state_ = state;
  breaker_state_gauge_.set(static_cast<double>(state));
}

void RestClient::record_outcome(bool delivered, SimTime sim_now) {
  if (breaker_.failure_threshold <= 0) return;  // breaker disabled
  if (delivered) {
    consecutive_failures_ = 0;
    if (state_ != BreakerState::Closed) enter_state(BreakerState::Closed);
    return;
  }
  ++consecutive_failures_;
  // A failed half-open probe re-opens immediately; a closed breaker opens
  // once the consecutive-failure threshold is met.
  if (state_ == BreakerState::HalfOpen ||
      consecutive_failures_ >= breaker_.failure_threshold) {
    enter_state(BreakerState::Open);
    open_until_ = sim_now + breaker_.cooldown_s;
    breaker_opens_.inc();
  }
}

HttpResponse RestClient::send(const HttpRequest& request, int max_retries) {
  const SimTime sim_now = request.sim_time();

  // Breaker gate: while open and inside the cooldown, fail fast without
  // consuming RNG draws or network counters — callers see an ordinary 503
  // and fall back (GCA runs locally, PMS parks work in its outbox). Once
  // the cooldown elapses the next send() becomes the half-open probe.
  if (breaker_.failure_threshold > 0 && state_ == BreakerState::Open) {
    if (sim_now < open_until_) {
      breaker_fast_fails_.inc();
      return HttpResponse::error(kStatusServiceUnavailable,
                                 "circuit breaker open");
    }
    enter_state(BreakerState::HalfOpen);
  }

  HttpRequest outgoing = request;
  if (!token_.empty() && outgoing.headers.find("Authorization") ==
                             outgoing.headers.end())
    outgoing.headers["Authorization"] = "Bearer " + token_;

  // Conditional transfer: replay the remembered ETag for this GET so an
  // unchanged representation collapses to a bodyless 304. A caller-supplied
  // If-None-Match always passes through untouched (and its 304, if any, is
  // the caller's to interpret). The extra header never perturbs fault rolls
  // — the injector hashes path/body/attempt only (net/fault.hpp).
  const bool conditional =
      conditional_cache_ != nullptr && outgoing.method == Method::Get &&
      outgoing.headers.find(kIfNoneMatchHeader) == outgoing.headers.end();
  std::optional<CachedRepresentation> remembered;
  std::string cache_key;
  if (conditional) {
    cache_key = outgoing.path;
    for (const auto& [k, v] : outgoing.query) cache_key += "&" + k + "=" + v;
    auto found = conditional_cache_->lookup(cache_key, 0);
    if (found.value) {
      remembered = std::move(found.value);
      outgoing.headers[kIfNoneMatchHeader] = remembered->etag;
    }
  }

  // A half-open breaker admits exactly one probe: no retries, so a dead
  // server costs one round-trip per cooldown instead of a full retry burst.
  int retries = max_retries >= 0 ? max_retries : retry_.max_retries;
  if (state_ == BreakerState::HalfOpen) retries = 0;

  // One client span covers the request including retries and backoff. It
  // nests under whatever span the calling thread has open (pms.housekeeping,
  // a GCA offload, ...) or roots a fresh trace, and its context rides the
  // trace-context headers so the server-side handler span joins the same
  // tree — the device↔cloud boundary stays one causal trace.
  telemetry::Span span(telemetry::tracer(),
                       std::string("net.send ") + to_string(outgoing.method) +
                           " " + generalized_path(outgoing.path),
                       sim_now);
  outgoing.set_trace_context(telemetry::tracer().current_context());

  const std::size_t body_bytes = outgoing.body.dump().size();

  HttpResponse response =
      HttpResponse::error(kStatusServiceUnavailable, "network unreachable");
  // Simulated elapsed time: one round-trip per attempt, plus backoff waits,
  // plus any server-injected latency.
  SimDuration elapsed = 0;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      SimDuration backoff = retry_.backoff_base_s;
      for (int i = 1; i < attempt && backoff < retry_.backoff_cap_s; ++i)
        backoff *= 2;
      backoff = std::min(backoff, retry_.backoff_cap_s);
      if (retry_.jitter > 0.0 && backoff > 0) {
        const auto max_jitter =
            static_cast<SimDuration>(retry_.jitter * static_cast<double>(backoff));
        if (max_jitter > 0) backoff += rng_.uniform_int(0, max_jitter);
      }
      elapsed += backoff;
      backoff_.inc(static_cast<std::uint64_t>(backoff));
      retries_.inc();
    }
    requests_.inc();
    bytes_sent_.inc(body_bytes);
    request_bytes_.observe(static_cast<double>(body_bytes));
    latency_.inc(static_cast<std::uint64_t>(conditions_.latency_s));
    elapsed += conditions_.latency_s;
    // Sim-time is frozen across this loop, so retries of one logical request
    // are byte-identical; the attempt header is what lets a deterministic
    // server-side fault roll (net/fault.hpp) treat each retry as fresh.
    outgoing.headers[kAttemptHeader] = std::to_string(attempt);
    if (rng_.bernoulli(conditions_.failure_prob)) {
      failures_.inc();
      continue;  // request lost; retry
    }
    response = server_->handle(outgoing);
    if (response.sim_latency_s > 0) {
      latency_.inc(static_cast<std::uint64_t>(response.sim_latency_s));
      elapsed += response.sim_latency_s;
    }
    // A server 503 (outage window, injected error) is as retryable as a
    // transport loss; any other status means the service answered.
    if (response.status != kStatusServiceUnavailable) break;
  }
  if (conditional) {
    if (response.status == kStatusNotModified && remembered) {
      // The server validated our tag: resolve the 304 from the cached body
      // so the caller sees an ordinary 200 — a cloud_hit that moved headers
      // instead of the representation.
      not_modified_.inc();
      bytes_saved_.inc(remembered->body.dump().size());
      conditional_cache_->record(cache::CacheOutcome::CloudHit);
      response.status = kStatusOk;
      response.body = remembered->body;
    } else if (response.ok()) {
      const auto etag = response.headers.find(kETagHeader);
      if (etag != response.headers.end()) {
        // Full representation with a validator: remember it. A prior entry
        // whose tag no longer validates means the content changed upstream.
        conditional_cache_->record(remembered ? cache::CacheOutcome::Recompute
                                              : cache::CacheOutcome::Miss);
        conditional_cache_->put(cache_key, {etag->second, response.body}, 0);
      }
    }
  }
  span.finish(sim_now + elapsed);
  record_outcome(response.status != kStatusServiceUnavailable, sim_now);
  return response;
}

ClientStats RestClient::stats() const {
  const auto& reg = registry();
  const LabelSet labels = instance_labels(instance_);
  ClientStats stats;
  stats.requests = reg.counter_value(kRequests, labels);
  stats.failures = reg.counter_value(kFailures, labels);
  stats.retries = reg.counter_value(kRetries, labels);
  stats.bytes_sent = reg.counter_value(kBytesSent, labels);
  stats.total_latency =
      static_cast<SimDuration>(reg.counter_value(kLatency, labels));
  stats.backoff_s = static_cast<SimDuration>(reg.counter_value(kBackoff, labels));
  stats.breaker_opens = reg.counter_value(kBreakerOpens, labels);
  stats.breaker_fast_fails = reg.counter_value(kBreakerFastFails, labels);
  stats.not_modified = reg.counter_value(kNotModified, labels);
  stats.bytes_saved = reg.counter_value(kBytesSaved, labels);
  return stats;
}

}  // namespace pmware::net
