#include "net/client.hpp"

namespace pmware::net {

RestClient::RestClient(const Router* server, NetworkConditions conditions,
                       Rng rng)
    : server_(server), conditions_(conditions), rng_(rng) {}

HttpResponse RestClient::send(const HttpRequest& request, int max_retries) {
  HttpRequest outgoing = request;
  if (!token_.empty() && outgoing.headers.find("Authorization") ==
                             outgoing.headers.end())
    outgoing.headers["Authorization"] = "Bearer " + token_;

  HttpResponse response =
      HttpResponse::error(kStatusServiceUnavailable, "network unreachable");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    ++stats_.requests;
    if (attempt > 0) ++stats_.retries;
    stats_.bytes_sent += outgoing.body.dump().size();
    stats_.total_latency += conditions_.latency_s;
    if (rng_.bernoulli(conditions_.failure_prob)) {
      ++stats_.failures;
      continue;  // request lost; retry
    }
    response = server_->handle(outgoing);
    return response;
  }
  return response;
}

}  // namespace pmware::net
