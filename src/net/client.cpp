#include "net/client.hpp"

#include "telemetry/metrics.hpp"

namespace pmware::net {

namespace {

using telemetry::LabelSet;
using telemetry::registry;

constexpr const char* kRequests = "net_requests_total";
constexpr const char* kFailures = "net_failures_total";
constexpr const char* kRetries = "net_retries_total";
constexpr const char* kBytesSent = "net_bytes_sent_total";
constexpr const char* kLatency = "net_sim_latency_seconds_total";

LabelSet instance_labels(const std::string& instance) {
  return {{"instance", instance}};
}

}  // namespace

RestClient::RestClient(const Router* server, NetworkConditions conditions,
                       Rng rng)
    : server_(server),
      conditions_(conditions),
      rng_(rng),
      instance_(registry().next_instance_label("c")) {}

HttpResponse RestClient::send(const HttpRequest& request, int max_retries) {
  HttpRequest outgoing = request;
  if (!token_.empty() && outgoing.headers.find("Authorization") ==
                             outgoing.headers.end())
    outgoing.headers["Authorization"] = "Bearer " + token_;

  auto& reg = registry();
  const LabelSet labels = instance_labels(instance_);
  const std::size_t body_bytes = outgoing.body.dump().size();

  HttpResponse response =
      HttpResponse::error(kStatusServiceUnavailable, "network unreachable");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    reg.counter(kRequests, labels, "REST requests attempted (incl. retries)")
        .inc();
    if (attempt > 0)
      reg.counter(kRetries, labels, "REST retries after transport loss").inc();
    reg.counter(kBytesSent, labels, "serialized JSON body bytes sent")
        .inc(body_bytes);
    reg.histogram("net_request_bytes", {}, 0, 4096, 16,
                  "request body size distribution, bytes")
        .observe(static_cast<double>(body_bytes));
    reg.counter(kLatency, labels, "simulated round-trip seconds accumulated")
        .inc(static_cast<std::uint64_t>(conditions_.latency_s));
    if (rng_.bernoulli(conditions_.failure_prob)) {
      reg.counter(kFailures, labels, "transport-level losses observed").inc();
      continue;  // request lost; retry
    }
    response = server_->handle(outgoing);
    return response;
  }
  return response;
}

ClientStats RestClient::stats() const {
  const auto& reg = registry();
  const LabelSet labels = instance_labels(instance_);
  ClientStats stats;
  stats.requests = reg.counter_value(kRequests, labels);
  stats.failures = reg.counter_value(kFailures, labels);
  stats.retries = reg.counter_value(kRetries, labels);
  stats.bytes_sent = reg.counter_value(kBytesSent, labels);
  stats.total_latency =
      static_cast<SimDuration>(reg.counter_value(kLatency, labels));
  return stats;
}

}  // namespace pmware::net
