// Day-schedule generator: turns a participant profile into a ground-truth
// Trace over a study period (visits + road trips), with realistic clock-time
// jitter across days so mobility profiles have day-to-day regularity but not
// identical repetition.
#pragma once

#include "mobility/participant.hpp"
#include "mobility/trace.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

namespace pmware::mobility {

struct ScheduleConfig {
  int days = 14;                    ///< study length (paper §4: 2 weeks)
  double walk_speed_mps = 1.3;
  double drive_speed_mps = 7.5;     ///< ~27 km/h urban average
  double walk_threshold_m = 900;    ///< farther than this and they drive
  SimDuration min_stay = minutes(5);
};

/// Builds the full ground-truth trace for one participant.
/// Deterministic given (world, participant, config, rng state).
Trace build_trace(const world::World& world, const Participant& participant,
                  const ScheduleConfig& config, Rng& rng);

}  // namespace pmware::mobility
