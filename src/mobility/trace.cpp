#include "mobility/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/polyline.hpp"

namespace pmware::mobility {

Trace::Trace(std::vector<Visit> visits, std::vector<Trip> trips,
             std::vector<geo::LatLng> visit_anchor_positions, TimeWindow period)
    : visits_(std::move(visits)),
      trips_(std::move(trips)),
      anchors_(std::move(visit_anchor_positions)),
      period_(period) {
  if (anchors_.size() != visits_.size())
    throw std::invalid_argument("Trace: anchors/visits size mismatch");

  for (std::size_t i = 0; i < visits_.size(); ++i)
    segments_.push_back({true, i, visits_[i].window});
  for (std::size_t i = 0; i < trips_.size(); ++i)
    segments_.push_back({false, i, trips_[i].window});
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.window.begin < b.window.begin;
            });

  if (segments_.empty()) throw std::invalid_argument("Trace: empty trace");
  if (segments_.front().window.begin != period_.begin ||
      segments_.back().window.end != period_.end)
    throw std::invalid_argument("Trace: segments do not span the period");
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    if (segments_[i].window.end != segments_[i + 1].window.begin)
      throw std::invalid_argument("Trace: segments not contiguous");
    if (segments_[i].window.length() <= 0)
      throw std::invalid_argument("Trace: empty segment");
  }
  for (const Trip& t : trips_) {
    if (t.path.size() < 2)
      throw std::invalid_argument("Trace: trip path too short");
  }
}

const Trace::Segment& Trace::segment_at(SimTime t) const {
  t = std::clamp(t, period_.begin, period_.end - 1);
  // Binary search for the segment whose window contains t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.window.begin; });
  if (it == segments_.begin())
    throw std::logic_error("Trace::segment_at: before first segment");
  return *(it - 1);
}

geo::LatLng Trace::position_at(SimTime t) const {
  const Segment& s = segment_at(t);
  if (s.is_visit) return anchors_[s.index];
  const Trip& trip = trips_[s.index];
  const double frac =
      static_cast<double>(std::clamp(t, trip.window.begin, trip.window.end) -
                          trip.window.begin) /
      static_cast<double>(trip.window.length());
  const double total = geo::polyline_length_m(trip.path);
  return geo::point_along(trip.path, frac * total);
}

std::optional<world::PlaceId> Trace::place_at(SimTime t) const {
  const Segment& s = segment_at(t);
  if (!s.is_visit) return std::nullopt;
  return visits_[s.index].place;
}

Activity Trace::activity_at(SimTime t) const {
  const Segment& s = segment_at(t);
  if (s.is_visit) return Activity::Still;
  return trips_[s.index].mode == TravelMode::Walk ? Activity::Walking
                                                  : Activity::Vehicle;
}

std::vector<Visit> Trace::significant_visits(SimDuration min_dwell) const {
  std::vector<Visit> out;
  for (const Visit& v : visits_)
    if (v.window.length() >= min_dwell) out.push_back(v);
  return out;
}

}  // namespace pmware::mobility
