// Ground-truth mobility trace: a continuous alternation of place visits and
// trips, queryable for position / current place / activity at any instant.
//
// This is the "truth" against which PMWare's discovered places, routes and
// mobility profiles are evaluated (paper §4's diary logging stand-in).
#pragma once

#include <optional>
#include <vector>

#include "geo/latlng.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::mobility {

/// Travel mode; determines speed and the activity the accelerometer sees.
enum class TravelMode : std::uint8_t { Walk, Drive };

/// Physical activity state, as a perfect oracle would report it.
enum class Activity : std::uint8_t { Still, Walking, Vehicle };

/// A stay at a place. `window` is [arrival, departure).
struct Visit {
  world::PlaceId place = world::kNoPlace;
  TimeWindow window;
};

/// A journey between two consecutive visits along `path`.
struct Trip {
  world::PlaceId from = world::kNoPlace;
  world::PlaceId to = world::kNoPlace;
  TimeWindow window;
  std::vector<geo::LatLng> path;  ///< includes both endpoints
  TravelMode mode = TravelMode::Walk;
};

/// Immutable trace over a study period. Invariants (checked at build):
/// segments tile the period contiguously, visits and trips alternate, and
/// every window has positive length.
class Trace {
 public:
  Trace(std::vector<Visit> visits, std::vector<Trip> trips,
        std::vector<geo::LatLng> visit_anchor_positions, TimeWindow period);

  const std::vector<Visit>& visits() const { return visits_; }
  const std::vector<Trip>& trips() const { return trips_; }
  const TimeWindow& period() const { return period_; }

  /// True position at time `t` (clamped into the period).
  geo::LatLng position_at(SimTime t) const;

  /// Place occupied at `t`, or nullopt while travelling.
  std::optional<world::PlaceId> place_at(SimTime t) const;

  /// Oracle activity at `t`.
  Activity activity_at(SimTime t) const;

  /// Visits of at least `min_dwell` seconds — the "significant place" ground
  /// truth (prior work uses a 10-minute threshold, paper §2.1.1).
  std::vector<Visit> significant_visits(SimDuration min_dwell) const;

 private:
  // Segment lookup: visits and trips interleaved, sorted by start time.
  struct Segment {
    bool is_visit = true;
    std::size_t index = 0;
    TimeWindow window;
  };
  const Segment& segment_at(SimTime t) const;

  std::vector<Visit> visits_;
  std::vector<Trip> trips_;
  std::vector<geo::LatLng> anchors_;  ///< position used during each visit
  std::vector<Segment> segments_;
  TimeWindow period_;
};

}  // namespace pmware::mobility
