// Participant profiles: who lives where, works where, and which POIs they
// frequent. Profiles drive the schedule generator.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "world/world.hpp"

namespace pmware::mobility {

/// Archetype controls the weekday anchor (office vs campus) and the mix of
/// leisure outings. Students reproduce the paper's §4 "academic building +
/// library" merged-place scenario.
enum class Archetype : std::uint8_t { OfficeWorker, Student, Homemaker };

const char* to_string(Archetype a);

struct Participant {
  world::DeviceId id = 0;
  std::string name;
  Archetype archetype = Archetype::OfficeWorker;
  world::PlaceId home = world::kNoPlace;
  world::PlaceId anchor = world::kNoPlace;  ///< workplace or campus
  /// Secondary frequent place tightly coupled to the anchor (e.g. the
  /// library next to the academic building); kNoPlace if none.
  world::PlaceId anchor_adjunct = world::kNoPlace;
  std::vector<world::PlaceId> leisure;  ///< pool of evening/weekend outings
  /// Per-participant rate of evening outings on weekdays, [0, 1].
  double weekday_outing_prob = 0.5;
};

/// Builds `count` participants over the world's POIs. Homes are assigned
/// without reuse (throws if the world has fewer homes than participants).
/// Roughly 1 in 5 participants is a Student anchored at the campus cluster
/// when the world has one; 1 in 8 is a Homemaker.
std::vector<Participant> make_participants(const world::World& world, int count,
                                           Rng& rng);

}  // namespace pmware::mobility
