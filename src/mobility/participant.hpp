// Participant profiles: who lives where, works where, and which POIs they
// frequent. Profiles drive the schedule generator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "world/world.hpp"

namespace pmware::mobility {

/// Archetype controls the weekday anchor (office vs campus) and the mix of
/// leisure outings. Students reproduce the paper's §4 "academic building +
/// library" merged-place scenario.
enum class Archetype : std::uint8_t { OfficeWorker, Student, Homemaker };

const char* to_string(Archetype a);

struct Participant {
  world::DeviceId id = 0;
  std::string name;
  Archetype archetype = Archetype::OfficeWorker;
  world::PlaceId home = world::kNoPlace;
  world::PlaceId anchor = world::kNoPlace;  ///< workplace or campus
  /// Secondary frequent place tightly coupled to the anchor (e.g. the
  /// library next to the academic building); kNoPlace if none.
  world::PlaceId anchor_adjunct = world::kNoPlace;
  std::vector<world::PlaceId> leisure;  ///< pool of evening/weekend outings
  /// Per-participant rate of evening outings on weekdays, [0, 1].
  double weekday_outing_prob = 0.5;
};

/// Builds `count` participants over the world's POIs. Homes are assigned
/// round-robin over a shuffled deck (they start repeating once the
/// population exceeds the world's housing stock, which is how a 100k-
/// participant study fits in a city-sized world). Roughly 1 in 5
/// participants is a Student anchored at the campus cluster when the world
/// has one; 1 in 8 is a Homemaker.
std::vector<Participant> make_participants(const world::World& world, int count,
                                           Rng& rng);

/// Incremental form of make_participants for the streaming study runner:
/// emits participant 0, 1, 2, ... on demand, drawing from the caller's
/// `rng` in exactly the order the batch builder would, so
/// `stream.next()` called `count` times is element-for-element identical
/// to `make_participants(world, count, rng)` (the differential oracle in
/// tests/test_population.cpp asserts this). The stream holds references:
/// `world` and `rng` must outlive it, and nothing else may draw from `rng`
/// between next() calls.
class ParticipantStream {
 public:
  ParticipantStream(const world::World& world, Rng& rng);

  /// Builds the next participant (ids are assigned sequentially from 0).
  Participant next();

  /// Participants emitted so far == the id the next() call will assign.
  int emitted() const { return next_id_; }

 private:
  const world::World* world_;
  Rng* rng_;
  std::vector<world::PlaceId> homes_;  ///< shuffled once at construction
  std::vector<world::PlaceId> workplaces_;
  std::optional<world::PlaceId> academic_;
  std::optional<world::PlaceId> library_;
  std::vector<world::PlaceId> leisure_pool_;
  int next_id_ = 0;
};

}  // namespace pmware::mobility
