#include "mobility/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/polyline.hpp"

namespace pmware::mobility {

namespace {

using world::PlaceCategory;
using world::PlaceId;

/// An intent to be at `place` from roughly `arrival` for `dwell` seconds.
struct Appointment {
  PlaceId place = world::kNoPlace;
  SimTime arrival = 0;
};

SimDuration typical_dwell(PlaceCategory c, Rng& rng) {
  auto jitter = [&rng](SimDuration base, double frac) {
    return base + static_cast<SimDuration>(
                      rng.normal(0, static_cast<double>(base) * frac));
  };
  switch (c) {
    case PlaceCategory::Market: return std::max<SimDuration>(minutes(15), jitter(minutes(45), 0.3));
    case PlaceCategory::Restaurant: return std::max<SimDuration>(minutes(25), jitter(minutes(70), 0.25));
    case PlaceCategory::Cafe: return std::max<SimDuration>(minutes(15), jitter(minutes(40), 0.3));
    case PlaceCategory::Mall: return std::max<SimDuration>(minutes(40), jitter(minutes(95), 0.3));
    case PlaceCategory::Gym: return std::max<SimDuration>(minutes(35), jitter(minutes(70), 0.2));
    case PlaceCategory::Park: return std::max<SimDuration>(minutes(20), jitter(minutes(50), 0.3));
    case PlaceCategory::Cinema: return std::max<SimDuration>(minutes(100), jitter(minutes(160), 0.1));
    case PlaceCategory::Library: return std::max<SimDuration>(minutes(30), jitter(minutes(90), 0.3));
    default: return std::max<SimDuration>(minutes(20), jitter(minutes(45), 0.3));
  }
}

SimTime tod(std::int64_t day, int hour, int minute, Rng& rng,
            SimDuration sigma) {
  const SimTime base = start_of_day(day) + hours(hour) + minutes(minute);
  return base + static_cast<SimTime>(rng.normal(0, static_cast<double>(sigma)));
}

/// Appends the appointments for one day; every day ends with a return home.
void plan_day(std::vector<Appointment>& out, const world::World& world,
              const Participant& p, std::int64_t day,
              Rng& rng) {
  const bool weekend = day % 7 >= 5;
  SimTime last_end = start_of_day(day) + hours(7);

  auto add = [&](PlaceId place, SimTime arrival, SimDuration dwell) {
    arrival = std::max(arrival, last_end + minutes(10));
    out.push_back({place, arrival});
    last_end = arrival + dwell;
  };

  if (!weekend && p.anchor != world::kNoPlace) {
    const bool student = p.archetype == Archetype::Student;
    const SimTime work_arrival =
        tod(day, student ? 10 : 9, student ? 0 : 15, rng, minutes(20));
    SimDuration work_dwell =
        student ? hours(6) + static_cast<SimDuration>(rng.normal(0, 1800))
                : hours(8) + static_cast<SimDuration>(rng.normal(0, 2400));
    work_dwell = std::max<SimDuration>(hours(4), work_dwell);

    // Lunch away from the desk splits the work block in two. People eat
    // near the office: pick the closest eatery to the anchor.
    std::optional<PlaceId> nearest_eatery;
    double nearest_dist = std::numeric_limits<double>::infinity();
    for (const auto& place : world.places()) {
      if (place.category != PlaceCategory::Restaurant &&
          place.category != PlaceCategory::Cafe)
        continue;
      const double d =
          geo::distance_m(place.center, world.place(p.anchor).center);
      if (d < nearest_dist) {
        nearest_dist = d;
        nearest_eatery = place.id;
      }
    }
    const bool lunch_out = nearest_eatery && rng.bernoulli(0.4);
    if (lunch_out) {
      const SimTime lunch_at = tod(day, 13, 0, rng, minutes(15));
      const SimDuration lunch_dwell = typical_dwell(PlaceCategory::Restaurant, rng) / 2;
      const PlaceId lunch_place = *nearest_eatery;
      add(p.anchor, work_arrival, lunch_at - work_arrival);
      add(lunch_place, lunch_at, lunch_dwell);
      add(p.anchor, last_end + minutes(15), work_arrival + work_dwell - last_end);
    } else {
      add(p.anchor, work_arrival, work_dwell);
    }

    // Students drop by the adjacent library most evenings — the merged-place
    // scenario of §4.
    if (student && p.anchor_adjunct != world::kNoPlace && rng.bernoulli(0.6)) {
      add(p.anchor_adjunct, last_end + minutes(10),
          typical_dwell(PlaceCategory::Library, rng));
    }

    if (!p.leisure.empty() && rng.bernoulli(p.weekday_outing_prob)) {
      const PlaceId outing = p.leisure[rng.index(p.leisure.size())];
      add(outing, std::max(last_end + minutes(20), tod(day, 18, 45, rng, minutes(30))),
          typical_dwell(world.place(outing).category, rng));
    }
  } else {
    // Weekend / homemaker: one or two outings.
    const int n_outings =
        p.leisure.empty() ? 0 : static_cast<int>(rng.uniform_int(1, 2));
    const int slots[2] = {11, 17};
    for (int k = 0; k < n_outings; ++k) {
      const PlaceId outing = p.leisure[rng.index(p.leisure.size())];
      add(outing, tod(day, slots[k], 0, rng, minutes(40)),
          typical_dwell(world.place(outing).category, rng));
    }
    if (weekend && p.archetype == Archetype::Student &&
        p.anchor_adjunct != world::kNoPlace && rng.bernoulli(0.3)) {
      add(p.anchor_adjunct, tod(day, 15, 0, rng, minutes(30)),
          typical_dwell(PlaceCategory::Library, rng));
    }
  }

  // Return home for the night.
  add(p.home, std::max(last_end + minutes(20), tod(day, 20, 30, rng, minutes(45))),
      hours(9));
}

geo::LatLng anchor_in(const world::Place& place, Rng& rng) {
  return geo::destination(place.center, rng.uniform(0, 360),
                          rng.uniform(0, place.radius_m * 0.5));
}

}  // namespace

Trace build_trace(const world::World& world, const Participant& participant,
                  const ScheduleConfig& config, Rng& rng) {
  if (config.days <= 0) throw std::invalid_argument("build_trace: days <= 0");
  const TimeWindow period{0, days(config.days)};

  std::vector<Appointment> appointments;
  for (std::int64_t d = 0; d < config.days; ++d)
    plan_day(appointments, world, participant, d, rng);

  std::vector<Visit> visits;
  std::vector<Trip> trips;
  std::vector<geo::LatLng> anchors;

  PlaceId current = participant.home;
  geo::LatLng current_pos = anchor_in(world.place(current), rng);
  SimTime visit_start = period.begin;

  // Returns false (without mutating state) when the move cannot fit before
  // the end of the study period.
  auto close_and_travel = [&](PlaceId next, SimTime target_arrival) -> bool {
    const geo::LatLng next_pos = anchor_in(world.place(next), rng);
    std::vector<geo::LatLng> path = world.roads().route(current_pos, next_pos);
    const double length = geo::polyline_length_m(path);
    const TravelMode mode =
        length <= config.walk_threshold_m ? TravelMode::Walk : TravelMode::Drive;
    const double speed = mode == TravelMode::Walk
                             ? config.walk_speed_mps * rng.uniform(0.9, 1.1)
                             : config.drive_speed_mps * rng.uniform(0.8, 1.2);
    const auto travel =
        std::max<SimDuration>(60, static_cast<SimDuration>(length / speed));

    const SimTime earliest_departure =
        std::max(visit_start + config.min_stay, visit_start + 1);
    if (earliest_departure + travel + minutes(5) > period.end) return false;

    const SimTime departure = std::min(
        std::max(target_arrival - travel, earliest_departure),
        period.end - travel - minutes(5));
    const SimTime arrival = departure + travel;

    visits.push_back({current, TimeWindow{visit_start, departure}});
    anchors.push_back(current_pos);
    trips.push_back({current, next, TimeWindow{departure, arrival},
                     std::move(path), mode});
    current = next;
    current_pos = next_pos;
    visit_start = arrival;
    return true;
  };

  for (const Appointment& a : appointments) {
    if (a.place == current) continue;  // merge consecutive same-place stays
    if (a.arrival >= period.end - hours(1)) break;
    if (!close_and_travel(a.place, a.arrival)) break;
  }
  // Final open-ended visit runs to the end of the study.
  visits.push_back({current, TimeWindow{visit_start, period.end}});
  anchors.push_back(current_pos);

  return Trace(std::move(visits), std::move(trips), std::move(anchors), period);
}

}  // namespace pmware::mobility
