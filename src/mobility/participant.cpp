#include "mobility/participant.hpp"

#include "util/strfmt.hpp"
#include <algorithm>
#include <stdexcept>

namespace pmware::mobility {

using world::PlaceCategory;
using world::PlaceId;

const char* to_string(Archetype a) {
  switch (a) {
    case Archetype::OfficeWorker: return "office-worker";
    case Archetype::Student: return "student";
    case Archetype::Homemaker: return "homemaker";
  }
  return "?";
}

ParticipantStream::ParticipantStream(const world::World& world, Rng& rng)
    : world_(&world), rng_(&rng) {
  homes_ = world.all_of_category(PlaceCategory::Home);
  if (homes_.empty())
    throw std::invalid_argument("make_participants: world has no homes");
  rng.shuffle(homes_);

  workplaces_ = world.all_of_category(PlaceCategory::Workplace);
  if (workplaces_.empty())
    throw std::invalid_argument("make_participants: world has no workplaces");
  academic_ = world.find_category(PlaceCategory::AcademicBuilding);
  library_ = world.find_category(PlaceCategory::Library);

  // Leisure pool: everything people go to in evenings/weekends.
  for (PlaceCategory c :
       {PlaceCategory::Market, PlaceCategory::Restaurant, PlaceCategory::Cafe,
        PlaceCategory::Mall, PlaceCategory::Gym, PlaceCategory::Park,
        PlaceCategory::Cinema}) {
    for (PlaceId p : world.all_of_category(c)) leisure_pool_.push_back(p);
  }
  if (leisure_pool_.empty())
    throw std::invalid_argument("make_participants: world has no leisure POIs");
}

Participant ParticipantStream::next() {
  const int i = next_id_++;
  Rng& rng = *rng_;

  Participant p;
  p.id = static_cast<world::DeviceId>(i);
  p.name = strfmt("participant-%02d", i + 1);
  // Round-robin over the shuffled deck: ids below the housing stock get
  // unique homes (identical to the historical no-reuse assignment), and a
  // population larger than the world shares homes instead of throwing.
  p.home = homes_[static_cast<std::size_t>(i) % homes_.size()];

  if (academic_ && i % 5 == 1) {
    p.archetype = Archetype::Student;
    p.anchor = *academic_;
    p.anchor_adjunct = library_.value_or(world::kNoPlace);
  } else if (i % 8 == 7) {
    p.archetype = Archetype::Homemaker;
    p.anchor = world::kNoPlace;
  } else {
    p.archetype = Archetype::OfficeWorker;
    p.anchor = workplaces_[rng.index(workplaces_.size())];
  }

  const int n_leisure = static_cast<int>(rng.uniform_int(3, 5));
  std::vector<PlaceId> pool = leisure_pool_;
  rng.shuffle(pool);
  for (int k = 0; k < n_leisure && k < static_cast<int>(pool.size()); ++k)
    p.leisure.push_back(pool[static_cast<std::size_t>(k)]);

  // People visit complexes, not isolated points: if a chosen haunt has a
  // neighbouring leisure POI (the cinema inside the mall, the restaurant
  // row at the market), they frequent that one too.
  const std::vector<PlaceId> chosen = p.leisure;
  for (PlaceId id : chosen) {
    for (PlaceId other : leisure_pool_) {
      if (other == id) continue;
      if (std::find(p.leisure.begin(), p.leisure.end(), other) !=
          p.leisure.end())
        continue;
      if (geo::distance_m(world_->place(id).center,
                          world_->place(other).center) <= 150.0)
        p.leisure.push_back(other);
    }
  }

  p.weekday_outing_prob = rng.uniform(0.3, 0.7);
  return p;
}

std::vector<Participant> make_participants(const world::World& world, int count,
                                           Rng& rng) {
  ParticipantStream stream(world, rng);
  std::vector<Participant> out;
  out.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) out.push_back(stream.next());
  return out;
}

}  // namespace pmware::mobility
