#include "mobility/participant.hpp"

#include "util/strfmt.hpp"
#include <stdexcept>

namespace pmware::mobility {

using world::PlaceCategory;
using world::PlaceId;

const char* to_string(Archetype a) {
  switch (a) {
    case Archetype::OfficeWorker: return "office-worker";
    case Archetype::Student: return "student";
    case Archetype::Homemaker: return "homemaker";
  }
  return "?";
}

std::vector<Participant> make_participants(const world::World& world, int count,
                                           Rng& rng) {
  auto homes = world.all_of_category(PlaceCategory::Home);
  if (static_cast<int>(homes.size()) < count)
    throw std::invalid_argument(
        "make_participants: world has fewer homes than participants");
  rng.shuffle(homes);

  const auto workplaces = world.all_of_category(PlaceCategory::Workplace);
  if (workplaces.empty())
    throw std::invalid_argument("make_participants: world has no workplaces");
  const auto academic = world.find_category(PlaceCategory::AcademicBuilding);
  const auto library = world.find_category(PlaceCategory::Library);

  // Leisure pool: everything people go to in evenings/weekends.
  std::vector<PlaceId> leisure_pool;
  for (PlaceCategory c :
       {PlaceCategory::Market, PlaceCategory::Restaurant, PlaceCategory::Cafe,
        PlaceCategory::Mall, PlaceCategory::Gym, PlaceCategory::Park,
        PlaceCategory::Cinema}) {
    for (PlaceId p : world.all_of_category(c)) leisure_pool.push_back(p);
  }
  if (leisure_pool.empty())
    throw std::invalid_argument("make_participants: world has no leisure POIs");

  std::vector<Participant> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Participant p;
    p.id = static_cast<world::DeviceId>(i);
    p.name = strfmt("participant-%02d", i + 1);
    p.home = homes[static_cast<std::size_t>(i)];

    if (academic && i % 5 == 1) {
      p.archetype = Archetype::Student;
      p.anchor = *academic;
      p.anchor_adjunct = library.value_or(world::kNoPlace);
    } else if (i % 8 == 7) {
      p.archetype = Archetype::Homemaker;
      p.anchor = world::kNoPlace;
    } else {
      p.archetype = Archetype::OfficeWorker;
      p.anchor = workplaces[rng.index(workplaces.size())];
    }

    const int n_leisure =
        static_cast<int>(rng.uniform_int(3, 5));
    std::vector<PlaceId> pool = leisure_pool;
    rng.shuffle(pool);
    for (int k = 0; k < n_leisure && k < static_cast<int>(pool.size()); ++k)
      p.leisure.push_back(pool[static_cast<std::size_t>(k)]);

    // People visit complexes, not isolated points: if a chosen haunt has a
    // neighbouring leisure POI (the cinema inside the mall, the restaurant
    // row at the market), they frequent that one too.
    const std::vector<PlaceId> chosen = p.leisure;
    for (PlaceId id : chosen) {
      for (PlaceId other : leisure_pool) {
        if (other == id) continue;
        if (std::find(p.leisure.begin(), p.leisure.end(), other) !=
            p.leisure.end())
          continue;
        if (geo::distance_m(world.place(id).center,
                            world.place(other).center) <= 150.0)
          p.leisure.push_back(other);
      }
    }

    p.weekday_outing_prob = rng.uniform(0.3, 0.7);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace pmware::mobility
