// ETag generation and If-None-Match evaluation for the conditional-transfer
// half of the cache subsystem (RFC 7232 semantics, scoped to what the
// simulated REST transport exercises). The cloud stamps a strong ETag —
// the quoted hex FNV-1a of the serialized response body — on cacheable GET
// responses; RestClient replays it in If-None-Match, and a match collapses
// the exchange to a bodyless 304. Strong ETags require response bytes to
// be a pure function of stored state, which the place PUT/GET purity
// regression test pins down.
#pragma once

#include <string>
#include <string_view>

namespace pmware::cache {

/// Strong ETag for a response body: `"` + zero-padded 16-digit lowercase
/// hex of fnv1a(body) + `"`. Deterministic across processes and runs.
std::string strong_etag(std::string_view body);

/// True when `if_none_match` matches `etag` under the weak comparison RFC
/// 7232 §3.2 prescribes for If-None-Match: `W/` prefixes are ignored on
/// both sides, the header may carry a comma-separated list of (optionally
/// weak) entity tags, and `*` matches any current representation.
/// Unquoted candidates are tolerated and compared against the unquoted
/// tag. Empty header never matches.
bool etag_matches(std::string_view if_none_match, std::string_view etag);

}  // namespace pmware::cache
