// Content-addressing primitives shared by every cache in the middleware:
// FNV-1a over byte strings and the boost-style 64-bit fold for structured
// values. One definition instead of the per-module copies that used to
// live in core/pms.cpp and cloud/storage.cpp — cache keys on both sides of
// the wire must derive identically or conditional transfer and offload
// caching silently degrade to 100% misses.
#pragma once

#include <cstdint>
#include <string_view>

namespace pmware::cache {

/// FNV offset basis: the seed of every digest, distinguishable from
/// "never folded anything" by construction.
inline constexpr std::uint64_t kDigestBasis = 1469598103934665603ull;

/// FNV-1a over `s`, continuing from `h` (chain calls to digest multiple
/// fragments without concatenating).
inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t h = kDigestBasis) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Order-dependent accumulate of one 64-bit value into a running digest
/// (the classic hash_combine shape).
inline void fold(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

}  // namespace pmware::cache
