// Content-addressed result caching (ROADMAP "content-addressed caching on
// both sides of the wire"): a bounded LRU keyed by K whose entries carry
// the content digest ("version") of the inputs that produced them. A
// lookup presents the digest of the CURRENT inputs; an entry only hits
// while its stored digest still matches, so coherence is structural — no
// TTLs, no explicit invalidation broadcasts. Stale entries are dropped on
// sight and reported as such, which is what lets callers distinguish a
// ccache-style `recompute` (had a result, inputs changed) from a `miss`
// (never computed).
//
// Every cache instance is named; outcomes are exported through the metrics
// registry as cache_outcomes_total{cache=<name>, outcome=...} with the hit
// taxonomy shared by all caches in the middleware:
//   local_hit  — served without touching the wire (same-side cache)
//   cloud_hit  — the wire was touched but the expensive work was skipped
//                (304 revalidation, server-side offload replay)
//   recompute  — a cached result existed but its input digest changed
//   miss       — no cached result existed at all
// Counters (not gauges) only, so concurrent instances sharing one name
// aggregate instead of fighting (DESIGN.md "Content addressing & cache
// coherence").
//
// Thread-safety: all operations take the cache's internal mutex; V is
// copied out under it. The eviction hook runs under the lock and must not
// re-enter the cache.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace pmware::cache {

enum class CacheOutcome { LocalHit, CloudHit, Recompute, Miss };
const char* to_string(CacheOutcome outcome);

/// Increments cache_outcomes_total{cache=<name>, outcome=<outcome>}.
void record_outcome(const std::string& cache_name, CacheOutcome outcome);
/// Increments cache_evictions_total{cache=<name>} (capacity evictions, not
/// staleness drops — those surface as `recompute` outcomes).
void record_eviction(const std::string& cache_name);

template <typename K, typename V>
class ContentCache {
 public:
  /// `name` labels this cache's metric series; `capacity` bounds the entry
  /// count (>= 1), least-recently-used evicted first.
  ContentCache(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity == 0 ? 1 : capacity) {}

  struct Lookup {
    /// The cached value when its stored digest matched `version`.
    std::optional<V> value;
    /// True when an entry existed but its digest mismatched (it has been
    /// dropped) — the caller is about to *recompute*, not fill a cold miss.
    bool stale = false;
  };

  /// Looks up `key` against the current input digest `version`. A digest
  /// mismatch drops the entry (running the eviction hook) and reports
  /// stale. Hits refresh LRU recency.
  Lookup lookup(const K& key, std::uint64_t version) {
    const std::scoped_lock lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) return {};
    if (it->second.version != version) {
      drop_locked(it);
      return {std::nullopt, true};
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return {it->second.value, false};
  }

  /// Inserts or replaces the entry for `key` with the digest of the inputs
  /// that produced `value`; evicts the least-recently-used entry beyond
  /// capacity.
  void put(const K& key, V value, std::uint64_t version) {
    const std::scoped_lock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      it->second.version = version;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(value), version, lru_.begin()});
    while (map_.size() > capacity_) {
      const auto victim = map_.find(lru_.back());
      drop_locked(victim);
      record_eviction(name_);
    }
  }

  /// Drops one entry (no-op when absent); runs the eviction hook.
  void invalidate(const K& key) {
    const std::scoped_lock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) drop_locked(it);
  }

  void clear() {
    const std::scoped_lock lock(mu_);
    while (!map_.empty()) drop_locked(map_.begin());
  }

  /// Called (under the cache lock) whenever an entry leaves the cache —
  /// capacity eviction, staleness drop, invalidate, clear. Must not
  /// re-enter the cache.
  void set_eviction_hook(std::function<void(const K&, const V&)> hook) {
    const std::scoped_lock lock(mu_);
    on_evict_ = std::move(hook);
  }

  std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return map_.size();
  }
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  /// Records one taxonomy outcome against this cache's metric series.
  void record(CacheOutcome outcome) const { record_outcome(name_, outcome); }

 private:
  struct Entry {
    V value;
    std::uint64_t version = 0;
    typename std::list<K>::iterator lru_it;
  };

  /// Caller holds mu_.
  void drop_locked(typename std::map<K, Entry>::iterator it) {
    if (on_evict_) on_evict_(it->first, it->second.value);
    lru_.erase(it->second.lru_it);
    map_.erase(it);
  }

  mutable std::mutex mu_;
  std::string name_;
  std::size_t capacity_;
  std::list<K> lru_;  ///< front = most recently used
  std::map<K, Entry> map_;
  std::function<void(const K&, const V&)> on_evict_;
};

}  // namespace pmware::cache
