#include "cache/content_cache.hpp"

#include "telemetry/metrics.hpp"

namespace pmware::cache {

const char* to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::LocalHit:
      return "local_hit";
    case CacheOutcome::CloudHit:
      return "cloud_hit";
    case CacheOutcome::Recompute:
      return "recompute";
    case CacheOutcome::Miss:
      return "miss";
  }
  return "unknown";
}

void record_outcome(const std::string& cache_name, CacheOutcome outcome) {
  telemetry::registry()
      .counter("cache_outcomes_total",
               {{"cache", cache_name}, {"outcome", to_string(outcome)}},
               "Content-cache lookups by ccache-style outcome taxonomy")
      .inc();
}

void record_eviction(const std::string& cache_name) {
  telemetry::registry()
      .counter("cache_evictions_total", {{"cache", cache_name}},
               "Content-cache entries evicted by the LRU capacity bound")
      .inc();
}

}  // namespace pmware::cache
