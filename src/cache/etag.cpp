#include "cache/etag.hpp"

#include <array>
#include <cstdint>

#include "cache/digest.hpp"

namespace pmware::cache {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Opaque-tag payload of one entity tag: weak prefix and surrounding
/// quotes stripped. "W/\"abc\"" -> abc, "\"abc\"" -> abc, "abc" -> abc.
std::string_view opaque_tag(std::string_view tag) {
  tag = trim(tag);
  if (tag.size() >= 2 && (tag[0] == 'W' || tag[0] == 'w') && tag[1] == '/') {
    tag.remove_prefix(2);
    tag = trim(tag);
  }
  if (tag.size() >= 2 && tag.front() == '"' && tag.back() == '"') {
    tag = tag.substr(1, tag.size() - 2);
  }
  return tag;
}

}  // namespace

std::string strong_etag(std::string_view body) {
  const std::uint64_t h = fnv1a(body);
  static constexpr char kHex[] = "0123456789abcdef";
  std::array<char, 16> hex;
  for (std::size_t i = 0; i < hex.size(); ++i) {
    hex[i] = kHex[(h >> (60 - 4 * i)) & 0xF];
  }
  std::string out;
  out.reserve(hex.size() + 2);
  out.push_back('"');
  out.append(hex.data(), hex.size());
  out.push_back('"');
  return out;
}

bool etag_matches(std::string_view if_none_match, std::string_view etag) {
  if (trim(if_none_match).empty()) return false;
  const std::string_view target = opaque_tag(etag);
  std::string_view rest = if_none_match;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view candidate =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::string_view trimmed = trim(candidate);
    if (trimmed == "*") return true;
    if (!trimmed.empty() && opaque_tag(trimmed) == target) return true;
  }
  return false;
}

}  // namespace pmware::cache
