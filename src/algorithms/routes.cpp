#include "algorithms/routes.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "geo/polyline.hpp"

namespace pmware::algorithms {

double gps_route_similarity(const GpsRoute& a, const GpsRoute& b,
                            double tolerance_m) {
  if (a.points.size() < 2 || b.points.size() < 2) return 0.0;
  auto coverage = [tolerance_m](const std::vector<geo::LatLng>& pts,
                                const std::vector<geo::LatLng>& line) {
    std::size_t near = 0;
    for (const auto& p : pts)
      if (geo::distance_to_polyline_m(p, line) <= tolerance_m) ++near;
    return static_cast<double>(near) / static_cast<double>(pts.size());
  };
  return std::min(coverage(a.points, b.points), coverage(b.points, a.points));
}

namespace {

/// Length of the longest common subsequence of two cell sequences.
std::size_t lcs_length(const std::vector<world::CellId>& a,
                       const std::vector<world::CellId>& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::size_t> prev(m + 1, 0);
  std::vector<std::size_t> cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) cur[j] = prev[j - 1] + 1;
      else cur[j] = std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<world::CellId> dedup_consecutive(const std::vector<world::CellId>& seq) {
  std::vector<world::CellId> out;
  for (const auto& c : seq)
    if (out.empty() || !(out.back() == c)) out.push_back(c);
  return out;
}

}  // namespace

double cell_route_similarity(const CellRoute& a, const CellRoute& b) {
  if (a.cells.empty() || b.cells.empty()) return 0.0;
  const std::set<world::CellId> sa(a.cells.begin(), a.cells.end());
  const std::set<world::CellId> sb(b.cells.begin(), b.cells.end());
  std::size_t inter = 0;
  for (const auto& c : sa) inter += sb.count(c);
  const double jaccard = static_cast<double>(inter) /
                         static_cast<double>(sa.size() + sb.size() - inter);

  const auto da = dedup_consecutive(a.cells);
  const auto db = dedup_consecutive(b.cells);
  const double order =
      static_cast<double>(lcs_length(da, db)) /
      static_cast<double>(std::max(da.size(), db.size()));
  return jaccard * 0.5 + order * 0.5;
}

RouteStore::RouteStore(RouteStoreConfig config) : config_(config) {}

bool RouteStore::same_route(const RouteObservation& a,
                            const RouteObservation& b) const {
  if (a.from_place != b.from_place || a.to_place != b.to_place) return false;
  // Either representation may be sparse (a journey may yield only a couple
  // of fixes or a short cell chain), so accept whichever signal matches.
  if (a.gps.points.size() >= 2 && b.gps.points.size() >= 2 &&
      gps_route_similarity(a.gps, b.gps) >= config_.gps_similarity_threshold)
    return true;
  if (!a.cells.cells.empty() && !b.cells.cells.empty() &&
      cell_route_similarity(a.cells, b.cells) >=
          config_.cell_similarity_threshold)
    return true;
  return false;
}

std::size_t RouteStore::add(RouteObservation obs) {
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    if (same_route(routes_[i].representative, obs)) {
      ++routes_[i].use_count;
      return i;
    }
  }
  routes_.push_back({std::move(obs), 1});
  return routes_.size() - 1;
}

std::vector<std::size_t> RouteStore::between(std::size_t from_place,
                                             std::size_t to_place) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    const auto& r = routes_[i].representative;
    if (r.from_place == from_place && r.to_place == to_place) out.push_back(i);
  }
  std::sort(out.begin(), out.end(), [this](std::size_t x, std::size_t y) {
    return routes_[x].use_count > routes_[y].use_count;
  });
  return out;
}

}  // namespace pmware::algorithms
