// Place signatures (paper §2.1.1): a place is identified by a set of cell
// ids, a set of WiFi APs, or a GPS coordinate pair —
//   P = {c1..c5} or {w1..w4} or {lat, lng}.
#pragma once

#include <set>
#include <string>
#include <variant>

#include "geo/latlng.hpp"
#include "world/ids.hpp"

namespace pmware::algorithms {

/// Signature built by GCA from GSM cell clustering.
struct CellSignature {
  std::set<world::CellId> cells;
  bool operator==(const CellSignature&) const = default;
};

/// Signature built by the WiFi detector (SensLoc-style).
struct WifiSignature {
  std::set<world::Bssid> aps;
  bool operator==(const WifiSignature&) const = default;
};

/// Signature built by GPS clustering (Kang et al.).
struct GpsSignature {
  geo::LatLng center;
  double radius_m = 75;
  bool operator==(const GpsSignature&) const = default;
};

using PlaceSignature = std::variant<CellSignature, WifiSignature, GpsSignature>;

/// Tanimoto (Jaccard) coefficient between two sets: |A∩B| / |A∪B|.
/// Returns 0 when both sets are empty.
template <typename T>
double tanimoto(const std::set<T>& a, const std::set<T>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) ++ia;
    else if (*ib < *ia) ++ib;
    else { ++inter; ++ia; ++ib; }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Overlap (Szymkiewicz-Simpson) coefficient: |A∩B| / min(|A|,|B|).
/// Better suited than Tanimoto for matching a small stored fingerprint
/// against a scan that may contain extra transient APs.
template <typename T>
double overlap_coefficient(const std::set<T>& a, const std::set<T>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) ++ia;
    else if (*ib < *ia) ++ib;
    else { ++inter; ++ia; ++ib; }
  }
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

/// Whether two signatures of the same kind describe the same place.
/// Cell/WiFi signatures match on Tanimoto similarity; GPS on center distance.
bool signatures_match(const PlaceSignature& a, const PlaceSignature& b,
                      double set_similarity_threshold = 0.45);

std::string describe(const PlaceSignature& sig);

}  // namespace pmware::algorithms
