// WiFi-based place discovery in the style of SensLoc [Kim et al., SenSys'10],
// as used by PMWare (paper §2.2.2): a Tanimoto-coefficient similarity over
// WiFi fingerprints finds unique place signatures and detects subsequent
// arrivals and departures.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "algorithms/signature.hpp"
#include "sensing/readings.hpp"
#include "util/simtime.hpp"

namespace pmware::algorithms {

struct SensLocConfig {
  /// Consecutive scans at least this similar indicate the user is dwelling.
  /// Kept permissive: with small AP sets a single missed beacon or a street
  /// AP drifting in drops Tanimoto to 0.5 even when stationary.
  double stationary_similarity = 0.45;
  /// Scan-vs-signature similarity that still counts as "at this place".
  double match_similarity = 0.40;
  /// Number of consecutive stable scans before an arrival is declared.
  int scans_to_enter = 3;
  /// Number of consecutive non-empty, non-matching scans before a departure
  /// (empty scans are ignored — they carry no evidence).
  int scans_to_exit = 3;
  /// Visits shorter than this are dropped from the visit log.
  SimDuration min_visit_dwell = minutes(10);
  /// If no scan has matched the current place for this long, the visit is
  /// closed at the last matching scan: the user has left for somewhere
  /// without WiFi evidence (e.g. a home with no AP), and the fingerprint
  /// must not stay "current" until it happens to match again days later.
  SimDuration max_match_gap = hours(2);
};

/// Streaming WiFi place detector. Feed it every WiFi scan; it maintains a
/// registry of discovered WifiSignatures and a visit log.
class WifiPlaceDetector {
 public:
  explicit WifiPlaceDetector(SensLocConfig config = {});

  struct Event {
    enum class Kind { Arrival, Departure } kind;
    std::size_t place_index;
    SimTime t;
  };

  /// Processes one scan; returns arrival/departure events, if any.
  std::vector<Event> on_scan(const sensing::WifiScan& scan);

  /// Flushes the open visit at end of stream.
  std::vector<Event> finish(SimTime t);

  const std::vector<WifiSignature>& places() const { return places_; }

  struct Visit {
    std::size_t place_index = 0;
    TimeWindow window;
  };
  /// Completed visits of at least min_visit_dwell.
  const std::vector<Visit>& visits() const { return visits_; }

  /// Index of the place currently occupied, if any.
  std::optional<std::size_t> current_place() const { return current_; }

 private:
  static std::set<world::Bssid> to_set(const sensing::WifiScan& scan);
  std::optional<std::size_t> match_registry(const std::set<world::Bssid>& aps) const;
  void record_visit(std::size_t place, SimTime begin, SimTime end);

  SensLocConfig config_;
  std::vector<WifiSignature> places_;
  std::vector<Visit> visits_;

  // --- state machine ---
  std::optional<std::size_t> current_;   ///< occupied place, if any
  SimTime arrival_t_ = 0;
  SimTime last_match_t_ = 0;
  int miss_streak_ = 0;
  // While moving: run of mutually-similar scans building toward an arrival.
  std::vector<std::set<world::Bssid>> stable_run_;
  SimTime stable_start_ = 0;
};

}  // namespace pmware::algorithms
