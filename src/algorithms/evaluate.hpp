// Place-discovery evaluation, mirroring the paper's §4 deployment metrics:
// each evaluable ground-truth place is classified as correctly discovered,
// merged (one discovered place covers several true places), or divided
// (several discovered places cover one true place).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::algorithms {

/// A ground-truth stay (from the diary / mobility trace).
struct TruthVisit {
  world::PlaceId place = world::kNoPlace;
  TimeWindow window;
};

/// A stay reported by a discovery algorithm, keyed by its discovered-place
/// index (algorithm-local).
struct ReportedVisit {
  std::size_t place_index = 0;
  TimeWindow window;
};

enum class PlaceOutcome { Correct, Merged, Divided, Missed };
const char* to_string(PlaceOutcome o);

struct EvalConfig {
  /// Minimum overlapped time for a truth place and a discovered place to be
  /// considered linked.
  SimDuration min_link_overlap = minutes(15);
  /// Truth visits shorter than this are not evaluable.
  SimDuration min_truth_dwell = minutes(10);
};

struct PlaceEvaluation {
  /// Outcome per evaluable ground-truth place.
  std::map<world::PlaceId, PlaceOutcome> outcomes;

  std::size_t evaluable() const { return outcomes.size(); }
  std::size_t count(PlaceOutcome o) const;
  /// Fraction of *detected* places (non-missed) with the given outcome —
  /// the denominator the paper uses for its 79/14.5/6.4% split.
  double fraction_of_detected(PlaceOutcome o) const;
  /// Fraction over all evaluable places (missed included).
  double fraction_of_evaluable(PlaceOutcome o) const;

  std::string summary() const;
};

/// Links truth and discovered places by accumulated visit-window overlap and
/// classifies every evaluable truth place.
PlaceEvaluation evaluate_places(std::span<const TruthVisit> truth,
                                std::span<const ReportedVisit> reported,
                                const EvalConfig& config = {});

/// Outcome for a *discovered* place — the paper's §4 denominator is the set
/// of discovered places the participants tagged (and that have departure
/// info), classified as correct / merged / divided.
enum class DiscoveredOutcome { Correct, Merged, Divided, Spurious };
const char* to_string(DiscoveredOutcome o);

struct DiscoveredEvaluation {
  /// Outcome per discovered-place index (only those with >= 1 reported
  /// visit appear).
  std::map<std::size_t, DiscoveredOutcome> outcomes;

  std::size_t count(DiscoveredOutcome o) const;
  /// Fraction over non-spurious discovered places.
  double fraction(DiscoveredOutcome o) const;
  std::string summary() const;
};

/// Classifies every discovered place by its ground-truth coverage.
DiscoveredEvaluation evaluate_discovered(std::span<const TruthVisit> truth,
                                         std::span<const ReportedVisit> reported,
                                         const EvalConfig& config = {});

}  // namespace pmware::algorithms
