// GCA: GSM-based place discovery by clustering Cell IDs (paper §2.2.2,
// algorithm from the authors' PlaceMap work [26]).
//
// A phone's serving cell changes even while the user is stationary — network
// load, signal fading, and 2G/3G handoff cause the "oscillating effect".
// GCA models it with an undirected weighted *movement graph*: nodes are cell
// ids, an edge counts how often the serving cell flipped directly between
// two cells. While dwelling at a place the same few cells flip back and
// forth many times (heavy edges); while travelling each transition happens
// once or twice (light edges). Clustering keeps only strong edges, and each
// resulting component of cells is a place signature.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/signature.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::algorithms {

struct GcaConfig {
  /// Readings farther apart than this are not treated as adjacent (sensing
  /// gaps, device off).
  SimDuration max_transition_gap = minutes(4);
  /// An edge joins a cluster only after at least this many *oscillation
  /// events*: A->B immediately followed by B->A within oscillation_window.
  /// Raw transition counts cannot be used — a daily commute repeats the same
  /// A->B->C chain every day and would weld travel chains into the home and
  /// work clusters; only a bounce back-and-forth is evidence of stationary
  /// oscillation.
  int min_edge_weight = 3;
  /// Maximum delay for the return transition of an oscillation event.
  SimDuration oscillation_window = minutes(10);
  /// Cells dwelt on for at least this long can seed a single-cell cluster
  /// even without strong edges (quiet areas with one dominant tower).
  SimDuration min_single_cell_dwell = hours(1);
  /// Minimum accumulated dwell for a cluster to become a place.
  SimDuration min_cluster_dwell = minutes(20);
  /// Minimum stay for a visit to be reported (prior work: 10 min).
  SimDuration min_visit_dwell = minutes(10);
  /// A visit survives excursions/no-cluster gaps up to this long.
  SimDuration visit_gap_tolerance = minutes(6);
};

/// One timestamped serving-cell observation.
struct CellObservation {
  SimTime t = 0;
  world::CellId cell;
};

/// The undirected weighted movement graph.
class MovementGraph {
 public:
  /// Feeds the next serving-cell observation (must be time-ordered).
  /// Uses `config.max_transition_gap` and `config.oscillation_window`.
  void observe(const CellObservation& obs, const GcaConfig& config);

  const std::map<world::CellId, SimDuration>& dwell() const { return dwell_; }
  /// Raw transition counts per unordered cell pair.
  const std::map<std::pair<world::CellId, world::CellId>, int>& edges() const {
    return edges_;
  }
  /// Oscillation-event counts per unordered cell pair (A->B->A bounces).
  const std::map<std::pair<world::CellId, world::CellId>, int>& oscillations()
      const {
    return oscillations_;
  }
  /// Total transitions touching `cell` (its weighted degree).
  int transitions(const world::CellId& cell) const;
  std::size_t node_count() const { return dwell_.size(); }

 private:
  struct Transition {
    world::CellId from;
    world::CellId to;
    SimTime t = 0;
  };

  std::optional<CellObservation> last_;
  std::optional<Transition> last_transition_;
  std::map<world::CellId, SimDuration> dwell_;
  std::map<std::pair<world::CellId, world::CellId>, int> edges_;
  std::map<std::pair<world::CellId, world::CellId>, int> oscillations_;
  std::map<world::CellId, int> transitions_;
};

/// A cluster of oscillating cells = one discovered place.
struct CellCluster {
  CellSignature signature;
  SimDuration total_dwell = 0;
};

/// A stay at a discovered place, as reconstructed from the cell stream.
struct DiscoveredVisit {
  std::size_t place_index = 0;  ///< index into GcaResult::places
  TimeWindow window;
};

struct GcaResult {
  std::vector<CellCluster> places;
  std::vector<DiscoveredVisit> visits;
  /// Mapping from each clustered cell to its place index.
  std::map<world::CellId, std::size_t> cell_to_place;
};

/// Batch GCA over a time-ordered observation log. This is the computation
/// the mobile service offloads to the cloud instance (paper §2.3.1).
GcaResult run_gca(std::span<const CellObservation> observations,
                  const GcaConfig& config = {});

/// Incremental visit tracker: once signatures exist (e.g. from an offloaded
/// GCA run), the mobile service tracks arrivals/departures online without
/// re-clustering (paper §2.3.1: "after discovery of place signatures, mobile
/// service can track user's visit in those places").
class CellVisitTracker {
 public:
  CellVisitTracker(std::map<world::CellId, std::size_t> cell_to_place,
                   const GcaConfig& config = {});

  struct Event {
    enum class Kind { Arrival, Departure } kind;
    std::size_t place_index;
    SimTime t;
  };

  /// Feeds one observation; returns zero or more arrival/departure events.
  std::vector<Event> observe(const CellObservation& obs);

  /// Flushes any open visit at end of stream.
  std::vector<Event> finish(SimTime t);

  /// Place currently occupied, if any.
  std::optional<std::size_t> current_place() const { return current_; }

 private:
  std::map<world::CellId, std::size_t> cell_to_place_;
  GcaConfig config_;
  std::optional<std::size_t> current_;
  SimTime start_ = 0;
  SimTime last_in_ = 0;
  bool announced_ = false;

  std::vector<Event> close_if_needed(SimTime t);
};

/// Incremental GCA: persistent clustering state across recluster passes.
///
/// The engine's GSM log is append-only, so each pass only needs to feed the
/// *new suffix* into the movement graph instead of replaying the whole
/// history (the graph is an online structure already). Clustering the graph
/// is cheap — it is bounded by the number of distinct cells, not by trace
/// length. Visit reconstruction is also continued incrementally when the
/// cell→place mapping is unchanged since the last pass; when clustering
/// shifts the mapping (new place discovered, clusters merged) the tracker
/// falls back to an exact full replay, so every pass returns byte-identical
/// results to a from-scratch run_gca() over the same log.
///
/// Not thread-safe; each owner (inference engine, per-user cloud state)
/// keeps its own instance.
class GcaState {
 public:
  explicit GcaState(GcaConfig config = {});

  /// Reclusters over `observations`, which must extend the log seen by the
  /// previous run() call (append-only). A shrunk or rewritten log is
  /// detected and triggers an exact full rebuild.
  GcaResult run(std::span<const CellObservation> observations);

  std::size_t passes() const { return passes_; }
  /// Passes that reused graph + visit state (no full replay).
  std::size_t incremental_passes() const { return incremental_passes_; }
  bool last_pass_incremental() const { return last_incremental_; }

 private:
  void reset_state();

  GcaConfig config_;
  MovementGraph graph_;
  std::size_t fed_ = 0;      ///< observations already in the graph
  SimTime last_fed_t_ = 0;   ///< timestamp of the last fed observation
  /// Cell→place mapping of the previous pass; the visit tracker continues
  /// incrementally only while it is unchanged.
  std::map<world::CellId, std::size_t> mapping_;
  std::optional<CellVisitTracker> tracker_;
  /// Arrival/departure events accumulated by the persistent tracker.
  std::vector<CellVisitTracker::Event> events_;
  std::size_t passes_ = 0;
  std::size_t incremental_passes_ = 0;
  bool last_incremental_ = false;
};

}  // namespace pmware::algorithms
