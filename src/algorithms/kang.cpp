#include "algorithms/kang.hpp"

namespace pmware::algorithms {

GpsPlaceClusterer::GpsPlaceClusterer(KangConfig config) : config_(config) {}

std::vector<GpsPlaceClusterer::Event> GpsPlaceClusterer::commit_pending(
    SimTime end) {
  std::vector<Event> events;
  const bool long_enough = !pending_points_.empty() &&
                           pending_last_ - pending_start_ >= config_.min_dwell;
  if (pending_place_) {
    // Arrival already fired; close the visit.
    events.push_back({Event::Kind::Departure, *pending_place_,
                      std::min(end, pending_last_)});
    visits_.push_back(
        {*pending_place_, TimeWindow{pending_start_, std::min(end, pending_last_)}});
  } else if (long_enough) {
    // Cluster qualified but never fired (stream ended right at threshold).
    std::size_t place = places_.size();
    bool found = false;
    for (std::size_t i = 0; i < places_.size(); ++i) {
      if (geo::distance_m(places_[i].center, pending_centroid_) <=
          config_.merge_distance_m) {
        place = i;
        found = true;
        break;
      }
    }
    if (!found) places_.push_back(GpsSignature{pending_centroid_,
                                               config_.cluster_radius_m});
    events.push_back({Event::Kind::Arrival, place, pending_start_});
    events.push_back({Event::Kind::Departure, place, pending_last_});
    visits_.push_back({place, TimeWindow{pending_start_, pending_last_}});
  }
  pending_points_.clear();
  pending_place_.reset();
  return events;
}

std::vector<GpsPlaceClusterer::Event> GpsPlaceClusterer::on_fix(
    const sensing::GpsFix& fix) {
  std::vector<Event> events;
  if (!fix.valid) return events;

  if (!pending_points_.empty() &&
      fix.t - pending_last_ > config_.max_fix_gap) {
    auto evs = commit_pending(pending_last_);
    events.insert(events.end(), evs.begin(), evs.end());
  }

  if (pending_points_.empty()) {
    pending_points_.push_back(fix.position);
    pending_centroid_ = fix.position;
    pending_start_ = pending_last_ = fix.t;
    return events;
  }

  if (geo::distance_m(fix.position, pending_centroid_) <=
      config_.cluster_radius_m) {
    pending_points_.push_back(fix.position);
    pending_centroid_ = geo::centroid(pending_points_);
    pending_last_ = fix.t;

    // Fire the (late) arrival as soon as the dwell threshold is crossed.
    if (!pending_place_ &&
        pending_last_ - pending_start_ >= config_.min_dwell) {
      std::size_t place = places_.size();
      bool found = false;
      for (std::size_t i = 0; i < places_.size(); ++i) {
        if (geo::distance_m(places_[i].center, pending_centroid_) <=
            config_.merge_distance_m) {
          place = i;
          found = true;
          break;
        }
      }
      if (!found)
        places_.push_back(GpsSignature{pending_centroid_,
                                       config_.cluster_radius_m});
      pending_place_ = place;
      events.push_back({Event::Kind::Arrival, place, pending_start_});
    }
    return events;
  }

  // Left the candidate's radius: commit or discard, then restart from here.
  auto evs = commit_pending(fix.t);
  events.insert(events.end(), evs.begin(), evs.end());
  pending_points_.push_back(fix.position);
  pending_centroid_ = fix.position;
  pending_start_ = pending_last_ = fix.t;
  return events;
}

std::vector<GpsPlaceClusterer::Event> GpsPlaceClusterer::finish(SimTime t) {
  return commit_pending(t);
}

}  // namespace pmware::algorithms
