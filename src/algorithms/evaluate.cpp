#include "algorithms/evaluate.hpp"

#include <algorithm>
#include <set>

#include "util/strfmt.hpp"

namespace pmware::algorithms {

const char* to_string(PlaceOutcome o) {
  switch (o) {
    case PlaceOutcome::Correct: return "correct";
    case PlaceOutcome::Merged: return "merged";
    case PlaceOutcome::Divided: return "divided";
    case PlaceOutcome::Missed: return "missed";
  }
  return "?";
}

std::size_t PlaceEvaluation::count(PlaceOutcome o) const {
  std::size_t n = 0;
  for (const auto& [place, outcome] : outcomes)
    if (outcome == o) ++n;
  return n;
}

double PlaceEvaluation::fraction_of_detected(PlaceOutcome o) const {
  const std::size_t detected = outcomes.size() - count(PlaceOutcome::Missed);
  if (detected == 0) return 0.0;
  if (o == PlaceOutcome::Missed) return 0.0;
  return static_cast<double>(count(o)) / static_cast<double>(detected);
}

double PlaceEvaluation::fraction_of_evaluable(PlaceOutcome o) const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(count(o)) / static_cast<double>(outcomes.size());
}

std::string PlaceEvaluation::summary() const {
  return strfmt(
      "evaluable %zu: correct %zu (%.2f%%), merged %zu (%.2f%%), divided %zu "
      "(%.2f%%), missed %zu",
      evaluable(), count(PlaceOutcome::Correct),
      100 * fraction_of_detected(PlaceOutcome::Correct),
      count(PlaceOutcome::Merged),
      100 * fraction_of_detected(PlaceOutcome::Merged),
      count(PlaceOutcome::Divided),
      100 * fraction_of_detected(PlaceOutcome::Divided),
      count(PlaceOutcome::Missed));
}

const char* to_string(DiscoveredOutcome o) {
  switch (o) {
    case DiscoveredOutcome::Correct: return "correct";
    case DiscoveredOutcome::Merged: return "merged";
    case DiscoveredOutcome::Divided: return "divided";
    case DiscoveredOutcome::Spurious: return "spurious";
  }
  return "?";
}

std::size_t DiscoveredEvaluation::count(DiscoveredOutcome o) const {
  std::size_t n = 0;
  for (const auto& [idx, outcome] : outcomes)
    if (outcome == o) ++n;
  return n;
}

double DiscoveredEvaluation::fraction(DiscoveredOutcome o) const {
  const std::size_t denom = outcomes.size() - count(DiscoveredOutcome::Spurious);
  if (denom == 0 || o == DiscoveredOutcome::Spurious) return 0.0;
  return static_cast<double>(count(o)) / static_cast<double>(denom);
}

std::string DiscoveredEvaluation::summary() const {
  return strfmt(
      "discovered %zu: correct %zu (%.2f%%), merged %zu (%.2f%%), divided %zu "
      "(%.2f%%), spurious %zu",
      outcomes.size(), count(DiscoveredOutcome::Correct),
      100 * fraction(DiscoveredOutcome::Correct),
      count(DiscoveredOutcome::Merged), 100 * fraction(DiscoveredOutcome::Merged),
      count(DiscoveredOutcome::Divided),
      100 * fraction(DiscoveredOutcome::Divided),
      count(DiscoveredOutcome::Spurious));
}

namespace {

struct LinkMaps {
  std::map<world::PlaceId, std::set<std::size_t>> truth_to_disc;
  std::map<std::size_t, std::set<world::PlaceId>> disc_to_truth;
  std::set<world::PlaceId> evaluable_truth;
  std::set<std::size_t> seen_discovered;
};

LinkMaps build_links(std::span<const TruthVisit> truth,
                     std::span<const ReportedVisit> reported,
                     const EvalConfig& config) {
  LinkMaps links;
  std::map<std::pair<world::PlaceId, std::size_t>, SimDuration> overlap;
  for (const auto& rv : reported) links.seen_discovered.insert(rv.place_index);
  for (const auto& tv : truth) {
    if (tv.window.length() < config.min_truth_dwell) continue;
    links.evaluable_truth.insert(tv.place);
    for (const auto& rv : reported) {
      const SimDuration o = tv.window.overlap_length(rv.window);
      auto& best = overlap[{tv.place, rv.place_index}];
      best = std::max(best, o);
    }
  }
  for (const auto& [key, o] : overlap) {
    if (o < config.min_link_overlap) continue;
    links.truth_to_disc[key.first].insert(key.second);
    links.disc_to_truth[key.second].insert(key.first);
  }
  return links;
}

}  // namespace

DiscoveredEvaluation evaluate_discovered(std::span<const TruthVisit> truth,
                                         std::span<const ReportedVisit> reported,
                                         const EvalConfig& config) {
  const LinkMaps links = build_links(truth, reported, config);
  DiscoveredEvaluation eval;
  for (const std::size_t disc : links.seen_discovered) {
    const auto it = links.disc_to_truth.find(disc);
    if (it == links.disc_to_truth.end() || it->second.empty()) {
      eval.outcomes[disc] = DiscoveredOutcome::Spurious;
      continue;
    }
    if (it->second.size() >= 2) {
      eval.outcomes[disc] = DiscoveredOutcome::Merged;
      continue;
    }
    const world::PlaceId t = *it->second.begin();
    eval.outcomes[disc] = links.truth_to_disc.at(t).size() >= 2
                              ? DiscoveredOutcome::Divided
                              : DiscoveredOutcome::Correct;
  }
  return eval;
}

PlaceEvaluation evaluate_places(std::span<const TruthVisit> truth,
                                std::span<const ReportedVisit> reported,
                                const EvalConfig& config) {
  // Best single-visit overlap between each (truth place, discovered place)
  // pair: a link means one whole stay was recognized, so boundary slivers
  // repeated daily never accumulate into a spurious link.
  std::map<std::pair<world::PlaceId, std::size_t>, SimDuration> overlap;
  std::set<world::PlaceId> evaluable;
  for (const auto& tv : truth) {
    if (tv.window.length() < config.min_truth_dwell) continue;
    evaluable.insert(tv.place);
    for (const auto& rv : reported) {
      const SimDuration o = tv.window.overlap_length(rv.window);
      auto& best = overlap[{tv.place, rv.place_index}];
      best = std::max(best, o);
    }
  }

  // Links above the threshold, in both directions.
  std::map<world::PlaceId, std::set<std::size_t>> truth_to_disc;
  std::map<std::size_t, std::set<world::PlaceId>> disc_to_truth;
  for (const auto& [key, o] : overlap) {
    if (o < config.min_link_overlap) continue;
    truth_to_disc[key.first].insert(key.second);
    disc_to_truth[key.second].insert(key.first);
  }

  PlaceEvaluation eval;
  for (const world::PlaceId place : evaluable) {
    const auto it = truth_to_disc.find(place);
    if (it == truth_to_disc.end() || it->second.empty()) {
      eval.outcomes[place] = PlaceOutcome::Missed;
      continue;
    }
    if (it->second.size() >= 2) {
      eval.outcomes[place] = PlaceOutcome::Divided;
      continue;
    }
    const std::size_t disc = *it->second.begin();
    eval.outcomes[place] = disc_to_truth.at(disc).size() >= 2
                               ? PlaceOutcome::Merged
                               : PlaceOutcome::Correct;
  }
  return eval;
}

}  // namespace pmware::algorithms
