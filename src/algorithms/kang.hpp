// GPS place extraction after Kang et al. [WMASH'04], the algorithm PMWare
// uses for clustering GPS coordinates into physical places (paper §2.2.2):
// time-based clustering with a spatial threshold — consecutive fixes within
// `cluster_radius_m` of the running centroid belong to one candidate; the
// candidate becomes a place once the stay exceeds `min_dwell`.
#pragma once

#include <optional>
#include <vector>

#include "algorithms/signature.hpp"
#include "sensing/readings.hpp"
#include "util/simtime.hpp"

namespace pmware::algorithms {

struct KangConfig {
  double cluster_radius_m = 100;
  SimDuration min_dwell = minutes(10);
  /// New clusters within this distance of an existing place are the same
  /// place (re-visit).
  double merge_distance_m = 120;
  /// A gap between fixes longer than this breaks the pending cluster
  /// (GPS was off / no fix indoors).
  SimDuration max_fix_gap = minutes(20);
};

class GpsPlaceClusterer {
 public:
  explicit GpsPlaceClusterer(KangConfig config = {});

  struct Event {
    enum class Kind { Arrival, Departure } kind;
    std::size_t place_index;
    SimTime t;
  };

  struct Visit {
    std::size_t place_index = 0;
    TimeWindow window;
  };

  /// Feeds one fix (invalid fixes are ignored); returns completed-visit
  /// events. Note: Kang's algorithm is retrospective — the arrival is only
  /// known once the dwell threshold passes, so Arrival events fire late.
  std::vector<Event> on_fix(const sensing::GpsFix& fix);

  /// Flushes the pending cluster at end of stream.
  std::vector<Event> finish(SimTime t);

  const std::vector<GpsSignature>& places() const { return places_; }
  const std::vector<Visit>& visits() const { return visits_; }

 private:
  std::vector<Event> commit_pending(SimTime end);

  KangConfig config_;
  std::vector<GpsSignature> places_;
  std::vector<Visit> visits_;

  // Pending candidate cluster.
  std::vector<geo::LatLng> pending_points_;
  geo::LatLng pending_centroid_;
  SimTime pending_start_ = 0;
  SimTime pending_last_ = 0;
  /// Set once the pending cluster crossed min_dwell and fired its Arrival.
  std::optional<std::size_t> pending_place_;
};

}  // namespace pmware::algorithms
