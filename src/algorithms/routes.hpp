// Route representation and discovery (paper §2.1.2): the path between two
// places is a series of timestamped GPS coordinates (high-accuracy mode) or
// time-ordered cell ids (low-accuracy mode). The cloud instance hosts route
// similarity so repeated commutes collapse into one canonical route with a
// usage frequency (§2.3.3 "optional parameters such as route usage
// frequency").
#pragma once

#include <cstddef>
#include <vector>

#include "geo/latlng.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::algorithms {

/// R = {g1..gn}, gi = (t, lat, lng).
struct GpsRoute {
  std::vector<SimTime> times;
  std::vector<geo::LatLng> points;
};

/// R = {c1..cn} with timestamps.
struct CellRoute {
  std::vector<SimTime> times;
  std::vector<world::CellId> cells;
};

/// A journey between two discovered places, in either representation.
struct RouteObservation {
  std::size_t from_place = 0;
  std::size_t to_place = 0;
  TimeWindow window;
  GpsRoute gps;    ///< may be empty in low-accuracy mode
  CellRoute cells; ///< may be empty in high-accuracy mode
};

/// Similarity in [0, 1] between two GPS routes: the symmetric fraction of
/// points of each route lying within `tolerance_m` of the other. Returns 0
/// if either route has fewer than 2 points.
double gps_route_similarity(const GpsRoute& a, const GpsRoute& b,
                            double tolerance_m = 150);

/// Similarity in [0, 1] between two cell routes: Jaccard over cell sets,
/// discounted by direction agreement (shared cells appearing in the same
/// relative order).
double cell_route_similarity(const CellRoute& a, const CellRoute& b);

/// Canonical route with usage statistics.
struct CanonicalRoute {
  RouteObservation representative;
  std::size_t use_count = 1;
};

struct RouteStoreConfig {
  double gps_similarity_threshold = 0.6;
  double cell_similarity_threshold = 0.5;
};

/// Deduplicating store: observations between the same place pair merge into
/// canonical routes by similarity.
class RouteStore {
 public:
  explicit RouteStore(RouteStoreConfig config = {});

  /// Adds an observation; returns the index of the canonical route it joined
  /// (possibly newly created).
  std::size_t add(RouteObservation obs);

  const std::vector<CanonicalRoute>& routes() const { return routes_; }

  /// Replaces the store wholesale (checkpoint restore): indices, the
  /// representatives, and use counts round-trip, so post-restore add()
  /// calls merge exactly as they would have.
  void restore(std::vector<CanonicalRoute> routes) {
    routes_ = std::move(routes);
  }

  /// Canonical routes between a place pair, most used first.
  std::vector<std::size_t> between(std::size_t from_place,
                                   std::size_t to_place) const;

 private:
  bool same_route(const RouteObservation& a, const RouteObservation& b) const;

  RouteStoreConfig config_;
  std::vector<CanonicalRoute> routes_;
};

}  // namespace pmware::algorithms
