#include "algorithms/gca.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::algorithms {

void MovementGraph::observe(const CellObservation& obs,
                            const GcaConfig& config) {
  if (last_ && obs.t < last_->t)
    throw std::invalid_argument("MovementGraph: observations out of order");
  if (last_) {
    const SimDuration dt = obs.t - last_->t;
    if (dt <= config.max_transition_gap) {
      // Dwell accrues to the cell we were on during [last_.t, obs.t).
      dwell_[last_->cell] += dt;
      if (last_->cell != obs.cell) {
        // Note: value pair, not std::minmax (which returns dangling-prone
        // reference pairs).
        const std::pair<world::CellId, world::CellId> key =
            last_->cell < obs.cell ? std::pair{last_->cell, obs.cell}
                                   : std::pair{obs.cell, last_->cell};
        ++edges_[key];
        ++transitions_[last_->cell];
        ++transitions_[obs.cell];

        // Oscillation event: this transition bounces straight back along
        // the previous one (A->B then B->A within the window).
        if (last_transition_ && last_transition_->from == obs.cell &&
            last_transition_->to == last_->cell &&
            obs.t - last_transition_->t <= config.oscillation_window) {
          ++oscillations_[key];
        }
        last_transition_ = Transition{last_->cell, obs.cell, obs.t};
      }
    } else {
      last_transition_.reset();  // gap breaks the bounce chain
    }
  }
  dwell_.try_emplace(obs.cell, 0);
  last_ = obs;
}

int MovementGraph::transitions(const world::CellId& cell) const {
  const auto it = transitions_.find(cell);
  return it == transitions_.end() ? 0 : it->second;
}

namespace {

/// Union-find over cell ids.
class DisjointSets {
 public:
  world::CellId find(const world::CellId& c) {
    auto it = parent_.find(c);
    if (it == parent_.end()) {
      parent_[c] = c;
      return c;
    }
    if (it->second == c) return c;
    const world::CellId root = find(it->second);
    parent_[c] = root;
    return root;
  }

  void unite(const world::CellId& a, const world::CellId& b) {
    const world::CellId ra = find(a);
    const world::CellId rb = find(b);
    if (!(ra == rb)) parent_[rb] = ra;
  }

 private:
  std::map<world::CellId, world::CellId> parent_;
};

/// Clusters the current movement graph into places. Shared by the batch
/// entry point and GcaState so both produce identical clusterings.
void cluster_graph(const MovementGraph& graph, const GcaConfig& config,
                   GcaResult& result) {
  // Keep only edges with enough oscillation evidence and union their
  // endpoints. Raw transition counts are deliberately ignored here: repeated
  // commutes inflate them without the user ever dwelling.
  DisjointSets sets;
  for (const auto& [edge, bounces] : graph.oscillations()) {
    if (bounces < config.min_edge_weight) continue;
    sets.unite(edge.first, edge.second);
  }

  // Group cells by root; compute cluster dwell.
  std::map<world::CellId, std::vector<world::CellId>> groups;
  for (const auto& [cell, dwell] : graph.dwell())
    groups[sets.find(cell)].push_back(cell);

  for (const auto& [root, cells] : groups) {
    SimDuration total = 0;
    for (const auto& c : cells) total += graph.dwell().at(c);
    const bool multi = cells.size() > 1;
    // Single cells qualify only with a long dominant dwell; multi-cell
    // clusters (real oscillation groups) need min_cluster_dwell.
    if (multi ? total < config.min_cluster_dwell
              : total < config.min_single_cell_dwell)
      continue;
    CellCluster cluster;
    cluster.signature.cells.insert(cells.begin(), cells.end());
    cluster.total_dwell = total;
    const std::size_t index = result.places.size();
    for (const auto& c : cells) result.cell_to_place[c] = index;
    result.places.push_back(std::move(cluster));
  }
}

/// Pairs arrival/departure events into closed visit windows.
void pair_events_into_visits(
    const std::vector<CellVisitTracker::Event>& events, GcaResult& result) {
  std::optional<std::pair<std::size_t, SimTime>> open;
  for (const auto& ev : events) {
    if (ev.kind == CellVisitTracker::Event::Kind::Arrival) {
      open = {ev.place_index, ev.t};
    } else if (open && open->first == ev.place_index) {
      result.visits.push_back({ev.place_index, TimeWindow{open->second, ev.t}});
      open.reset();
    }
  }
}

}  // namespace

GcaResult run_gca(std::span<const CellObservation> observations,
                  const GcaConfig& config) {
  // A fresh state runs exactly one full pass; GcaState is the single
  // implementation of the algorithm, so batch and incremental cannot drift.
  GcaState state(config);
  return state.run(observations);
}

GcaState::GcaState(GcaConfig config) : config_(config) {}

void GcaState::reset_state() {
  graph_ = MovementGraph{};
  fed_ = 0;
  last_fed_t_ = 0;
  mapping_.clear();
  tracker_.reset();
  events_.clear();
}

GcaResult GcaState::run(std::span<const CellObservation> observations) {
  ++passes_;
  last_incremental_ = false;
  const SimTime end_t = observations.empty() ? last_fed_t_
                                             : observations.back().t;

  // The log must be append-only for the graph suffix feed to be exact; a
  // shrunk log or a rewritten prefix (detected via the last fed timestamp)
  // means this is a different stream — start over.
  if (observations.size() < fed_ ||
      (fed_ > 0 && observations[fed_ - 1].t != last_fed_t_))
    reset_state();

  const std::size_t prev_fed = fed_;
  {
    telemetry::Span span(telemetry::tracer(), "gca.feed", end_t);
    for (std::size_t i = prev_fed; i < observations.size(); ++i)
      graph_.observe(observations[i], config_);
    span.finish(end_t);
  }
  fed_ = observations.size();
  if (fed_ > 0) last_fed_t_ = observations[fed_ - 1].t;

  GcaResult result;
  cluster_graph(graph_, config_, result);

  // Continue the visit tracker incrementally only while the cell→place
  // mapping is stable; otherwise replay the whole stream against the new
  // mapping (exact fallback).
  const bool incremental = tracker_.has_value() &&
                           result.cell_to_place == mapping_;
  {
    telemetry::Span span(telemetry::tracer(),
                         incremental ? "gca.replay_incremental"
                                     : "gca.replay_full",
                         end_t);
    std::size_t replay_from = 0;
    if (incremental) {
      replay_from = prev_fed;
    } else {
      tracker_.emplace(result.cell_to_place, config_);
      events_.clear();
    }
    for (std::size_t i = replay_from; i < observations.size(); ++i) {
      auto evs = tracker_->observe(observations[i]);
      events_.insert(events_.end(), evs.begin(), evs.end());
    }
    span.finish(end_t);
  }
  mapping_ = result.cell_to_place;
  if (incremental) {
    last_incremental_ = true;
    ++incremental_passes_;
    telemetry::registry()
        .counter("core_recluster_incremental_total", {},
                 "recluster passes that reused graph and visit state")
        .inc();
  }

  // Batch semantics close the still-open visit at the last timestamp; flush
  // it on a throwaway copy so the persistent tracker keeps the visit open
  // for the next pass.
  std::vector<CellVisitTracker::Event> events = events_;
  if (!observations.empty()) {
    CellVisitTracker preview = *tracker_;
    auto evs = preview.finish(observations.back().t);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  pair_events_into_visits(events, result);
  return result;
}

CellVisitTracker::CellVisitTracker(
    std::map<world::CellId, std::size_t> cell_to_place, const GcaConfig& config)
    : cell_to_place_(std::move(cell_to_place)), config_(config) {}

std::vector<CellVisitTracker::Event> CellVisitTracker::observe(
    const CellObservation& obs) {
  std::vector<Event> events;
  std::optional<std::size_t> cluster;
  if (const auto it = cell_to_place_.find(obs.cell); it != cell_to_place_.end())
    cluster = it->second;

  if (current_) {
    if (cluster == current_) {
      last_in_ = obs.t;
      if (!announced_ && obs.t - start_ >= config_.min_visit_dwell) {
        announced_ = true;
        events.push_back({Event::Kind::Arrival, *current_, start_});
      }
    } else if (obs.t - last_in_ > config_.visit_gap_tolerance) {
      if (announced_)
        events.push_back({Event::Kind::Departure, *current_, last_in_});
      current_ = cluster;
      start_ = last_in_ = obs.t;
      announced_ = false;
    }
    // else: brief excursion outside the cluster; keep the visit open.
  } else if (cluster) {
    current_ = cluster;
    start_ = last_in_ = obs.t;
    announced_ = false;
  }
  return events;
}

std::vector<CellVisitTracker::Event> CellVisitTracker::finish(SimTime t) {
  std::vector<Event> events;
  if (current_ && announced_)
    events.push_back({Event::Kind::Departure, *current_, std::max(last_in_, t)});
  current_.reset();
  announced_ = false;
  return events;
}

}  // namespace pmware::algorithms
