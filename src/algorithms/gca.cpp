#include "algorithms/gca.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pmware::algorithms {

void MovementGraph::observe(const CellObservation& obs,
                            const GcaConfig& config) {
  if (last_ && obs.t < last_->t)
    throw std::invalid_argument("MovementGraph: observations out of order");
  if (last_) {
    const SimDuration dt = obs.t - last_->t;
    if (dt <= config.max_transition_gap) {
      // Dwell accrues to the cell we were on during [last_.t, obs.t).
      dwell_[last_->cell] += dt;
      if (last_->cell != obs.cell) {
        // Note: value pair, not std::minmax (which returns dangling-prone
        // reference pairs).
        const std::pair<world::CellId, world::CellId> key =
            last_->cell < obs.cell ? std::pair{last_->cell, obs.cell}
                                   : std::pair{obs.cell, last_->cell};
        ++edges_[key];
        ++transitions_[last_->cell];
        ++transitions_[obs.cell];

        // Oscillation event: this transition bounces straight back along
        // the previous one (A->B then B->A within the window).
        if (last_transition_ && last_transition_->from == obs.cell &&
            last_transition_->to == last_->cell &&
            obs.t - last_transition_->t <= config.oscillation_window) {
          ++oscillations_[key];
        }
        last_transition_ = Transition{last_->cell, obs.cell, obs.t};
      }
    } else {
      last_transition_.reset();  // gap breaks the bounce chain
    }
  }
  dwell_.try_emplace(obs.cell, 0);
  last_ = obs;
}

int MovementGraph::transitions(const world::CellId& cell) const {
  const auto it = transitions_.find(cell);
  return it == transitions_.end() ? 0 : it->second;
}

namespace {

/// Union-find over cell ids.
class DisjointSets {
 public:
  world::CellId find(const world::CellId& c) {
    auto it = parent_.find(c);
    if (it == parent_.end()) {
      parent_[c] = c;
      return c;
    }
    if (it->second == c) return c;
    const world::CellId root = find(it->second);
    parent_[c] = root;
    return root;
  }

  void unite(const world::CellId& a, const world::CellId& b) {
    const world::CellId ra = find(a);
    const world::CellId rb = find(b);
    if (!(ra == rb)) parent_[rb] = ra;
  }

 private:
  std::map<world::CellId, world::CellId> parent_;
};

}  // namespace

GcaResult run_gca(std::span<const CellObservation> observations,
                  const GcaConfig& config) {
  MovementGraph graph;
  for (const auto& obs : observations) graph.observe(obs, config);

  // Keep only edges with enough oscillation evidence and union their
  // endpoints. Raw transition counts are deliberately ignored here: repeated
  // commutes inflate them without the user ever dwelling.
  DisjointSets sets;
  for (const auto& [edge, bounces] : graph.oscillations()) {
    if (bounces < config.min_edge_weight) continue;
    sets.unite(edge.first, edge.second);
  }

  // Group cells by root; compute cluster dwell.
  std::map<world::CellId, std::vector<world::CellId>> groups;
  for (const auto& [cell, dwell] : graph.dwell())
    groups[sets.find(cell)].push_back(cell);

  GcaResult result;
  for (const auto& [root, cells] : groups) {
    SimDuration total = 0;
    for (const auto& c : cells) total += graph.dwell().at(c);
    const bool multi = cells.size() > 1;
    // Single cells qualify only with a long dominant dwell; multi-cell
    // clusters (real oscillation groups) need min_cluster_dwell.
    if (multi ? total < config.min_cluster_dwell
              : total < config.min_single_cell_dwell)
      continue;
    CellCluster cluster;
    cluster.signature.cells.insert(cells.begin(), cells.end());
    cluster.total_dwell = total;
    const std::size_t index = result.places.size();
    for (const auto& c : cells) result.cell_to_place[c] = index;
    result.places.push_back(std::move(cluster));
  }

  // Replay the stream through the visit tracker to reconstruct stays.
  CellVisitTracker tracker(result.cell_to_place, config);
  std::vector<CellVisitTracker::Event> events;
  for (const auto& obs : observations) {
    auto evs = tracker.observe(obs);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  if (!observations.empty()) {
    auto evs = tracker.finish(observations.back().t);
    events.insert(events.end(), evs.begin(), evs.end());
  }

  std::optional<std::pair<std::size_t, SimTime>> open;
  for (const auto& ev : events) {
    if (ev.kind == CellVisitTracker::Event::Kind::Arrival) {
      open = {ev.place_index, ev.t};
    } else if (open && open->first == ev.place_index) {
      result.visits.push_back({ev.place_index, TimeWindow{open->second, ev.t}});
      open.reset();
    }
  }
  return result;
}

CellVisitTracker::CellVisitTracker(
    std::map<world::CellId, std::size_t> cell_to_place, const GcaConfig& config)
    : cell_to_place_(std::move(cell_to_place)), config_(config) {}

std::vector<CellVisitTracker::Event> CellVisitTracker::observe(
    const CellObservation& obs) {
  std::vector<Event> events;
  std::optional<std::size_t> cluster;
  if (const auto it = cell_to_place_.find(obs.cell); it != cell_to_place_.end())
    cluster = it->second;

  if (current_) {
    if (cluster == current_) {
      last_in_ = obs.t;
      if (!announced_ && obs.t - start_ >= config_.min_visit_dwell) {
        announced_ = true;
        events.push_back({Event::Kind::Arrival, *current_, start_});
      }
    } else if (obs.t - last_in_ > config_.visit_gap_tolerance) {
      if (announced_)
        events.push_back({Event::Kind::Departure, *current_, last_in_});
      current_ = cluster;
      start_ = last_in_ = obs.t;
      announced_ = false;
    }
    // else: brief excursion outside the cluster; keep the visit open.
  } else if (cluster) {
    current_ = cluster;
    start_ = last_in_ = obs.t;
    announced_ = false;
  }
  return events;
}

std::vector<CellVisitTracker::Event> CellVisitTracker::finish(SimTime t) {
  std::vector<Event> events;
  if (current_ && announced_)
    events.push_back({Event::Kind::Departure, *current_, std::max(last_in_, t)});
  current_.reset();
  announced_ = false;
  return events;
}

}  // namespace pmware::algorithms
