#include "algorithms/sensloc.hpp"

#include <algorithm>
#include <map>

namespace pmware::algorithms {

WifiPlaceDetector::WifiPlaceDetector(SensLocConfig config) : config_(config) {}

std::set<world::Bssid> WifiPlaceDetector::to_set(const sensing::WifiScan& scan) {
  std::set<world::Bssid> out;
  for (const auto& ap : scan.aps) out.insert(ap.bssid);
  return out;
}

namespace {

/// Fingerprints are small (often 1-4 APs) and scans carry transient street
/// APs, so pure Tanimoto under-matches; the overlap coefficient recognizes
/// "the whole stored fingerprint is visible" regardless of extras.
double place_similarity(const std::set<world::Bssid>& signature,
                        const std::set<world::Bssid>& scan) {
  return std::max(tanimoto(signature, scan),
                  overlap_coefficient(signature, scan));
}

}  // namespace

std::optional<std::size_t> WifiPlaceDetector::match_registry(
    const std::set<world::Bssid>& aps) const {
  std::optional<std::size_t> best;
  double best_sim = 0;
  for (std::size_t i = 0; i < places_.size(); ++i) {
    const double sim = place_similarity(places_[i].aps, aps);
    if (sim >= config_.match_similarity && sim > best_sim) {
      best = i;
      best_sim = sim;
    }
  }
  return best;
}

void WifiPlaceDetector::record_visit(std::size_t place, SimTime begin,
                                     SimTime end) {
  if (end - begin >= config_.min_visit_dwell)
    visits_.push_back({place, TimeWindow{begin, end}});
}

std::vector<WifiPlaceDetector::Event> WifiPlaceDetector::on_scan(
    const sensing::WifiScan& scan) {
  std::vector<Event> events;
  const std::set<world::Bssid> aps = to_set(scan);

  if (current_ && scan.t - last_match_t_ > config_.max_match_gap) {
    // Stale stay: nothing has matched for hours (the user is somewhere
    // without WiFi evidence). Close the visit at the last matching scan.
    events.push_back({Event::Kind::Departure, *current_, last_match_t_});
    record_visit(*current_, arrival_t_, last_match_t_);
    current_.reset();
    miss_streak_ = 0;
    stable_run_.clear();
  }

  if (current_) {
    // An empty scan carries no evidence either way (missed beacon round);
    // it must not evict the current place — overnight opportunistic scans
    // would otherwise fragment long stays.
    if (aps.empty()) return events;
    const double sim = place_similarity(places_[*current_].aps, aps);
    if (sim >= config_.match_similarity) {
      last_match_t_ = scan.t;
      miss_streak_ = 0;
    } else if (++miss_streak_ >= config_.scans_to_exit) {
      events.push_back({Event::Kind::Departure, *current_, last_match_t_});
      record_visit(*current_, arrival_t_, last_match_t_);
      current_.reset();
      miss_streak_ = 0;
      stable_run_.clear();
      // The scan that evicted us may itself start a new stable run.
      if (!aps.empty()) {
        stable_run_.push_back(aps);
        stable_start_ = scan.t;
      }
    }
    return events;
  }

  // Moving: build a run of mutually-similar scans. An empty scan carries no
  // information (could be a street stretch without APs, or a fully missed
  // beacon round) — ignore it rather than resetting the run.
  if (aps.empty()) return events;
  if (!stable_run_.empty() &&
      tanimoto(stable_run_.back(), aps) >= config_.stationary_similarity) {
    stable_run_.push_back(aps);
  } else {
    stable_run_.clear();
    stable_run_.push_back(aps);
    stable_start_ = scan.t;
  }

  if (static_cast<int>(stable_run_.size()) >= config_.scans_to_enter) {
    // Fingerprint: APs seen in a majority of the stable scans (robust to
    // missed beacons).
    std::map<world::Bssid, int> counts;
    for (const auto& s : stable_run_)
      for (world::Bssid b : s) ++counts[b];
    std::set<world::Bssid> fingerprint;
    const int majority = static_cast<int>(stable_run_.size() + 1) / 2;
    for (const auto& [b, n] : counts)
      if (n >= majority) fingerprint.insert(b);
    if (fingerprint.empty()) fingerprint = stable_run_.back();

    std::size_t place;
    if (const auto existing = match_registry(fingerprint)) {
      place = *existing;
    } else {
      place = places_.size();
      places_.push_back(WifiSignature{fingerprint});
    }
    current_ = place;
    arrival_t_ = stable_start_;
    last_match_t_ = scan.t;
    miss_streak_ = 0;
    stable_run_.clear();
    events.push_back({Event::Kind::Arrival, place, arrival_t_});
  }
  return events;
}

std::vector<WifiPlaceDetector::Event> WifiPlaceDetector::finish(SimTime t) {
  std::vector<Event> events;
  if (current_) {
    const SimTime end = std::max(last_match_t_, std::min(t, last_match_t_ + 60));
    events.push_back({Event::Kind::Departure, *current_, end});
    record_visit(*current_, arrival_t_, end);
    current_.reset();
  }
  stable_run_.clear();
  return events;
}

}  // namespace pmware::algorithms
