#include "algorithms/signature.hpp"

#include "util/strfmt.hpp"

namespace pmware::algorithms {

bool signatures_match(const PlaceSignature& a, const PlaceSignature& b,
                      double set_similarity_threshold) {
  if (a.index() != b.index()) return false;
  if (const auto* ca = std::get_if<CellSignature>(&a)) {
    const auto& cb = std::get<CellSignature>(b);
    return tanimoto(ca->cells, cb.cells) >= set_similarity_threshold;
  }
  if (const auto* wa = std::get_if<WifiSignature>(&a)) {
    const auto& wb = std::get<WifiSignature>(b);
    return tanimoto(wa->aps, wb.aps) >= set_similarity_threshold;
  }
  const auto& ga = std::get<GpsSignature>(a);
  const auto& gb = std::get<GpsSignature>(b);
  return geo::distance_m(ga.center, gb.center) <=
         std::max(ga.radius_m, gb.radius_m);
}

std::string describe(const PlaceSignature& sig) {
  if (const auto* c = std::get_if<CellSignature>(&sig))
    return strfmt("cells[%zu]", c->cells.size());
  if (const auto* w = std::get_if<WifiSignature>(&sig))
    return strfmt("aps[%zu]", w->aps.size());
  const auto& g = std::get<GpsSignature>(sig);
  return strfmt("gps%s r=%.0fm", g.center.to_string().c_str(), g.radius_m);
}

}  // namespace pmware::algorithms
