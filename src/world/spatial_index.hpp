// Uniform-grid spatial index over items with a LatLng position.
//
// The world holds hundreds of towers and thousands of APs; every sensing
// sample queries "what is near this point", so lookups must not be linear.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "geo/latlng.hpp"

namespace pmware::world {

/// Index over items of type T. Positions are projected into a local tangent
/// plane around `origin`; the grid uses square cells of `cell_size_m`.
template <typename T>
class SpatialIndex {
 public:
  using PositionFn = std::function<geo::LatLng(const T&)>;

  SpatialIndex(geo::LatLng origin, double cell_size_m, PositionFn position)
      : origin_(origin), cell_size_m_(cell_size_m), position_(std::move(position)) {}

  void add(T item) {
    const auto key = cell_of(position_(item));
    items_.push_back(std::move(item));
    grid_[key].push_back(items_.size() - 1);
  }

  std::size_t size() const { return items_.size(); }
  const std::vector<T>& items() const { return items_; }
  const T& item(std::size_t i) const { return items_.at(i); }

  /// Visits every item within `radius_m` of `p` as `fn(index, distance_m)`,
  /// in the same deterministic cell-major order query() returns. The
  /// allocation-free form of query(): hot paths reuse their own output
  /// buffers and get the already-computed distance for free instead of
  /// recomputing it from the returned index.
  template <typename Fn>
  void for_each_in(const geo::LatLng& p, double radius_m, Fn&& fn) const {
    const auto [ci, cj] = cell_of(p);
    const auto span = static_cast<std::int64_t>(
        std::ceil(radius_m / cell_size_m_));
    for (std::int64_t di = -span; di <= span; ++di) {
      for (std::int64_t dj = -span; dj <= span; ++dj) {
        const auto it = grid_.find({ci + di, cj + dj});
        if (it == grid_.end()) continue;
        for (std::size_t idx : it->second) {
          const double d = geo::distance_m(p, position_(items_[idx]));
          if (d <= radius_m) fn(idx, d);
        }
      }
    }
  }

  /// All items within `radius_m` of `p`, as indices into items(), in
  /// deterministic cell-major order.
  std::vector<std::size_t> query(const geo::LatLng& p, double radius_m) const {
    std::vector<std::size_t> out;
    for_each_in(p, radius_m,
                [&out](std::size_t idx, double) { out.push_back(idx); });
    return out;
  }

 private:
  using Key = std::pair<std::int64_t, std::int64_t>;

  Key cell_of(const geo::LatLng& p) const {
    const geo::EnuOffset off = geo::to_enu(origin_, p);
    return {static_cast<std::int64_t>(std::floor(off.east_m / cell_size_m_)),
            static_cast<std::int64_t>(std::floor(off.north_m / cell_size_m_))};
  }

  geo::LatLng origin_;
  double cell_size_m_;
  PositionFn position_;
  std::vector<T> items_;
  std::map<Key, std::vector<std::size_t>> grid_;
};

}  // namespace pmware::world
