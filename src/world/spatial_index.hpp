// Uniform-grid spatial index over items with a LatLng position.
//
// The world holds hundreds of towers and thousands of APs; every sensing
// sample queries "what is near this point", so lookups must not be linear
// — and for the cell layer the path-loss search radius (~11 km) exceeds
// the whole world, so the scan must also not pay per-cell map lookups or
// per-candidate haversines for a box that covers everything.
//
// The index is built in two phases: add() items, then freeze() into a
// flat CSR grid (per-cell item lists in one array) with every item's
// tangent-plane coordinates precomputed. Queries clamp the scan box to the
// grid's occupied bounds, reject candidates with a squared planar distance
// against a slackened radius, and only compute the exact geodesic distance
// for survivors — the reported distances and the visit order (cell-major,
// insertion order within a cell) are bit-identical to the original
// map-of-vectors implementation. freeze() is called automatically by the
// first query for single-threaded users; concurrent readers (the study's
// worker pool) must freeze before sharing, which world::World does in its
// constructor.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "geo/latlng.hpp"

namespace pmware::world {

/// Index over items of type T. Positions are projected into a local tangent
/// plane around `origin`; the grid uses square cells of `cell_size_m`.
template <typename T>
class SpatialIndex {
 public:
  using PositionFn = std::function<geo::LatLng(const T&)>;

  SpatialIndex(geo::LatLng origin, double cell_size_m, PositionFn position)
      : origin_(origin), cell_size_m_(cell_size_m), position_(std::move(position)) {}

  void add(T item) {
    positions_.push_back(position_(item));
    const geo::EnuOffset off = geo::to_enu(origin_, positions_.back());
    enu_.push_back(off);
    items_.push_back(std::move(item));
    frozen_ = false;
  }

  std::size_t size() const { return items_.size(); }
  const std::vector<T>& items() const { return items_; }
  const T& item(std::size_t i) const { return items_.at(i); }

  /// Builds the flat grid. Idempotent; must be called before the index is
  /// shared across threads (queries on a frozen index are const and
  /// lock-free).
  void freeze() const {
    if (frozen_) return;
    min_i_ = min_j_ = 0;
    cols_ = rows_ = 0;
    cell_starts_.clear();
    cell_items_.clear();
    if (!items_.empty()) {
      std::int64_t max_i = 0, max_j = 0;
      std::vector<std::pair<std::int64_t, std::int64_t>> keys(items_.size());
      for (std::size_t k = 0; k < items_.size(); ++k) {
        keys[k] = cell_of(enu_[k]);
        if (k == 0) {
          min_i_ = max_i = keys[k].first;
          min_j_ = max_j = keys[k].second;
        } else {
          min_i_ = std::min(min_i_, keys[k].first);
          max_i = std::max(max_i, keys[k].first);
          min_j_ = std::min(min_j_, keys[k].second);
          max_j = std::max(max_j, keys[k].second);
        }
      }
      cols_ = max_i - min_i_ + 1;
      rows_ = max_j - min_j_ + 1;
      cell_starts_.assign(static_cast<std::size_t>(cols_ * rows_) + 1, 0);
      for (const auto& [i, j] : keys) ++cell_starts_[flat_cell(i, j) + 1];
      for (std::size_t c = 1; c < cell_starts_.size(); ++c)
        cell_starts_[c] += cell_starts_[c - 1];
      // Stable counting sort: iterating items in insertion order preserves
      // the per-cell insertion order the original map-of-vectors kept.
      cell_items_.resize(items_.size());
      std::vector<std::uint32_t> cursor(cell_starts_.begin(),
                                        cell_starts_.end() - 1);
      for (std::size_t k = 0; k < items_.size(); ++k)
        cell_items_[cursor[flat_cell(keys[k].first, keys[k].second)]++] =
            static_cast<std::uint32_t>(k);
    }
    frozen_ = true;
  }

  /// Visits every item within `radius_m` of `p` as `fn(index, distance_m)`,
  /// in deterministic cell-major order (ascending east cell, then ascending
  /// north cell, then insertion order). The allocation-free form of
  /// query(): hot paths reuse their own output buffers and get the
  /// already-computed distance for free instead of recomputing it from the
  /// returned index.
  template <typename Fn>
  void for_each_in(const geo::LatLng& p, double radius_m, Fn&& fn) const {
    if (!frozen_) freeze();
    if (items_.empty()) return;
    const geo::EnuOffset q = geo::to_enu(origin_, p);
    // Planar prefilter radius: the equirectangular projection diverges from
    // the geodesic distance by well under 0.1% + a few metres at world
    // scale, so this slack can never reject a point the exact test would
    // keep — the haversine below still decides membership.
    const double slack = radius_m * 1.02 + 32.0;
    const double slack2 = slack * slack;
    const auto [ci, cj] = cell_of(q);
    const auto span =
        static_cast<std::int64_t>(std::ceil(radius_m / cell_size_m_));
    const std::int64_t i0 = std::max(ci - span, min_i_);
    const std::int64_t i1 = std::min(ci + span, min_i_ + cols_ - 1);
    const std::int64_t j0 = std::max(cj - span, min_j_);
    const std::int64_t j1 = std::min(cj + span, min_j_ + rows_ - 1);
    if (i0 > i1 || j0 > j1) return;

    auto scan = [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        const std::uint32_t idx = cell_items_[s];
        const double dx = enu_[idx].east_m - q.east_m;
        const double dy = enu_[idx].north_m - q.north_m;
        if (dx * dx + dy * dy > slack2) continue;
        const double d = geo::distance_m(p, positions_[idx]);
        if (d <= radius_m) fn(static_cast<std::size_t>(idx), d);
      }
    };
    if (i0 == min_i_ && j0 == min_j_ && i1 == min_i_ + cols_ - 1 &&
        j1 == min_j_ + rows_ - 1) {
      // The scan box covers the whole grid (the cell layer's usual case:
      // search radius > world extent) — one linear pass over the CSR array,
      // which is already in cell-major order.
      scan(0, cell_items_.size());
      return;
    }
    for (std::int64_t i = i0; i <= i1; ++i) {
      for (std::int64_t j = j0; j <= j1; ++j) {
        const std::size_t c = flat_cell(i, j);
        scan(cell_starts_[c], cell_starts_[c + 1]);
      }
    }
  }

  /// All items within `radius_m` of `p`, as indices into items(), in
  /// deterministic cell-major order.
  std::vector<std::size_t> query(const geo::LatLng& p, double radius_m) const {
    std::vector<std::size_t> out;
    for_each_in(p, radius_m,
                [&out](std::size_t idx, double) { out.push_back(idx); });
    return out;
  }

 private:
  std::pair<std::int64_t, std::int64_t> cell_of(const geo::EnuOffset& off) const {
    return {static_cast<std::int64_t>(std::floor(off.east_m / cell_size_m_)),
            static_cast<std::int64_t>(std::floor(off.north_m / cell_size_m_))};
  }

  std::size_t flat_cell(std::int64_t i, std::int64_t j) const {
    return static_cast<std::size_t>((i - min_i_) * rows_ + (j - min_j_));
  }

  geo::LatLng origin_;
  double cell_size_m_;
  PositionFn position_;
  std::vector<T> items_;
  std::vector<geo::LatLng> positions_;
  std::vector<geo::EnuOffset> enu_;

  // Frozen CSR grid (mutable: built lazily by the first const query).
  mutable bool frozen_ = false;
  mutable std::int64_t min_i_ = 0, min_j_ = 0;
  mutable std::int64_t cols_ = 0, rows_ = 0;
  mutable std::vector<std::uint32_t> cell_starts_;
  mutable std::vector<std::uint32_t> cell_items_;
};

}  // namespace pmware::world
