// The synthetic world: places, radio infrastructure, roads, and the spatial
// queries the sensing layer runs against it.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geo/latlng.hpp"
#include "util/rng.hpp"
#include "world/ids.hpp"
#include "world/place.hpp"
#include "world/radio.hpp"
#include "world/roads.hpp"
#include "world/spatial_index.hpp"

namespace pmware::world {

/// Regional deployment characteristics. The paper (§1, limitation 4) notes a
/// user is under WiFi coverage ~60% of the day in India vs >90% in
/// Switzerland; these profiles are the knob for experiment A3.
struct RegionProfile {
  std::string name = "india";
  double wifi_place_coverage = 0.60;   ///< probability a POI deploys WiFi
  double street_ap_density_per_km2 = 2.5;
  double tower_spacing_2g_m = 1100;
  double tower_spacing_3g_m = 700;

  static RegionProfile india();
  static RegionProfile switzerland();
};

/// How many POIs of each kind to generate.
struct PoiMix {
  int homes = 20;
  int workplaces = 8;
  int markets = 4;
  int restaurants = 6;
  int cafes = 6;
  int malls = 2;
  int gyms = 2;
  int parks = 2;
  int hospitals = 1;
  int cinemas = 1;
  int transit_hubs = 2;
  /// A campus cluster (academic building + library ~90 m apart) is always
  /// generated; it reproduces the paper's §4 observation that GSM-only
  /// discovery merges such adjacent places.
  bool campus_cluster = true;
};

struct WorldConfig {
  geo::LatLng origin{28.6139, 77.2090};  ///< south-west corner (Delhi)
  double extent_m = 6000;                ///< square city side length
  double road_spacing_m = 250;
  RegionProfile region;
  PoiMix poi;
  std::uint16_t mcc = 404;  ///< India
  std::uint16_t mnc = 10;
};

/// Tower heard at a position, with the deterministic part of its RSSI.
struct HeardCell {
  TowerId tower = 0;
  CellId cell;
  double rssi_dbm = 0;
};

/// AP visible at a position.
struct HeardAp {
  Bssid bssid = 0;
  double rssi_dbm = 0;
  PlaceId place = kNoPlace;
};

/// Immutable world; build via generate_world().
class World {
 public:
  World(WorldConfig config, std::vector<Place> places,
        std::vector<CellTower> towers, std::vector<WifiAp> aps);

  const WorldConfig& config() const { return config_; }
  const std::vector<Place>& places() const { return places_; }
  const Place& place(PlaceId id) const { return places_.at(id); }
  const std::vector<CellTower>& towers() const { return towers_; }
  const std::vector<WifiAp>& aps() const { return aps_; }
  const RoadNetwork& roads() const { return *roads_; }

  /// Towers hearable at `pos` (deterministic RSSI above the detection
  /// threshold), strongest first. `fading_margin_db` widens the search so the
  /// sensing layer can add fading without re-querying.
  std::vector<HeardCell> hearable_cells(const geo::LatLng& pos,
                                        double fading_margin_db = 6.0) const;

  /// Allocation-free form of hearable_cells(): clears and refills `out`
  /// (capacity is reused across calls). Same results, same order.
  void hearable_cells_into(const geo::LatLng& pos, std::vector<HeardCell>& out,
                           double fading_margin_db = 6.0) const;

  /// APs visible at `pos`, strongest first.
  std::vector<HeardAp> visible_aps(const geo::LatLng& pos,
                                   double fading_margin_db = 4.0) const;

  /// Allocation-free form of visible_aps(): clears and refills `out`.
  void visible_aps_into(const geo::LatLng& pos, std::vector<HeardAp>& out,
                        double fading_margin_db = 4.0) const;

  /// Place whose footprint contains `pos` (closest center wins on overlap).
  std::optional<PlaceId> place_at(const geo::LatLng& pos) const;

  /// Places with centers within `radius_m` of `pos`.
  std::vector<PlaceId> places_near(const geo::LatLng& pos, double radius_m) const;

  /// Cell-id -> tower position database (the cloud geo-location API's
  /// OpenCellID stand-in).
  std::map<CellId, geo::LatLng> cell_location_db() const;

  /// BSSID -> AP position database (crowdsourced AP-location stand-in,
  /// used by the cloud to place WiFi-signature places on the map).
  std::map<Bssid, geo::LatLng> ap_location_db() const;

  /// First place of the given category, if any.
  std::optional<PlaceId> find_category(PlaceCategory c) const;
  std::vector<PlaceId> all_of_category(PlaceCategory c) const;

 private:
  WorldConfig config_;
  std::vector<Place> places_;
  std::vector<CellTower> towers_;
  std::vector<WifiAp> aps_;
  std::unique_ptr<RoadNetwork> roads_;
  std::unique_ptr<SpatialIndex<std::size_t>> tower_index_;
  std::unique_ptr<SpatialIndex<std::size_t>> ap_index_;
  std::unique_ptr<SpatialIndex<std::size_t>> place_index_;
};

/// Generates a deterministic city from the config and RNG.
std::shared_ptr<const World> generate_world(const WorldConfig& config, Rng& rng);

}  // namespace pmware::world
