#include "world/world.hpp"

#include <algorithm>
#include <cmath>
#include "util/strfmt.hpp"
#include <stdexcept>

namespace pmware::world {

RegionProfile RegionProfile::india() { return RegionProfile{}; }

RegionProfile RegionProfile::switzerland() {
  RegionProfile p;
  p.name = "switzerland";
  p.wifi_place_coverage = 0.92;
  // Most urban APs sit inside buildings and are captured by the per-place
  // APs; only a moderate density is hearable on the street.
  p.street_ap_density_per_km2 = 8.0;
  p.tower_spacing_2g_m = 900;
  p.tower_spacing_3g_m = 550;
  return p;
}

World::World(WorldConfig config, std::vector<Place> places,
             std::vector<CellTower> towers, std::vector<WifiAp> aps)
    : config_(std::move(config)),
      places_(std::move(places)),
      towers_(std::move(towers)),
      aps_(std::move(aps)) {
  const int grid_nodes =
      std::max(2, static_cast<int>(config_.extent_m / config_.road_spacing_m) + 1);
  roads_ = std::make_unique<RoadNetwork>(config_.origin, config_.road_spacing_m,
                                         grid_nodes, grid_nodes);

  tower_index_ = std::make_unique<SpatialIndex<std::size_t>>(
      config_.origin, 500.0,
      [this](const std::size_t& i) { return towers_[i].pos; });
  for (std::size_t i = 0; i < towers_.size(); ++i) tower_index_->add(i);

  ap_index_ = std::make_unique<SpatialIndex<std::size_t>>(
      config_.origin, 200.0, [this](const std::size_t& i) { return aps_[i].pos; });
  for (std::size_t i = 0; i < aps_.size(); ++i) ap_index_->add(i);

  place_index_ = std::make_unique<SpatialIndex<std::size_t>>(
      config_.origin, 500.0,
      [this](const std::size_t& i) { return places_[i].center; });
  for (std::size_t i = 0; i < places_.size(); ++i) place_index_->add(i);

  // Freeze the flat grids before the world is shared: study workers query
  // the indexes concurrently, and a frozen index is const + lock-free.
  tower_index_->freeze();
  ap_index_->freeze();
  place_index_->freeze();
}

void World::hearable_cells_into(const geo::LatLng& pos,
                                std::vector<HeardCell>& out,
                                double fading_margin_db) const {
  const PathLossModel model = cell_path_loss();
  // Search radius: distance at which even a +fading-margin +max-shadowing
  // tower drops below the detection threshold.
  const double budget = 43.0 - model.reference_loss_db - kCellDetectionDbm +
                        fading_margin_db + 12.0;
  const double radius = std::pow(10.0, budget / (10.0 * model.exponent));

  out.clear();
  tower_index_->for_each_in(pos, radius, [&](std::size_t idx, double dist) {
    const CellTower& t = towers_[idx];
    const double rssi = model.rssi_dbm(t.tx_power_dbm, dist, t.shadowing_db);
    if (rssi >= kCellDetectionDbm - fading_margin_db)
      out.push_back({t.id, t.cell, rssi});
  });
  std::sort(out.begin(), out.end(), [](const HeardCell& a, const HeardCell& b) {
    if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
    return a.tower < b.tower;
  });
}

std::vector<HeardCell> World::hearable_cells(const geo::LatLng& pos,
                                             double fading_margin_db) const {
  std::vector<HeardCell> out;
  hearable_cells_into(pos, out, fading_margin_db);
  return out;
}

void World::visible_aps_into(const geo::LatLng& pos, std::vector<HeardAp>& out,
                             double fading_margin_db) const {
  const PathLossModel model = wifi_path_loss();
  const double budget = 20.0 - model.reference_loss_db - kWifiDetectionDbm +
                        fading_margin_db + 8.0;
  const double radius = std::pow(10.0, budget / (10.0 * model.exponent));

  out.clear();
  ap_index_->for_each_in(pos, radius, [&](std::size_t idx, double dist) {
    const WifiAp& ap = aps_[idx];
    const double rssi = model.rssi_dbm(ap.tx_power_dbm, dist, ap.shadowing_db);
    if (rssi >= kWifiDetectionDbm - fading_margin_db)
      out.push_back({ap.bssid, rssi, ap.place});
  });
  std::sort(out.begin(), out.end(), [](const HeardAp& a, const HeardAp& b) {
    if (a.rssi_dbm != b.rssi_dbm) return a.rssi_dbm > b.rssi_dbm;
    return a.bssid < b.bssid;
  });
}

std::vector<HeardAp> World::visible_aps(const geo::LatLng& pos,
                                        double fading_margin_db) const {
  std::vector<HeardAp> out;
  visible_aps_into(pos, out, fading_margin_db);
  return out;
}

std::optional<PlaceId> World::place_at(const geo::LatLng& pos) const {
  std::optional<PlaceId> best;
  double best_dist = std::numeric_limits<double>::infinity();
  place_index_->for_each_in(pos, 400.0, [&](std::size_t idx, double d) {
    const Place& p = places_[idx];
    if (d <= p.radius_m && d < best_dist) {
      best = p.id;
      best_dist = d;
    }
  });
  return best;
}

std::vector<PlaceId> World::places_near(const geo::LatLng& pos,
                                        double radius_m) const {
  std::vector<PlaceId> out;
  for (std::size_t idx : place_index_->query(pos, radius_m))
    out.push_back(places_[idx].id);
  std::sort(out.begin(), out.end());
  return out;
}

std::map<CellId, geo::LatLng> World::cell_location_db() const {
  std::map<CellId, geo::LatLng> db;
  for (const auto& t : towers_) db[t.cell] = t.pos;
  return db;
}

std::map<Bssid, geo::LatLng> World::ap_location_db() const {
  std::map<Bssid, geo::LatLng> db;
  for (const auto& ap : aps_) db[ap.bssid] = ap.pos;
  return db;
}

std::optional<PlaceId> World::find_category(PlaceCategory c) const {
  for (const auto& p : places_)
    if (p.category == c) return p.id;
  return std::nullopt;
}

std::vector<PlaceId> World::all_of_category(PlaceCategory c) const {
  std::vector<PlaceId> out;
  for (const auto& p : places_)
    if (p.category == c) out.push_back(p.id);
  return out;
}

namespace {

geo::LatLng jittered_point(const WorldConfig& cfg, Rng& rng, double margin_m) {
  const double east = rng.uniform(margin_m, cfg.extent_m - margin_m);
  const double north = rng.uniform(margin_m, cfg.extent_m - margin_m);
  return geo::from_enu(cfg.origin, {east, north});
}

void add_places(std::vector<Place>& places, const WorldConfig& cfg, Rng& rng,
                PlaceCategory cat, int count, double radius_lo,
                double radius_hi, double min_separation_m) {
  for (int k = 0; k < count; ++k) {
    geo::LatLng pos;
    // Rejection-sample so distinct POIs don't overlap (except the explicit
    // campus cluster added separately).
    bool ok = false;
    for (int attempt = 0; attempt < 200 && !ok; ++attempt) {
      pos = jittered_point(cfg, rng, 150.0);
      ok = true;
      for (const auto& existing : places) {
        if (geo::distance_m(existing.center, pos) < min_separation_m) {
          ok = false;
          break;
        }
      }
    }
    Place p;
    p.id = static_cast<PlaceId>(places.size());
    p.category = cat;
    p.name = strfmt("%s-%d", to_string(cat), k + 1);
    p.center = pos;
    p.radius_m = rng.uniform(radius_lo, radius_hi);
    p.has_wifi = rng.bernoulli(cfg.region.wifi_place_coverage);
    places.push_back(std::move(p));
  }
}

void add_tower_layer(std::vector<CellTower>& towers, const WorldConfig& cfg,
                     Rng& rng, Radio radio, double spacing_m,
                     std::uint16_t lac_base) {
  const int n = std::max(2, static_cast<int>(cfg.extent_m / spacing_m) + 2);
  std::uint32_t cid = radio == Radio::Gsm2G ? 1000 : 30000;
  for (int j = -1; j < n; ++j) {
    for (int i = -1; i < n; ++i) {
      // Hex-like packing: offset alternate rows by half a spacing.
      const double east = spacing_m * i + (j % 2 == 0 ? 0.0 : spacing_m / 2) +
                          rng.uniform(-spacing_m * 0.15, spacing_m * 0.15);
      const double north =
          spacing_m * j * 0.87 + rng.uniform(-spacing_m * 0.15, spacing_m * 0.15);
      CellTower t;
      t.id = static_cast<TowerId>(towers.size());
      t.cell = CellId{cfg.mcc, cfg.mnc,
                      static_cast<std::uint16_t>(
                          lac_base + static_cast<std::uint16_t>(j + 1) / 4),
                      cid++, radio};
      t.pos = geo::from_enu(cfg.origin, {east, north});
      t.tx_power_dbm = 43.0 + rng.uniform(-1.5, 1.5);
      t.range_hint_m = spacing_m;
      t.shadowing_db = rng.normal(0.0, 4.0);
      towers.push_back(std::move(t));
    }
  }
}

Bssid random_bssid(Rng& rng) {
  // Locally-administered unicast MAC.
  const auto raw = static_cast<std::uint64_t>(rng.uniform_int(0, (1LL << 46) - 1));
  return (raw << 2 | 0x2ULL) & 0xffffffffffffULL;
}

}  // namespace

std::shared_ptr<const World> generate_world(const WorldConfig& config,
                                            Rng& rng) {
  std::vector<Place> places;

  const auto& mix = config.poi;
  add_places(places, config, rng, PlaceCategory::Home, mix.homes, 30, 50, 260);
  add_places(places, config, rng, PlaceCategory::Workplace, mix.workplaces, 45,
             80, 320);
  add_places(places, config, rng, PlaceCategory::Market, mix.markets, 70, 120,
             400);
  add_places(places, config, rng, PlaceCategory::Restaurant, mix.restaurants,
             20, 35, 220);
  add_places(places, config, rng, PlaceCategory::Cafe, mix.cafes, 15, 25, 220);
  add_places(places, config, rng, PlaceCategory::Mall, mix.malls, 90, 140, 500);
  add_places(places, config, rng, PlaceCategory::Gym, mix.gyms, 25, 40, 260);
  add_places(places, config, rng, PlaceCategory::Park, mix.parks, 100, 180, 500);
  add_places(places, config, rng, PlaceCategory::Hospital, mix.hospitals, 60,
             100, 400);
  add_places(places, config, rng, PlaceCategory::Cinema, mix.cinemas, 40, 60,
             300);
  add_places(places, config, rng, PlaceCategory::TransitHub, mix.transit_hubs,
             50, 80, 400);

  // Adjacent-place pairs: real cities cluster POIs (a restaurant row by the
  // market, a cinema inside the mall complex). These pairs share a cell
  // footprint, so GSM-only discovery merges them — the §4 phenomenon.
  auto relocate_adjacent = [&](PlaceCategory anchor_cat, PlaceCategory sat_cat,
                               double separation_m) {
    std::optional<PlaceId> anchor_id, sat_id;
    for (const auto& p : places) {
      if (!anchor_id && p.category == anchor_cat) anchor_id = p.id;
      if (!sat_id && p.category == sat_cat) sat_id = p.id;
    }
    if (anchor_id && sat_id) {
      places[*sat_id].center = geo::destination(
          places[*anchor_id].center, rng.uniform(0, 360), separation_m);
    }
  };
  relocate_adjacent(PlaceCategory::Market, PlaceCategory::Restaurant, 75.0);
  relocate_adjacent(PlaceCategory::Mall, PlaceCategory::Cinema, 100.0);
  relocate_adjacent(PlaceCategory::Workplace, PlaceCategory::Cafe, 60.0);

  if (mix.campus_cluster) {
    // Academic building and library deliberately ~90 m apart: close enough to
    // share a cell footprint (GSM merges them) but with distinct WiFi sets.
    const geo::LatLng campus = jittered_point(config, rng, 400.0);
    Place academic;
    academic.id = static_cast<PlaceId>(places.size());
    academic.category = PlaceCategory::AcademicBuilding;
    academic.name = "academic-1";
    academic.center = campus;
    academic.radius_m = 45;
    academic.has_wifi = true;  // campuses are WiFi-covered in both regions
    places.push_back(academic);

    Place library;
    library.id = static_cast<PlaceId>(places.size());
    library.category = PlaceCategory::Library;
    library.name = "library-1";
    library.center = geo::destination(campus, 90.0, 90.0);
    library.radius_m = 35;
    library.has_wifi = true;
    places.push_back(library);
  }

  std::vector<CellTower> towers;
  add_tower_layer(towers, config, rng, Radio::Gsm2G,
                  config.region.tower_spacing_2g_m, 100);
  add_tower_layer(towers, config, rng, Radio::Umts3G,
                  config.region.tower_spacing_3g_m, 500);

  std::vector<WifiAp> aps;
  for (const auto& p : places) {
    if (!p.has_wifi) continue;
    const int n_aps = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < n_aps; ++k) {
      WifiAp ap;
      ap.bssid = random_bssid(rng);
      ap.pos = geo::destination(p.center, rng.uniform(0, 360),
                                rng.uniform(0, p.radius_m * 0.6));
      ap.tx_power_dbm = 20.0 + rng.uniform(-3.0, 3.0);
      ap.shadowing_db = rng.normal(0.0, 2.5);
      ap.place = p.id;
      aps.push_back(std::move(ap));
    }
  }
  const double area_km2 = (config.extent_m / 1000.0) * (config.extent_m / 1000.0);
  const int street_aps =
      static_cast<int>(config.region.street_ap_density_per_km2 * area_km2);
  for (int k = 0; k < street_aps; ++k) {
    WifiAp ap;
    ap.bssid = random_bssid(rng);
    ap.pos = jittered_point(config, rng, 50.0);
    // Street APs are residential routers heard through walls: much weaker
    // than a POI's own AP, hearable only within ~75 m. Keeping them weak
    // matters — an AP at the edge of visibility flickers in and out of
    // scans and would mint phantom place fingerprints.
    ap.tx_power_dbm = 12.0 + rng.uniform(-3.0, 3.0);
    ap.shadowing_db = rng.normal(0.0, 2.5);
    ap.place = kNoPlace;
    aps.push_back(std::move(ap));
  }

  return std::make_shared<const World>(config, std::move(places),
                                       std::move(towers), std::move(aps));
}

}  // namespace pmware::world
