#include "world/radio.hpp"

#include <algorithm>
#include <cmath>

namespace pmware::world {

double PathLossModel::rssi_dbm(double tx_power_dbm, double distance_m,
                               double shadowing_db) const {
  const double d = std::max(distance_m, 1.0);
  return tx_power_dbm - reference_loss_db - 10.0 * exponent * std::log10(d) +
         shadowing_db;
}

// With tx = 43 dBm this puts the detection edge (-108 dBm) near 2.9 km,
// a realistic urban macro-cell hearability radius.
PathLossModel cell_path_loss() { return PathLossModel{3.5, 30.0}; }

PathLossModel wifi_path_loss() { return PathLossModel{3.2, 40.0}; }

}  // namespace pmware::world
