// Grid road network and shortest-path route planner.
//
// Participant trips between places travel along these roads; the resulting
// polylines are what GPS/route tracking observes.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/latlng.hpp"

namespace pmware::world {

/// Rectangular grid of streets with `spacing_m` between intersections,
/// anchored at `origin` (south-west corner), `cols` x `rows` intersections.
class RoadNetwork {
 public:
  RoadNetwork(geo::LatLng origin, double spacing_m, int cols, int rows);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  double spacing_m() const { return spacing_m_; }

  /// Position of intersection (i, j); i in [0, cols), j in [0, rows).
  geo::LatLng node(int i, int j) const;

  /// Nearest intersection to `p` (clamped into the grid).
  std::pair<int, int> nearest_node(const geo::LatLng& p) const;

  /// Shortest road path from `from` to `to`: starts at `from`, follows grid
  /// streets (Dijkstra over intersections), ends at `to`. Always returns at
  /// least {from, to}.
  std::vector<geo::LatLng> route(const geo::LatLng& from,
                                 const geo::LatLng& to) const;

 private:
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(j) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(i);
  }

  geo::LatLng origin_;
  double spacing_m_;
  int cols_;
  int rows_;
};

}  // namespace pmware::world
