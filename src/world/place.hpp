// Points of interest: the ground-truth "places" participants visit.
#pragma once

#include <string>

#include "geo/latlng.hpp"
#include "world/ids.hpp"

namespace pmware::world {

/// Semantic category of a POI; mirrors the labels users attach in the paper's
/// life-logging app ("Home", "Workplace", "Market", ...) and the ad targeting
/// categories of PlaceADs.
enum class PlaceCategory : std::uint8_t {
  Home,
  Workplace,
  Market,
  Restaurant,
  Cafe,
  Mall,
  Gym,
  Park,
  Library,
  AcademicBuilding,
  Hospital,
  Cinema,
  TransitHub,
  Other,
};

const char* to_string(PlaceCategory c);

/// A ground-truth place. Its radius approximates the building footprint; WiFi
/// presence depends on the region profile (paper §1 limitation 4).
struct Place {
  PlaceId id = kNoPlace;
  std::string name;
  PlaceCategory category = PlaceCategory::Other;
  geo::LatLng center;
  double radius_m = 50;
  bool has_wifi = true;

  bool contains(const geo::LatLng& p) const {
    return geo::distance_m(center, p) <= radius_m;
  }
};

}  // namespace pmware::world
