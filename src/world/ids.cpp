#include "world/ids.hpp"

#include <cstdio>

namespace pmware::world {

std::string CellId::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u-%u-%u-%u/%s", mcc, mnc, lac, cid,
                radio == Radio::Gsm2G ? "2G" : "3G");
  return buf;
}

std::string bssid_to_string(Bssid b) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((b >> 40) & 0xff),
                static_cast<unsigned>((b >> 32) & 0xff),
                static_cast<unsigned>((b >> 24) & 0xff),
                static_cast<unsigned>((b >> 16) & 0xff),
                static_cast<unsigned>((b >> 8) & 0xff),
                static_cast<unsigned>(b & 0xff));
  return buf;
}

}  // namespace pmware::world
