// Radio infrastructure: cell towers and WiFi access points, plus the
// log-distance propagation model both share.
#pragma once

#include <optional>

#include "geo/latlng.hpp"
#include "world/ids.hpp"

namespace pmware::world {

/// A base station. Each tower serves one cell; 2G and 3G towers form two
/// overlapping layers so that inter-network handoff can occur.
struct CellTower {
  TowerId id = 0;
  CellId cell;
  geo::LatLng pos;
  double tx_power_dbm = 43.0;   ///< macro-cell EIRP
  double range_hint_m = 1200;   ///< nominal coverage radius (for generation)
  double shadowing_db = 0;      ///< fixed per-tower shadowing offset
};

/// A WiFi access point, anchored to a place or a street segment.
struct WifiAp {
  Bssid bssid = 0;
  geo::LatLng pos;
  double tx_power_dbm = 20.0;
  double shadowing_db = 0;
  PlaceId place = kNoPlace;  ///< owning place, or kNoPlace for street APs
};

/// Log-distance path-loss model:
///   rssi = tx_dbm - 10 * exponent * log10(max(d, 1m)) + shadowing
/// Deterministic; time-varying fading is added by the sensing layer.
struct PathLossModel {
  double exponent = 3.5;
  double reference_loss_db = 30.0;  ///< loss at 1 m

  double rssi_dbm(double tx_power_dbm, double distance_m,
                  double shadowing_db) const;
};

/// Default models for macro cells and WiFi.
PathLossModel cell_path_loss();
PathLossModel wifi_path_loss();

/// Detection thresholds: below these the receiver does not see the emitter.
inline constexpr double kCellDetectionDbm = -108.0;
inline constexpr double kWifiDetectionDbm = -88.0;

}  // namespace pmware::world
