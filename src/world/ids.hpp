// Identifier types shared across the world model, sensing layer and
// place-discovery algorithms.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace pmware::world {

/// Radio access technology of a cell. The 2G/3G split matters because
/// inter-network handoff is one source of the "oscillation effect" GCA
/// has to model (paper §2.2.2).
enum class Radio : std::uint8_t { Gsm2G = 0, Umts3G = 1 };

/// Globally unique cell identity, as surfaced by the modem:
/// MCC + MNC + LAC + CID (paper §2.2.2 tracks exactly these four fields).
struct CellId {
  std::uint16_t mcc = 0;   ///< mobile country code
  std::uint16_t mnc = 0;   ///< mobile network code
  std::uint16_t lac = 0;   ///< location area code
  std::uint32_t cid = 0;   ///< cell id within the LAC
  Radio radio = Radio::Gsm2G;

  auto operator<=>(const CellId&) const = default;

  /// Packed 64-bit key for hashing / compact storage.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(mcc) << 52) |
           (static_cast<std::uint64_t>(mnc) << 42) |
           (static_cast<std::uint64_t>(lac) << 26) |
           (static_cast<std::uint64_t>(cid) << 1) |
           static_cast<std::uint64_t>(radio);
  }

  std::string to_string() const;
};

/// WiFi access-point BSSID (48-bit MAC stored in 64 bits).
using Bssid = std::uint64_t;

/// Index of a place/POI within a World.
using PlaceId = std::uint32_t;
inline constexpr PlaceId kNoPlace = 0xffffffffu;

/// Index of a cell tower within a World.
using TowerId = std::uint32_t;

/// Identifier of a simulated participant / device.
using DeviceId = std::uint32_t;

std::string bssid_to_string(Bssid b);

}  // namespace pmware::world

template <>
struct std::hash<pmware::world::CellId> {
  std::size_t operator()(const pmware::world::CellId& c) const noexcept {
    return std::hash<std::uint64_t>{}(c.key());
  }
};
