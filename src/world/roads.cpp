#include "world/roads.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace pmware::world {

RoadNetwork::RoadNetwork(geo::LatLng origin, double spacing_m, int cols,
                         int rows)
    : origin_(origin), spacing_m_(spacing_m), cols_(cols), rows_(rows) {
  if (spacing_m <= 0) throw std::invalid_argument("RoadNetwork: spacing <= 0");
  if (cols < 2 || rows < 2)
    throw std::invalid_argument("RoadNetwork: grid must be at least 2x2");
}

geo::LatLng RoadNetwork::node(int i, int j) const {
  return geo::from_enu(origin_, {spacing_m_ * i, spacing_m_ * j});
}

std::pair<int, int> RoadNetwork::nearest_node(const geo::LatLng& p) const {
  const geo::EnuOffset off = geo::to_enu(origin_, p);
  const int i = std::clamp(static_cast<int>(std::lround(off.east_m / spacing_m_)),
                           0, cols_ - 1);
  const int j = std::clamp(static_cast<int>(std::lround(off.north_m / spacing_m_)),
                           0, rows_ - 1);
  return {i, j};
}

std::vector<geo::LatLng> RoadNetwork::route(const geo::LatLng& from,
                                            const geo::LatLng& to) const {
  const auto [si, sj] = nearest_node(from);
  const auto [ti, tj] = nearest_node(to);

  // Dijkstra over the grid (uniform edge weights => effectively BFS, but we
  // keep Dijkstra so non-uniform road costs can be added later).
  const std::size_t n = static_cast<std::size_t>(cols_) * rows_;
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::int32_t> prev(n, -1);
  using QE = std::pair<double, std::size_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;

  const std::size_t start = index(si, sj);
  const std::size_t goal = index(ti, tj);
  dist[start] = 0;
  queue.push({0, start});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == goal) break;
    const int ui = static_cast<int>(u % static_cast<std::size_t>(cols_));
    const int uj = static_cast<int>(u / static_cast<std::size_t>(cols_));
    const std::pair<int, int> neighbors[4] = {
        {ui + 1, uj}, {ui - 1, uj}, {ui, uj + 1}, {ui, uj - 1}};
    for (const auto& [vi, vj] : neighbors) {
      if (vi < 0 || vi >= cols_ || vj < 0 || vj >= rows_) continue;
      const std::size_t v = index(vi, vj);
      const double nd = d + spacing_m_;
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = static_cast<std::int32_t>(u);
        queue.push({nd, v});
      }
    }
  }

  std::vector<std::size_t> nodes;
  for (std::size_t at = goal; ; at = static_cast<std::size_t>(prev[at])) {
    nodes.push_back(at);
    if (at == start || prev[at] < 0) break;
  }
  std::reverse(nodes.begin(), nodes.end());

  std::vector<geo::LatLng> line;
  line.push_back(from);
  for (std::size_t u : nodes) {
    const int i = static_cast<int>(u % static_cast<std::size_t>(cols_));
    const int j = static_cast<int>(u / static_cast<std::size_t>(cols_));
    line.push_back(node(i, j));
  }
  line.push_back(to);
  return line;
}

}  // namespace pmware::world
