#include "world/place.hpp"

namespace pmware::world {

const char* to_string(PlaceCategory c) {
  switch (c) {
    case PlaceCategory::Home: return "home";
    case PlaceCategory::Workplace: return "workplace";
    case PlaceCategory::Market: return "market";
    case PlaceCategory::Restaurant: return "restaurant";
    case PlaceCategory::Cafe: return "cafe";
    case PlaceCategory::Mall: return "mall";
    case PlaceCategory::Gym: return "gym";
    case PlaceCategory::Park: return "park";
    case PlaceCategory::Library: return "library";
    case PlaceCategory::AcademicBuilding: return "academic";
    case PlaceCategory::Hospital: return "hospital";
    case PlaceCategory::Cinema: return "cinema";
    case PlaceCategory::TransitHub: return "transit";
    case PlaceCategory::Other: return "other";
  }
  return "other";
}

}  // namespace pmware::world
