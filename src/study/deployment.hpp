// Deployment-study harness (paper §4): N participants carry a PMWare-
// equipped device for D days; every participant runs the full middleware
// stack (PMS + cloud sync + PlaceADs + life-logging), and the harness
// reproduces the paper's evaluation table: places discovered, tagged
// fraction, correct/merged/divided split, and the PlaceADs like:dislike
// ratio.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/evaluate.hpp"
#include "apps/lifelog.hpp"
#include "apps/placeads.hpp"
#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/schedule.hpp"
#include "telemetry/timeseries.hpp"
#include "util/arena.hpp"
#include "world/world.hpp"

namespace pmware::study {

/// Which study runner executes the participants.
///
///  * Materialized — the historical runner: every participant profile, RNG
///    and result is built up front and kept for the whole run. O(N) memory;
///    the reference implementation the streaming runner is differentially
///    tested against.
///  * Streaming — wave-scheduled: participants are constructed on first
///    touch, run their sim-days, sync, and retire (their cloud record is
///    folded into the archived accumulators) before the next wave is
///    admitted. Peak memory is O(threads + wave), not O(N) — this is what
///    makes a 100k-participant study fit in bounded memory. The cloud
///    content digest is byte-identical to Materialized at any
///    threads x shards x cache x fault-plan combination.
///  * Auto — Streaming, keeping per-participant results and the place map
///    while the population is small enough to afford them (N <= 256) and
///    switching to slot-scoped aggregate-only collection above.
enum class RunnerMode : std::uint8_t { Auto, Materialized, Streaming };

struct StudyConfig {
  int participants = 16;
  int days = 14;
  std::uint64_t seed = 20141208;  ///< Middleware'14 started Dec 8, 2014
  world::WorldConfig world;
  mobility::ScheduleConfig schedule;
  sensing::DeviceConfig device;
  core::InferenceConfig inference;
  net::NetworkConditions network{0.01, 1};
  /// Probability a participant tags a discovered place (paper: 85/123 ≈ 70%).
  double tag_probability = 0.70;
  /// Fraction of tagged places whose diary entry lacks departure info and is
  /// therefore excluded from the accuracy evaluation (paper: 85 -> 62).
  double missing_departure_prob = 0.27;
  /// Hybrid GSM + opportunistic WiFi (the paper's deployed configuration);
  /// false = GSM-only ablation.
  bool use_wifi = true;
  bool offload_gca = true;
  /// Run PlaceADs on every device.
  bool run_placeads = true;
  /// Worker threads simulating participants concurrently (1 = sequential).
  /// Results are identical for every value: participants are independent
  /// except for the cloud instance (whose storage is sharded per user, so
  /// concurrent requests only synchronize on their own shard), and all
  /// per-participant RNGs are forked before workers start.
  int threads = 1;
  /// Cloud storage shards (CloudConfig::shards). Results are identical for
  /// every value; more shards just means less lock contention when
  /// threads > 1.
  int shards = static_cast<int>(cloud::CloudStorage::kDefaultShards);
  /// Scripted cloud-side failures (CloudConfig::fault_plan; --fault-plan in
  /// studyctl/bench). Science results and the final cloud content digest
  /// are identical to a no-fault run once the outbox drains — that
  /// recovery-equivalence invariant is asserted in tests/test_study.cpp.
  net::FaultPlan fault_plan;
  /// Client resilience knobs, applied to every participant's RestClient.
  net::RetryPolicy retry;
  net::BreakerPolicy breaker;
  /// Per-participant store-and-forward outbox bound.
  core::OutboxConfig outbox;
  /// Content-addressed caching on both sides of the wire (--cache in
  /// studyctl/bench): device + cloud GCA offload caches, the cloud-side
  /// analytics result cache, and the client's conditional-GET (ETag /
  /// If-None-Match) cache. Science results and the cloud content digest
  /// are byte-identical on/off — caching only removes work — which the
  /// cache_sweep bench and tests/test_cache.cpp assert.
  bool cache = true;
  /// Sim-time series recorder settings (--no-timeseries in studyctl). The
  /// study samples the default counter/gauge families once per interval of
  /// *fleet* sim-time (completed participant-days / participants, in
  /// seconds), so a D-day study yields exactly D samples regardless of
  /// thread count or participant interleaving. Telemetry never touches
  /// science state or RNG streams, so the content digest is byte-identical
  /// on/off — the determinism guard in tests/test_alerting.cpp asserts it.
  telemetry::TimeSeriesConfig timeseries;
  /// Evaluate the default SLO alert rules at every timeseries sample
  /// (--no-alerts in studyctl). Same determinism guarantee as above.
  bool alerts = true;
  /// Runner selection (--runner in studyctl). Results — science numbers and
  /// the cloud content digest — are byte-identical across runners; the
  /// choice only trades memory for per-participant detail.
  RunnerMode runner = RunnerMode::Auto;
  /// Streaming wave size (--wave in studyctl): participants admitted per
  /// scheduling epoch. 0 = auto (4 per worker thread, min 16). Any value
  /// yields identical results; it only bounds how many participant
  /// profiles are materialized at once.
  int wave_size = 0;
};

/// One entry of the Figure-5b place map.
struct PlaceMapEntry {
  int participant = 0;
  core::PlaceUid uid = core::kNoPlaceUid;
  std::string label;
  std::optional<geo::LatLng> location;
};

struct ParticipantResult {
  mobility::Participant profile;
  std::size_t places_discovered = 0;  ///< distinct places with logged visits
  std::size_t places_tagged = 0;
  std::size_t places_evaluable = 0;
  algorithms::DiscoveredEvaluation eval;
  std::size_t ad_likes = 0;
  std::size_t ad_dislikes = 0;
  double sensing_joules = 0;
  double implied_battery_hours = 0;
  core::PmsStats pms_stats;
};

/// Commutatively folded aggregate of ParticipantResults — what the
/// streaming runner keeps instead of the per-participant vector. One
/// instance serves as the whole-study total and one per archetype cohort.
struct CohortStats {
  std::uint64_t participants = 0;
  std::uint64_t places_discovered = 0;
  std::uint64_t places_tagged = 0;
  std::uint64_t places_evaluable = 0;
  /// Outcome counts of the evaluable (tagged, with-departure) split,
  /// indexed by DiscoveredOutcome.
  std::uint64_t outcomes[4] = {0, 0, 0, 0};
  std::uint64_t ad_likes = 0;
  std::uint64_t ad_dislikes = 0;
  double sensing_joules = 0;
  double battery_hours = 0;

  void fold(const ParticipantResult& r);
  std::uint64_t outcome(algorithms::DiscoveredOutcome o) const {
    return outcomes[static_cast<std::size_t>(o)];
  }
};

struct StudyResult {
  /// Per-participant detail. Populated by the materialized runner and by
  /// streaming runs small enough to afford it; EMPTY in aggregate-only
  /// streaming runs (the totals below carry the study numbers there).
  std::vector<ParticipantResult> participants;
  std::vector<PlaceMapEntry> place_map;
  /// Folded aggregates — filled by every runner, so total_*()/summary()
  /// read identically whether or not per-participant detail was kept.
  CohortStats totals;
  std::map<mobility::Archetype, CohortStats> cohorts;
  /// Post-join snapshot of the cloud storage: aggregate record counts and
  /// the order-independent content digest — the determinism fingerprint
  /// that must match across thread and shard counts (and runners).
  cloud::CloudStorage::Stats storage_stats;
  std::uint64_t storage_digest = 0;

  std::size_t total_discovered() const;
  std::size_t total_tagged() const;
  std::size_t total_evaluable() const;
  std::size_t total(algorithms::DiscoveredOutcome o) const;
  double fraction(algorithms::DiscoveredOutcome o) const;
  std::size_t total_likes() const;
  std::size_t total_dislikes() const;

  /// The paper's §4 paragraph as a table.
  std::string summary() const;
};

class DeploymentStudy {
 public:
  /// Auto-runner boundary: streaming studies at or below this population
  /// keep per-participant results and the place map; larger ones collect
  /// aggregates only (CohortStats + storage fingerprint).
  static constexpr int kDetailThreshold = 256;

  explicit DeploymentStudy(StudyConfig config);

  /// Runs the full study (deterministic for a given config).
  StudyResult run();

  const world::World& world() const { return *world_; }

  /// Completed participant-days across all workers — the study's progress
  /// axis. studyctl's --progress reporter polls this.
  std::uint64_t participant_days_done() const {
    return days_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t participant_days_total() const {
    return static_cast<std::uint64_t>(config_.participants) *
           static_cast<std::uint64_t>(config_.days);
  }

 private:
  /// Simulates one participant end to end. `place_map` may be null
  /// (aggregate-only collection skips the Figure-5b inventory), `arena`
  /// may be null (heap-backed engine logs), and `retire` folds the
  /// participant's cloud record into the archived accumulators after the
  /// final sync — the streaming runner's memory-release step.
  ParticipantResult run_participant(const mobility::Participant& participant,
                                    cloud::CloudInstance& cloud, Rng& rng,
                                    std::vector<PlaceMapEntry>* place_map,
                                    util::Arena* arena, bool retire);
  /// The historical materialize-everything runner (the differential-oracle
  /// reference for the streaming runner).
  StudyResult run_materialized();
  /// Wave-scheduled bounded-memory runner; `detail` keeps per-participant
  /// results and the place map.
  StudyResult run_streaming(bool detail);
  /// Shared prologue: telemetry recorder/alert setup.
  void configure_telemetry();
  /// Called by workers after each completed participant-day: bumps the
  /// progress counter, advances fleet sim-time, and lets the recorder /
  /// alert engine sample at most once per crossed interval.
  void note_participant_day();

  StudyConfig config_;
  std::shared_ptr<const world::World> world_;
  Rng rng_;
  std::atomic<std::uint64_t> days_done_{0};
};

}  // namespace pmware::study
