#include "study/deployment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "energy/profile.hpp"
#include "net/fault.hpp"

#include "telemetry/alerts.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/log.hpp"
#include "util/strfmt.hpp"

namespace pmware::study {

using algorithms::DiscoveredOutcome;

DeploymentStudy::DeploymentStudy(StudyConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  Rng world_rng = rng_.fork(1);
  world_ = world::generate_world(config_.world, world_rng);
}

namespace {

/// Diary state for one discovered place.
struct TagState {
  bool tagged = false;
  bool has_departure = true;
};

/// Finds the ground-truth place whose visits overlap this discovered
/// place's logged visits the most.
std::optional<world::PlaceId> dominant_truth(
    const core::VisitLog& log, core::PlaceUid uid,
    const std::vector<mobility::Visit>& truth) {
  std::map<world::PlaceId, SimDuration> overlap;
  for (const auto& lv : log) {
    if (lv.uid != uid) continue;
    for (const auto& tv : truth) {
      const SimDuration o = lv.window.overlap_length(tv.window);
      if (o > 0) overlap[tv.place] += o;
    }
  }
  std::optional<world::PlaceId> best;
  SimDuration best_overlap = 0;
  for (const auto& [place, o] : overlap) {
    if (o > best_overlap) {
      best = place;
      best_overlap = o;
    }
  }
  return best;
}

/// End-of-day diary session: the participant looks at newly discovered
/// places in the life-logging UI and tags ~70% of them with their semantic
/// category (paper §4: "participants tagged 85 places ... nearly 70%").
void diary_session(core::PmwareMobileService& pms, const world::World& world,
                   const std::vector<mobility::Visit>& truth,
                   const StudyConfig& config, SimTime now, Rng& rng,
                   std::map<core::PlaceUid, TagState>& diary) {
  const auto& log = pms.inference().visit_log();
  for (const auto& [uid, record] : pms.places().records()) {
    if (diary.count(uid)) continue;
    // Only places the user has actually seen in the UI (has logged visits).
    const bool visited =
        std::any_of(log.begin(), log.end(),
                    [&](const core::LoggedVisit& v) { return v.uid == uid; });
    if (!visited) continue;

    TagState state;
    state.tagged = rng.bernoulli(config.tag_probability);
    if (state.tagged) {
      std::string label = "place";
      if (const auto truth_place = dominant_truth(log, uid, truth))
        label = world::to_string(world.place(*truth_place).category);
      pms.tag_place(uid, label, now);
      state.has_departure = !rng.bernoulli(config.missing_departure_prob);
    }
    diary.emplace(uid, state);
  }
}

/// Accumulates one incarnation's counter view into a participant's
/// cross-incarnation total. outbox_pending is queue state, not a counter:
/// a torn-down incarnation's pending entries were already accounted as
/// dropped, so only a live incarnation contributes pending.
void fold_stats(core::PmsStats& into, const core::PmsStats& s, bool dead) {
  into.place_events_delivered += s.place_events_delivered;
  into.route_events_delivered += s.route_events_delivered;
  into.encounters_delivered += s.encounters_delivered;
  into.profile_syncs += s.profile_syncs;
  into.token_refreshes += s.token_refreshes;
  into.gca_offloads += s.gca_offloads;
  into.gca_local_runs += s.gca_local_runs;
  into.sync_failures += s.sync_failures;
  into.outbox_enqueued += s.outbox_enqueued;
  into.outbox_delivered += s.outbox_delivered;
  into.outbox_recovered += s.outbox_recovered;
  into.outbox_evicted += s.outbox_evicted;
  into.outbox_dropped += s.outbox_dropped;
  into.outbox_pending = dead ? 0 : s.outbox_pending;
}

}  // namespace

ParticipantResult DeploymentStudy::run_participant(
    const mobility::Participant& participant, cloud::CloudInstance& cloud,
    Rng& rng, std::vector<PlaceMapEntry>* place_map, util::Arena* arena,
    bool retire) {
  telemetry::Span span(telemetry::tracer(),
                       "study.participant." + participant.name, 0);
  Rng trace_rng = rng.fork(1);
  const mobility::Trace trace =
      mobility::build_trace(*world_, participant, config_.schedule, trace_rng);
  const std::vector<mobility::Visit> truth_visits =
      trace.significant_visits(config_.inference.min_visit_dwell);

  core::PmsConfig pms_config;
  pms_config.imei = strfmt("35824005%07u", participant.id + 1);
  pms_config.email = participant.name + "@study.pmware.org";
  pms_config.inference = config_.inference;
  pms_config.inference.wifi_enabled = config_.use_wifi;
  pms_config.offload_gca = config_.offload_gca;
  pms_config.outbox = config_.outbox;
  pms_config.cache = config_.cache;
  pms_config.arena = arena;

  const net::FaultPlan& plan = config_.fault_plan;
  const bool churn = plan.has_device_rules();
  const std::int64_t join_day = churn ? plan.join_day(pms_config.imei) : 0;

  // Device lifecycle: the PMS (and the apps connected to it) live and die
  // with an incarnation. A crash destroys the stack and reboots it after
  // restart_delay from the last end-of-day checkpoint; a privacy wipe
  // destroys it, clears the checkpoint, and re-registers from nothing.
  std::unique_ptr<core::PmwareMobileService> pms;
  std::optional<apps::LifeLog> lifelog;
  std::optional<apps::PlaceAds> placeads;

  // Cross-incarnation accumulators: counters from torn-down incarnations
  // fold in here; the final live incarnation is folded at evaluation.
  core::PmsStats stats_acc;
  double joules_acc = 0.0;
  double total_joules_acc = 0.0;  ///< sensing + baseline, for battery life
  std::size_t likes_acc = 0, dislikes_acc = 0;
  std::size_t restarts = 0;
  std::string checkpoint;  ///< serialized end-of-day state; empty = none

  // Boot one incarnation at sim-time `now`. The first boot draws RNG forks
  // 2..5 — the exact historical sequence, so no-fault runs replay the golden
  // digest bit-for-bit. Reboots draw from a disjoint salt range; Rng::fork
  // consumes parent state, so reboot forks only happen when a fault actually
  // fired, leaving the no-fault stream untouched.
  const auto boot = [&](SimTime now, bool recover) {
    const std::uint64_t base =
        restarts == 0 ? 2 : 7000 + 8 * static_cast<std::uint64_t>(restarts);
    auto device = std::make_unique<sensing::Device>(
        world_, sensing::oracle_from_trace(trace), config_.device,
        rng.fork(base + 0));
    auto client = std::make_unique<net::RestClient>(
        &cloud.router(), config_.network, rng.fork(base + 1));
    client->set_retry_policy(config_.retry);
    client->set_breaker_policy(config_.breaker);
    client->set_cache_policy({config_.cache, 64});
    pms = std::make_unique<core::PmwareMobileService>(
        std::move(device), pms_config, std::move(client), rng.fork(base + 2));
    Rng ads_rng = rng.fork(base + 3);
    lifelog.emplace();
    lifelog->connect(*pms);
    if (config_.run_placeads) {
      placeads.emplace(apps::AdInventory::default_catalogue(),
                       std::move(ads_rng));
      placeads->connect(*pms);
    }
    ++restarts;
    if (recover && !checkpoint.empty()) {
      std::istringstream in(checkpoint);
      if (pms->restore(in)) {
        pms->register_with_cloud(now);  // fresh boot epoch for the survivor
        return;
      }
      checkpoint.clear();  // torn checkpoint: fall through to cold restart
    }
    if (recover) {
      pms->cold_restart(now);  // no usable checkpoint: rebuild from cloud
      return;
    }
    pms->register_with_cloud(now);
  };

  // Tear down the current incarnation. A crash loses everything the outbox
  // had not yet synced (discard_pending accounts those as dropped); a clean
  // teardown only happens at wipe time, where pending entries die with the
  // erased account anyway.
  const auto teardown = [&](bool crashed) {
    if (!pms) return;
    if (crashed) pms->discard_pending();
    fold_stats(stats_acc, pms->stats(), /*dead=*/true);
    joules_acc += pms->meter().sensing_j();
    total_joules_acc += pms->meter().total_j();
    if (placeads) {
      likes_acc += placeads->likes();
      dislikes_acc += placeads->dislikes();
    }
    placeads.reset();
    lifelog.reset();
    pms.reset();
  };

  if (join_day == 0) boot(0, /*recover=*/false);

  Rng diary_rng = rng.fork(6);
  std::map<core::PlaceUid, TagState> diary;
  SimTime down_until = -1;  ///< >= 0: crashed, dark until this sim-time
  for (int day = 0; day < config_.days; ++day) {
    if (day < join_day) {  // late joiner: not enrolled yet
      note_participant_day();
      continue;
    }
    const SimTime day_begin = start_of_day(day);
    const SimTime day_end = start_of_day(day + 1);
    SimTime cursor = day_begin;
    if (!pms) {
      if (down_until >= day_end) {  // dark all day (long restart_delay)
        note_participant_day();
        continue;
      }
      cursor = std::max(day_begin, down_until);
      down_until = -1;
      boot(cursor, /*recover=*/true);
    }
    const net::DeviceFaultDecision decision =
        churn ? plan.evaluate_device(pms_config.imei, day)
              : net::DeviceFaultDecision{};
    if (decision.crash_at && *decision.crash_at >= cursor &&
        *decision.crash_at < day_end) {
      const SimTime crash_at = *decision.crash_at;
      if (crash_at > cursor) pms->run(TimeWindow{cursor, crash_at});
      teardown(/*crashed=*/true);
      const SimTime reboot_at =
          crash_at + std::max<SimDuration>(0, decision.restart_delay);
      if (reboot_at < day_end) {
        boot(reboot_at, /*recover=*/true);
        pms->run(TimeWindow{reboot_at, day_end});
      } else {
        down_until = reboot_at;  // dark across the day boundary
      }
    } else {
      pms->run(TimeWindow{cursor, day_end});
    }
    if (pms) {
      diary_session(*pms, *world_, truth_visits, config_, day_end, diary_rng,
                    diary);
      if (decision.wipe) {
        // Privacy wipe: erase the cloud account (raising the wipe tombstone
        // against outbox replays), destroy the device state, and start the
        // next incarnation from scratch under a fresh registration session.
        pms->wipe_cloud_data(day_end);
        teardown(/*crashed=*/true);
        checkpoint.clear();
        diary.clear();  // the wiped device's places (and uids) are gone
        boot(day_end, /*recover=*/false);
      } else if (churn) {
        std::ostringstream out;
        pms->save(out);
        checkpoint = out.str();
      }
    }
    note_participant_day();
  }
  if (!pms) {
    // Still dark at study end: the participant hands the device back, it
    // boots once more so the final sync and evaluation see recovered state.
    boot(start_of_day(config_.days), /*recover=*/true);
  }
  pms->shutdown(start_of_day(config_.days));
  diary_session(*pms, *world_, truth_visits, config_, start_of_day(config_.days),
                diary_rng, diary);

  // --- Evaluation (paper §4) ---
  ParticipantResult result;
  result.profile = participant;

  const auto& log = pms->inference().visit_log();
  std::set<core::PlaceUid> discovered;
  for (const auto& v : log) discovered.insert(v.uid);
  result.places_discovered = discovered.size();

  std::vector<algorithms::TruthVisit> truth;
  for (const auto& v : truth_visits) truth.push_back({v.place, v.window});
  std::vector<algorithms::ReportedVisit> reported;
  for (const auto& v : log)
    reported.push_back({static_cast<std::size_t>(v.uid), v.window});

  const algorithms::DiscoveredEvaluation full_eval =
      algorithms::evaluate_discovered(truth, reported);

  // Restrict the reported split to tagged places with departure info
  // (the paper's 123 -> 85 -> 62 attrition).
  for (const auto& [idx, outcome] : full_eval.outcomes) {
    const auto uid = static_cast<core::PlaceUid>(idx);
    const auto it = diary.find(uid);
    if (it == diary.end() || !it->second.tagged) continue;
    ++result.places_tagged;
    if (!it->second.has_departure) continue;
    ++result.places_evaluable;
    result.eval.outcomes[idx] = outcome;
  }

  result.ad_likes = likes_acc + (placeads ? placeads->likes() : 0);
  result.ad_dislikes = dislikes_acc + (placeads ? placeads->dislikes() : 0);
  result.sensing_joules = joules_acc + pms->meter().sensing_j();
  // Battery life from the energy of EVERY incarnation over the study span —
  // the final meter alone undercounts rebooted devices. A participant that
  // never drew power (a late joiner rolled past the study end) reports 0
  // rather than an infinite battery.
  const double total_j = total_joules_acc + pms->meter().total_j();
  const double power_w = total_j / static_cast<double>(days(config_.days));
  result.implied_battery_hours =
      power_w > 0
          ? energy::battery_duration_s(energy::Battery{}, power_w) / 3600.0
          : 0.0;
  fold_stats(stats_acc, pms->stats(), /*dead=*/false);
  result.pms_stats = stats_acc;

  auto& reg = telemetry::registry();
  reg.counter("study_places_discovered_total", {},
              "places with logged visits across all participants")
      .inc(result.places_discovered);
  reg.counter("study_places_tagged_total", {},
              "places tagged in diary sessions across all participants")
      .inc(result.places_tagged);
  reg.counter("study_ad_impressions_total", {{"reaction", "like"}},
              "PlaceADs reactions across all participants")
      .inc(result.ad_likes);
  reg.counter("study_ad_impressions_total", {{"reaction", "dislike"}},
              "PlaceADs reactions across all participants")
      .inc(result.ad_dislikes);
  reg.histogram("study_sensing_joules", {}, 0, 4000, 20,
                "per-participant sensing energy over the study, joules")
      .observe(result.sensing_joules);
  reg.histogram("study_battery_hours", {}, 0, 400, 20,
                "per-participant implied battery life, hours")
      .observe(result.implied_battery_hours);
  span.finish(start_of_day(config_.days));

  // Figure 5b inventory: every discovered place with a resolvable position.
  if (place_map != nullptr) {
    for (const core::PlaceUid uid : discovered) {
      const core::PlaceRecord* record = pms->places().get(uid);
      if (record == nullptr) continue;
      PlaceMapEntry entry;
      entry.participant = static_cast<int>(participant.id);
      entry.uid = uid;
      entry.label = record->label;
      entry.location = record->location;
      if (!entry.location)
        entry.location = cloud.geolocation().locate_signature(record->signature);
      place_map->push_back(std::move(entry));
    }
  }

  // Streaming retirement: the participant is fully synced and evaluated —
  // fold its cloud record into the archived accumulators (digest and stats
  // invariant) so the live store only ever holds the active wave.
  if (retire) {
    if (const auto uid = pms->user_id()) cloud.storage().archive_user(*uid);
  }
  return result;
}

void DeploymentStudy::note_participant_day() {
  telemetry::registry()
      .counter("study_participant_days_total", {},
               "completed participant-days across the fleet")
      .inc();
  // Fleet sim-time: completed participant-days scaled to seconds and
  // divided by fleet size. Monotone in completion count, so a D-day study
  // crosses exactly D interval boundaries no matter how workers interleave
  // — that is what keeps sample counts (and alert trajectories) identical
  // between sequential and parallel runs.
  const std::uint64_t done = days_done_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto fleet_t = static_cast<SimTime>(
      done * static_cast<std::uint64_t>(kSecondsPerDay) /
      static_cast<std::uint64_t>(std::max(config_.participants, 1)));
  if (telemetry::timeseries().advance(fleet_t) && config_.alerts)
    telemetry::alerts().evaluate(fleet_t);
}

void DeploymentStudy::configure_telemetry() {
  days_done_.store(0, std::memory_order_relaxed);
  auto& recorder = telemetry::timeseries();
  recorder.configure(config_.timeseries);
  if (config_.timeseries.enabled) {
    // The default dashboard: study progress, traffic, and every failure
    // family the default alert rules watch, plus the process gauges.
    recorder.track_counter("study_participant_days_total");
    recorder.track_counter("net_requests_total");
    recorder.track_counter("cloud_requests_total");
    recorder.track_counter("net_retries_total");
    recorder.track_counter("net_breaker_open_total");
    recorder.track_counter("pms_sync_failures_total");
    recorder.track_counter("pms_outbox_evicted_total");
    recorder.track_counter("cloud_slo_violations_total");
    recorder.track_counter("alerts_fired_total");
    recorder.track_gauge("process_rss_bytes");
    recorder.track_gauge("process_peak_rss_bytes");
    recorder.track_gauge("process_cpu_seconds");
  }
  telemetry::alerts().clear();
  if (config_.alerts) telemetry::alerts().install_default_rules();
}

StudyResult DeploymentStudy::run() {
  switch (config_.runner) {
    case RunnerMode::Materialized:
      return run_materialized();
    case RunnerMode::Streaming:
      return run_streaming(config_.participants <= kDetailThreshold);
    case RunnerMode::Auto:
      break;
  }
  // Auto: the streaming runner is the default everywhere (its digest is
  // byte-identical to the materialized reference); per-participant detail
  // is kept while the population is small enough to afford it.
  return run_streaming(config_.participants <= kDetailThreshold);
}

StudyResult DeploymentStudy::run_materialized() {
  configure_telemetry();

  Rng participants_rng = rng_.fork(2);
  const std::vector<mobility::Participant> participants =
      mobility::make_participants(*world_, config_.participants,
                                  participants_rng);

  cloud::GeoLocationService geoloc(world_->cell_location_db());
  geoloc.set_ap_db(world_->ap_location_db());
  cloud::CloudConfig cloud_config;
  cloud_config.shards = static_cast<std::size_t>(std::max(config_.shards, 1));
  cloud_config.fault_plan = config_.fault_plan;
  cloud_config.cache = config_.cache;
  cloud::CloudInstance cloud(cloud_config, std::move(geoloc), rng_.fork(3));

  telemetry::registry()
      .gauge("study_participants", {}, "participants in the deployment study")
      .set(static_cast<double>(participants.size()));

  // Fork every participant's RNG up front, in participant order: forking
  // draws from rng_, so doing it on workers would make the streams depend
  // on scheduling. After this loop workers never touch rng_.
  std::vector<Rng> rngs;
  rngs.reserve(participants.size());
  for (const auto& participant : participants)
    rngs.push_back(rng_.fork(1000 + participant.id));

  StudyResult result;
  result.participants.resize(participants.size());
  // Per-participant place-map segments, merged in participant order below
  // so the final map is independent of completion order.
  std::vector<std::vector<PlaceMapEntry>> maps(participants.size());

  const int threads =
      std::clamp(config_.threads, 1, static_cast<int>(participants.size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < participants.size(); ++i)
      result.participants[i] = run_participant(
          participants[i], cloud, rngs[i], &maps[i], nullptr, false);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr failure;
    std::mutex failure_mu;
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= participants.size()) return;
        try {
          result.participants[i] = run_participant(
              participants[i], cloud, rngs[i], &maps[i], nullptr, false);
        } catch (...) {
          const std::scoped_lock lock(failure_mu);
          if (!failure) failure = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (failure) std::rethrow_exception(failure);
  }

  // Workers have joined; snapshot the cloud's end state for the
  // determinism fingerprint.
  result.storage_stats = cloud.storage().stats();
  result.storage_digest = cloud.storage().content_digest();

  for (std::size_t i = 0; i < participants.size(); ++i) {
    const ParticipantResult& r = result.participants[i];
    result.totals.fold(r);
    result.cohorts[participants[i].archetype].fold(r);
    result.place_map.insert(result.place_map.end(), maps[i].begin(),
                            maps[i].end());
    telemetry::slog_info("study", start_of_day(config_.days),
                         "%s: %zu places, %zu tagged, %s",
             participants[i].name.c_str(), r.places_discovered,
             r.places_tagged, r.eval.summary().c_str());
  }
  return result;
}

StudyResult DeploymentStudy::run_streaming(bool detail) {
  configure_telemetry();

  // The rng_ draw order is the materialized runner's exactly: fork(2) for
  // the participant stream, fork(3) for the cloud, then fork(1000 + id) in
  // ascending id order — waves are admitted in order, so wave-by-wave
  // forking reproduces the up-front fork sequence draw for draw.
  Rng participants_rng = rng_.fork(2);
  mobility::ParticipantStream stream(*world_, participants_rng);

  cloud::GeoLocationService geoloc(world_->cell_location_db());
  geoloc.set_ap_db(world_->ap_location_db());
  cloud::CloudConfig cloud_config;
  cloud_config.shards = static_cast<std::size_t>(std::max(config_.shards, 1));
  cloud_config.fault_plan = config_.fault_plan;
  cloud_config.cache = config_.cache;
  cloud::CloudInstance cloud(cloud_config, std::move(geoloc), rng_.fork(3));

  const int total = std::max(config_.participants, 0);
  telemetry::registry()
      .gauge("study_participants", {}, "participants in the deployment study")
      .set(static_cast<double>(total));

  const int threads = std::clamp(config_.threads, 1, std::max(total, 1));
  const int wave_size = config_.wave_size > 0
                            ? config_.wave_size
                            : std::max(threads * 4, 16);

  StudyResult result;
  if (detail) result.participants.resize(static_cast<std::size_t>(total));

  // One arena per worker slot, retained across waves: after the first
  // participant warms a slot up, the steady-state sensing loop allocates
  // without touching the heap.
  std::vector<std::unique_ptr<util::Arena>> arenas;
  arenas.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    arenas.push_back(std::make_unique<util::Arena>(std::size_t{1} << 20));

  std::exception_ptr failure;
  std::mutex failure_mu;

  std::vector<mobility::Participant> wave;
  std::vector<Rng> wave_rngs;
  std::vector<std::vector<PlaceMapEntry>> wave_maps;
  // Wave-local results, folded after the barrier in id order: float
  // accumulation (joules, battery hours) is order-sensitive, so folding in
  // completion order would make the totals depend on thread scheduling.
  std::vector<ParticipantResult> wave_results;

  for (int base = 0; base < total; base += wave_size) {
    const int n = std::min(wave_size, total - base);
    // Admission: materialize this wave's profiles and RNG forks, both in
    // ascending id order (the determinism contract).
    wave.clear();
    wave_rngs.clear();
    for (int k = 0; k < n; ++k) {
      wave.push_back(stream.next());
      wave_rngs.push_back(
          rng_.fork(1000 + static_cast<std::uint64_t>(base + k)));
    }
    wave_maps.assign(static_cast<std::size_t>(n), {});
    wave_results.assign(static_cast<std::size_t>(n), {});

    std::atomic<int> next{0};
    auto worker = [&](int slot) {
      // Aggregate mode reuses one instance label per slot, so the metrics
      // registry stays O(threads) instead of growing by O(participants).
      std::optional<telemetry::InstanceLabelScope> scope;
      if (!detail) scope.emplace(strfmt("w%d", slot));
      while (true) {
        const int k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= n) return;
        try {
          wave_results[static_cast<std::size_t>(k)] = run_participant(
              wave[static_cast<std::size_t>(k)], cloud,
              wave_rngs[static_cast<std::size_t>(k)],
              detail ? &wave_maps[static_cast<std::size_t>(k)] : nullptr,
              arenas[static_cast<std::size_t>(slot)].get(), true);
          // The participant retired (PMS destroyed, cloud record archived):
          // recycle the slot's warm allocation footprint.
          arenas[static_cast<std::size_t>(slot)]->reset();
        } catch (...) {
          const std::scoped_lock lock(failure_mu);
          if (!failure) failure = std::current_exception();
        }
      }
    };

    if (threads <= 1 || n <= 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      const int active = std::min(threads, n);
      pool.reserve(static_cast<std::size_t>(active));
      for (int t = 0; t < active; ++t) pool.emplace_back(worker, t);
      for (std::thread& t : pool) t.join();
    }
    if (failure) std::rethrow_exception(failure);

    // Wave barrier passed: fold results and merge place-map segments in id
    // order so totals and the map are independent of completion order.
    for (int k = 0; k < n; ++k) {
      ParticipantResult& r = wave_results[static_cast<std::size_t>(k)];
      result.totals.fold(r);
      result.cohorts[r.profile.archetype].fold(r);
      if (detail) {
        result.place_map.insert(result.place_map.end(),
                                wave_maps[static_cast<std::size_t>(k)].begin(),
                                wave_maps[static_cast<std::size_t>(k)].end());
        result.participants[static_cast<std::size_t>(base + k)] = std::move(r);
      }
    }
  }

  // Every wave retired; the live store holds no users — the fingerprint is
  // the archived accumulators plus whatever a failed retirement left live.
  result.storage_stats = cloud.storage().stats();
  result.storage_digest = cloud.storage().content_digest();
  return result;
}

void CohortStats::fold(const ParticipantResult& r) {
  ++participants;
  places_discovered += r.places_discovered;
  places_tagged += r.places_tagged;
  places_evaluable += r.places_evaluable;
  for (const auto& [idx, outcome] : r.eval.outcomes)
    ++outcomes[static_cast<std::size_t>(outcome)];
  ad_likes += r.ad_likes;
  ad_dislikes += r.ad_dislikes;
  sensing_joules += r.sensing_joules;
  battery_hours += r.implied_battery_hours;
}

std::size_t StudyResult::total_discovered() const {
  return static_cast<std::size_t>(totals.places_discovered);
}

std::size_t StudyResult::total_tagged() const {
  return static_cast<std::size_t>(totals.places_tagged);
}

std::size_t StudyResult::total_evaluable() const {
  return static_cast<std::size_t>(totals.places_evaluable);
}

std::size_t StudyResult::total(DiscoveredOutcome o) const {
  return static_cast<std::size_t>(totals.outcome(o));
}

double StudyResult::fraction(DiscoveredOutcome o) const {
  const std::size_t denom = total(DiscoveredOutcome::Correct) +
                            total(DiscoveredOutcome::Merged) +
                            total(DiscoveredOutcome::Divided);
  if (denom == 0) return 0.0;
  return static_cast<double>(total(o)) / static_cast<double>(denom);
}

std::size_t StudyResult::total_likes() const {
  return static_cast<std::size_t>(totals.ad_likes);
}

std::size_t StudyResult::total_dislikes() const {
  return static_cast<std::size_t>(totals.ad_dislikes);
}

std::string StudyResult::summary() const {
  std::string out;
  out += strfmt("participants:            %llu\n",
                static_cast<unsigned long long>(totals.participants));
  out += strfmt("places discovered:       %zu\n", total_discovered());
  out += strfmt("places tagged:           %zu (%.1f%%)\n", total_tagged(),
                total_discovered() == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(total_tagged()) /
                          static_cast<double>(total_discovered()));
  out += strfmt("evaluable (w/ departure): %zu\n", total_evaluable());
  out += strfmt("  correct:   %3zu (%.2f%%)\n", total(DiscoveredOutcome::Correct),
                100 * fraction(DiscoveredOutcome::Correct));
  out += strfmt("  merged:    %3zu (%.2f%%)\n", total(DiscoveredOutcome::Merged),
                100 * fraction(DiscoveredOutcome::Merged));
  out += strfmt("  divided:   %3zu (%.2f%%)\n", total(DiscoveredOutcome::Divided),
                100 * fraction(DiscoveredOutcome::Divided));
  const std::size_t impressions = total_likes() + total_dislikes();
  if (impressions > 0) {
    const double like20 = 20.0 * static_cast<double>(total_likes()) /
                          static_cast<double>(impressions);
    out += strfmt("PlaceADs impressions:    %zu, like:dislike = %.1f : %.1f\n",
                  impressions, like20, 20.0 - like20);
  }
  for (const auto& [archetype, c] : cohorts) {
    const double denom = c.participants > 0
                             ? static_cast<double>(c.participants)
                             : 1.0;
    out += strfmt(
        "cohort %-14s %llu participants, %.1f places/p, %.0f J/p, "
        "%.0f h battery\n",
        mobility::to_string(archetype),
        static_cast<unsigned long long>(c.participants),
        static_cast<double>(c.places_discovered) / denom,
        c.sensing_joules / denom, c.battery_hours / denom);
  }
  return out;
}

}  // namespace pmware::study
