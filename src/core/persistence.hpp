// JSONL persistence for PMWare data products: raw GSM observation logs,
// visit logs, place records, and mobility profiles.
//
// A real deployment must survive process restarts and ship logs for offline
// analysis; this is the serialization layer for that (one JSON document per
// line, append-friendly, stream-based so it is storage-agnostic).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "algorithms/gca.hpp"
#include "core/inference_engine.hpp"
#include "core/model.hpp"
#include "core/place_store.hpp"

namespace pmware::core {

// --- GSM observation log (the GCA input that gets offloaded) ---
void write_gsm_log(std::ostream& out,
                   std::span<const algorithms::CellObservation> log);
std::vector<algorithms::CellObservation> read_gsm_log(std::istream& in);

// --- Visit log (the authoritative post-recluster stays) ---
void write_visit_log(std::ostream& out, std::span<const LoggedVisit> log);
std::vector<LoggedVisit> read_visit_log(std::istream& in);

// --- Place records ---
void write_place_records(std::ostream& out, const PlaceStore& store);
std::vector<PlaceRecord> read_place_records(std::istream& in);

// --- Day profiles ---
void write_profiles(std::ostream& out,
                    std::span<const MobilityProfile> profiles);
std::vector<MobilityProfile> read_profiles(std::istream& in);

/// Thrown by readers on malformed lines (carries the 1-based line number).
/// A malformed *final* line with no trailing newline is a torn append, not
/// corruption: readers recover the parsed prefix and count the event in the
/// persistence_torn_tail_total metric instead of throwing.
class PersistenceError : public std::runtime_error {
 public:
  PersistenceError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

}  // namespace pmware::core
