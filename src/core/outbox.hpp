// Store-and-forward sync outbox for the PMS (the MOSDEN-style answer to
// intermittent connectivity): failed or pending cloud syncs are queued as
// small (kind, key) work items — the payload is re-serialized from local
// state at delivery time, so a replayed entry always carries CURRENT
// content — and drained FIFO on housekeeping ticks. Bounded: when full,
// the oldest entry is evicted (and counted) rather than blocking.
//
// Ordering and idempotency rules are documented in DESIGN.md "Failure
// model & recovery".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>

#include "util/simtime.hpp"

namespace pmware::core {

/// What a queued sync item refers to. Keys are indices into local state:
/// day number, place uid, route-log index, or encounter-log range.
enum class SyncKind : std::uint8_t {
  ProfileDay = 0,     ///< key = day index
  PlaceUpsert = 1,    ///< key = place uid
  PlaceDelete = 2,    ///< key = place uid
  Route = 3,          ///< key = route-log index (doubles as replay seq)
  EncounterBatch = 4, ///< [key, key2) = encounter-log index range
};
const char* kind_name(SyncKind kind);

struct OutboxConfig {
  /// Max queued entries; enqueue past this evicts the oldest. The default
  /// comfortably covers a multi-day outage for one participant (a day is a
  /// handful of profile/place/route/encounter items).
  std::size_t capacity = 256;
};

struct OutboxEntry {
  SyncKind kind;
  std::uint64_t key = 0;
  std::uint64_t key2 = 0;   ///< EncounterBatch only: one-past-last index
  SimTime enqueued_at = 0;
  int attempts = 0;         ///< failed delivery attempts so far
  /// Boot epoch (cloud registration session) the entry was enqueued under.
  /// Routes/encounters qualify their replay sequence numbers with it so a
  /// restarted device's fresh log indices can never collide with — or be
  /// deduplicated against — a previous incarnation's (DESIGN.md "Failure
  /// model & recovery"). Entries restored from a checkpoint keep the epoch
  /// they were enqueued under.
  std::uint64_t epoch = 0;
};

/// Bounded FIFO of pending sync work. Single-threaded like the PMS that
/// owns it.
class SyncOutbox {
 public:
  explicit SyncOutbox(OutboxConfig config = {}) : config_(config) {}

  struct EnqueueResult {
    bool appended = false;              ///< false: deduped into an entry
    std::optional<OutboxEntry> evicted; ///< oldest entry dropped for space
  };

  /// Queues one work item. Entries dedup by (kind, key) — re-enqueueing a
  /// still-pending day or place is a no-op, since delivery reads current
  /// state anyway. EncounterBatch keeps at most one entry *per epoch*,
  /// widening its [key, key2) range to cover both batches: ranges from
  /// different boot epochs index different log incarnations and must never
  /// merge. `epoch` stamps newly appended entries.
  EnqueueResult enqueue(SyncKind kind, std::uint64_t key, std::uint64_t key2,
                        SimTime now, std::uint64_t epoch = 0);

  /// Drops a pending entry (e.g. the upsert of a place being forgotten, so
  /// replay cannot resurrect it). True if one was removed.
  bool remove(SyncKind kind, std::uint64_t key);

  /// Attempts delivery of one entry; prior failed attempts are visible in
  /// `entry.attempts`. Return true on success (or skip), false to stop.
  using Sender = std::function<bool(const OutboxEntry& entry)>;

  /// Delivers entries front-to-back through `sender`, removing each on
  /// success. Stops at the first failure — FIFO order is preserved across
  /// outages and a dead cloud costs one request per drain, not one per
  /// entry. Returns the number delivered.
  std::size_t drain(const Sender& sender);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::deque<OutboxEntry>& entries() const { return entries_; }
  const OutboxConfig& config() const { return config_; }

  /// Serializes every pending entry as JSONL (front first), preserving
  /// enqueued_at / attempts / epoch so a restored queue resumes exactly
  /// where the crashed one stopped.
  void save(std::ostream& out) const;

  struct LoadResult {
    std::size_t loaded = 0;   ///< entries now queued
    std::size_t evicted = 0;  ///< oldest entries dropped to fit capacity
  };

  /// Replaces the queue with the serialized entries. FIFO order, dedup
  /// state, and per-entry metadata round-trip; entries beyond capacity
  /// evict oldest-first exactly like live enqueues (the caller counts
  /// LoadResult::evicted against its eviction metric). Later enqueue()
  /// calls re-dedup against the restored entries. Throws PersistenceError
  /// on a malformed line.
  LoadResult load(std::istream& in);

 private:
  OutboxConfig config_;
  std::deque<OutboxEntry> entries_;
};

}  // namespace pmware::core
