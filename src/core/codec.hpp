// JSON codecs for the shared model — the REST wire format (paper §2.3.3).
#pragma once

#include "core/model.hpp"
#include "util/json.hpp"

namespace pmware::core {

Json to_json(const world::CellId& cell);
world::CellId cell_from_json(const Json& j);

Json to_json(const geo::LatLng& p);
geo::LatLng latlng_from_json(const Json& j);

Json to_json(const algorithms::PlaceSignature& sig);
algorithms::PlaceSignature signature_from_json(const Json& j);

Json to_json(const PlaceRecord& record);
PlaceRecord place_record_from_json(const Json& j);

Json to_json(const MobilityProfile& profile);
MobilityProfile profile_from_json(const Json& j);

}  // namespace pmware::core
