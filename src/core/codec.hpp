// JSON codecs for the shared model — the REST wire format (paper §2.3.3).
#pragma once

#include <cstdint>
#include <span>

#include "algorithms/gca.hpp"
#include "cache/digest.hpp"
#include "core/model.hpp"
#include "util/json.hpp"

namespace pmware::core {

Json to_json(const world::CellId& cell);
world::CellId cell_from_json(const Json& j);

Json to_json(const geo::LatLng& p);
geo::LatLng latlng_from_json(const Json& j);

Json to_json(const algorithms::PlaceSignature& sig);
algorithms::PlaceSignature signature_from_json(const Json& j);

Json to_json(const PlaceRecord& record);
PlaceRecord place_record_from_json(const Json& j);

Json to_json(const MobilityProfile& profile);
MobilityProfile profile_from_json(const Json& j);

/// Content digest of a movement-graph upload — the cache key of GCA
/// offload results (DESIGN.md "Content addressing & cache coherence").
/// Device and cloud must derive it identically from the observation list,
/// so both fold the same (t, packed cell) pairs; the digest is computed on
/// each side, never sent on the wire (request bodies stay byte-identical
/// whether caching is on or off).
inline std::uint64_t movement_digest(
    std::span<const algorithms::CellObservation> observations) {
  std::uint64_t h = cache::kDigestBasis;
  for (const auto& obs : observations) {
    cache::fold(h, static_cast<std::uint64_t>(obs.t));
    cache::fold(h, obs.cell.key());
  }
  return h;
}

}  // namespace pmware::core
