#include "core/persistence.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "core/codec.hpp"
#include "telemetry/metrics.hpp"

namespace pmware::core {

namespace {

/// Applies `parse` to every non-empty line; rethrows JSON errors as
/// PersistenceError with the line number.
///
/// Crash tolerance: a malformed FINAL line that the stream cut off without a
/// trailing newline is a torn append (the writer died mid-line), not
/// corruption — the reader keeps the parsed prefix, counts the event in
/// persistence_torn_tail_total, and returns instead of throwing. A complete
/// (newline-terminated) line that fails to parse still throws: that is
/// bit-rot, and silently skipping it would hide data loss.
template <typename Fn>
void for_each_line(std::istream& in, Fn parse) {
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    // getline sets eofbit exactly when this line ended at end-of-stream
    // with no trailing '\n' — the torn-append signature.
    const bool unterminated = in.eof();
    if (line.empty()) continue;
    try {
      parse(Json::parse(line));
    } catch (const JsonError& error) {
      if (unterminated) {
        telemetry::registry()
            .counter("persistence_torn_tail_total", {},
                     "JSONL reads that dropped a torn (unterminated, "
                     "unparseable) final line and recovered the prefix")
            .inc();
        return;
      }
      throw PersistenceError(number, error.what());
    } catch (const std::exception& error) {
      // Structurally valid JSON whose values fail domain validation (a
      // bit-rotted visit window with end < begin, say) is corruption too:
      // surface it under the same contract as a malformed line.
      throw PersistenceError(number, error.what());
    }
  }
}

}  // namespace

void write_gsm_log(std::ostream& out,
                   std::span<const algorithms::CellObservation> log) {
  for (const auto& obs : log) {
    Json j = Json::object();
    j.set("t", obs.t);
    j.set("cell", to_json(obs.cell));
    out << j.dump() << '\n';
  }
}

std::vector<algorithms::CellObservation> read_gsm_log(std::istream& in) {
  std::vector<algorithms::CellObservation> log;
  for_each_line(in, [&log](const Json& j) {
    log.push_back({j.at("t").as_int(), cell_from_json(j.at("cell"))});
  });
  return log;
}

void write_visit_log(std::ostream& out, std::span<const LoggedVisit> log) {
  for (const auto& visit : log) {
    Json j = Json::object();
    j.set("uid", static_cast<std::uint64_t>(visit.uid));
    j.set("begin", visit.window.begin);
    j.set("end", visit.window.end);
    out << j.dump() << '\n';
  }
}

std::vector<LoggedVisit> read_visit_log(std::istream& in) {
  std::vector<LoggedVisit> log;
  for_each_line(in, [&log](const Json& j) {
    log.push_back({static_cast<PlaceUid>(j.at("uid").as_int()),
                   TimeWindow{j.at("begin").as_int(), j.at("end").as_int()}});
  });
  return log;
}

void write_place_records(std::ostream& out, const PlaceStore& store) {
  for (const auto& [uid, record] : store.records())
    out << to_json(record).dump() << '\n';
}

std::vector<PlaceRecord> read_place_records(std::istream& in) {
  std::vector<PlaceRecord> records;
  for_each_line(in, [&records](const Json& j) {
    records.push_back(place_record_from_json(j));
  });
  return records;
}

void write_profiles(std::ostream& out,
                    std::span<const MobilityProfile> profiles) {
  for (const auto& profile : profiles)
    out << to_json(profile).dump() << '\n';
}

std::vector<MobilityProfile> read_profiles(std::istream& in) {
  std::vector<MobilityProfile> profiles;
  for_each_line(in, [&profiles](const Json& j) {
    profiles.push_back(profile_from_json(j));
  });
  return profiles;
}

}  // namespace pmware::core
