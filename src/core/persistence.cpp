#include "core/persistence.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "core/codec.hpp"

namespace pmware::core {

namespace {

/// Applies `parse` to every non-empty line; rethrows JSON errors as
/// PersistenceError with the line number.
template <typename Fn>
void for_each_line(std::istream& in, Fn parse) {
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty()) continue;
    try {
      parse(Json::parse(line));
    } catch (const JsonError& error) {
      throw PersistenceError(number, error.what());
    }
  }
}

}  // namespace

void write_gsm_log(std::ostream& out,
                   std::span<const algorithms::CellObservation> log) {
  for (const auto& obs : log) {
    Json j = Json::object();
    j.set("t", obs.t);
    j.set("cell", to_json(obs.cell));
    out << j.dump() << '\n';
  }
}

std::vector<algorithms::CellObservation> read_gsm_log(std::istream& in) {
  std::vector<algorithms::CellObservation> log;
  for_each_line(in, [&log](const Json& j) {
    log.push_back({j.at("t").as_int(), cell_from_json(j.at("cell"))});
  });
  return log;
}

void write_visit_log(std::ostream& out, std::span<const LoggedVisit> log) {
  for (const auto& visit : log) {
    Json j = Json::object();
    j.set("uid", static_cast<std::uint64_t>(visit.uid));
    j.set("begin", visit.window.begin);
    j.set("end", visit.window.end);
    out << j.dump() << '\n';
  }
}

std::vector<LoggedVisit> read_visit_log(std::istream& in) {
  std::vector<LoggedVisit> log;
  for_each_line(in, [&log](const Json& j) {
    log.push_back({static_cast<PlaceUid>(j.at("uid").as_int()),
                   TimeWindow{j.at("begin").as_int(), j.at("end").as_int()}});
  });
  return log;
}

void write_place_records(std::ostream& out, const PlaceStore& store) {
  for (const auto& [uid, record] : store.records())
    out << to_json(record).dump() << '\n';
}

std::vector<PlaceRecord> read_place_records(std::istream& in) {
  std::vector<PlaceRecord> records;
  for_each_line(in, [&records](const Json& j) {
    records.push_back(place_record_from_json(j));
  });
  return records;
}

void write_profiles(std::ostream& out,
                    std::span<const MobilityProfile> profiles) {
  for (const auto& profile : profiles)
    out << to_json(profile).dump() << '\n';
}

std::vector<MobilityProfile> read_profiles(std::istream& in) {
  std::vector<MobilityProfile> profiles;
  for_each_line(in, [&profiles](const Json& j) {
    profiles.push_back(profile_from_json(j));
  });
  return profiles;
}

}  // namespace pmware::core
