#include "core/place_store.hpp"

namespace pmware::core {

std::pair<PlaceUid, bool> PlaceStore::intern(
    const algorithms::PlaceSignature& sig, Granularity granularity) {
  if (const auto existing = find(sig)) {
    // Keep the signature fresh: cell sets drift as networks re-plan, so the
    // newest clustering wins.
    records_[*existing].signature = sig;
    return {*existing, false};
  }
  PlaceRecord record;
  record.uid = next_uid_++;
  record.signature = sig;
  record.granularity = granularity;
  records_[record.uid] = std::move(record);
  return {next_uid_ - 1, true};
}

std::optional<PlaceUid> PlaceStore::find(
    const algorithms::PlaceSignature& sig) const {
  for (const auto& [uid, record] : records_)
    if (algorithms::signatures_match(record.signature, sig)) return uid;
  return std::nullopt;
}

const PlaceRecord* PlaceStore::get(PlaceUid uid) const {
  const auto it = records_.find(uid);
  return it == records_.end() ? nullptr : &it->second;
}

PlaceRecord* PlaceStore::get_mutable(PlaceUid uid) {
  const auto it = records_.find(uid);
  return it == records_.end() ? nullptr : &it->second;
}

void PlaceStore::record_visit(PlaceUid uid, SimDuration dwell) {
  const auto it = records_.find(uid);
  if (it == records_.end()) return;
  ++it->second.visit_count;
  it->second.total_dwell += dwell;
}

bool PlaceStore::set_label(PlaceUid uid, const std::string& label) {
  const auto it = records_.find(uid);
  if (it == records_.end()) return false;
  it->second.label = label;
  return true;
}

std::vector<PlaceUid> PlaceStore::with_label(const std::string& label) const {
  std::vector<PlaceUid> out;
  for (const auto& [uid, record] : records_)
    if (record.label == label) out.push_back(uid);
  return out;
}

}  // namespace pmware::core
