#include "core/connected_apps.hpp"

#include <algorithm>

namespace pmware::core {

RequestId ConnectedAppsModule::register_place_alerts(PlaceAlertRequest request) {
  const RequestId id = next_id_++;
  place_requests_[id] = std::move(request);
  return id;
}

RequestId ConnectedAppsModule::register_route_tracking(
    RouteTrackingRequest request) {
  const RequestId id = next_id_++;
  route_requests_[id] = std::move(request);
  return id;
}

RequestId ConnectedAppsModule::register_social(SocialRequest request) {
  const RequestId id = next_id_++;
  social_requests_[id] = std::move(request);
  return id;
}

RequestId ConnectedAppsModule::register_geofence(GeofenceRequest request) {
  const RequestId id = next_id_++;
  geofence_requests_[id] = std::move(request);
  return id;
}

void ConnectedAppsModule::unregister(RequestId id) {
  place_requests_.erase(id);
  route_requests_.erase(id);
  social_requests_.erase(id);
  geofence_requests_.erase(id);
}

void ConnectedAppsModule::unregister_app(const std::string& app) {
  std::erase_if(place_requests_,
                [&](const auto& kv) { return kv.second.app == app; });
  std::erase_if(route_requests_,
                [&](const auto& kv) { return kv.second.app == app; });
  std::erase_if(social_requests_,
                [&](const auto& kv) { return kv.second.app == app; });
  std::erase_if(geofence_requests_,
                [&](const auto& kv) { return kv.second.app == app; });
}

std::optional<Granularity> ConnectedAppsModule::required_granularity(
    SimTime t) const {
  if (!preferences_->sharing_enabled()) return std::nullopt;
  std::optional<Granularity> finest;
  for (const auto& [id, req] : place_requests_) {
    if (!req.window.contains(t)) continue;
    // What the app effectively receives is capped by the user's preference,
    // so sensing never works harder than the permission allows.
    const Granularity eff = preferences_->effective(req.app, req.granularity);
    if (!finest || static_cast<int>(eff) > static_cast<int>(*finest))
      finest = eff;
  }
  // Geofences need distinct buildings: they demand building-level sensing.
  for (const auto& [id, req] : geofence_requests_) {
    if (!req.window.contains(t)) continue;
    const Granularity eff =
        preferences_->effective(req.app, Granularity::Building);
    if (!finest || static_cast<int>(eff) > static_cast<int>(*finest))
      finest = eff;
  }
  return finest;
}

RouteAccuracy ConnectedAppsModule::required_route_accuracy(SimTime t) const {
  if (!preferences_->sharing_enabled()) return RouteAccuracy::Off;
  RouteAccuracy best = RouteAccuracy::Off;
  for (const auto& [id, req] : route_requests_) {
    if (!req.window.contains(t)) continue;
    if (static_cast<int>(req.accuracy) > static_cast<int>(best))
      best = req.accuracy;
  }
  return best;
}

bool ConnectedAppsModule::social_required(SimTime t,
                                          std::optional<PlaceUid> place) const {
  if (!preferences_->sharing_enabled()) return false;
  for (const auto& [id, req] : social_requests_) {
    if (!req.window.contains(t)) continue;
    if (!req.only_at_place) return true;
    if (place && *place == *req.only_at_place) return true;
  }
  return false;
}

namespace {

const char* action_for(PlaceEvent::Kind kind) {
  switch (kind) {
    case PlaceEvent::Kind::Enter: return actions::kPlaceEnter;
    case PlaceEvent::Kind::Exit: return actions::kPlaceExit;
    case PlaceEvent::Kind::NewPlace: return actions::kNewPlace;
  }
  return actions::kPlaceEnter;
}

}  // namespace

std::size_t ConnectedAppsModule::deliver_place_event(const PlaceEvent& event,
                                                     const PlaceStore& store,
                                                     IntentBus& bus) {
  if (!preferences_->sharing_enabled()) return 0;
  std::size_t delivered = 0;
  for (const auto& [id, req] : place_requests_) {
    if (!req.window.contains(event.t)) continue;
    switch (event.kind) {
      case PlaceEvent::Kind::Enter:
        if (!req.want_enter) continue;
        break;
      case PlaceEvent::Kind::Exit:
        if (!req.want_exit) continue;
        break;
      case PlaceEvent::Kind::NewPlace:
        if (!req.want_new_place) continue;
        break;
    }
    const Granularity eff = preferences_->effective(req.app, req.granularity);

    Intent intent{action_for(event.kind)};
    intent.put("t", Json(event.t));
    intent.put("area_uid", Json(static_cast<std::uint64_t>(event.area_uid)));
    if (eff != Granularity::Area) {
      intent.put("place_uid", Json(static_cast<std::uint64_t>(event.uid)));
      if (const PlaceRecord* record = store.get(event.uid)) {
        if (!record->label.empty()) intent.put("label", Json(record->label));
        if (record->location) {
          intent.put("lat", Json(record->location->lat));
          intent.put("lng", Json(record->location->lng));
        }
        intent.put("visit_count",
                   Json(static_cast<std::uint64_t>(record->visit_count)));
      }
      if (event.kind == PlaceEvent::Kind::Exit)
        intent.put("dwell", Json(event.dwell));
    }
    if (bus.send_to(req.receiver, intent)) ++delivered;
  }
  return delivered;
}

std::size_t ConnectedAppsModule::deliver_route_event(const RouteEvent& event,
                                                     IntentBus& bus) {
  if (!preferences_->sharing_enabled()) return 0;
  std::size_t delivered = 0;
  for (const auto& [id, req] : route_requests_) {
    if (!req.window.contains(event.window.end)) continue;
    Intent intent{actions::kRouteCompleted};
    intent.put("route_uid", Json(event.route_uid));
    intent.put("from", Json(static_cast<std::uint64_t>(event.from)));
    intent.put("to", Json(static_cast<std::uint64_t>(event.to)));
    intent.put("start", Json(event.window.begin));
    intent.put("end", Json(event.window.end));
    intent.put("high_accuracy", Json(event.high_accuracy));
    if (bus.send_to(req.receiver, intent)) ++delivered;
  }
  return delivered;
}

std::size_t ConnectedAppsModule::deliver_encounter(const EncounterEvent& event,
                                                   IntentBus& bus) {
  if (!preferences_->sharing_enabled()) return 0;
  std::size_t delivered = 0;
  for (const auto& [id, req] : social_requests_) {
    if (!req.window.contains(event.window.begin)) continue;
    if (req.only_at_place && !(event.place == *req.only_at_place)) continue;
    Intent intent{actions::kEncounter};
    intent.put("contact", Json(static_cast<std::uint64_t>(event.contact)));
    intent.put("place", Json(static_cast<std::uint64_t>(event.place)));
    intent.put("start", Json(event.window.begin));
    intent.put("end", Json(event.window.end));
    if (bus.send_to(req.receiver, intent)) ++delivered;
  }
  return delivered;
}

std::size_t ConnectedAppsModule::deliver_geofence(const PlaceEvent& event,
                                                  const PlaceStore& store,
                                                  IntentBus& bus) {
  if (!preferences_->sharing_enabled()) return 0;
  if (event.kind == PlaceEvent::Kind::NewPlace) return 0;
  const PlaceRecord* record = store.get(event.uid);
  if (record == nullptr || !record->location) return 0;

  std::size_t delivered = 0;
  for (const auto& [id, req] : geofence_requests_) {
    if (!req.window.contains(event.t)) continue;
    if (event.kind == PlaceEvent::Kind::Enter && !req.want_enter) continue;
    if (event.kind == PlaceEvent::Kind::Exit && !req.want_exit) continue;
    if (geo::distance_m(*record->location, req.center) > req.radius_m) continue;

    Intent intent{event.kind == PlaceEvent::Kind::Enter
                      ? actions::kGeofenceEnter
                      : actions::kGeofenceExit};
    intent.put("t", Json(event.t));
    intent.put("geofence_id", Json(static_cast<std::uint64_t>(id)));
    intent.put("lat", Json(record->location->lat));
    intent.put("lng", Json(record->location->lng));
    if (bus.send_to(req.receiver, intent)) ++delivered;
  }
  return delivered;
}

std::size_t ConnectedAppsModule::registration_count() const {
  return place_requests_.size() + route_requests_.size() +
         social_requests_.size() + geofence_requests_.size();
}

}  // namespace pmware::core
