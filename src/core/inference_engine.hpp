// Inference Engine (paper §2.2.2): the single sensing pipeline shared by all
// connected applications.
//
// Triggered / opportunistic sensing policy:
//  * GSM is sampled continuously (every minute) — it is nearly free because
//    the modem is connected anyway.
//  * The accelerometer runs at low rate whenever any app needs
//    building/room-level places or route tracking; its still/moving
//    transitions *trigger* the expensive interfaces.
//  * WiFi scans fire as a short burst after the user settles at a place, at
//    a modest period while moving (to catch departures), continuously only
//    for room-level requests, and opportunistically when the radio happens
//    to be on for data anyway.
//  * GPS runs only while moving and only for high-accuracy route tracking
//    (or room-level requests), never while still.
//
// Place identity is hybrid: GCA clusters of cell ids give area/building
// level places; WiFi fingerprints refine them where coverage exists. The
// engine emits Enter/Exit/NewPlace events, captures routes between stays,
// and detects social encounters via Bluetooth.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "algorithms/gca.hpp"
#include "algorithms/routes.hpp"
#include "algorithms/sensloc.hpp"
#include "core/connected_apps.hpp"
#include "core/events.hpp"
#include "core/place_store.hpp"
#include "sensing/device.hpp"
#include "sensing/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace pmware::core {

struct InferenceConfig {
  /// Master WiFi switch: false yields the GSM-only configuration used as
  /// the ablation baseline in experiment A2.
  bool wifi_enabled = true;
  SimDuration gsm_period = minutes(1);
  SimDuration accel_period = minutes(1);
  /// Continuous WiFi period for room-level requests.
  SimDuration wifi_room_period = minutes(2);
  /// WiFi period while the user is moving (departure detection) at
  /// building level.
  SimDuration wifi_moving_period = minutes(3);
  /// Settle burst after a moving->still transition: `wifi_burst_count`
  /// scans `wifi_burst_gap` apart.
  int wifi_burst_count = 5;
  SimDuration wifi_burst_gap = minutes(1);
  /// Opportunistic scans (paper: "WiFi scans are energy-efficient if WiFi is
  /// already on for data transfers"): at most one per this period, and only
  /// when the radio happens to be on.
  SimDuration wifi_opportunistic_period = minutes(10);
  double wifi_on_fraction = 0.35;
  /// GPS period while moving in high-accuracy route mode.
  SimDuration gps_route_period = seconds(30);
  /// Bluetooth period while social scanning is active.
  SimDuration bluetooth_period = minutes(5);
  /// Consecutive accel samples agreeing before a state transition commits.
  int activity_debounce = 2;
  /// Bluetooth misses before an encounter closes.
  int encounter_miss_limit = 2;
  /// Visits shorter than this never reach profiles or apps' visit history.
  SimDuration min_visit_dwell = minutes(10);
  /// GSM-visit fragments left over after WiFi stays are carved out must be
  /// at least this long to survive; shorter remnants are boundary noise
  /// (e.g. the few minutes between WiFi departure and cell-cluster exit).
  SimDuration gsm_fragment_min_dwell = minutes(45);
  algorithms::GcaConfig gca;
  algorithms::SensLocConfig sensloc;
};

/// Visit entry in the engine's authoritative log (rebuilt at recluster).
struct LoggedVisit {
  PlaceUid uid = kNoPlaceUid;
  TimeWindow window;
};

/// The engine's append-only logs, parameterized on the per-worker-slot
/// arena so the streaming study runner recycles one warm allocation
/// footprint per slot. With a null arena (the default everywhere else)
/// these behave exactly like plain vectors.
using ObsLog = std::vector<algorithms::CellObservation,
                           util::ArenaAllocator<algorithms::CellObservation>>;
using VisitLog = std::vector<LoggedVisit, util::ArenaAllocator<LoggedVisit>>;

class InferenceEngine {
 public:
  using PlaceEventSink = std::function<void(const PlaceEvent&)>;
  using RouteEventSink = std::function<void(const RouteEvent&)>;
  using EncounterSink = std::function<void(const EncounterEvent&)>;
  /// Offloadable GCA: by default runs locally; the PMS swaps in a REST call
  /// to the cloud instance (paper §2.3.1).
  using GcaRunner = std::function<algorithms::GcaResult(
      std::span<const algorithms::CellObservation>)>;
  /// Supplies positions of other participants for Bluetooth discovery.
  using PeerProvider = std::function<
      std::vector<std::pair<world::DeviceId, geo::LatLng>>(SimTime)>;

  /// `arena` (optional) backs the append-only GSM/visit logs; it must
  /// outlive the engine and is reset by the streaming runner only after
  /// the engine is destroyed.
  InferenceEngine(sensing::Device* device, sensing::SamplingScheduler* scheduler,
                  PlaceStore* store, const ConnectedAppsModule* apps,
                  InferenceConfig config, Rng rng,
                  util::Arena* arena = nullptr);

  /// Wires the scheduler callbacks and arms the baseline GSM sampling.
  /// Call once before the scheduler runs.
  void attach();

  void set_place_event_sink(PlaceEventSink sink) { place_sink_ = std::move(sink); }
  void set_route_event_sink(RouteEventSink sink) { route_sink_ = std::move(sink); }
  void set_encounter_sink(EncounterSink sink) { encounter_sink_ = std::move(sink); }
  void set_gca_runner(GcaRunner runner) { gca_runner_ = std::move(runner); }
  void set_peer_provider(PeerProvider provider) { peers_ = std::move(provider); }

  /// Day-boundary housekeeping: recluster the full GSM log (locally or via
  /// the offload runner), re-intern GSM places, rebuild the authoritative
  /// visit log, and re-arm the online tracker. Emits NewPlace events for
  /// places discovered this pass. Returns the number of new places.
  std::size_t recluster(SimTime now);

  /// Authoritative visit log (GSM visits refined by WiFi), filtered to
  /// min_visit_dwell. Valid after recluster().
  const VisitLog& visit_log() const { return visit_log_; }

  /// Completed routes (between consecutive stays).
  const std::vector<RouteEvent>& route_log() const { return route_log_; }
  const algorithms::RouteStore& routes() const { return route_store_; }

  /// Completed social encounters.
  const std::vector<EncounterEvent>& encounter_log() const {
    return encounter_log_;
  }

  /// Raw GSM observation log (what gets offloaded).
  const ObsLog& gsm_log() const { return gsm_log_; }

  /// Area-level identity of a place: its covering GSM cluster if known.
  PlaceUid area_of(PlaceUid uid) const;

  /// Accumulated physical activity for `day`, from the accelerometer stream
  /// (zero summary when the accelerometer never ran that day).
  ActivitySummary activity_for(std::int64_t day) const;

  /// Every day's activity summary (checkpointing).
  const std::map<std::int64_t, ActivitySummary>& activity_log() const {
    return activity_by_day_;
  }

  std::optional<PlaceUid> current_place() const { return emitted_uid_; }

  /// End-of-study shutdown: flushes the open WiFi visit and the open stay so
  /// the final visit reaches the log. Call once, after the last run window
  /// and before the final recluster().
  void flush(SimTime t);

  /// Privacy: drops every trace of `uid` from the visit log and identity
  /// maps. The place will be re-discovered (under a new uid) if the user
  /// keeps visiting it.
  void forget_place(PlaceUid uid);

  /// The checkpointable data products of the engine (Pms::save/restore).
  /// Everything else — online trackers, WiFi fingerprints, identity maps,
  /// GCA state — is transient and rebuilds deterministically from these at
  /// the next recluster pass.
  struct LogSnapshot {
    std::vector<algorithms::CellObservation> gsm_log;
    std::vector<LoggedVisit> visit_log;
    std::vector<RouteEvent> route_log;
    std::vector<algorithms::CanonicalRoute> routes;
    std::vector<EncounterEvent> encounter_log;
    std::map<std::int64_t, ActivitySummary> activity_by_day;
  };

  /// Replaces the engine's logs with a checkpoint's and resets all transient
  /// state (trackers, open encounters, pending route, current-place latch) —
  /// a freshly rebooted device knows its history but not where it is until
  /// sensing resumes. Call before attach()/run.
  void restore_logs(LogSnapshot snapshot);

 private:
  // Sensor callbacks.
  void on_gsm(SimTime t);
  /// GSM handling after the modem read — shared by the single-sample path
  /// and the run-oriented batch path (which reads via Device::read_gsm_run
  /// into a reusable scratch reading).
  void on_gsm_reading(const sensing::GsmReading& reading);
  void on_wifi(SimTime t);
  void on_gps(SimTime t);
  void on_accel(SimTime t);
  void on_bluetooth(SimTime t);

  /// Batch-dispatch adapter: runs `handler` per sample and truncates the
  /// run as soon as the handler changed the sampling schedule (observed via
  /// the scheduler's change epoch), returning the consumed count.
  std::size_t consume_run(std::span<const SimTime> run,
                          void (InferenceEngine::*handler)(SimTime));

  /// Re-evaluates aggregated app requirements and adjusts periods.
  void refresh_policy(SimTime t);
  /// Recomputes current place after any tracker update and emits events.
  void resolve_place(SimTime t);
  void emit(const PlaceEvent& event);
  void finalize_route(PlaceUid to, SimTime t);
  void handle_wifi_events(
      const std::vector<algorithms::WifiPlaceDetector::Event>& events);

  sensing::Device* device_;
  sensing::SamplingScheduler* scheduler_;
  PlaceStore* store_;
  const ConnectedAppsModule* apps_;
  InferenceConfig config_;
  Rng rng_;

  PlaceEventSink place_sink_;
  RouteEventSink route_sink_;
  EncounterSink encounter_sink_;
  GcaRunner gca_runner_;
  PeerProvider peers_;

  // --- GSM / GCA state ---
  ObsLog gsm_log_;
  /// Persistent incremental clustering state for local (non-offloaded)
  /// recluster passes; gsm_log_ is append-only, which is exactly the
  /// contract GcaState::run needs.
  algorithms::GcaState gca_state_;
  std::optional<algorithms::CellVisitTracker> cell_tracker_;
  std::map<std::size_t, PlaceUid> cluster_to_uid_;  ///< cluster idx -> uid
  std::optional<PlaceUid> gsm_uid_;

  // --- hot-loop scratch & pre-resolved telemetry handles ---
  sensing::GsmReading gsm_scratch_;
  sensing::WifiScan wifi_scratch_;
  telemetry::CachedCounter events_enter_;
  telemetry::CachedCounter events_exit_;
  telemetry::CachedCounter events_new_place_;

  // --- WiFi state ---
  algorithms::WifiPlaceDetector wifi_detector_;
  std::map<std::size_t, PlaceUid> wifi_to_uid_;  ///< detector idx -> uid
  std::optional<PlaceUid> wifi_uid_;
  SimTime last_wifi_scan_ = -1;
  SimTime last_opportunistic_ = -1;

  // --- activity state ---
  mobility::Activity activity_ = mobility::Activity::Still;
  mobility::Activity candidate_activity_ = mobility::Activity::Still;
  int candidate_streak_ = 0;
  SimTime last_accel_t_ = -1;
  std::map<std::int64_t, ActivitySummary> activity_by_day_;

  // --- emitted place / visit log ---
  std::optional<PlaceUid> emitted_uid_;
  SimTime emitted_since_ = 0;
  VisitLog visit_log_;

  // --- route capture ---
  struct PendingRoute {
    PlaceUid from = kNoPlaceUid;
    SimTime start = 0;
    algorithms::CellRoute cells;
    algorithms::GpsRoute gps;
    bool high_accuracy = false;
  };
  std::optional<PendingRoute> pending_route_;
  algorithms::RouteStore route_store_;
  std::vector<RouteEvent> route_log_;

  // --- social state ---
  struct OpenEncounter {
    SimTime start = 0;
    SimTime last_seen = 0;
    int misses = 0;
  };
  std::map<world::DeviceId, OpenEncounter> open_encounters_;
  std::vector<EncounterEvent> encounter_log_;

  /// WiFi visits associated with GSM clusters: wifi uid -> area uid.
  std::map<PlaceUid, PlaceUid> wifi_area_;
};

}  // namespace pmware::core
