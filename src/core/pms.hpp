// PMWare Mobile Service (PMS, paper §2.2): the single on-device service all
// connected applications share. Owns the device, the sampling scheduler and
// energy meter, the inference engine, the place store, user preferences, the
// connected-apps module, and the REST link to the cloud instance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cache/content_cache.hpp"
#include "cache/digest.hpp"
#include "core/connected_apps.hpp"
#include "core/inference_engine.hpp"
#include "core/intents.hpp"
#include "core/outbox.hpp"
#include "core/place_store.hpp"
#include "core/preferences.hpp"
#include "energy/meter.hpp"
#include "net/client.hpp"
#include "sensing/device.hpp"
#include "sensing/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/arena.hpp"

namespace pmware::core {

struct PmsConfig {
  std::string imei = "358240051111110";
  std::string email = "user@example.com";
  InferenceConfig inference;
  /// Offload GCA clustering to the cloud (paper §2.3.1); falls back to the
  /// local implementation when the cloud is unreachable.
  bool offload_gca = true;
  /// Sync profiles/places to the cloud during housekeeping.
  bool cloud_sync = true;
  /// Content-addressed GCA offload cache: remember the clustering result
  /// for the current movement-graph digest, so a recluster over an
  /// unchanged graph neither re-sends the graph nor re-runs GCA (results
  /// are identical either way, so this is pure work elision).
  bool cache = true;
  /// Store-and-forward queue for failed syncs (DESIGN.md "Failure model &
  /// recovery").
  OutboxConfig outbox;
  energy::PowerProfile power = energy::PowerProfile::htc_explorer();
  /// Arena backing the inference engine's append-only logs (GSM
  /// observations, visits). Null = plain heap. The streaming study runner
  /// hands each worker slot's arena here and reset()s it between
  /// participants, so per-participant readings recycle one warm allocation
  /// footprint instead of churning the heap. The arena must outlive the
  /// service.
  util::Arena* arena = nullptr;
};

/// Per-service counters. Since the telemetry subsystem landed this is a
/// *view*: the source of truth is the process-wide metrics registry ("pms_*"
/// families, labeled by service instance); stats() assembles it on demand.
struct PmsStats {
  std::size_t place_events_delivered = 0;
  std::size_t route_events_delivered = 0;
  std::size_t encounters_delivered = 0;
  std::size_t profile_syncs = 0;
  std::size_t token_refreshes = 0;
  std::size_t gca_offloads = 0;
  std::size_t gca_local_runs = 0;
  std::size_t sync_failures = 0;     ///< failed sync sends, all kinds
  std::size_t outbox_enqueued = 0;   ///< work items queued for delivery
  std::size_t outbox_delivered = 0;  ///< work items drained successfully
  std::size_t outbox_recovered = 0;  ///< delivered after >= 1 failed attempt
  std::size_t outbox_evicted = 0;    ///< dropped to capacity (data at risk)
  std::size_t outbox_dropped = 0;    ///< discarded at crash/wipe teardown
  std::size_t outbox_pending = 0;    ///< still queued (lost if never drained)
};

class PmwareMobileService {
 public:
  /// `client` may be null for a fully offline PMS (no registration, local
  /// GCA, no sync).
  PmwareMobileService(std::unique_ptr<sensing::Device> device, PmsConfig config,
                      std::unique_ptr<net::RestClient> client, Rng rng);

  // --- Authentication & lifecycle (paper §2.2.1) ---

  /// One-time registration against the cloud; true on success.
  bool register_with_cloud(SimTime now);
  bool registered() const { return user_id_.has_value(); }
  std::optional<world::DeviceId> user_id() const { return user_id_; }

  /// Runs the sensing loop over [window.begin, window.end). Day boundaries
  /// inside the window trigger housekeeping (recluster + sync + token
  /// refresh). Call repeatedly for consecutive windows if preferred.
  void run(TimeWindow window);

  /// End-of-study shutdown: flush open visits and run a final recluster +
  /// sync so the logs are complete.
  void shutdown(SimTime now);

  // --- Connected applications (paper §2.2.4) ---
  IntentBus& bus() { return bus_; }
  ConnectedAppsModule& apps() { return apps_; }
  UserPreferences& preferences() { return preferences_; }

  // --- Visualization & labeling (paper §2.2.5) ---
  PlaceStore& places() { return place_store_; }
  const PlaceStore& places() const { return place_store_; }
  /// User tags a place; propagated to the cloud when connected.
  bool tag_place(PlaceUid uid, const std::string& label, SimTime now);

  // --- Privacy (paper §6 future work) ---
  /// Erases one place locally (record + visit history) and on the cloud.
  bool forget_place(PlaceUid uid, SimTime now);
  /// Asks the cloud to delete everything stored for this user. Local state
  /// is untouched (callers usually discard the PMS afterwards).
  bool wipe_cloud_data(SimTime now);

  // --- Crash-consistent lifecycle (DESIGN.md "Failure model & recovery") ---

  /// Serializes the complete checkpointable device state — GSM/visit logs,
  /// place store, day-profile export, route/encounter logs, preferences, the
  /// sync outbox, and the sync high-water marks — as sectioned JSONL led by
  /// a manifest line carrying a line count and content digest, so restore()
  /// can tell a torn checkpoint from a whole one.
  void save(std::ostream& out) const;

  /// Rebuilds device state from a checkpoint written by save(). All-or-
  /// nothing: state is parsed into temporaries and committed only if the
  /// manifest digest matches and every section decodes, so a torn or
  /// corrupted checkpoint returns false and leaves the (fresh) service
  /// untouched — the caller falls back to cold_restart(). The caller must
  /// still register_with_cloud() afterwards: tokens are not checkpointed and
  /// the new incarnation needs a fresh boot epoch.
  bool restore(std::istream& in);

  /// No-checkpoint recovery: re-registers (fresh boot epoch) and pulls the
  /// place registry and profile days back from the cloud. Places restore
  /// with uid continuity (next uid past the highest cloud uid) so
  /// re-discovered signatures converge on their old uids; local logs stay
  /// empty, which is safe because empty profile days are never re-uploaded
  /// over the cloud's retained ones.
  bool cold_restart(SimTime now);

  /// Crash/wipe teardown accounting: counts every still-queued outbox entry
  /// as dropped (pms_outbox_dropped_total) so study-level bookkeeping can
  /// tell deliberate loss from silent loss. Returns the number dropped.
  /// Call on the doomed instance before destroying it.
  std::size_t discard_pending();

  /// Cloud registration session of this incarnation (0 = never registered).
  /// Qualifies replay sequence numbers and is sent as X-PMWare-Session so
  /// wipe tombstones can fence writes from pre-wipe incarnations.
  std::uint64_t boot_epoch() const { return boot_epoch_; }

  // --- Data products ---
  const InferenceEngine& inference() const { return engine_; }
  InferenceEngine& inference() { return engine_; }
  /// Day-specific mobility profile assembled from the logs (paper §2.2.3).
  MobilityProfile profile_for(std::int64_t day) const;

  energy::EnergyMeter& meter() { return meter_; }
  const energy::EnergyMeter& meter() const { return meter_; }
  /// Assembled from the metrics registry ("pms_*" families, this service's
  /// instance label); zeros after telemetry::registry().reset().
  PmsStats stats() const;
  /// Value of this service's "instance" metric label, e.g. "pms2".
  const std::string& instance_label() const { return instance_; }
  net::RestClient* client() { return client_.get(); }
  sensing::SamplingScheduler& scheduler() { return scheduler_; }
  /// Pending store-and-forward sync work (empty once the cloud caught up).
  const SyncOutbox& outbox() const { return outbox_; }

  /// Supplies peer positions for Bluetooth social discovery.
  void set_peer_provider(InferenceEngine::PeerProvider provider) {
    engine_.set_peer_provider(std::move(provider));
  }

 private:
  /// This service's series of the named pms_* counter family.
  telemetry::Counter& counter(const char* name, const char* help) const;

  void housekeeping(SimTime now);
  void maybe_refresh_token(SimTime now);
  net::HttpRequest make_request(net::Method method, std::string path,
                                SimTime now) const;
  algorithms::GcaResult offloaded_gca(
      std::span<const algorithms::CellObservation> observations, SimTime now);

  // --- Fault-tolerant sync pipeline (DESIGN.md "Failure model & recovery").
  /// Detects dirty state (changed profile days / place records, new routes
  /// and encounters) and queues it; refreshes day_digest_cache_.
  void enqueue_sync_work(std::int64_t up_to, SimTime now);
  /// Enqueue with eviction/telemetry bookkeeping.
  void enqueue(SyncKind kind, std::uint64_t key, std::uint64_t key2,
               SimTime now);
  /// FIFO-delivers queued work until the first failure.
  void drain_outbox(SimTime now);
  /// Delivery verdict for one outbox entry. Gone (HTTP 410) means the cloud
  /// permanently refuses writes from this incarnation — the user was wiped —
  /// so the entry is dropped instead of retried forever.
  enum class DeliverOutcome { Delivered, Failed, Gone };
  /// Sends one outbox entry, serializing CURRENT local state.
  DeliverOutcome deliver(const OutboxEntry& entry, SimTime now);
  void record_sync_failure(SyncKind kind, int status, SimTime now);
  /// Per-day content digests for days [0, up_to], one pass over the logs;
  /// .second is false for days whose profile would be empty.
  std::vector<std::pair<std::uint64_t, bool>> day_digests(
      std::int64_t up_to) const;

  PmsConfig config_;
  std::unique_ptr<sensing::Device> device_;
  energy::EnergyMeter meter_;
  sensing::SamplingScheduler scheduler_;
  UserPreferences preferences_;
  ConnectedAppsModule apps_;
  PlaceStore place_store_;
  IntentBus bus_;
  InferenceEngine engine_;
  /// Incremental clustering state for local (offload-disabled or offload-
  /// failed) GCA passes; fed the engine's append-only GSM log each pass.
  algorithms::GcaState local_gca_;
  /// Engaged iff config_.cache: the last GCA result, versioned by the
  /// movement-graph digest (core::movement_digest).
  std::optional<cache::ContentCache<int, algorithms::GcaResult>> gca_cache_;
  std::unique_ptr<net::RestClient> client_;
  std::string instance_;  ///< registry label isolating this service's series

  // Pre-resolved delivery counters: the event sinks fire inside the sensing
  // hot loop, so no per-event LabelSet build or registry lookup. Engaged in
  // the constructor body once instance_ is known.
  std::optional<telemetry::CachedCounter> place_events_counter_;
  std::optional<telemetry::CachedCounter> route_events_counter_;
  std::optional<telemetry::CachedCounter> encounters_counter_;
  // Same treatment for the per-work-item outbox counters (enqueue and drain
  // loop over entries every housekeeping tick).
  std::optional<telemetry::CachedCounter> outbox_enqueued_counter_;
  std::optional<telemetry::CachedCounter> outbox_evicted_counter_;
  std::optional<telemetry::CachedCounter> outbox_delivered_counter_;
  std::optional<telemetry::CachedCounter> outbox_recovered_counter_;

  std::optional<world::DeviceId> user_id_;
  SimTime token_expires_ = 0;
  /// Registration session from the cloud ("session" in the register
  /// response): monotone per device across incarnations, used to qualify
  /// outbox replay sequence numbers and stamped on every request so the
  /// cloud can reject writes from wiped incarnations.
  std::uint64_t boot_epoch_ = 0;
  /// Set by an explicit register_with_cloud() call; housekeeping retries
  /// registration only when it is wanted but failed — a PMS whose caller
  /// never registered must not register itself.
  bool registration_wanted_ = false;

  // --- Suffix-upload state for GCA offload (DESIGN.md "Content addressing
  // & cache coherence"). The GSM log is append-only, so the service keeps a
  // rolling movement digest (O(new observations) per pass instead of O(log))
  // and remembers how much of the log the cloud has acknowledged; each
  // offload then ships only the unacknowledged suffix plus a prefix claim.
  // A 409 from the cloud (history disagreement after a lost response) falls
  // back to a full upload for that pass.
  std::size_t digest_fed_ = 0;  ///< observations folded into digest_
  std::uint64_t digest_ = cache::kDigestBasis;  ///< rolling movement digest
  std::size_t upload_acked_ = 0;  ///< log length the cloud has applied
  std::uint64_t upload_digest_ = cache::kDigestBasis;  ///< digest of that prefix

  SyncOutbox outbox_;
  std::size_t routes_enqueued_ = 0;      ///< route_log entries queued so far
  std::size_t encounters_enqueued_ = 0;  ///< encounter_log entries queued
  /// Content digest of each day's profile / place record as last
  /// successfully PUT; differences drive re-sync (replaces the old
  /// "re-PUT everything from day 0 every tick" loop).
  std::map<std::int64_t, std::uint64_t> synced_day_digest_;
  std::map<PlaceUid, std::uint64_t> synced_place_digest_;
  /// Refreshed by enqueue_sync_work each tick; deliver() records from it.
  std::vector<std::pair<std::uint64_t, bool>> day_digest_cache_;
};

}  // namespace pmware::core
