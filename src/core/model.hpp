// PMWare mobility representation (paper §2.1): places, routes, and the
// day-specific mobility profile
//   M_X = (P_i, a_i, d_i)* , (R_j, s_j, e_j)* , (H_k, s_k, e_k)*
// shared between the mobile service and the cloud instance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/signature.hpp"
#include "geo/latlng.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::core {

/// Place granularity classes (paper Figure 2): what accuracy a connected
/// application needs. Determines which location interfaces PMWare samples.
enum class Granularity : std::uint8_t {
  Area = 0,      ///< "user is in the shopping street" — GSM suffices
  Building = 1,  ///< distinct buildings — GSM + opportunistic WiFi
  Room = 2,      ///< room-level — WiFi (+ GPS for outdoor transitions)
};

const char* to_string(Granularity g);

/// Stable identifier the mobile service assigns to a discovered place.
using PlaceUid = std::uint64_t;
inline constexpr PlaceUid kNoPlaceUid = 0;

/// A discovered place as stored and synced by PMWare.
struct PlaceRecord {
  PlaceUid uid = kNoPlaceUid;
  algorithms::PlaceSignature signature;
  /// User-provided semantic label ("Home", "Workplace", ...); empty until
  /// the user tags the place in the visualization module.
  std::string label;
  /// Approximate geo-coordinates, resolved via the cloud geo-location API.
  std::optional<geo::LatLng> location;
  /// Coarsest granularity class this record is meaningful at.
  Granularity granularity = Granularity::Building;
  std::size_t visit_count = 0;
  SimDuration total_dwell = 0;
};

/// (P_i, a_i, d_i): one stay in the day profile.
struct PlaceVisitEntry {
  PlaceUid place = kNoPlaceUid;
  SimTime arrival = 0;
  SimTime departure = 0;
};

/// (R_j, s_j, e_j): one journey in the day profile.
struct RouteEntry {
  std::uint64_t route_uid = 0;
  SimTime start = 0;
  SimTime end = 0;
};

/// (H_k, s_k, e_k): a social encounter during a place visit (§2.1.3).
struct EncounterEntry {
  world::DeviceId contact = 0;
  PlaceUid place = kNoPlaceUid;
  SimTime start = 0;
  SimTime end = 0;
};

/// Per-day physical-activity totals, from the accelerometer stream (the
/// paper's §6 future-work item "integrating other contextual information
/// such as activity tracking").
struct ActivitySummary {
  SimDuration still = 0;
  SimDuration walking = 0;
  SimDuration vehicle = 0;

  SimDuration tracked() const { return still + walking + vehicle; }
  bool empty() const { return tracked() == 0; }
  bool operator==(const ActivitySummary&) const = default;
};

/// Day-specific mobility profile for one user.
struct MobilityProfile {
  world::DeviceId user = 0;
  std::int64_t day = 0;
  std::vector<PlaceVisitEntry> places;
  std::vector<RouteEntry> routes;
  std::vector<EncounterEntry> encounters;
  ActivitySummary activity;

  bool empty() const {
    return places.empty() && routes.empty() && encounters.empty() &&
           activity.empty();
  }
};

}  // namespace pmware::core
