#include "core/outbox.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "core/persistence.hpp"
#include "util/json.hpp"

namespace pmware::core {

const char* kind_name(SyncKind kind) {
  switch (kind) {
    case SyncKind::ProfileDay: return "profile";
    case SyncKind::PlaceUpsert: return "place";
    case SyncKind::PlaceDelete: return "place_delete";
    case SyncKind::Route: return "route";
    case SyncKind::EncounterBatch: return "encounter";
  }
  return "?";
}

SyncOutbox::EnqueueResult SyncOutbox::enqueue(SyncKind kind, std::uint64_t key,
                                              std::uint64_t key2, SimTime now,
                                              std::uint64_t epoch) {
  EnqueueResult result;
  for (OutboxEntry& entry : entries_) {
    if (entry.kind != kind) continue;
    if (kind == SyncKind::EncounterBatch) {
      // One batch entry covers everything pending — but only within a boot
      // epoch: [key, key2) ranges index that epoch's encounter log, so
      // widening across epochs would splice two different logs into one
      // replay range.
      if (entry.epoch != epoch) continue;
      entry.key = std::min(entry.key, key);
      entry.key2 = std::max(entry.key2, key2);
      return result;
    }
    if (entry.key == key) return result;  // already queued
  }
  if (config_.capacity > 0 && entries_.size() >= config_.capacity) {
    result.evicted = entries_.front();
    entries_.pop_front();
  }
  entries_.push_back({kind, key, key2, now, 0, epoch});
  result.appended = true;
  return result;
}

bool SyncOutbox::remove(SyncKind kind, std::uint64_t key) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(), [&](const OutboxEntry& e) {
        return e.kind == kind && e.key == key;
      });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

void SyncOutbox::save(std::ostream& out) const {
  for (const OutboxEntry& entry : entries_) {
    Json j = Json::object();
    j.set("kind", static_cast<std::int64_t>(entry.kind));
    j.set("key", entry.key);
    j.set("key2", entry.key2);
    j.set("enqueued_at", entry.enqueued_at);
    j.set("attempts", static_cast<std::int64_t>(entry.attempts));
    j.set("epoch", entry.epoch);
    out << j.dump() << '\n';
  }
}

SyncOutbox::LoadResult SyncOutbox::load(std::istream& in) {
  LoadResult result;
  entries_.clear();
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty()) continue;
    OutboxEntry entry;
    try {
      const Json j = Json::parse(line);
      const std::int64_t kind = j.at("kind").as_int();
      if (kind < 0 || kind > static_cast<std::int64_t>(SyncKind::EncounterBatch))
        throw JsonError("unknown sync kind " + std::to_string(kind));
      entry.kind = static_cast<SyncKind>(kind);
      entry.key = static_cast<std::uint64_t>(j.at("key").as_int());
      entry.key2 = static_cast<std::uint64_t>(j.at("key2").as_int());
      entry.enqueued_at = j.at("enqueued_at").as_int();
      entry.attempts = static_cast<int>(j.at("attempts").as_int());
      entry.epoch = static_cast<std::uint64_t>(j.at("epoch").as_int());
    } catch (const JsonError& error) {
      throw PersistenceError(number, error.what());
    }
    if (config_.capacity > 0 && entries_.size() >= config_.capacity) {
      entries_.pop_front();
      ++result.evicted;
    }
    entries_.push_back(entry);
  }
  result.loaded = entries_.size();
  return result;
}

std::size_t SyncOutbox::drain(const Sender& sender) {
  std::size_t delivered = 0;
  while (!entries_.empty()) {
    OutboxEntry& front = entries_.front();
    if (!sender(front)) {
      ++front.attempts;
      break;
    }
    entries_.pop_front();
    ++delivered;
  }
  return delivered;
}

}  // namespace pmware::core
