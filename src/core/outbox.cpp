#include "core/outbox.hpp"

#include <algorithm>

namespace pmware::core {

const char* kind_name(SyncKind kind) {
  switch (kind) {
    case SyncKind::ProfileDay: return "profile";
    case SyncKind::PlaceUpsert: return "place";
    case SyncKind::PlaceDelete: return "place_delete";
    case SyncKind::Route: return "route";
    case SyncKind::EncounterBatch: return "encounter";
  }
  return "?";
}

SyncOutbox::EnqueueResult SyncOutbox::enqueue(SyncKind kind, std::uint64_t key,
                                              std::uint64_t key2, SimTime now) {
  EnqueueResult result;
  for (OutboxEntry& entry : entries_) {
    if (entry.kind != kind) continue;
    if (kind == SyncKind::EncounterBatch) {
      // One batch entry covers everything pending; widen it.
      entry.key = std::min(entry.key, key);
      entry.key2 = std::max(entry.key2, key2);
      return result;
    }
    if (entry.key == key) return result;  // already queued
  }
  if (config_.capacity > 0 && entries_.size() >= config_.capacity) {
    result.evicted = entries_.front();
    entries_.pop_front();
  }
  entries_.push_back({kind, key, key2, now, 0});
  result.appended = true;
  return result;
}

bool SyncOutbox::remove(SyncKind kind, std::uint64_t key) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(), [&](const OutboxEntry& e) {
        return e.kind == kind && e.key == key;
      });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::size_t SyncOutbox::drain(const Sender& sender) {
  std::size_t delivered = 0;
  while (!entries_.empty()) {
    OutboxEntry& front = entries_.front();
    if (!sender(front)) {
      ++front.attempts;
      break;
    }
    entries_.pop_front();
    ++delivered;
  }
  return delivered;
}

}  // namespace pmware::core
