#include "core/inference_engine.hpp"

#include <algorithm>
#include <set>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/log.hpp"

namespace pmware::core {

using energy::Interface;
using mobility::Activity;

namespace {

bool at_least(std::optional<Granularity> g, Granularity level) {
  return g && static_cast<int>(*g) >= static_cast<int>(level);
}

}  // namespace

InferenceEngine::InferenceEngine(sensing::Device* device,
                                 sensing::SamplingScheduler* scheduler,
                                 PlaceStore* store,
                                 const ConnectedAppsModule* apps,
                                 InferenceConfig config, Rng rng,
                                 util::Arena* arena)
    : device_(device),
      scheduler_(scheduler),
      store_(store),
      apps_(apps),
      config_(config),
      rng_(rng),
      gsm_log_(util::ArenaAllocator<algorithms::CellObservation>(arena)),
      gca_state_(config.gca),
      events_enter_("core_place_events_total", {{"kind", "enter"}},
                    "place events emitted by the inference engine"),
      events_exit_("core_place_events_total", {{"kind", "exit"}},
                   "place events emitted by the inference engine"),
      events_new_place_("core_place_events_total", {{"kind", "new_place"}},
                        "place events emitted by the inference engine"),
      wifi_detector_(config.sensloc),
      visit_log_(util::ArenaAllocator<LoggedVisit>(arena)) {}

std::size_t InferenceEngine::consume_run(
    std::span<const SimTime> run, void (InferenceEngine::*handler)(SimTime)) {
  std::size_t consumed = 0;
  for (const SimTime t : run) {
    const std::uint64_t before = scheduler_->change_epoch();
    (this->*handler)(t);
    ++consumed;
    if (scheduler_->change_epoch() != before) break;
  }
  return consumed;
}

void InferenceEngine::attach() {
  // Run-oriented dispatch: the scheduler hands each interface a whole run
  // of fire times; the adapters process samples in order and truncate the
  // run on any schedule change, which keeps adaptive sensing byte-identical
  // to per-sample dispatch.
  scheduler_->set_batch_callback(
      Interface::Gsm, [this](std::span<const SimTime> run) {
        return device_->read_gsm_run(
            run, [this](const sensing::GsmReading& reading) {
              const std::uint64_t before = scheduler_->change_epoch();
              on_gsm_reading(reading);
              return scheduler_->change_epoch() == before;
            });
      });
  scheduler_->set_batch_callback(
      Interface::Wifi, [this](std::span<const SimTime> run) {
        return consume_run(run, &InferenceEngine::on_wifi);
      });
  scheduler_->set_batch_callback(
      Interface::Gps, [this](std::span<const SimTime> run) {
        return consume_run(run, &InferenceEngine::on_gps);
      });
  scheduler_->set_batch_callback(
      Interface::Accelerometer, [this](std::span<const SimTime> run) {
        return consume_run(run, &InferenceEngine::on_accel);
      });
  scheduler_->set_batch_callback(
      Interface::Bluetooth, [this](std::span<const SimTime> run) {
        return consume_run(run, &InferenceEngine::on_bluetooth);
      });
  // GSM runs continuously from the start (paper §2.2.2); everything else is
  // armed on demand by refresh_policy().
  scheduler_->set_period(Interface::Gsm, config_.gsm_period);
  refresh_policy(scheduler_->now());
}

void InferenceEngine::refresh_policy(SimTime t) {
  const auto g = apps_->required_granularity(t);
  const RouteAccuracy ra = apps_->required_route_accuracy(t);
  const bool social = apps_->social_required(t, emitted_uid_);
  const bool moving = activity_ != Activity::Still;

  // Explicit `from = t`: during batch dispatch the scheduler's clock only
  // advances at run granularity, so period changes anchor to the sample
  // that caused them.
  auto set_if_changed = [this, t](Interface i, std::optional<SimDuration> p) {
    if (scheduler_->period(i) != p) scheduler_->set_period(i, p, t);
  };

  // Accelerometer: the trigger source; needed for building/room place
  // requests and any route tracking.
  const bool need_accel = at_least(g, Granularity::Building) ||
                          ra != RouteAccuracy::Off;
  set_if_changed(Interface::Accelerometer,
                 need_accel ? std::optional(config_.accel_period) : std::nullopt);

  // WiFi: continuous for room level, periodic while moving for building
  // level (departure detection); otherwise only triggered bursts and
  // opportunistic scans (requested as one-shots elsewhere).
  std::optional<SimDuration> wifi;
  if (config_.wifi_enabled) {
    if (at_least(g, Granularity::Room)) wifi = config_.wifi_room_period;
    else if (at_least(g, Granularity::Building) && moving)
      wifi = config_.wifi_moving_period;
  }
  set_if_changed(Interface::Wifi, wifi);

  // GPS: only while moving, and only for high-accuracy routes or room-level
  // requests (never while still — the paper's headline energy rule).
  std::optional<SimDuration> gps;
  if (moving && (ra == RouteAccuracy::High || at_least(g, Granularity::Room)))
    gps = config_.gps_route_period;
  set_if_changed(Interface::Gps, gps);

  set_if_changed(Interface::Bluetooth,
                 social ? std::optional(config_.bluetooth_period) : std::nullopt);
}

void InferenceEngine::on_gsm(SimTime t) {
  device_->read_gsm_into(t, gsm_scratch_);
  on_gsm_reading(gsm_scratch_);
}

void InferenceEngine::on_gsm_reading(const sensing::GsmReading& reading) {
  const SimTime t = reading.t;
  if (reading.serving.mcc == 0) return;  // dead zone, nothing heard yet
  gsm_log_.push_back({t, reading.serving});

  if (cell_tracker_) {
    for (const auto& ev : cell_tracker_->observe({t, reading.serving})) {
      const auto it = cluster_to_uid_.find(ev.place_index);
      if (it == cluster_to_uid_.end()) continue;
      if (ev.kind == algorithms::CellVisitTracker::Event::Kind::Arrival)
        gsm_uid_ = it->second;
      else if (gsm_uid_ && *gsm_uid_ == it->second)
        gsm_uid_.reset();
    }
  }

  if (pending_route_) {
    auto& cells = pending_route_->cells;
    if (cells.cells.empty() || !(cells.cells.back() == reading.serving)) {
      cells.times.push_back(t);
      cells.cells.push_back(reading.serving);
    }
  }

  // Opportunistic WiFi (paper §2.2.2): if the radio is on for data anyway,
  // piggyback a scan — bounded to one per opportunistic period.
  const auto g = apps_->required_granularity(t);
  if (config_.wifi_enabled && at_least(g, Granularity::Building) &&
      (last_opportunistic_ < 0 ||
       t - last_opportunistic_ >= config_.wifi_opportunistic_period) &&
      rng_.bernoulli(config_.wifi_on_fraction)) {
    last_opportunistic_ = t;
    scheduler_->request_once(Interface::Wifi, t);
  }

  refresh_policy(t);
  resolve_place(t);
}

void InferenceEngine::handle_wifi_events(
    const std::vector<algorithms::WifiPlaceDetector::Event>& events) {
  for (const auto& ev : events) {
    if (ev.kind == algorithms::WifiPlaceDetector::Event::Kind::Arrival) {
      PlaceUid uid;
      const auto it = wifi_to_uid_.find(ev.place_index);
      if (it != wifi_to_uid_.end()) {
        uid = it->second;
      } else {
        const auto [new_uid, created] = store_->intern(
            algorithms::PlaceSignature(wifi_detector_.places()[ev.place_index]),
            Granularity::Building);
        uid = new_uid;
        wifi_to_uid_[ev.place_index] = uid;
        if (created)
          emit({PlaceEvent::Kind::NewPlace, uid, area_of(uid), ev.t, 0});
      }
      wifi_uid_ = uid;
      if (gsm_uid_) wifi_area_[uid] = *gsm_uid_;
    } else {
      const auto it = wifi_to_uid_.find(ev.place_index);
      if (it != wifi_to_uid_.end() && wifi_uid_ && *wifi_uid_ == it->second)
        wifi_uid_.reset();
    }
  }
}

void InferenceEngine::on_wifi(SimTime t) {
  if (t == last_wifi_scan_) return;  // collapse duplicate triggers
  last_wifi_scan_ = t;
  device_->scan_wifi_into(t, wifi_scratch_);
  handle_wifi_events(wifi_detector_.on_scan(wifi_scratch_));
  resolve_place(t);
}

void InferenceEngine::on_gps(SimTime t) {
  const sensing::GpsFix fix = device_->read_gps(t);
  if (!fix.valid) return;
  if (pending_route_ && pending_route_->high_accuracy) {
    pending_route_->gps.times.push_back(t);
    pending_route_->gps.points.push_back(fix.position);
  }
}

void InferenceEngine::on_accel(SimTime t) {
  const sensing::AccelReading reading = device_->read_accel(t);

  // Activity tracking: attribute the span since the previous sample to the
  // committed state (gaps beyond a few periods mean the accelerometer was
  // off — untracked time).
  if (last_accel_t_ >= 0 && t > last_accel_t_ &&
      t - last_accel_t_ <= 5 * config_.accel_period) {
    SimTime cursor = last_accel_t_;
    while (cursor < t) {
      const SimTime day_end = start_of_day(day_of(cursor) + 1);
      const SimTime slice_end = std::min(t, day_end);
      ActivitySummary& summary = activity_by_day_[day_of(cursor)];
      const SimDuration span = slice_end - cursor;
      switch (activity_) {
        case Activity::Still: summary.still += span; break;
        case Activity::Walking: summary.walking += span; break;
        case Activity::Vehicle: summary.vehicle += span; break;
      }
      cursor = slice_end;
    }
  }
  last_accel_t_ = t;

  if (reading.activity == candidate_activity_) {
    ++candidate_streak_;
  } else {
    candidate_activity_ = reading.activity;
    candidate_streak_ = 1;
  }
  if (candidate_streak_ < config_.activity_debounce ||
      candidate_activity_ == activity_)
    return;

  const Activity previous = activity_;
  activity_ = candidate_activity_;
  const auto g = apps_->required_granularity(t);

  if (previous == Activity::Still && activity_ != Activity::Still) {
    // Departure imminent: one scan right now catches the last matching
    // fingerprint so the departure timestamp is accurate.
    if (config_.wifi_enabled && at_least(g, Granularity::Building))
      scheduler_->request_once(Interface::Wifi, t);
  } else if (previous != Activity::Still && activity_ == Activity::Still) {
    // Settled at a place: burst of scans to establish the fingerprint
    // (triggered sensing — this is what replaces continuous WiFi).
    if (config_.wifi_enabled && at_least(g, Granularity::Building)) {
      for (int k = 0; k < config_.wifi_burst_count; ++k)
        scheduler_->request_once(Interface::Wifi,
                                 t + k * config_.wifi_burst_gap);
    }
  }
  refresh_policy(t);
}

void InferenceEngine::on_bluetooth(SimTime t) {
  if (!peers_) return;
  const auto positions = peers_(t);
  const sensing::BluetoothScan scan = device_->scan_bluetooth(t, positions);

  const PlaceUid here = emitted_uid_.value_or(kNoPlaceUid);
  std::set<world::DeviceId> seen(scan.nearby.begin(), scan.nearby.end());

  for (world::DeviceId contact : seen) {
    auto [it, inserted] = open_encounters_.try_emplace(
        contact, OpenEncounter{t, t, 0});
    if (!inserted) {
      it->second.last_seen = t;
      it->second.misses = 0;
    }
  }
  std::vector<world::DeviceId> closed;
  for (auto& [contact, enc] : open_encounters_) {
    if (seen.count(contact)) continue;
    if (++enc.misses >= config_.encounter_miss_limit) closed.push_back(contact);
  }
  for (world::DeviceId contact : closed) {
    const OpenEncounter enc = open_encounters_.at(contact);
    open_encounters_.erase(contact);
    if (enc.last_seen <= enc.start) continue;
    const EncounterEvent event{contact, here,
                               TimeWindow{enc.start, enc.last_seen}};
    encounter_log_.push_back(event);
    if (encounter_sink_) encounter_sink_(event);
  }
}

ActivitySummary InferenceEngine::activity_for(std::int64_t day) const {
  const auto it = activity_by_day_.find(day);
  return it == activity_by_day_.end() ? ActivitySummary{} : it->second;
}

PlaceUid InferenceEngine::area_of(PlaceUid uid) const {
  const auto it = wifi_area_.find(uid);
  return it == wifi_area_.end() ? uid : it->second;
}

void InferenceEngine::emit(const PlaceEvent& event) {
  // Pre-resolved handles: emit() runs inside the sensing hot loop, so no
  // per-event LabelSet build or registry lookup.
  switch (event.kind) {
    case PlaceEvent::Kind::Enter: events_enter_.get().inc(); break;
    case PlaceEvent::Kind::Exit: events_exit_.get().inc(); break;
    case PlaceEvent::Kind::NewPlace: events_new_place_.get().inc(); break;
  }
  if (place_sink_) place_sink_(event);
}

void InferenceEngine::finalize_route(PlaceUid to, SimTime t) {
  if (!pending_route_) return;
  PendingRoute pending = std::move(*pending_route_);
  pending_route_.reset();
  if (t - pending.start < minutes(2)) return;  // place-to-place flicker
  if (pending.from == to) return;  // identity flicker, not a journey
  if (pending.cells.cells.size() < 2 && pending.gps.points.size() < 2) return;

  algorithms::RouteObservation obs;
  obs.from_place = static_cast<std::size_t>(pending.from);
  obs.to_place = static_cast<std::size_t>(to);
  obs.window = TimeWindow{pending.start, t};
  obs.cells = std::move(pending.cells);
  obs.gps = std::move(pending.gps);
  const std::size_t route_uid = route_store_.add(std::move(obs));

  const RouteEvent event{route_uid, pending.from, to, TimeWindow{pending.start, t},
                         pending.high_accuracy};
  route_log_.push_back(event);
  if (route_sink_) route_sink_(event);
}

void InferenceEngine::resolve_place(SimTime t) {
  // WiFi identity wins where available — it is the finer signal; GSM
  // clusters carry the rest (hybrid discovery, paper §4).
  const std::optional<PlaceUid> resolved = wifi_uid_ ? wifi_uid_ : gsm_uid_;
  if (resolved == emitted_uid_) return;

  if (emitted_uid_) {
    const SimDuration dwell = t - emitted_since_;
    emit({PlaceEvent::Kind::Exit, *emitted_uid_, area_of(*emitted_uid_), t,
          dwell});
    store_->record_visit(*emitted_uid_, dwell);
    pending_route_ = PendingRoute{
        *emitted_uid_, t, {}, {},
        apps_->required_route_accuracy(t) == RouteAccuracy::High};
  }
  if (resolved) {
    finalize_route(*resolved, t);
    emit({PlaceEvent::Kind::Enter, *resolved, area_of(*resolved), t, 0});
    emitted_since_ = t;
  }
  emitted_uid_ = resolved;
}

std::size_t InferenceEngine::recluster(SimTime now) {
  telemetry::Span span(telemetry::tracer(), "inference.recluster", now);
  telemetry::registry()
      .counter("core_recluster_total", {},
               "recluster passes (local or offloaded)")
      .inc();
  const algorithms::GcaResult result =
      gca_runner_ ? gca_runner_(gsm_log_) : gca_state_.run(gsm_log_);

  std::size_t new_places = 0;
  cluster_to_uid_.clear();
  for (std::size_t i = 0; i < result.places.size(); ++i) {
    const auto [uid, created] = store_->intern(
        algorithms::PlaceSignature(result.places[i].signature),
        Granularity::Building);
    cluster_to_uid_[i] = uid;
    if (created) {
      ++new_places;
      emit({PlaceEvent::Kind::NewPlace, uid, uid, now, 0});
    }
  }

  // Rebuild the authoritative visit log: GSM visits, with WiFi stays carving
  // out the intervals they identify more precisely.
  std::vector<LoggedVisit> gsm_visits;
  for (const auto& v : result.visits) {
    const auto it = cluster_to_uid_.find(v.place_index);
    if (it != cluster_to_uid_.end())
      gsm_visits.push_back({it->second, v.window});
  }
  std::vector<LoggedVisit> wifi_visits;
  for (const auto& v : wifi_detector_.visits()) {
    const auto it = wifi_to_uid_.find(v.place_index);
    if (it != wifi_to_uid_.end() &&
        v.window.length() >= config_.min_visit_dwell)
      wifi_visits.push_back({it->second, v.window});
  }
  std::sort(wifi_visits.begin(), wifi_visits.end(),
            [](const LoggedVisit& a, const LoggedVisit& b) {
              return a.window.begin < b.window.begin;
            });

  visit_log_.clear();
  for (const auto& gv : gsm_visits) {
    SimTime cursor = gv.window.begin;
    for (const auto& wv : wifi_visits) {
      if (wv.window.end <= cursor || wv.window.begin >= gv.window.end) continue;
      if (wv.window.begin - cursor >= config_.gsm_fragment_min_dwell)
        visit_log_.push_back({gv.uid, TimeWindow{cursor, wv.window.begin}});
      cursor = std::max(cursor, wv.window.end);
    }
    if (gv.window.end - cursor >= (cursor == gv.window.begin
                                       ? config_.min_visit_dwell
                                       : config_.gsm_fragment_min_dwell))
      visit_log_.push_back({gv.uid, TimeWindow{cursor, gv.window.end}});
  }
  visit_log_.insert(visit_log_.end(), wifi_visits.begin(), wifi_visits.end());
  std::sort(visit_log_.begin(), visit_log_.end(),
            [](const LoggedVisit& a, const LoggedVisit& b) {
              return a.window.begin < b.window.begin;
            });

  // Re-arm the online tracker with the fresh signatures.
  cell_tracker_.emplace(result.cell_to_place, config_.gca);
  gsm_uid_.reset();

  telemetry::registry()
      .counter("core_new_places_total", {},
               "places first discovered during recluster passes")
      .inc(new_places);
  telemetry::slog_debug("inference", now,
                        "recluster: %zu clusters, %zu new places, %zu visits",
                        result.places.size(), new_places, visit_log_.size());
  return new_places;
}

void InferenceEngine::restore_logs(LogSnapshot snapshot) {
  gsm_log_.assign(snapshot.gsm_log.begin(), snapshot.gsm_log.end());
  visit_log_.assign(snapshot.visit_log.begin(), snapshot.visit_log.end());
  route_log_ = std::move(snapshot.route_log);
  route_store_.restore(std::move(snapshot.routes));
  encounter_log_ = std::move(snapshot.encounter_log);
  activity_by_day_ = std::move(snapshot.activity_by_day);

  // Transient state: the crash killed it and nothing here is authoritative.
  // The cell tracker, cluster/WiFi identity maps, and GCA state are rebuilt
  // at the next recluster from the restored GSM log; fingerprints re-intern
  // by signature into the restored place store, so uids stay stable.
  gca_state_ = algorithms::GcaState(config_.gca);
  cell_tracker_.reset();
  cluster_to_uid_.clear();
  gsm_uid_.reset();
  wifi_detector_ = algorithms::WifiPlaceDetector(config_.sensloc);
  wifi_to_uid_.clear();
  wifi_uid_.reset();
  last_wifi_scan_ = -1;
  last_opportunistic_ = -1;
  activity_ = mobility::Activity::Still;
  candidate_activity_ = mobility::Activity::Still;
  candidate_streak_ = 0;
  last_accel_t_ = -1;
  emitted_uid_.reset();
  emitted_since_ = 0;
  pending_route_.reset();
  open_encounters_.clear();
  wifi_area_.clear();
}

void InferenceEngine::forget_place(PlaceUid uid) {
  std::erase_if(visit_log_,
                [uid](const LoggedVisit& v) { return v.uid == uid; });
  std::erase_if(cluster_to_uid_,
                [uid](const auto& kv) { return kv.second == uid; });
  std::erase_if(wifi_to_uid_, [uid](const auto& kv) { return kv.second == uid; });
  wifi_area_.erase(uid);
  if (gsm_uid_ == uid) gsm_uid_.reset();
  if (wifi_uid_ == uid) wifi_uid_.reset();
  if (emitted_uid_ == uid) emitted_uid_.reset();
}

void InferenceEngine::flush(SimTime t) {
  handle_wifi_events(wifi_detector_.finish(t));
  if (cell_tracker_) {
    for (const auto& ev : cell_tracker_->finish(t)) {
      if (ev.kind == algorithms::CellVisitTracker::Event::Kind::Departure &&
          gsm_uid_) {
        gsm_uid_.reset();
      }
    }
  }
  resolve_place(t);
}

}  // namespace pmware::core
