// User preferences (paper §2.2.1): per-connected-app granularity permission
// caps and the single master switch that hides place information from all
// connected applications.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/model.hpp"

namespace pmware::core {

class UserPreferences {
 public:
  /// Caps what granularity `app` may receive; e.g. an advertising app asking
  /// for building-level data can be restricted to area-level.
  void set_app_cap(const std::string& app, Granularity cap);
  std::optional<Granularity> app_cap(const std::string& app) const;

  /// Effective granularity an app receives when it requested `requested`:
  /// the coarser of the request and the user's cap.
  Granularity effective(const std::string& app, Granularity requested) const;

  /// Master switch: when off, no place information flows to any app.
  void set_sharing_enabled(bool enabled) { sharing_enabled_ = enabled; }
  bool sharing_enabled() const { return sharing_enabled_; }

  /// All per-app caps, for checkpointing (Pms::save/restore).
  const std::map<std::string, Granularity>& caps() const { return caps_; }

 private:
  std::map<std::string, Granularity> caps_;
  bool sharing_enabled_ = true;
};

}  // namespace pmware::core
