#include "core/preferences.hpp"

#include <algorithm>

namespace pmware::core {

void UserPreferences::set_app_cap(const std::string& app, Granularity cap) {
  caps_[app] = cap;
}

std::optional<Granularity> UserPreferences::app_cap(
    const std::string& app) const {
  const auto it = caps_.find(app);
  if (it == caps_.end()) return std::nullopt;
  return it->second;
}

Granularity UserPreferences::effective(const std::string& app,
                                       Granularity requested) const {
  const auto cap = app_cap(app);
  if (!cap) return requested;
  // Coarser = numerically smaller (Area < Building < Room).
  return static_cast<Granularity>(
      std::min(static_cast<int>(requested), static_cast<int>(*cap)));
}

}  // namespace pmware::core
