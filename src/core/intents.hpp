// Message-passing between the PMWare Mobile Service and connected
// applications (paper §2.2.4): the in-process equivalent of Android intents
// and broadcasts. Apps register intent filters; PMS broadcasts place alerts;
// a directed send targets one receiver.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace pmware::core {

/// Well-known intent actions broadcast by PMS.
namespace actions {
inline constexpr const char* kPlaceEnter = "pmware.place.ENTER";
inline constexpr const char* kPlaceExit = "pmware.place.EXIT";
inline constexpr const char* kNewPlace = "pmware.place.NEW";
inline constexpr const char* kRouteCompleted = "pmware.route.COMPLETED";
inline constexpr const char* kEncounter = "pmware.social.ENCOUNTER";
inline constexpr const char* kGeofenceEnter = "pmware.geofence.ENTER";
inline constexpr const char* kGeofenceExit = "pmware.geofence.EXIT";
}  // namespace actions

struct Intent {
  std::string action;
  Json extras = Json::object();

  Intent() = default;
  explicit Intent(std::string a) : action(std::move(a)) {}
  Intent& put(const std::string& key, Json value) {
    extras.set(key, std::move(value));
    return *this;
  }
};

/// Which actions a receiver is interested in.
struct IntentFilter {
  std::set<std::string> actions;
  bool matches(const Intent& intent) const {
    return actions.count(intent.action) > 0;
  }
};

using ReceiverId = std::uint32_t;
using IntentHandler = std::function<void(const Intent&)>;

class IntentBus {
 public:
  /// Registers a receiver; returns its id for directed sends/unregistering.
  ReceiverId register_receiver(IntentFilter filter, IntentHandler handler);

  void unregister(ReceiverId id);

  /// Delivers to every receiver whose filter matches.
  /// Returns the number of receivers reached.
  std::size_t broadcast(const Intent& intent);

  /// Delivers to one receiver regardless of its filter; false if unknown.
  bool send_to(ReceiverId id, const Intent& intent);

  std::size_t receiver_count() const { return receivers_.size(); }
  std::size_t broadcast_count() const { return broadcasts_; }

 private:
  struct Receiver {
    IntentFilter filter;
    IntentHandler handler;
  };
  std::map<ReceiverId, Receiver> receivers_;
  ReceiverId next_id_ = 1;
  std::size_t broadcasts_ = 0;
};

}  // namespace pmware::core
