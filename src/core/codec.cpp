#include "core/codec.hpp"

#include <stdexcept>

namespace pmware::core {

const char* to_string(Granularity g) {
  switch (g) {
    case Granularity::Area: return "area";
    case Granularity::Building: return "building";
    case Granularity::Room: return "room";
  }
  return "?";
}

Json to_json(const world::CellId& cell) {
  Json j = Json::object();
  j.set("mcc", static_cast<std::int64_t>(cell.mcc));
  j.set("mnc", static_cast<std::int64_t>(cell.mnc));
  j.set("lac", static_cast<std::int64_t>(cell.lac));
  j.set("cid", static_cast<std::int64_t>(cell.cid));
  j.set("radio", cell.radio == world::Radio::Gsm2G ? "2g" : "3g");
  return j;
}

world::CellId cell_from_json(const Json& j) {
  world::CellId cell;
  cell.mcc = static_cast<std::uint16_t>(j.at("mcc").as_int());
  cell.mnc = static_cast<std::uint16_t>(j.at("mnc").as_int());
  cell.lac = static_cast<std::uint16_t>(j.at("lac").as_int());
  cell.cid = static_cast<std::uint32_t>(j.at("cid").as_int());
  cell.radio = j.get_string("radio", "2g") == "3g" ? world::Radio::Umts3G
                                                   : world::Radio::Gsm2G;
  return cell;
}

Json to_json(const geo::LatLng& p) {
  Json j = Json::object();
  j.set("lat", p.lat);
  j.set("lng", p.lng);
  return j;
}

geo::LatLng latlng_from_json(const Json& j) {
  return {j.at("lat").as_double(), j.at("lng").as_double()};
}

Json to_json(const algorithms::PlaceSignature& sig) {
  Json j = Json::object();
  if (const auto* c = std::get_if<algorithms::CellSignature>(&sig)) {
    j.set("kind", "cells");
    Json arr = Json::array();
    for (const auto& cell : c->cells) arr.push_back(to_json(cell));
    j.set("cells", std::move(arr));
  } else if (const auto* w = std::get_if<algorithms::WifiSignature>(&sig)) {
    j.set("kind", "wifi");
    Json arr = Json::array();
    for (world::Bssid b : w->aps) arr.push_back(static_cast<std::uint64_t>(b));
    j.set("aps", std::move(arr));
  } else {
    const auto& g = std::get<algorithms::GpsSignature>(sig);
    j.set("kind", "gps");
    j.set("center", to_json(g.center));
    j.set("radius_m", g.radius_m);
  }
  return j;
}

algorithms::PlaceSignature signature_from_json(const Json& j) {
  const std::string kind = j.at("kind").as_string();
  if (kind == "cells") {
    algorithms::CellSignature sig;
    for (const auto& c : j.at("cells").as_array())
      sig.cells.insert(cell_from_json(c));
    return sig;
  }
  if (kind == "wifi") {
    algorithms::WifiSignature sig;
    for (const auto& b : j.at("aps").as_array())
      sig.aps.insert(static_cast<world::Bssid>(b.as_int()));
    return sig;
  }
  if (kind == "gps") {
    algorithms::GpsSignature sig;
    sig.center = latlng_from_json(j.at("center"));
    sig.radius_m = j.at("radius_m").as_double();
    return sig;
  }
  throw JsonError("unknown signature kind: " + kind);
}

Json to_json(const PlaceRecord& record) {
  Json j = Json::object();
  j.set("uid", static_cast<std::uint64_t>(record.uid));
  j.set("signature", to_json(record.signature));
  j.set("label", record.label);
  if (record.location) j.set("location", to_json(*record.location));
  j.set("granularity", to_string(record.granularity));
  j.set("visit_count", static_cast<std::uint64_t>(record.visit_count));
  j.set("total_dwell", static_cast<std::int64_t>(record.total_dwell));
  return j;
}

namespace {

Granularity granularity_from_string(const std::string& s) {
  if (s == "area") return Granularity::Area;
  if (s == "building") return Granularity::Building;
  if (s == "room") return Granularity::Room;
  throw JsonError("unknown granularity: " + s);
}

}  // namespace

PlaceRecord place_record_from_json(const Json& j) {
  PlaceRecord record;
  record.uid = static_cast<PlaceUid>(j.at("uid").as_int());
  record.signature = signature_from_json(j.at("signature"));
  record.label = j.get_string("label", "");
  if (j.contains("location"))
    record.location = latlng_from_json(j.at("location"));
  record.granularity =
      granularity_from_string(j.get_string("granularity", "building"));
  record.visit_count = static_cast<std::size_t>(j.get_int("visit_count", 0));
  record.total_dwell = j.get_int("total_dwell", 0);
  return record;
}

Json to_json(const MobilityProfile& profile) {
  Json j = Json::object();
  j.set("user", static_cast<std::uint64_t>(profile.user));
  j.set("day", profile.day);

  Json places = Json::array();
  for (const auto& v : profile.places) {
    Json e = Json::object();
    e.set("place", static_cast<std::uint64_t>(v.place));
    e.set("arrival", v.arrival);
    e.set("departure", v.departure);
    places.push_back(std::move(e));
  }
  j.set("places", std::move(places));

  Json routes = Json::array();
  for (const auto& r : profile.routes) {
    Json e = Json::object();
    e.set("route", static_cast<std::uint64_t>(r.route_uid));
    e.set("start", r.start);
    e.set("end", r.end);
    routes.push_back(std::move(e));
  }
  j.set("routes", std::move(routes));

  Json encounters = Json::array();
  for (const auto& h : profile.encounters) {
    Json e = Json::object();
    e.set("contact", static_cast<std::uint64_t>(h.contact));
    e.set("place", static_cast<std::uint64_t>(h.place));
    e.set("start", h.start);
    e.set("end", h.end);
    encounters.push_back(std::move(e));
  }
  j.set("encounters", std::move(encounters));

  if (!profile.activity.empty()) {
    Json activity = Json::object();
    activity.set("still", profile.activity.still);
    activity.set("walking", profile.activity.walking);
    activity.set("vehicle", profile.activity.vehicle);
    j.set("activity", std::move(activity));
  }
  return j;
}

MobilityProfile profile_from_json(const Json& j) {
  MobilityProfile profile;
  profile.user = static_cast<world::DeviceId>(j.at("user").as_int());
  profile.day = j.at("day").as_int();
  for (const auto& e : j.at("places").as_array()) {
    profile.places.push_back({static_cast<PlaceUid>(e.at("place").as_int()),
                              e.at("arrival").as_int(),
                              e.at("departure").as_int()});
  }
  for (const auto& e : j.at("routes").as_array()) {
    profile.routes.push_back({static_cast<std::uint64_t>(e.at("route").as_int()),
                              e.at("start").as_int(), e.at("end").as_int()});
  }
  for (const auto& e : j.at("encounters").as_array()) {
    profile.encounters.push_back(
        {static_cast<world::DeviceId>(e.at("contact").as_int()),
         static_cast<PlaceUid>(e.at("place").as_int()),
         e.at("start").as_int(), e.at("end").as_int()});
  }
  if (j.contains("activity")) {
    const Json& activity = j.at("activity");
    profile.activity.still = activity.get_int("still", 0);
    profile.activity.walking = activity.get_int("walking", 0);
    profile.activity.vehicle = activity.get_int("vehicle", 0);
  }
  return profile;
}

}  // namespace pmware::core
