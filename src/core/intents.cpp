#include "core/intents.hpp"

namespace pmware::core {

ReceiverId IntentBus::register_receiver(IntentFilter filter,
                                        IntentHandler handler) {
  const ReceiverId id = next_id_++;
  receivers_[id] = {std::move(filter), std::move(handler)};
  return id;
}

void IntentBus::unregister(ReceiverId id) { receivers_.erase(id); }

std::size_t IntentBus::broadcast(const Intent& intent) {
  ++broadcasts_;
  std::size_t reached = 0;
  // Snapshot ids first: handlers may (un)register receivers while running.
  std::vector<ReceiverId> ids;
  ids.reserve(receivers_.size());
  for (const auto& [id, receiver] : receivers_) ids.push_back(id);
  for (ReceiverId id : ids) {
    const auto it = receivers_.find(id);
    if (it == receivers_.end()) continue;
    if (!it->second.filter.matches(intent)) continue;
    it->second.handler(intent);
    ++reached;
  }
  return reached;
}

bool IntentBus::send_to(ReceiverId id, const Intent& intent) {
  const auto it = receivers_.find(id);
  if (it == receivers_.end()) return false;
  it->second.handler(intent);
  return true;
}

}  // namespace pmware::core
