// Connected Applications Module (paper §2.2.4): keeps every connected app's
// registered requirements, aggregates them into the sensing demand the
// inference engine acts on, and delivers place/route/social alerts as
// intents — coarsened to each app's permitted granularity (§2.2.1).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/events.hpp"
#include "core/intents.hpp"
#include "core/model.hpp"
#include "core/place_store.hpp"
#include "core/preferences.hpp"
#include "geo/latlng.hpp"

namespace pmware::core {

/// Route-tracking accuracy (paper §2.2.2): low uses GSM only; high uses WiFi
/// for departure detection and GPS along the way.
enum class RouteAccuracy : std::uint8_t { Off = 0, Low = 1, High = 2 };

/// A connected app's request for place alerts (the §2.4 use case: "get place
/// alerts at building granularity, tracked 9 AM - 6 PM").
struct PlaceAlertRequest {
  std::string app;
  Granularity granularity = Granularity::Building;
  DailyWindow window = DailyWindow::all_day();
  bool want_enter = true;
  bool want_exit = true;
  bool want_new_place = false;
  ReceiverId receiver = 0;  ///< the app's intent receiver
};

struct RouteTrackingRequest {
  std::string app;
  RouteAccuracy accuracy = RouteAccuracy::Low;
  DailyWindow window = DailyWindow::all_day();
  ReceiverId receiver = 0;
};

/// A coordinate geofence (the geo-reminder apps the paper's introduction
/// motivates [Place-Its, geo to-do lists]): fires when the user enters or
/// leaves any discovered place whose resolved position lies within
/// `radius_m` of `center`.
struct GeofenceRequest {
  std::string app;
  geo::LatLng center;
  double radius_m = 200;
  bool want_enter = true;
  bool want_exit = true;
  DailyWindow window = DailyWindow::all_day();
  ReceiverId receiver = 0;
};

/// Social-contact monitoring, optionally targeted at one place
/// (§2.2.2: "monitoring contacts only at the user's workplace").
struct SocialRequest {
  std::string app;
  std::optional<PlaceUid> only_at_place;
  DailyWindow window = DailyWindow::all_day();
  ReceiverId receiver = 0;
};

using RequestId = std::uint32_t;

class ConnectedAppsModule {
 public:
  /// `preferences` must outlive the module.
  explicit ConnectedAppsModule(const UserPreferences* preferences)
      : preferences_(preferences) {}

  RequestId register_place_alerts(PlaceAlertRequest request);
  RequestId register_route_tracking(RouteTrackingRequest request);
  RequestId register_social(SocialRequest request);
  RequestId register_geofence(GeofenceRequest request);
  void unregister(RequestId id);
  /// Removes every registration of `app`.
  void unregister_app(const std::string& app);

  // --- Aggregated sensing demand (drives the inference engine) ---

  /// Finest granularity any active place-alert request needs at time `t`;
  /// nullopt when no request is active (or the master switch is off).
  std::optional<Granularity> required_granularity(SimTime t) const;

  /// Highest route accuracy requested at `t`.
  RouteAccuracy required_route_accuracy(SimTime t) const;

  /// Whether social scanning is wanted at `t` while at `place`.
  bool social_required(SimTime t, std::optional<PlaceUid> place) const;

  // --- Delivery ---

  /// Sends the event to every matching registration, coarsened per app.
  /// Returns the number of intents delivered.
  std::size_t deliver_place_event(const PlaceEvent& event,
                                  const PlaceStore& store, IntentBus& bus);
  std::size_t deliver_route_event(const RouteEvent& event, IntentBus& bus);
  std::size_t deliver_encounter(const EncounterEvent& event, IntentBus& bus);
  /// Matches the event's place (by its resolved position) against every
  /// registered geofence. Places without a resolved position never fire.
  std::size_t deliver_geofence(const PlaceEvent& event, const PlaceStore& store,
                               IntentBus& bus);

  std::size_t registration_count() const;

 private:
  const UserPreferences* preferences_;
  std::map<RequestId, PlaceAlertRequest> place_requests_;
  std::map<RequestId, RouteTrackingRequest> route_requests_;
  std::map<RequestId, SocialRequest> social_requests_;
  std::map<RequestId, GeofenceRequest> geofence_requests_;
  RequestId next_id_ = 1;
};

}  // namespace pmware::core
