// Events produced by the inference engine and delivered (as intents) to
// connected applications.
#pragma once

#include <optional>

#include "core/model.hpp"
#include "util/simtime.hpp"

namespace pmware::core {

struct PlaceEvent {
  enum class Kind { Enter, Exit, NewPlace };
  Kind kind = Kind::Enter;
  PlaceUid uid = kNoPlaceUid;
  /// Area-level identity: the GSM-cluster place containing `uid` (equal to
  /// `uid` when the place itself is a GSM cluster). This is all an app with
  /// an area-granularity permission gets to see.
  PlaceUid area_uid = kNoPlaceUid;
  SimTime t = 0;
  /// For Exit: how long the stay lasted.
  SimDuration dwell = 0;
};

struct RouteEvent {
  std::uint64_t route_uid = 0;
  PlaceUid from = kNoPlaceUid;
  PlaceUid to = kNoPlaceUid;
  TimeWindow window;
  bool high_accuracy = false;
};

struct EncounterEvent {
  world::DeviceId contact = 0;
  PlaceUid place = kNoPlaceUid;
  TimeWindow window;
};

}  // namespace pmware::core
